//! Typed errors of the certification subsystem.

use std::fmt;

/// Why a certification request could not be served or verified.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OracleError {
    /// The side array does not cover the graph's vertices.
    SideMismatch {
        /// Vertices in the graph.
        expected: usize,
        /// Length of the provided side array.
        got: usize,
    },
    /// Some edge does not cross the given bipartition (or the graph has no
    /// bipartition at all).
    NotBipartite,
    /// An independent certificate check failed; the reason names the first
    /// violated condition.
    CertificateViolation {
        /// The first violated condition.
        reason: String,
    },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::SideMismatch { expected, got } => {
                write!(f, "side array covers {got} vertices, graph has {expected}")
            }
            OracleError::NotBipartite => {
                write!(f, "graph is not bipartite under the given sides")
            }
            OracleError::CertificateViolation { reason } => {
                write!(f, "certificate check failed: {reason}")
            }
        }
    }
}

impl std::error::Error for OracleError {}
