//! Gabow's weighted route to maximum **cardinality** matching
//! (arXiv 1703.03998): solve MCM as unit-weight MWM through the same
//! slack-array core, and read the integral duals back as a König vertex
//! cover certifying optimality.
//!
//! On a unit-weight instance the slack-array Hungarian keeps every label
//! in `{0, 1}` (left labels start at 1 and only descend to 0, right
//! labels start at 0 and a raise re-tightens a matched unit edge at 1),
//! so the final duals are the indicator vector of a vertex cover with
//! `|cover| = Σ labels = |M|` — König's theorem as a byproduct of
//! complementary slackness. This is the verification path the MCM oracles
//! (Hopcroft–Karp offline, the streaming/MPC `Unw-Bip-Matching` boxes)
//! are cross-validated through: a matching and a cover of equal size
//! certify each other.

use wmatch_graph::{Graph, Matching, Vertex};

use crate::error::OracleError;
use crate::instance::BipartiteInstance;
use crate::solver::{SlackOracle, SolveStats, WarmStart};

/// A certified maximum-cardinality matching: the matching plus a vertex
/// cover of the same size (König's certificate).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CardinalityCertified {
    /// A maximum-cardinality matching.
    pub matching: Matching,
    /// Per-vertex cover indicators in `{0, 1}` (the unit-weight duals).
    pub labels: Vec<i128>,
    /// `|M*| = Σ labels`.
    pub optimum: i128,
    /// Work counters of the producing solve.
    pub stats: SolveStats,
}

impl CardinalityCertified {
    /// The König vertex cover (vertices with label 1).
    pub fn cover(&self) -> Vec<Vertex> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &y)| y > 0)
            .map(|(v, _)| v as Vertex)
            .collect()
    }

    /// Independently re-checks the certificate: the labels form a
    /// (fractional, here integral) vertex cover — every edge has label
    /// sum ≥ 1 — the matching is valid, and `|M| = Σ labels`, which by LP
    /// duality proves `M` maximum.
    pub fn verify(&self, g: &Graph) -> Result<(), OracleError> {
        let violation = |reason: String| OracleError::CertificateViolation { reason };
        if self.labels.len() != g.vertex_count() {
            return Err(violation(format!(
                "{} labels for {} vertices",
                self.labels.len(),
                g.vertex_count()
            )));
        }
        if let Some(&y) = self.labels.iter().find(|&&y| y < 0) {
            return Err(violation(format!("negative cover label {y}")));
        }
        for e in g.edges() {
            if self.labels[e.u as usize] + self.labels[e.v as usize] < 1 {
                return Err(violation(format!("edge {e} is not covered")));
            }
        }
        self.matching
            .validate(Some(g))
            .map_err(|e| violation(format!("matching invalid: {e}")))?;
        let cover_size: i128 = self.labels.iter().sum();
        if self.matching.len() as i128 != cover_size || cover_size != self.optimum {
            return Err(violation(format!(
                "König equality fails: |M| = {}, Σ labels = {cover_size}, optimum = {}",
                self.matching.len(),
                self.optimum
            )));
        }
        Ok(())
    }
}

/// Certified maximum-cardinality matching of a bipartite graph
/// (`side[v] = false` means left), via the unit-weight reduction through
/// the slack-array core.
///
/// # Errors
///
/// [`OracleError::SideMismatch`] / [`OracleError::NotBipartite`] if `g`
/// does not respect `side`.
pub fn certify_max_cardinality(
    g: &Graph,
    side: &[bool],
) -> Result<CardinalityCertified, OracleError> {
    let n = g.vertex_count();
    if side.len() != n {
        return Err(OracleError::SideMismatch {
            expected: n,
            got: side.len(),
        });
    }
    if !g
        .respects_bipartition(side)
        .map_err(|_| OracleError::NotBipartite)?
    {
        return Err(OracleError::NotBipartite);
    }

    let mut lefts: Vec<Vertex> = Vec::new();
    let mut rights: Vec<Vertex> = Vec::new();
    let mut vpos = vec![0u32; n];
    for (v, &s) in side.iter().enumerate() {
        if s {
            vpos[v] = rights.len() as u32;
            rights.push(v as Vertex);
        } else {
            vpos[v] = lefts.len() as u32;
            lefts.push(v as Vertex);
        }
    }
    let inst: BipartiteInstance<i128> = BipartiteInstance::with_tags(
        lefts.len(),
        rights.len(),
        g.edges().iter().enumerate().map(|(idx, e)| {
            let (l, r) = if side[e.u as usize] {
                (e.v, e.u)
            } else {
                (e.u, e.v)
            };
            (vpos[l as usize], vpos[r as usize], 1i128, idx as u32)
        }),
    );
    let sol = SlackOracle::new().solve(&inst, WarmStart::Cold);

    let mut matching = Matching::new(n);
    for &(_, _, tag) in &sol.pairs {
        matching
            .insert(g.edges()[tag as usize])
            .expect("oracle pairs are vertex-disjoint");
    }
    let mut labels = vec![0i128; n];
    for (i, &v) in lefts.iter().enumerate() {
        labels[v as usize] = sol.left_labels[i];
    }
    for (j, &v) in rights.iter().enumerate() {
        labels[v as usize] = sol.right_labels[j];
    }
    let cert = CardinalityCertified {
        matching,
        labels,
        optimum: sol.dual_objective,
        stats: sol.stats,
    };
    cert.verify(g)
        .expect("unit-weight duals certify König equality");
    Ok(cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmatch_graph::exact::max_bipartite_cardinality_matching;

    fn side_lr(nl: usize, n: usize) -> Vec<bool> {
        (0..n).map(|v| v >= nl).collect()
    }

    #[test]
    fn hall_violator_bounds_cover() {
        // three lefts all adjacent only to right 3: |M*| = 1, cover {3}
        let mut g = Graph::new(4);
        for u in 0..3u32 {
            g.add_edge(u, 3, 1);
        }
        let cert = certify_max_cardinality(&g, &side_lr(3, 4)).unwrap();
        assert_eq!(cert.optimum, 1);
        assert_eq!(cert.cover(), vec![3]);
    }

    #[test]
    fn agrees_with_hopcroft_karp() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use wmatch_graph::generators::{self, WeightModel};

        let mut rng = StdRng::seed_from_u64(0x6761626f77);
        for trial in 0..25 {
            let nl = 2 + trial % 6;
            let nr = 2 + trial % 5;
            let (g, side) = generators::random_bipartite(nl, nr, 0.4, WeightModel::Unit, &mut rng);
            let hk = max_bipartite_cardinality_matching(&g, &side);
            let cert = certify_max_cardinality(&g, &side).unwrap();
            assert_eq!(cert.matching.len(), hk.len(), "trial {trial}");
            cert.verify(&g).unwrap();
        }
    }

    #[test]
    fn weights_are_ignored_by_the_reduction() {
        let mut g = Graph::new(4);
        g.add_edge(0, 2, 1_000);
        g.add_edge(1, 2, 1);
        g.add_edge(1, 3, 1);
        let cert = certify_max_cardinality(&g, &side_lr(2, 4)).unwrap();
        assert_eq!(cert.optimum, 2);
    }
}
