//! Incremental re-certification along an update stream.
//!
//! A dynamic engine ([`DynamicMatcher`] / `ShardedMatcher` in
//! `wmatch-dynamic`) maintains an *approximate* matching under edge
//! churn; the repo's quality claims are checked by comparing it against
//! the exact optimum at checkpoints. Re-solving cold at every checkpoint
//! costs a full Hungarian run each time; the [`IncrementalCertifier`]
//! instead carries the previous optimum's dual solution across the
//! churn and re-certifies through the dual-repair warm start
//! ([`WarmStart::Duals`](crate::WarmStart)) — after `k` updates the
//! number of fresh searches is typically proportional to `k`, not to the
//! graph size.
//!
//! [`DynamicMatcher`]: https://docs.rs/wmatch-dynamic
//!
//! # Example
//!
//! ```
//! use wmatch_graph::Graph;
//! use wmatch_oracle::IncrementalCertifier;
//!
//! let mut g = Graph::new(4);
//! g.add_edge(0, 2, 5);
//! g.add_edge(1, 3, 7);
//! let mut cert = IncrementalCertifier::for_graph(&g).unwrap();
//! assert_eq!(cert.certify(&g).unwrap().optimum, 12);
//!
//! g.add_edge(0, 3, 20); // churn…
//! let ck = cert.certify(&g).unwrap(); // …re-certified warm
//! assert_eq!(ck.optimum, 20);
//! assert_eq!(cert.stats().warm_checkpoints, 1);
//! ```

use wmatch_graph::Graph;

use crate::certify::{Certified, WeightOracle};
use crate::error::OracleError;

/// Cumulative counters of an [`IncrementalCertifier`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CertifierStats {
    /// Checkpoints certified in total.
    pub checkpoints: u64,
    /// Checkpoints served warm from the previous optimum's duals.
    pub warm_checkpoints: u64,
    /// Alternating-tree searches across all checkpoints (the measure the
    /// warm start shrinks).
    pub phases: u64,
    /// Dual adjustment steps across all checkpoints.
    pub delta_steps: u64,
}

/// Maintains dual feasibility across an update stream and re-certifies
/// checkpoints from the previous optimum instead of from scratch.
#[derive(Debug, Clone)]
pub struct IncrementalCertifier {
    oracle: WeightOracle,
    prev: Option<Certified>,
    stats: CertifierStats,
}

impl IncrementalCertifier {
    /// Creates a certifier for graphs over `side.len()` vertices with the
    /// given bipartition (`false` = left).
    pub fn new(side: Vec<bool>) -> Self {
        IncrementalCertifier {
            oracle: WeightOracle::new(side),
            prev: None,
            stats: CertifierStats::default(),
        }
    }

    /// Creates a certifier using a 2-coloring computed from `g` itself.
    ///
    /// # Errors
    ///
    /// [`OracleError::NotBipartite`] if `g` has no bipartition. Note the
    /// derived sides are fixed for the certifier's lifetime: later
    /// updates must keep respecting them.
    pub fn for_graph(g: &Graph) -> Result<Self, OracleError> {
        let side = g.bipartition().ok_or(OracleError::NotBipartite)?;
        Ok(Self::new(side))
    }

    /// The bipartition this certifier checks under.
    pub fn side(&self) -> &[bool] {
        self.oracle.side()
    }

    /// Certifies the current state of `g`, warm from the previous
    /// checkpoint when one exists. The returned certificate has passed
    /// the in-code complementary-slackness check.
    ///
    /// # Errors
    ///
    /// See [`WeightOracle::certify`].
    pub fn certify(&mut self, g: &Graph) -> Result<&Certified, OracleError> {
        let warm = self.prev.is_some();
        let cert = self.oracle.certify(g, self.prev.as_ref())?;
        self.stats.checkpoints += 1;
        if warm {
            self.stats.warm_checkpoints += 1;
        }
        self.stats.phases += cert.stats.phases as u64;
        self.stats.delta_steps += cert.stats.delta_steps as u64;
        self.prev = Some(cert);
        Ok(self.prev.as_ref().expect("just stored"))
    }

    /// Certifies `g` cold, ignoring (and not updating) the carried state —
    /// the baseline the warm path is benchmarked against.
    ///
    /// # Errors
    ///
    /// See [`WeightOracle::certify`].
    pub fn certify_cold(&mut self, g: &Graph) -> Result<Certified, OracleError> {
        self.oracle.certify(g, None)
    }

    /// The last certificate, if any checkpoint has run.
    pub fn last(&self) -> Option<&Certified> {
        self.prev.as_ref()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &CertifierStats {
        &self.stats
    }

    /// Drops the carried optimum (the next checkpoint solves cold).
    pub fn reset(&mut self) {
        self.prev = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wmatch_graph::generators::{self, WeightModel};

    #[test]
    fn warm_checkpoints_match_cold_optima_under_churn() {
        let mut rng = StdRng::seed_from_u64(0x696e63);
        let (mut g, side) = generators::random_bipartite(
            18,
            15,
            0.2,
            WeightModel::Uniform { lo: 1, hi: 50 },
            &mut rng,
        );
        let mut cert = IncrementalCertifier::new(side.clone());

        for round in 0..12 {
            // churn: a few inserts and deletes per round
            for _ in 0..4 {
                let l = rng.gen_range(0..18u32);
                let r = 18 + rng.gen_range(0..15u32);
                g.add_edge(l, r, rng.gen_range(1..=50));
            }
            if g.edge_count() > 6 {
                // rebuild without a random prefix of edges = deletions
                let keep: Vec<_> = g
                    .edges()
                    .iter()
                    .filter(|_| rng.gen_range(0..10) != 0)
                    .copied()
                    .collect();
                let mut g2 = Graph::new(g.vertex_count());
                for e in keep {
                    g2.add_edge(e.u, e.v, e.weight);
                }
                g = g2;
            }
            let cold = cert.certify_cold(&g).unwrap();
            let warm = cert.certify(&g).unwrap();
            assert_eq!(warm.optimum, cold.optimum, "round {round}");
            warm.verify(&g, &side).unwrap();
        }
        assert_eq!(cert.stats().checkpoints, 12);
        assert_eq!(cert.stats().warm_checkpoints, 11);
    }

    #[test]
    fn for_graph_rejects_odd_cycles() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 0, 1);
        assert_eq!(
            IncrementalCertifier::for_graph(&g).unwrap_err(),
            OracleError::NotBipartite
        );
    }
}
