//! The weight abstraction of the slack-array core.
//!
//! The core is generic so the same search/repair machinery serves the
//! graph path (exact `i128` arithmetic — labels of `u64`-weighted graphs
//! never overflow) and external float instances (`f64`, with
//! tolerance-aware verification).

use std::fmt::Debug;
use std::ops::{Add, Sub};

/// Arithmetic the slack-array Hungarian core needs from a weight type.
///
/// Implementations must form an ordered additive group on the values the
/// solver produces (labels are differences and sums of input weights, so
/// `i128` against `u64` inputs is exact).
pub trait OracleWeight:
    Copy + PartialOrd + Debug + Default + Add<Output = Self> + Sub<Output = Self> + 'static
{
    /// The additive identity (also the label of every unmatched vertex in
    /// a finished solve).
    const ZERO: Self;

    /// Verification tolerance at magnitude `scale`: exactly zero for
    /// integer weights, a relative epsilon for floats.
    fn tolerance(scale: Self) -> Self;

    /// The larger of two weights (total order assumed on solver values).
    #[inline]
    fn max_w(self, other: Self) -> Self {
        if self < other {
            other
        } else {
            self
        }
    }

    /// Clamps at zero from below — a no-op for exact arithmetic, a guard
    /// against rounding drift for floats (labels and slacks are
    /// nonnegative by invariant).
    #[inline]
    fn clamp_zero(self) -> Self {
        if self < Self::ZERO {
            Self::ZERO
        } else {
            self
        }
    }

    /// Strictly greater than zero. Incomparable values (float NaN) count
    /// as not positive, which is the conservative answer everywhere the
    /// solver branches on it (a NaN label or slack never passes for
    /// tight-or-searchable).
    #[inline]
    fn is_positive(self) -> bool {
        Self::ZERO < self
    }
}

impl OracleWeight for i128 {
    const ZERO: Self = 0;

    #[inline]
    fn tolerance(_scale: Self) -> Self {
        0
    }
}

impl OracleWeight for f64 {
    const ZERO: Self = 0.0;

    #[inline]
    fn tolerance(scale: Self) -> Self {
        1e-9 * (1.0 + scale.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_is_exact() {
        assert_eq!(i128::tolerance(1 << 100), 0);
        assert_eq!(5i128.max_w(3), 5);
        assert_eq!((-7i128).clamp_zero(), 0);
        assert_eq!(7i128.clamp_zero(), 7);
    }

    #[test]
    fn float_tolerance_scales() {
        assert!(f64::tolerance(0.0) > 0.0);
        assert!(f64::tolerance(1e12) > f64::tolerance(1.0));
        assert_eq!((-1e-30f64).clamp_zero(), 0.0);
    }
}
