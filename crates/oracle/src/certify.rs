//! The graph-facing adapter: certified maximum-weight matchings of
//! bipartite [`wmatch_graph::Graph`]s in exact `i128` arithmetic.

use wmatch_graph::{Graph, Matching, Vertex};

use crate::error::OracleError;
use crate::instance::BipartiteInstance;
use crate::solver::{SlackOracle, SolveStats, WarmStart};

/// A certified maximum-weight matching of a bipartite graph: the optimal
/// matching plus the dual labels proving it optimal.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Certified {
    /// The optimal matching, in graph-vertex space.
    pub matching: Matching,
    /// Dual label per graph vertex (nonnegative, zero on unmatched
    /// vertices; `Σ labels = optimum`).
    pub labels: Vec<i128>,
    /// The exact optimum `w(M*) = Σ labels`.
    pub optimum: i128,
    /// Work counters of the producing solve.
    pub stats: SolveStats,
}

impl Certified {
    /// Independently re-checks the certificate against `g`: nonnegative
    /// labels, `y_u + y_v ≥ w` on every edge, a valid matching of tight
    /// edges, zero labels on unmatched vertices, and
    /// `w(M) = Σ labels = optimum`. `side` must be the bipartition the
    /// certificate was produced under.
    pub fn verify(&self, g: &Graph, side: &[bool]) -> Result<(), OracleError> {
        let violation = |reason: String| OracleError::CertificateViolation { reason };
        let n = g.vertex_count();
        if self.labels.len() != n {
            return Err(violation(format!(
                "{} labels for {n} vertices",
                self.labels.len()
            )));
        }
        if side.len() != n {
            return Err(OracleError::SideMismatch {
                expected: n,
                got: side.len(),
            });
        }
        for (v, &y) in self.labels.iter().enumerate() {
            if y < 0 {
                return Err(violation(format!("negative label {y} at vertex {v}")));
            }
        }
        for e in g.edges() {
            if self.labels[e.u as usize] + self.labels[e.v as usize] < e.weight as i128 {
                return Err(violation(format!("edge {e} violates dual feasibility")));
            }
        }
        self.matching
            .validate(Some(g))
            .map_err(|e| violation(format!("matching invalid: {e}")))?;
        for e in self.matching.iter() {
            if side[e.u as usize] == side[e.v as usize] {
                return Err(violation(format!("matched edge {e} does not cross sides")));
            }
            if self.labels[e.u as usize] + self.labels[e.v as usize] != e.weight as i128 {
                return Err(violation(format!("matched edge {e} is not tight")));
            }
        }
        let mut dual = 0i128;
        for (v, &y) in self.labels.iter().enumerate() {
            if !self.matching.is_matched(v as Vertex) && y != 0 {
                return Err(violation(format!(
                    "unmatched vertex {v} has nonzero label {y}"
                )));
            }
            dual += y;
        }
        if self.matching.weight() != dual || dual != self.optimum {
            return Err(violation(format!(
                "complementary slackness fails: w(M) = {}, Σ labels = {dual}, optimum = {}",
                self.matching.weight(),
                self.optimum
            )));
        }
        Ok(())
    }
}

/// A reusable weighted certification oracle bound to one bipartition.
///
/// Holds the slack-array core plus the graph↔instance index maps, so
/// repeated certifications of the same (evolving) graph allocate nothing
/// beyond growth. [`WeightOracle::certify`] optionally warm-starts from a
/// previous [`Certified`] via the dual-repair path.
#[derive(Debug, Clone)]
pub struct WeightOracle {
    side: Vec<bool>,
    lefts: Vec<Vertex>,
    rights: Vec<Vertex>,
    vpos: Vec<u32>,
    core: SlackOracle<i128>,
    // per-certify scratch
    edges_buf: Vec<(u32, u32, i128, u32)>,
    warm_ll: Vec<i128>,
    warm_rl: Vec<i128>,
    warm_pairs: Vec<(u32, u32)>,
}

impl WeightOracle {
    /// Creates an oracle for graphs over `side.len()` vertices with the
    /// given bipartition (`false` = left, matching the convention of
    /// [`wmatch_graph::exact::max_bipartite_cardinality_matching`]).
    pub fn new(side: Vec<bool>) -> Self {
        let mut lefts = Vec::new();
        let mut rights = Vec::new();
        let mut vpos = vec![0u32; side.len()];
        for (v, &s) in side.iter().enumerate() {
            if s {
                vpos[v] = rights.len() as u32;
                rights.push(v as Vertex);
            } else {
                vpos[v] = lefts.len() as u32;
                lefts.push(v as Vertex);
            }
        }
        WeightOracle {
            side,
            lefts,
            rights,
            vpos,
            core: SlackOracle::new(),
            edges_buf: Vec::new(),
            warm_ll: Vec::new(),
            warm_rl: Vec::new(),
            warm_pairs: Vec::new(),
        }
    }

    /// The bipartition this oracle certifies under.
    pub fn side(&self) -> &[bool] {
        &self.side
    }

    /// Certifies the maximum-weight matching of `g`, optionally
    /// warm-started from a previous certificate of an earlier version of
    /// the graph (same vertex set; any edge churn). The returned
    /// certificate has already passed the in-code complementary-slackness
    /// check.
    ///
    /// # Errors
    ///
    /// [`OracleError::SideMismatch`] / [`OracleError::NotBipartite`] if
    /// `g` does not fit the oracle's bipartition. A warm certificate of
    /// mismatched size is ignored (cold solve) rather than an error.
    pub fn certify(
        &mut self,
        g: &Graph,
        warm: Option<&Certified>,
    ) -> Result<Certified, OracleError> {
        let n = g.vertex_count();
        let inst = self.build_instance(g)?;

        let start = match warm {
            Some(prev) if prev.labels.len() == n => {
                self.warm_ll.clear();
                self.warm_ll
                    .extend(self.lefts.iter().map(|&v| prev.labels[v as usize]));
                self.warm_rl.clear();
                self.warm_rl
                    .extend(self.rights.iter().map(|&v| prev.labels[v as usize]));
                self.warm_pairs.clear();
                for e in prev.matching.iter() {
                    let (l, r) = if self.side[e.u as usize] {
                        (e.v, e.u)
                    } else {
                        (e.u, e.v)
                    };
                    self.warm_pairs
                        .push((self.vpos[l as usize], self.vpos[r as usize]));
                }
                WarmStart::Duals {
                    left_labels: &self.warm_ll,
                    right_labels: &self.warm_rl,
                    pairs: &self.warm_pairs,
                }
            }
            _ => WarmStart::Cold,
        };

        let sol = self.core.solve(&inst, start);
        Ok(self.extract(g, &sol))
    }

    /// Certifies the maximum-weight matching of `g`, seeding the solve
    /// with an approximate matching as a primal hint (e.g. a facade
    /// solver's `warm_start`). Unlike [`WeightOracle::certify`]'s dual
    /// warm start, a hint carries no labels — the oracle adopts the given
    /// pairs where they are tight under fresh duals.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WeightOracle::certify`].
    pub fn certify_hinted(&mut self, g: &Graph, hint: &Matching) -> Result<Certified, OracleError> {
        let inst = self.build_instance(g)?;
        self.warm_pairs.clear();
        for e in hint.iter() {
            let (l, r) = if self.side[e.u as usize] {
                (e.v, e.u)
            } else {
                (e.u, e.v)
            };
            self.warm_pairs
                .push((self.vpos[l as usize], self.vpos[r as usize]));
        }
        let sol = self.core.solve(&inst, WarmStart::Hint(&self.warm_pairs));
        Ok(self.extract(g, &sol))
    }

    /// Validates `g` against the bipartition and lowers it into instance
    /// space (tags = graph edge indices).
    fn build_instance(&mut self, g: &Graph) -> Result<BipartiteInstance<i128>, OracleError> {
        let n = g.vertex_count();
        if self.side.len() != n {
            return Err(OracleError::SideMismatch {
                expected: n,
                got: self.side.len(),
            });
        }
        if !g
            .respects_bipartition(&self.side)
            .map_err(|_| OracleError::NotBipartite)?
        {
            return Err(OracleError::NotBipartite);
        }

        self.edges_buf.clear();
        for (idx, e) in g.edges().iter().enumerate() {
            let (l, r) = if self.side[e.u as usize] {
                (e.v, e.u)
            } else {
                (e.u, e.v)
            };
            self.edges_buf.push((
                self.vpos[l as usize],
                self.vpos[r as usize],
                e.weight as i128,
                idx as u32,
            ));
        }
        Ok(BipartiteInstance::with_tags(
            self.lefts.len(),
            self.rights.len(),
            self.edges_buf.iter().copied(),
        ))
    }

    /// Lifts an instance-space dual solution back into graph space.
    fn extract(&self, g: &Graph, sol: &crate::solver::DualSolution<i128>) -> Certified {
        let n = g.vertex_count();
        let mut matching = Matching::new(n);
        for &(_, _, tag) in &sol.pairs {
            matching
                .insert(*g.edges().get(tag as usize).expect("tag is an edge index"))
                .expect("oracle pairs are vertex-disjoint");
        }
        let mut labels = vec![0i128; n];
        for (i, &v) in self.lefts.iter().enumerate() {
            labels[v as usize] = sol.left_labels[i];
        }
        for (j, &v) in self.rights.iter().enumerate() {
            labels[v as usize] = sol.right_labels[j];
        }
        Certified {
            matching,
            labels,
            optimum: sol.dual_objective,
            stats: sol.stats,
        }
    }
}

/// One-shot certified maximum-weight matching of a bipartite graph
/// (`side[v] = false` means left). See [`WeightOracle`] for the reusable /
/// warm-startable form.
///
/// # Errors
///
/// [`OracleError::SideMismatch`] / [`OracleError::NotBipartite`] if `g`
/// does not respect `side`.
pub fn certify_max_weight(g: &Graph, side: &[bool]) -> Result<Certified, OracleError> {
    WeightOracle::new(side.to_vec()).certify(g, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn side_lr(nl: usize, n: usize) -> Vec<bool> {
        (0..n).map(|v| v >= nl).collect()
    }

    #[test]
    fn certifies_a_small_instance() {
        let mut g = Graph::new(4);
        g.add_edge(0, 2, 5);
        g.add_edge(0, 3, 9);
        g.add_edge(1, 3, 8);
        let cert = certify_max_weight(&g, &side_lr(2, 4)).unwrap();
        assert_eq!(cert.optimum, 13);
        cert.verify(&g, &side_lr(2, 4)).unwrap();
    }

    #[test]
    fn rejects_non_bipartite_input() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        assert_eq!(
            certify_max_weight(&g, &[false, false, true]).unwrap_err(),
            OracleError::NotBipartite
        );
        assert!(matches!(
            certify_max_weight(&g, &[false, true]).unwrap_err(),
            OracleError::SideMismatch { .. }
        ));
    }

    #[test]
    fn warm_certify_matches_cold_after_churn() {
        let mut g = Graph::new(6);
        g.add_edge(0, 3, 5);
        g.add_edge(1, 3, 7);
        g.add_edge(1, 4, 2);
        g.add_edge(2, 5, 9);
        let side = side_lr(3, 6);
        let mut oracle = WeightOracle::new(side.clone());
        let first = oracle.certify(&g, None).unwrap();

        g.add_edge(0, 4, 6);
        g.add_edge(2, 4, 1);
        let warm = oracle.certify(&g, Some(&first)).unwrap();
        let cold = oracle.certify(&g, None).unwrap();
        assert_eq!(warm.optimum, cold.optimum);
        warm.verify(&g, &side).unwrap();
    }

    #[test]
    fn verify_catches_label_tampering() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 4);
        let side = vec![false, true];
        let mut cert = certify_max_weight(&g, &side).unwrap();
        cert.verify(&g, &side).unwrap();
        cert.labels[0] += 1;
        assert!(cert.verify(&g, &side).is_err());
    }
}
