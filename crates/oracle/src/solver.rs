//! The slack-array Hungarian core (LEKM technique, arXiv 2502.20889).
//!
//! One label-driven alternating BFS per free left vertex over flat
//! arrays:
//!
//! - `left_labels` / `right_labels` — the dual variables `y`, kept
//!   feasible (`y_l + y_r ≥ w` on every stored edge) throughout;
//! - `slacks` — per right vertex, the minimum `y_l + y_r − w` over tree
//!   lefts `l`, i.e. how far the cheapest tree edge into that right is
//!   from tight;
//! - `right_parents` — for each reached right, the `(left, adjacency
//!   position)` that achieved its slack: the alternating-tree parent link
//!   an augmentation walks back through.
//!
//! A search from a free left grows the tree through tight edges only.
//! When no tight edge is available it applies a dual adjustment
//! `δ = min(min tree-left label, min slack)`: tree lefts give up `δ`,
//! tree rights absorb it (matched tree edges stay tight), and every
//! reached-but-unreached right's slack drops by `δ`. Two terminations:
//!
//! - an **unmatched right** becomes tight → augment along
//!   `right_parents` (cardinality grows by one);
//! - a **tree-left label hits zero** → the "exit path": the zero label
//!   plays the paper's virtual zero-weight edge to an artificial partner,
//!   so the matching shifts one step along the tree toward the root (the
//!   root becomes matched, the zero-label left becomes free — and a free
//!   vertex with label zero satisfies complementary slackness as is).
//!
//! Unbalanced and incomplete instances need no padding: the exit path is
//! exactly what dense Hungarian implementations simulate with quadratic
//! zero-weight filler edges.
//!
//! All per-search state reuses the O(1)-reset epoch scratch of
//! [`wmatch_graph::scratch`], so a long-lived [`SlackOracle`] performs no
//! per-search allocation at steady state.

use wmatch_graph::scratch::{EpochMap, Scratch};

use crate::error::OracleError;
use crate::instance::BipartiteInstance;
use crate::weight::OracleWeight;

/// The null vertex / position sentinel of the flat arrays.
const NONE: u32 = u32::MAX;

/// Work counters of one [`SlackOracle::solve`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SolveStats {
    /// Alternating-tree searches run (one per free left that still had a
    /// positive label after initialization — the warm-start speedup is
    /// this number shrinking).
    pub phases: usize,
    /// Dual adjustment steps across all searches.
    pub delta_steps: usize,
    /// Edge relaxations (adjacency positions scanned from tree lefts).
    pub relaxations: usize,
    /// Matched pairs adopted from the warm start (hint pairs or previous
    /// optimum pairs still tight, plus greedy tight seeds).
    pub adopted: usize,
    /// Previous-optimum pairs the dual repair had to drop (edge deleted,
    /// reweighted, or no longer tight after the feasibility fix).
    pub dropped: usize,
}

/// How to initialize the label/matching state of a solve.
#[derive(Debug, Clone, Copy)]
pub enum WarmStart<'a, W: OracleWeight> {
    /// Cold start: `left_labels = max incident weight`,
    /// `right_labels = 0`, plus a greedy tight pre-match.
    Cold,
    /// Cold labels, but adopt the given `(left, right)` pairs first when
    /// they are tight under the cold labels (a plain matching hint, e.g.
    /// an approximate engine's current matching).
    Hint(&'a [(u32, u32)]),
    /// Full dual warm start from a previous optimum: carry the right
    /// labels, re-derive the left labels as the minimal feasible height
    /// over them in O(E), re-adopt every still-tight previous pair, and
    /// only search from the lefts that actually came loose. This is the
    /// incremental re-certification path: after `k` small updates, the
    /// number of searches is typically O(k), not O(nl).
    Duals {
        /// Previous left labels. Retained for completeness of the dual
        /// pair; the solver re-derives minimal feasible left labels from
        /// `right_labels` (still-tight pairs land at the same height).
        left_labels: &'a [W],
        /// Previous right labels.
        right_labels: &'a [W],
        /// Previous optimum pairs `(left, right)`.
        pairs: &'a [(u32, u32)],
    },
}

/// An optimal primal/dual pair for a [`BipartiteInstance`], with the
/// complementary-slackness certificate already checked in-code by
/// [`SlackOracle::solve`] (and re-checkable independently via [`verify`]).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DualSolution<W: OracleWeight> {
    /// Final left labels (`0` on unmatched lefts).
    pub left_labels: Vec<W>,
    /// Final right labels (`0` on unmatched rights).
    pub right_labels: Vec<W>,
    /// Matched `(left, right, tag)` triples, in left order.
    pub pairs: Vec<(u32, u32, u32)>,
    /// Total matched weight.
    pub value: W,
    /// The dual objective `Σ labels` — equals `value`, which is what
    /// certifies optimality.
    pub dual_objective: W,
    /// Work counters of the producing solve.
    pub stats: SolveStats,
}

/// The reusable slack-array Hungarian solver.
///
/// One long-lived instance amortizes its flat arrays and epoch scratch
/// across solves (the [`IncrementalCertifier`](crate::IncrementalCertifier)
/// holds exactly one).
///
/// # Example
///
/// ```
/// use wmatch_oracle::{BipartiteInstance, SlackOracle, WarmStart};
///
/// let inst = BipartiteInstance::new(2, 2, &[(0, 0, 4i128), (0, 1, 7), (1, 1, 5)]);
/// let mut oracle = SlackOracle::new();
/// let sol = oracle.solve(&inst, WarmStart::Cold);
/// assert_eq!(sol.value, 9); // 0–0 (4) + 1–1 (5)
/// assert_eq!(sol.value, sol.dual_objective);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SlackOracle<W: OracleWeight> {
    left_labels: Vec<W>,
    right_labels: Vec<W>,
    slacks: EpochMap<W>,
    right_parents: EpochMap<(u32, u32)>,
    left_mate: Vec<u32>,
    left_mate_pos: Vec<u32>,
    right_mate: Vec<u32>,
    scratch: Scratch,
    queue: Vec<u32>,
    tree_lefts: Vec<u32>,
    tree_rights: Vec<u32>,
    on_edge: Vec<u32>,
    tight: Vec<u32>,
    stats: SolveStats,
}

impl<W: OracleWeight> SlackOracle<W> {
    /// Creates a solver with empty scratch.
    pub fn new() -> Self {
        SlackOracle {
            left_labels: Vec::new(),
            right_labels: Vec::new(),
            slacks: EpochMap::new(),
            right_parents: EpochMap::new(),
            left_mate: Vec::new(),
            left_mate_pos: Vec::new(),
            right_mate: Vec::new(),
            scratch: Scratch::new(),
            queue: Vec::new(),
            tree_lefts: Vec::new(),
            tree_rights: Vec::new(),
            on_edge: Vec::new(),
            tight: Vec::new(),
            stats: SolveStats::default(),
        }
    }

    /// The largest vertex count the internal scratch has been sized for
    /// (dense-array memory telemetry, same contract as
    /// [`Scratch::high_water`]).
    pub fn high_water(&self) -> usize {
        self.scratch.high_water()
    }

    /// Solves `inst` to optimality and returns the certified primal/dual
    /// pair.
    ///
    /// # Panics
    ///
    /// Panics if the in-code complementary-slackness check fails — that is
    /// an internal invariant violation, never a property of the input.
    pub fn solve(
        &mut self,
        inst: &BipartiteInstance<W>,
        warm: WarmStart<'_, W>,
    ) -> DualSolution<W> {
        self.prepare(inst);
        match warm {
            WarmStart::Cold => self.init_cold(inst),
            WarmStart::Hint(pairs) => {
                self.init_cold(inst);
                self.adopt_pairs(inst, pairs);
            }
            WarmStart::Duals {
                left_labels,
                right_labels,
                pairs,
            } => self.init_duals(inst, left_labels, right_labels, pairs),
        }
        self.greedy_tight(inst);
        for root in 0..inst.left_count() as u32 {
            if self.left_mate[root as usize] == NONE
                && self.left_labels[root as usize].is_positive()
            {
                self.stats.phases += 1;
                self.search(inst, root);
            }
        }
        let sol = self.extract(inst);
        if let Err(e) = verify(inst, &sol) {
            panic!("slack oracle produced an invalid certificate: {e}");
        }
        sol
    }

    // ---- initialization -------------------------------------------------

    fn prepare(&mut self, inst: &BipartiteInstance<W>) {
        let (nl, nr) = (inst.left_count(), inst.right_count());
        self.left_labels.clear();
        self.left_labels.resize(nl, W::ZERO);
        self.right_labels.clear();
        self.right_labels.resize(nr, W::ZERO);
        self.left_mate.clear();
        self.left_mate.resize(nl, NONE);
        self.left_mate_pos.clear();
        self.left_mate_pos.resize(nl, NONE);
        self.right_mate.clear();
        self.right_mate.resize(nr, NONE);
        self.scratch.begin(nl.max(nr));
        self.slacks.ensure(nr);
        self.right_parents.ensure(nr);
        self.stats = SolveStats::default();
    }

    fn init_cold(&mut self, inst: &BipartiteInstance<W>) {
        for l in 0..inst.left_count() as u32 {
            let mut best = W::ZERO;
            for pos in inst.adj(l) {
                best = best.max_w(inst.adj_w[pos]);
            }
            self.left_labels[l as usize] = best;
        }
    }

    /// Adopts `(left, right)` pairs that are tight under the current
    /// labels and vertex-disjoint with what is already matched.
    fn adopt_pairs(&mut self, inst: &BipartiteInstance<W>, pairs: &[(u32, u32)]) {
        for &(l, r) in pairs {
            if l as usize >= inst.left_count()
                || r as usize >= inst.right_count()
                || self.left_mate[l as usize] != NONE
                || self.right_mate[r as usize] != NONE
            {
                self.stats.dropped += 1;
                continue;
            }
            let mut found = false;
            for pos in inst.adj(l) {
                if inst.adj_right[pos] == r && self.is_tight(l, pos, inst) {
                    self.set_match(l, pos, inst);
                    self.stats.adopted += 1;
                    found = true;
                    break;
                }
            }
            if !found {
                self.stats.dropped += 1;
            }
        }
    }

    /// The dual warm start: carry previous labels, repair feasibility for
    /// the current edge set, re-adopt still-tight previous pairs, and
    /// cascade right labels of freed rights down to zero.
    fn init_duals(
        &mut self,
        inst: &BipartiteInstance<W>,
        _prev_ll: &[W],
        prev_rl: &[W],
        pairs: &[(u32, u32)],
    ) {
        let (nl, nr) = (inst.left_count(), inst.right_count());
        for r in 0..nr {
            self.right_labels[r] = prev_rl.get(r).copied().unwrap_or(W::ZERO).clamp_zero();
        }

        // Left labels are *derived*, not carried: the minimal feasible
        // height over the carried right labels, y_l = max(w − y_r) over
        // the current adjacency. A still-tight previous pair demands
        // exactly the old label through its own edge, so every tight pair
        // survives at the same height — while a left whose supporting
        // edge was deleted starts at its new (lower) residual maximum
        // instead of the stale label, which is what keeps warm searches
        // short: the exit path fires as soon as a label hits zero, and
        // derived labels start as close to zero as feasibility allows.
        // (With all-zero right labels this is exactly the cold init.)
        for l in 0..nl as u32 {
            let mut needed = W::ZERO;
            for pos in inst.adj(l) {
                let r = inst.adj_right[pos] as usize;
                needed = needed.max_w(inst.adj_w[pos] - self.right_labels[r]);
            }
            self.left_labels[l as usize] = needed.clamp_zero();
        }

        self.adopt_pairs(inst, pairs);

        // Zero-cascade: an unmatched right must end with label zero (the
        // complementary-slackness side of the rights). Zeroing a label can
        // break feasibility of its incident edges, which is repaired by
        // raising the left labels — and a raised left that was matched is
        // no longer tight, so its pair is dropped and its freed right
        // joins the worklist. Each right is zeroed at most once, so this
        // terminates in O(E).
        let mut work: Vec<u32> = (0..nr as u32)
            .filter(|&r| {
                self.right_mate[r as usize] == NONE && self.right_labels[r as usize].is_positive()
            })
            .collect();
        while let Some(r) = work.pop() {
            if self.right_mate[r as usize] != NONE || !self.right_labels[r as usize].is_positive() {
                continue;
            }
            self.right_labels[r as usize] = W::ZERO;
            for rpos in inst.radj(r) {
                let l = inst.radj_left[rpos];
                let w = inst.radj_w[rpos];
                if self.left_labels[l as usize] < w {
                    self.left_labels[l as usize] = w;
                    let r2 = self.left_mate[l as usize];
                    if r2 != NONE {
                        self.left_mate[l as usize] = NONE;
                        self.left_mate_pos[l as usize] = NONE;
                        self.right_mate[r2 as usize] = NONE;
                        self.stats.dropped += 1;
                        self.stats.adopted -= 1;
                        if self.right_labels[r2 as usize].is_positive() {
                            work.push(r2);
                        }
                    }
                }
            }
        }
    }

    /// Seeds the matching with greedily chosen tight edges between free
    /// vertices — under cold labels this is the classic "match each left
    /// to a free max-weight neighbor" O(E) head start.
    fn greedy_tight(&mut self, inst: &BipartiteInstance<W>) {
        for l in 0..inst.left_count() as u32 {
            if self.left_mate[l as usize] != NONE || !self.left_labels[l as usize].is_positive() {
                continue;
            }
            for pos in inst.adj(l) {
                let r = inst.adj_right[pos];
                if self.right_mate[r as usize] == NONE && self.is_tight(l, pos, inst) {
                    self.set_match(l, pos, inst);
                    self.stats.adopted += 1;
                    break;
                }
            }
        }
    }

    #[inline]
    fn is_tight(&self, l: u32, pos: usize, inst: &BipartiteInstance<W>) -> bool {
        let r = inst.adj_right[pos] as usize;
        let slack =
            (self.left_labels[l as usize] + self.right_labels[r] - inst.adj_w[pos]).clamp_zero();
        !slack.is_positive()
    }

    #[inline]
    fn set_match(&mut self, l: u32, pos: usize, inst: &BipartiteInstance<W>) {
        let r = inst.adj_right[pos];
        self.left_mate[l as usize] = r;
        self.left_mate_pos[l as usize] = pos as u32;
        self.right_mate[r as usize] = l;
    }

    // ---- the label-driven search ---------------------------------------

    /// One alternating-tree search from the free left `root`. On return
    /// either the root is matched (augmentation) or some tree left's label
    /// reached zero and the matching shifted one step toward the root
    /// (exit path) — in both cases all invariants hold again.
    fn search(&mut self, inst: &BipartiteInstance<W>, root: u32) {
        // O(1) reset of all per-search state (`mark` = rights in tree)
        self.scratch.mark.clear();
        self.slacks.clear();
        self.right_parents.clear();
        self.queue.clear();
        self.tree_lefts.clear();
        self.tree_rights.clear();
        self.on_edge.clear();
        self.tight.clear();

        self.queue.push(root);
        self.tree_lefts.push(root);
        let mut qi = 0usize;
        let mut ti = 0usize;

        loop {
            // 1. relax every edge of newly added tree lefts
            while qi < self.queue.len() {
                let l = self.queue[qi];
                qi += 1;
                for pos in inst.adj(l) {
                    let r = inst.adj_right[pos];
                    if self.scratch.mark.contains(r) {
                        continue;
                    }
                    self.stats.relaxations += 1;
                    let s = (self.left_labels[l as usize] + self.right_labels[r as usize]
                        - inst.adj_w[pos])
                        .clamp_zero();
                    match self.slacks.get(r) {
                        None => {
                            self.slacks.insert(r, s);
                            self.right_parents.insert(r, (l, pos as u32));
                            self.on_edge.push(r);
                            if !s.is_positive() {
                                self.tight.push(r);
                            }
                        }
                        Some(cur) if s < cur => {
                            self.slacks.insert(r, s);
                            self.right_parents.insert(r, (l, pos as u32));
                            if !s.is_positive() {
                                self.tight.push(r);
                            }
                        }
                        Some(_) => {}
                    }
                }
            }

            // 2. advance through a tight edge, if any
            if ti < self.tight.len() {
                let r = self.tight[ti];
                ti += 1;
                if self.scratch.mark.contains(r) {
                    continue;
                }
                if self.right_mate[r as usize] == NONE {
                    self.augment(inst, r);
                    return;
                }
                self.scratch.mark.insert(r);
                self.tree_rights.push(r);
                let l2 = self.right_mate[r as usize];
                self.tree_lefts.push(l2);
                self.queue.push(l2);
                continue;
            }

            // 3. dual adjustment
            self.stats.delta_steps += 1;
            let mut zero_left = self.tree_lefts[0];
            let mut delta = self.left_labels[zero_left as usize];
            for &l in &self.tree_lefts[1..] {
                if self.left_labels[l as usize] < delta {
                    delta = self.left_labels[l as usize];
                    zero_left = l;
                }
            }
            let mut from_right = false;
            let mut i = 0;
            while i < self.on_edge.len() {
                let r = self.on_edge[i];
                if self.scratch.mark.contains(r) {
                    self.on_edge.swap_remove(i);
                    continue;
                }
                let s = self.slacks.get(r).expect("on-edge right has a slack");
                if s < delta {
                    delta = s;
                    from_right = true;
                }
                i += 1;
            }
            if delta.is_positive() {
                for &l in &self.tree_lefts {
                    self.left_labels[l as usize] =
                        (self.left_labels[l as usize] - delta).clamp_zero();
                }
                for &r in &self.tree_rights {
                    self.right_labels[r as usize] = self.right_labels[r as usize] + delta;
                }
                for &r in &self.on_edge {
                    let s = (self.slacks.get(r).expect("on-edge right has a slack") - delta)
                        .clamp_zero();
                    self.slacks.insert(r, s);
                    if !s.is_positive() {
                        self.tight.push(r);
                    }
                }
            }
            if !from_right {
                // the minimum was a tree-left label: it is zero now, take
                // the exit path
                self.exit_path(inst, zero_left);
                return;
            }
        }
    }

    /// Flips the alternating tree path ending in the (unmatched, tight)
    /// right `r`: every right on the path re-matches to its tree parent,
    /// the root gains a mate.
    fn augment(&mut self, inst: &BipartiteInstance<W>, mut r: u32) {
        loop {
            let (l, pos) = self
                .right_parents
                .get(r)
                .expect("tree right has a parent link");
            let prev = self.left_mate[l as usize];
            self.set_match(l, pos as usize, inst);
            if prev == NONE {
                return; // reached the free root
            }
            r = prev;
        }
    }

    /// The virtual-zero-edge termination: `zero_left`'s label reached
    /// zero, so it can afford to stay unmatched. Shift its mate (and the
    /// whole tree path behind it) one step toward the root.
    fn exit_path(&mut self, inst: &BipartiteInstance<W>, zero_left: u32) {
        self.left_labels[zero_left as usize] = W::ZERO;
        let r0 = self.left_mate[zero_left as usize];
        if r0 == NONE {
            return; // the root itself ran out of label: stays free at zero
        }
        self.left_mate[zero_left as usize] = NONE;
        self.left_mate_pos[zero_left as usize] = NONE;
        self.right_mate[r0 as usize] = NONE;
        self.augment(inst, r0);
    }

    fn extract(&self, inst: &BipartiteInstance<W>) -> DualSolution<W> {
        let mut pairs = Vec::new();
        let mut value = W::ZERO;
        for l in 0..inst.left_count() as u32 {
            let pos = self.left_mate_pos[l as usize];
            if pos != NONE {
                let pos = pos as usize;
                pairs.push((l, inst.adj_right[pos], inst.adj_tag[pos]));
                value = value + inst.adj_w[pos];
            }
        }
        let mut dual = W::ZERO;
        for &y in &self.left_labels {
            dual = dual + y;
        }
        for &y in &self.right_labels {
            dual = dual + y;
        }
        DualSolution {
            left_labels: self.left_labels.clone(),
            right_labels: self.right_labels.clone(),
            pairs,
            value,
            dual_objective: dual,
            stats: self.stats,
        }
    }
}

/// Independently re-checks the dual-feasibility certificate of `sol`
/// against `inst`: nonnegative labels, feasibility on every stored edge,
/// a valid vertex-disjoint matching of tight edges, zero labels on
/// unmatched vertices, and `value = Σ labels = dual_objective` — which by
/// weak duality proves `sol.pairs` is a maximum-weight matching.
///
/// Float instances are checked within [`OracleWeight::tolerance`] of the
/// dual objective's magnitude; integer instances are checked exactly.
pub fn verify<W: OracleWeight>(
    inst: &BipartiteInstance<W>,
    sol: &DualSolution<W>,
) -> Result<(), OracleError> {
    let violation = |reason: String| OracleError::CertificateViolation { reason };
    let (nl, nr) = (inst.left_count(), inst.right_count());
    if sol.left_labels.len() != nl || sol.right_labels.len() != nr {
        return Err(violation(format!(
            "label arrays ({}, {}) do not cover the instance ({nl}, {nr})",
            sol.left_labels.len(),
            sol.right_labels.len()
        )));
    }
    let tol = W::tolerance(sol.dual_objective);
    let neg_tol = W::ZERO - tol;
    for (v, &y) in sol
        .left_labels
        .iter()
        .chain(sol.right_labels.iter())
        .enumerate()
    {
        if y < neg_tol {
            return Err(violation(format!("negative label {y:?} at flat index {v}")));
        }
    }
    // feasibility on every stored edge
    for l in 0..nl as u32 {
        for pos in inst.adj(l) {
            let r = inst.adj_right[pos] as usize;
            let y = sol.left_labels[l as usize] + sol.right_labels[r];
            if y < inst.adj_w[pos] - tol {
                return Err(violation(format!(
                    "edge ({l}, {r}) with weight {:?} violates feasibility: labels sum to {y:?}",
                    inst.adj_w[pos]
                )));
            }
        }
    }
    // the pairs form a matching of existing, tight edges
    let mut lseen = vec![false; nl];
    let mut rseen = vec![false; nr];
    let mut value = W::ZERO;
    for &(l, r, tag) in &sol.pairs {
        if l as usize >= nl || r as usize >= nr {
            return Err(violation(format!("pair ({l}, {r}) out of range")));
        }
        if std::mem::replace(&mut lseen[l as usize], true)
            || std::mem::replace(&mut rseen[r as usize], true)
        {
            return Err(violation(format!("pair ({l}, {r}) overlaps another pair")));
        }
        let pos = inst
            .adj(l)
            .find(|&p| inst.adj_right[p] == r && inst.adj_tag[p] == tag)
            .ok_or_else(|| violation(format!("pair ({l}, {r}) tag {tag} is not an edge")))?;
        let w = inst.adj_w[pos];
        let y = sol.left_labels[l as usize] + sol.right_labels[r as usize];
        let slack = (y - w).clamp_zero();
        if tol < slack {
            return Err(violation(format!(
                "matched edge ({l}, {r}) is not tight: weight {w:?}, labels {y:?}"
            )));
        }
        value = value + w;
    }
    // complementary slackness on vertices: unmatched ⇒ zero label
    for (l, &y) in sol.left_labels.iter().enumerate() {
        if !lseen[l] && tol < y {
            return Err(violation(format!(
                "unmatched left {l} has positive label {y:?}"
            )));
        }
    }
    for (r, &y) in sol.right_labels.iter().enumerate() {
        if !rseen[r] && tol < y {
            return Err(violation(format!(
                "unmatched right {r} has positive label {y:?}"
            )));
        }
    }
    // primal value = reported value = dual objective
    let mut dual = W::ZERO;
    for &y in sol.left_labels.iter().chain(sol.right_labels.iter()) {
        dual = dual + y;
    }
    let close = |a: W, b: W| {
        let d = if a < b { b - a } else { a - b };
        // a NaN difference compares false and so fails verification,
        // which is the right answer for a certificate checker
        d <= tol
    };
    if !close(value, sol.value) {
        return Err(violation(format!(
            "reported value {:?} differs from recomputed matched weight {value:?}",
            sol.value
        )));
    }
    if !close(dual, sol.dual_objective) || !close(value, dual) {
        return Err(violation(format!(
            "complementary slackness fails: matched weight {value:?} vs dual objective {dual:?}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_cold(nl: usize, nr: usize, edges: &[(u32, u32, i128)]) -> DualSolution<i128> {
        let inst = BipartiteInstance::new(nl, nr, edges);
        SlackOracle::new().solve(&inst, WarmStart::Cold)
    }

    #[test]
    fn empty_instance() {
        let sol = solve_cold(3, 2, &[]);
        assert_eq!(sol.value, 0);
        assert!(sol.pairs.is_empty());
    }

    #[test]
    fn picks_the_heavier_assignment() {
        // taking the light edge 0–0 frees right 1 for left 1: 4 + 5 > 7
        let sol = solve_cold(2, 2, &[(0, 0, 4), (0, 1, 7), (1, 1, 5)]);
        assert_eq!(sol.value, 9);
        assert!(sol.stats.phases <= 2);
    }

    #[test]
    fn prefers_dropping_a_vertex_when_profitable() {
        // unbalanced: two lefts, one right; the heavier left wins, the
        // other ends free with label 0
        let sol = solve_cold(2, 1, &[(0, 0, 3), (1, 0, 8)]);
        assert_eq!(sol.value, 8);
        assert_eq!(sol.pairs, vec![(1, 0, 1)]);
        assert_eq!(sol.left_labels[0], 0);
    }

    #[test]
    fn parallel_edges_keep_the_best_copy() {
        let sol = solve_cold(1, 1, &[(0, 0, 2), (0, 0, 9), (0, 0, 5)]);
        assert_eq!(sol.value, 9);
        assert_eq!(sol.pairs[0].2, 1); // tag of the heavy copy
    }

    #[test]
    fn zero_and_negative_weights_never_match() {
        let inst = BipartiteInstance::new(2, 2, &[(0, 0, 0i128), (1, 1, -5)]);
        let sol = SlackOracle::new().solve(&inst, WarmStart::Cold);
        assert_eq!(sol.value, 0);
        assert!(sol.pairs.is_empty());
    }

    #[test]
    fn exit_path_chain_shifts_toward_the_root() {
        // path instance: l0–r0 heavy, l1 sees only r0, l2 sees only r1…
        // forces rematching chains through the exit path machinery
        let edges = [(0, 0, 10), (1, 0, 9), (1, 1, 2), (2, 1, 8)];
        let sol = solve_cold(3, 2, &edges);
        // optimum: 0–0 (10) + 2–1 (8); adopting 1–1 would cost 8−2
        assert_eq!(sol.value, 18);
    }

    #[test]
    fn float_instance_certifies_within_tolerance() {
        let inst = BipartiteInstance::new(
            2,
            2,
            &[(0, 0, 0.3f64), (0, 1, 0.7), (1, 1, 0.45), (1, 0, -0.2)],
        );
        let sol = SlackOracle::new().solve(&inst, WarmStart::Cold);
        assert!((sol.value - 0.75).abs() < 1e-9);
        verify(&inst, &sol).unwrap();
    }

    #[test]
    fn hint_warm_start_reaches_the_same_value() {
        let edges = [(0, 0, 4), (0, 1, 7), (1, 1, 5), (2, 0, 6)];
        let inst = BipartiteInstance::new(3, 2, &edges);
        let mut o = SlackOracle::new();
        let cold = o.solve(&inst, WarmStart::Cold);
        let hint: Vec<(u32, u32)> = cold.pairs.iter().map(|&(l, r, _)| (l, r)).collect();
        let warm = o.solve(&inst, WarmStart::Hint(&hint));
        assert_eq!(cold.value, warm.value);
    }

    #[test]
    fn duals_warm_start_is_value_invariant_under_edits() {
        let mut edges = vec![(0, 0, 4i128), (0, 1, 7), (1, 1, 5), (2, 0, 6)];
        let inst = BipartiteInstance::new(3, 2, &edges);
        let mut o = SlackOracle::new();
        let prev = o.solve(&inst, WarmStart::Cold);

        // delete one edge, reweight another, add a new one
        edges.remove(1);
        edges[1].2 = 11;
        edges.push((2, 1, 3));
        let inst2 = BipartiteInstance::new(3, 2, &edges);
        let pairs: Vec<(u32, u32)> = prev.pairs.iter().map(|&(l, r, _)| (l, r)).collect();
        let warm = o.solve(
            &inst2,
            WarmStart::Duals {
                left_labels: &prev.left_labels,
                right_labels: &prev.right_labels,
                pairs: &pairs,
            },
        );
        let cold = o.solve(&inst2, WarmStart::Cold);
        assert_eq!(warm.value, cold.value);
        verify(&inst2, &warm).unwrap();
    }

    #[test]
    fn verify_rejects_tampered_certificates() {
        let inst = BipartiteInstance::new(2, 2, &[(0, 0, 4i128), (1, 1, 5)]);
        let sol = SlackOracle::new().solve(&inst, WarmStart::Cold);

        let mut bad = sol.clone();
        bad.left_labels[0] += 1; // breaks Σ labels = value
        assert!(verify(&inst, &bad).is_err());

        let mut bad = sol.clone();
        bad.pairs.clear(); // value no longer matches matched weight
        assert!(verify(&inst, &bad).is_err());

        let mut bad = sol;
        bad.left_labels[0] -= 1; // breaks feasibility/tightness
        assert!(verify(&inst, &bad).is_err());
    }
}
