//! The flat bipartite instance the slack-array core runs on.
//!
//! Lefts and rights are dense `0..nl` / `0..nr` index spaces; the edge
//! list is held as two CSR views (left-major for the search, right-major
//! for the warm-start dual repair). Edges with weight `≤ 0` are dropped at
//! construction: with nonnegative labels they can never be tight, so they
//! can never be matched, and dual feasibility `y_l + y_r ≥ w` holds on
//! them vacuously.

use crate::weight::OracleWeight;

/// A bipartite maximum-weight-matching instance in CSR form.
///
/// Each stored edge carries an opaque `tag` (defaulting to its position in
/// the input slice) that survives into
/// [`DualSolution::pairs`](crate::solver::DualSolution) — the graph
/// adapter uses it to map matched pairs back to real graph edge indices.
///
/// # Example
///
/// ```
/// use wmatch_oracle::BipartiteInstance;
///
/// let inst: BipartiteInstance<i128> =
///     BipartiteInstance::new(2, 2, &[(0, 0, 4), (0, 1, 7), (1, 1, 5)]);
/// assert_eq!((inst.left_count(), inst.right_count()), (2, 2));
/// assert_eq!(inst.edge_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct BipartiteInstance<W> {
    nl: usize,
    nr: usize,
    // left-major CSR: positions adj_off[l]..adj_off[l+1] are l's edges
    pub(crate) adj_off: Vec<u32>,
    pub(crate) adj_right: Vec<u32>,
    pub(crate) adj_w: Vec<W>,
    pub(crate) adj_tag: Vec<u32>,
    // right-major CSR (no tags: only the repair pass walks it)
    pub(crate) radj_off: Vec<u32>,
    pub(crate) radj_left: Vec<u32>,
    pub(crate) radj_w: Vec<W>,
}

impl<W: OracleWeight> BipartiteInstance<W> {
    /// Builds an instance from `(left, right, weight)` triples; edge tags
    /// are the positions in `edges`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn new(nl: usize, nr: usize, edges: &[(u32, u32, W)]) -> Self {
        Self::with_tags(
            nl,
            nr,
            edges
                .iter()
                .enumerate()
                .map(|(i, &(l, r, w))| (l, r, w, i as u32)),
        )
    }

    /// Builds an instance from `(left, right, weight, tag)` quadruples.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or there are ≥ `u32::MAX`
    /// kept edges.
    pub fn with_tags(
        nl: usize,
        nr: usize,
        edges: impl Iterator<Item = (u32, u32, W, u32)>,
    ) -> Self {
        let mut kept: Vec<(u32, u32, W, u32)> = Vec::new();
        for (l, r, w, tag) in edges {
            assert!(
                (l as usize) < nl,
                "left endpoint {l} out of range (nl={nl})"
            );
            assert!(
                (r as usize) < nr,
                "right endpoint {r} out of range (nr={nr})"
            );
            if W::ZERO < w {
                kept.push((l, r, w, tag));
            }
        }
        let m = kept.len();
        assert!(m < u32::MAX as usize, "instance too large");

        // counting sort by left (stable: input order preserved per left)
        let mut adj_off = vec![0u32; nl + 1];
        for &(l, _, _, _) in &kept {
            adj_off[l as usize + 1] += 1;
        }
        for i in 0..nl {
            adj_off[i + 1] += adj_off[i];
        }
        let mut cursor = adj_off.clone();
        let mut adj_right = vec![0u32; m];
        let mut adj_w = vec![W::ZERO; m];
        let mut adj_tag = vec![0u32; m];
        for &(l, r, w, tag) in &kept {
            let c = &mut cursor[l as usize];
            adj_right[*c as usize] = r;
            adj_w[*c as usize] = w;
            adj_tag[*c as usize] = tag;
            *c += 1;
        }

        // counting sort by right
        let mut radj_off = vec![0u32; nr + 1];
        for &(_, r, _, _) in &kept {
            radj_off[r as usize + 1] += 1;
        }
        for i in 0..nr {
            radj_off[i + 1] += radj_off[i];
        }
        let mut rcursor = radj_off.clone();
        let mut radj_left = vec![0u32; m];
        let mut radj_w = vec![W::ZERO; m];
        for &(l, r, w, _) in &kept {
            let c = &mut rcursor[r as usize];
            radj_left[*c as usize] = l;
            radj_w[*c as usize] = w;
            *c += 1;
        }

        BipartiteInstance {
            nl,
            nr,
            adj_off,
            adj_right,
            adj_w,
            adj_tag,
            radj_off,
            radj_left,
            radj_w,
        }
    }

    /// Number of left vertices.
    #[inline]
    pub fn left_count(&self) -> usize {
        self.nl
    }

    /// Number of right vertices.
    #[inline]
    pub fn right_count(&self) -> usize {
        self.nr
    }

    /// Number of stored (positive-weight) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adj_right.len()
    }

    /// The adjacency positions of left vertex `l`.
    #[inline]
    pub(crate) fn adj(&self, l: u32) -> std::ops::Range<usize> {
        self.adj_off[l as usize] as usize..self.adj_off[l as usize + 1] as usize
    }

    /// The right-major adjacency positions of right vertex `r`.
    #[inline]
    pub(crate) fn radj(&self, r: u32) -> std::ops::Range<usize> {
        self.radj_off[r as usize] as usize..self.radj_off[r as usize + 1] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_views_agree() {
        let inst: BipartiteInstance<i128> =
            BipartiteInstance::new(3, 2, &[(0, 1, 4), (2, 0, 7), (0, 0, 5), (1, 1, 0)]);
        // the zero-weight edge is dropped
        assert_eq!(inst.edge_count(), 3);
        let l0: Vec<_> = inst
            .adj(0)
            .map(|p| (inst.adj_right[p], inst.adj_w[p]))
            .collect();
        assert_eq!(l0, vec![(1, 4), (0, 5)]);
        let r1: Vec<_> = inst
            .radj(1)
            .map(|p| (inst.radj_left[p], inst.radj_w[p]))
            .collect();
        assert_eq!(r1, vec![(0, 4)]);
        // tags are input positions
        let tags: Vec<_> = inst.adj(2).map(|p| inst.adj_tag[p]).collect();
        assert_eq!(tags, vec![1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_endpoint() {
        let _ = BipartiteInstance::<i128>::new(1, 1, &[(0, 3, 1)]);
    }
}
