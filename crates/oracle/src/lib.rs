//! Scalable exact certification: a warm-startable slack-array Hungarian
//! oracle with dual-feasibility certificates.
//!
//! The repo's signature claim is *oracle-certified quality*: every
//! approximation floor (Fact 1.3's `1 − 1/ℓ`, the dynamic engine's ½) is
//! checked against an exact optimum. The blossom and dense-Hungarian
//! oracles in `wmatch-graph::exact` are O(V³)-ish and cap certifiable
//! sizes at toys; this crate closes the gap for bipartite instances with
//! three pieces:
//!
//! 1. [`SlackOracle`] — the LEKM slack-array Hungarian for unbalanced /
//!    incomplete bipartite maximum-weight matching (arXiv 2502.20889):
//!    flat `left_labels` / `right_labels` / `slacks` / `right_parents`
//!    arrays, one label-driven BFS per free left vertex, O(1)-reset epoch
//!    scratch reused from [`wmatch_graph::scratch`], generic over integer
//!    and float weights, and warm-startable from a previous matching
//!    ([`WarmStart::Hint`]) or a full previous dual solution
//!    ([`WarmStart::Duals`]).
//! 2. [`certify_max_cardinality`] — Gabow's weighted-matching approach to
//!    maximum *cardinality* matching (arXiv 1703.03998): MCM is solved as
//!    unit-weight MWM through the same core, and the integral duals that
//!    fall out are a König vertex cover certifying optimality.
//! 3. [`IncrementalCertifier`] — rides a dynamic update stream and
//!    re-certifies checkpoints warm from the previous optimum's duals
//!    instead of from scratch.
//!
//! Every solve ends in an in-code complementary-slackness check: the
//! matched weight must equal the dual objective `Σ labels` (see
//! [`verify`]), so the oracle can never silently over-certify — a wrong
//! answer panics rather than producing a bogus certificate.
//!
//! # Certificate semantics
//!
//! A [`DualSolution`] carries labels `y` with, for every stored edge
//! `(l, r, w)`, feasibility `y_l + y_r ≥ w`, tightness
//! `y_l + y_r = w` on matched edges, and `y_v = 0` on unmatched vertices.
//! By LP weak duality any matching `M'` satisfies
//! `w(M') ≤ Σ_{(l,r)∈M'} (y_l + y_r) ≤ Σ y`, and complementary slackness
//! gives `w(M) = Σ y` for the returned `M` — so `M` is optimal and
//! `Σ y` *is* the optimum. The check is O(E) and independent of the
//! solver's internal state.
//!
//! # Example
//!
//! ```
//! use wmatch_graph::Graph;
//! use wmatch_oracle::certify_max_weight;
//!
//! let mut g = Graph::new(4);
//! g.add_edge(0, 2, 5);
//! g.add_edge(0, 3, 9);
//! g.add_edge(1, 3, 8);
//! let side = vec![false, false, true, true];
//! let cert = certify_max_weight(&g, &side).unwrap();
//! assert_eq!(cert.optimum, 13); // 0–2 (5) + 1–3 (8)
//! assert_eq!(cert.matching.weight(), 13);
//! cert.verify(&g, &side).unwrap();
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod certify;
pub mod error;
pub mod gabow;
pub mod incremental;
pub mod instance;
pub mod solver;
pub mod weight;

pub use certify::{certify_max_weight, Certified, WeightOracle};
pub use error::OracleError;
pub use gabow::{certify_max_cardinality, CardinalityCertified};
pub use incremental::{CertifierStats, IncrementalCertifier};
pub use instance::BipartiteInstance;
pub use solver::{verify, DualSolution, SlackOracle, SolveStats, WarmStart};
pub use weight::OracleWeight;
