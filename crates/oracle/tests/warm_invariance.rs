//! The warm-start invariance suite: along any churn stream, the
//! warm-started optimum must be bit-equal in value to a cold solve of the
//! same prefix — on insert-heavy, delete-heavy and parallel-edge streams
//! alike — and every certificate must pass the independent check.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmatch_graph::exact::max_weight_matching_brute_force;
use wmatch_graph::Graph;
use wmatch_oracle::{certify_max_weight, IncrementalCertifier};

/// One churn operation over a fixed bipartite vertex set.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert {
        l: u32,
        r: u32,
        w: u64,
    },
    /// Delete the `k`-th live edge (mod the live count), if any.
    Delete {
        k: usize,
    },
}

/// Replays `ops` over an `nl + nr` bipartite vertex set, certifying every
/// prefix both warm (incrementally) and cold, and cross-checking tiny
/// prefixes against brute force.
fn check_stream(nl: usize, nr: usize, ops: &[Op]) {
    let n = nl + nr;
    let side: Vec<bool> = (0..n).map(|v| v >= nl).collect();
    let mut live: Vec<(u32, u32, u64)> = Vec::new();
    let mut cert = IncrementalCertifier::new(side.clone());

    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert { l, r, w } => live.push((l % nl as u32, nl as u32 + r % nr as u32, w)),
            Op::Delete { k } => {
                if !live.is_empty() {
                    let k = k % live.len();
                    live.swap_remove(k);
                }
            }
        }
        let mut g = Graph::new(n);
        for &(u, v, w) in &live {
            g.add_edge(u, v, w);
        }
        let warm = cert.certify(&g).expect("bipartite by construction").clone();
        warm.verify(&g, &side).expect("warm certificate verifies");
        let cold = certify_max_weight(&g, &side).expect("cold certify");
        assert_eq!(
            warm.optimum, cold.optimum,
            "step {step}: warm optimum diverged from cold"
        );
        assert_eq!(warm.matching.weight(), warm.optimum);
        if n <= 10 && g.edge_count() <= 12 {
            let brute = max_weight_matching_brute_force(&g);
            assert_eq!(warm.optimum, brute.weight(), "step {step}: brute disagrees");
        }
    }
}

#[test]
fn delete_heavy_stream_stays_invariant() {
    let mut rng = StdRng::seed_from_u64(0x64656c65); // b"dele"
    let mut ops = Vec::new();
    for i in 0..120 {
        // two deletes for every insert once warmed up
        if i % 3 == 0 || i < 20 {
            ops.push(Op::Insert {
                l: rng.gen_range(0..8),
                r: rng.gen_range(0..7),
                w: rng.gen_range(1..=40),
            });
        } else {
            ops.push(Op::Delete {
                k: rng.gen_range(0..1000),
            });
        }
    }
    check_stream(8, 7, &ops);
}

#[test]
fn parallel_edge_stream_stays_invariant() {
    // hammer the same few endpoint pairs with differing weights, then
    // delete copies — the oracle must track the best surviving copy
    let mut rng = StdRng::seed_from_u64(0x70617261); // b"para"
    let mut ops = Vec::new();
    for i in 0..90 {
        if i % 4 != 3 {
            ops.push(Op::Insert {
                l: rng.gen_range(0..2),
                r: rng.gen_range(0..2),
                w: rng.gen_range(1..=30),
            });
        } else {
            ops.push(Op::Delete {
                k: rng.gen_range(0..1000),
            });
        }
    }
    check_stream(2, 2, &ops);
}

#[test]
fn weight_class_boundary_oscillation() {
    // repeated re-insertions oscillating across a geometric weight
    // boundary (the adversarial pattern of the dynamic suites)
    let mut ops = Vec::new();
    for round in 0..40u64 {
        let w = if round % 2 == 0 { 64 } else { 65 };
        ops.push(Op::Insert { l: 0, r: 0, w });
        ops.push(Op::Insert { l: 1, r: 1, w: 64 });
        ops.push(Op::Delete { k: 0 });
    }
    check_stream(3, 3, &ops);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32).with_seed(0x6f72636c))] // b"orcl"
    #[test]
    fn random_churn_prefixes_are_invariant(
        nl in 1usize..6,
        nr in 1usize..6,
        raw in proptest::collection::vec((0u32..6, 0u32..6, 0u64..=25, any::<bool>()), 1..60),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(l, r, w, ins)| {
                if ins || w == 0 {
                    Op::Insert { l, r, w: w + 1 }
                } else {
                    Op::Delete { k: (l * 7 + r) as usize }
                }
            })
            .collect();
        check_stream(nl, nr, &ops);
    }
}
