//! The sharded production-scale dynamic engine.
//!
//! [`ShardedMatcher`] scales the update-stream engine to millions of
//! vertices by ingesting updates in batches through the speculate-then-
//! commit machinery of the private `spec` module: a batch's ops are routed to `k`
//! contiguous vertex shards, grouped by **ball overlap** (union-find on
//! touched endpoints within each shard), and disjoint groups *speculate*
//! their repairs concurrently on the engine's worker pool against the
//! frozen pre-batch state. A sequential commit pass then replays the
//! speculated plans in the original update order — falling back to an
//! on-the-spot sequential repair for any plan whose reads were
//! invalidated by an earlier-committing update. While one batch
//! speculates, the routing/grouping of the *next* batch is computed on
//! the pool as well (pipelined ingest).
//!
//! With a single pool worker the whole apparatus is bypassed: updates
//! commit straight through the sequential engine's code path, so the
//! parallel structure costs ~nothing at `threads = 1`.
//!
//! # Ownership and routing
//!
//! Vertex `v` belongs to shard `v·k/n` (contiguous ranges); the edge
//! `{u, v}` — and therefore every insert or delete of that pair — is
//! owned by the shard of `min(u, v)`. Both endpoints of a pair always
//! route to the same shard, and ops sharing an endpoint within a shard
//! share a group, so a group's speculation sees *every* op affecting the
//! pairs it owns and its structural verdicts (which copy a delete
//! removes, whether a delete finds a live copy) are exact, not
//! speculative.
//!
//! # The determinism contract
//!
//! The committed state after a batch is **bit-identical to feeding the
//! same ops one-by-one into a single [`DynamicMatcher`]** — for any
//! shard count, any worker-thread count, and any batch size. The
//! speculation is pure (frozen inputs, per-group sequential), the commit
//! order is the update order, and a plan is replayed only when a
//! read-set check proves replaying it is indistinguishable from running
//! the repair sequentially at commit time. Everything else falls back to
//! the sequential path, which *is* the [`DynamicMatcher`] code — both
//! run the same `RepairKit` kernel on the same (crate-private)
//! `EngineCore`.
//!
//! [`DynamicMatcher`]: crate::DynamicMatcher

use wmatch_graph::pool::resolve_threads;
use wmatch_graph::{Edge, Graph, Matching, Vertex};

use crate::chaos::{ChaosConfig, ChaosCounters, ChaosInjector};
use crate::dyngraph::DynGraph;
use crate::engine::{
    run_rebuild_epoch, static_bounded_matching, BatchError, BatchStats, DynamicConfig,
    DynamicCounters, EngineCore, UpdateEngine, UpdateStats,
};
use crate::error::DynamicError;
use crate::spec::{shard_of, BatchSpec};
use crate::update::UpdateOp;
use crate::wal::{RecoveryReport, Wal, WalConfig, WalStats};

/// A `k`-shard batched dynamic matching engine, bit-identical to the
/// sequential [`DynamicMatcher`](crate::DynamicMatcher) for any shard
/// count, thread count, and batch size — see the [module docs](self).
///
/// # Example
///
/// ```
/// use wmatch_dynamic::{DynamicConfig, ShardedMatcher, UpdateOp};
///
/// let mut eng = ShardedMatcher::new(6, DynamicConfig::default(), 2);
/// let stats = eng
///     .apply_all(&[
///         UpdateOp::insert(0, 1, 4),
///         UpdateOp::insert(4, 5, 7),
///         UpdateOp::insert(1, 2, 6),
///     ])
///     .unwrap();
/// assert_eq!(stats.applied, 3);
/// assert_eq!(eng.matching().weight(), 13); // {4,5}@7 and the heavier {1,2}@6
/// ```
#[derive(Debug)]
pub struct ShardedMatcher {
    core: EngineCore,
    spec: BatchSpec,
    batch: usize,
    /// Crash-recovery journal + snapshots (None until
    /// [`ShardedMatcher::enable_wal`]).
    wal: Option<Box<Wal>>,
}

impl ShardedMatcher {
    /// Default ops per ingest batch (tunable via
    /// [`ShardedMatcher::with_batch_size`]).
    pub const DEFAULT_BATCH: usize = 256;

    /// An engine over an initially edgeless graph on `n` vertices with
    /// `shards` vertex shards (0 = one per available core, like the
    /// `threads` knob).
    pub fn new(n: usize, cfg: DynamicConfig, shards: usize) -> Self {
        let k = resolve_threads(shards);
        let core = EngineCore::new(n, cfg);
        let workers = core.pool.workers();
        ShardedMatcher {
            core,
            spec: BatchSpec::new(k, workers),
            batch: Self::DEFAULT_BATCH,
            wal: None,
        }
    }

    /// An engine seeded with an initial graph, bootstrapped exactly like
    /// [`DynamicMatcher::from_graph`](crate::DynamicMatcher::from_graph)
    /// (not counted as updates or recourse).
    ///
    /// # Errors
    ///
    /// [`DynamicError::ZeroWeight`] if the initial graph carries a
    /// zero-weight edge.
    pub fn from_graph(
        initial: &Graph,
        cfg: DynamicConfig,
        shards: usize,
    ) -> Result<Self, DynamicError> {
        let mut eng = ShardedMatcher::new(initial.vertex_count(), cfg, shards);
        eng.core.g = DynGraph::from_graph(initial)?;
        eng.core.m = static_bounded_matching(initial, cfg.max_len, &mut eng.core.kit.searcher);
        Ok(eng)
    }

    /// Sets the ingest batch size (clamped to ≥ 1). Batch size affects
    /// throughput only — the committed state is identical for any value.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.core.cfg
    }

    /// The number of vertex shards (the routing granularity of ball
    /// grouping; semantics-free).
    pub fn shard_count(&self) -> usize {
        self.spec.k
    }

    /// The maintained matching.
    pub fn matching(&self) -> &Matching {
        &self.core.m
    }

    /// The live graph.
    pub fn graph(&self) -> &DynGraph {
        &self.core.g
    }

    /// Lifetime counters (identical to the sequential engine's on the
    /// same update stream).
    pub fn counters(&self) -> DynamicCounters {
        self.core.counters
    }

    /// Updates committed by replaying their speculated plan.
    pub fn replayed(&self) -> u64 {
        self.spec.replayed
    }

    /// Updates that fell back to the sequential repair at commit time.
    pub fn fallbacks(&self) -> u64 {
        self.spec.fallbacks
    }

    /// Updates committed through the one-worker inline path (no grouping
    /// or speculation ran at all).
    pub fn inline_commits(&self) -> u64 {
        self.spec.inline_commits
    }

    /// Ball-overlap groups formed across all speculative batches.
    pub fn overlap_groups(&self) -> u64 {
        self.spec.overlap_groups
    }

    /// Ops whose repair was speculated in the parallel ball phase.
    pub fn balls_parallel(&self) -> u64 {
        self.spec.balls_parallel
    }

    /// Chunks stolen across all pool jobs so far (always 0 at
    /// `threads = 1`) — scheduler telemetry, never semantics.
    pub fn steals(&self) -> u64 {
        self.core.pool.steals()
    }

    /// The largest dense scratch footprint any repair path has used.
    pub fn scratch_high_water(&self) -> usize {
        self.core
            .scratch_high_water()
            .max(self.spec.scratch_high_water())
    }

    /// Applies one batch: ball-overlap grouping, parallel speculation,
    /// then an in-order commit (inline at one worker). When a WAL is
    /// enabled the batch is journaled first; when a chaos injector is
    /// installed the sentinel gate, op poisoning, and post-commit
    /// corruption hooks run around it.
    ///
    /// # Errors
    ///
    /// A [`BatchError`] at the first malformed op; `applied` counts the
    /// committed updates (which remain applied). A transient
    /// [`DynamicError::Quarantined`] means the sentinel found (and
    /// already healed) corrupted state *before* applying anything —
    /// retry the batch.
    pub fn apply_batch(&mut self, ops: &[UpdateOp]) -> Result<BatchStats, BatchError> {
        self.apply_chunk(ops, None)
    }

    /// Applies a whole update sequence, chunked into engine-sized
    /// batches; each batch's speculation overlaps the grouping of the
    /// next (pipelined ingest). Stats aggregate over all batches.
    ///
    /// # Errors
    ///
    /// A [`BatchError`] at the first malformed op; `applied` counts the
    /// committed updates across the whole sequence and `stats` carries
    /// the applied prefix's aggregate.
    pub fn apply_all(&mut self, ops: &[UpdateOp]) -> Result<BatchStats, BatchError> {
        let mut out = BatchStats::default();
        let mut offset = 0usize;
        let chunks: Vec<&[UpdateOp]> = ops.chunks(self.batch.max(1)).collect();
        // poisoning rewrites ops, which would always miss the pipelined
        // grouping's verbatim-ops check — skip the pipeline under chaos
        let pipelined = self.core.chaos.is_none();
        for (ci, chunk) in chunks.iter().enumerate() {
            let next = if pipelined {
                chunks.get(ci + 1).copied()
            } else {
                None
            };
            match self.apply_chunk(chunk, next) {
                Ok(s) => out.merge(&s),
                Err(e) => {
                    out.merge(&e.stats);
                    return Err(BatchError {
                        applied: offset + e.applied,
                        stats: out,
                        source: e.source,
                    });
                }
            }
            offset += chunk.len();
        }
        Ok(out)
    }

    /// One batch through the full serve path: sentinel gate → poison
    /// hook → WAL journal → speculate/commit → snapshot → corruption
    /// hook. The hooks are all no-ops without a chaos injector / WAL.
    fn apply_chunk(
        &mut self,
        ops: &[UpdateOp],
        next: Option<&[UpdateOp]>,
    ) -> Result<BatchStats, BatchError> {
        // sentinel gate: refuse to build on corrupted state — heal it
        // and report a transient, retryable rejection
        if self.core.chaos.as_ref().is_some_and(|c| c.sentinel_due()) {
            if let Some(shard) = self.sentinel_violation() {
                self.quarantine_heal(shard);
                return Err(BatchError {
                    applied: 0,
                    stats: BatchStats::default(),
                    source: DynamicError::Quarantined { shard },
                });
            }
        }
        // poison hook: the injector may replace ops by malformed ones
        let poisoned: Option<Vec<UpdateOp>> = {
            let EngineCore { g, chaos, .. } = &mut self.core;
            chaos
                .as_mut()
                .filter(|c| c.config().poison_every > 0)
                .map(|c| {
                    let mut buf = ops.to_vec();
                    for op in buf.iter_mut() {
                        if let Some(bad) = c.poison_op(g, *op) {
                            *op = bad;
                        }
                    }
                    buf
                })
        };
        let ops_run: &[UpdateOp] = poisoned.as_deref().unwrap_or(ops);
        // log-before-apply: durable state is snapshot + tail
        if let Some(w) = self.wal.as_mut() {
            w.log(ops_run);
        }
        match self.spec.apply_batch(&mut self.core, ops_run, next) {
            Ok(stats) => {
                // snapshot first so snapshots always capture clean,
                // committed state — never the injected corruption below
                if let Some(w) = self.wal.as_mut() {
                    w.maybe_snapshot(&self.core);
                }
                self.inject_bitflip();
                Ok(stats)
            }
            Err(e) => {
                // the rejected op and the never-run suffix must not be
                // replayed by recovery
                if let Some(w) = self.wal.as_mut() {
                    w.truncate_unapplied(ops_run.len() - e.applied);
                }
                Err(e)
            }
        }
    }

    /// Applies updates in **deferred mode**: structural changes and
    /// dead-match cleanup only, no repairs — the degraded serve path's
    /// tolerate-ε-staleness ingest. The matching stays *valid* but its
    /// Fact 1.3 certificate is suspended until
    /// [`ShardedMatcher::flush_repairs`] runs. Deferred ops are
    /// journaled like any other; crash recovery replays them eagerly.
    ///
    /// # Errors
    ///
    /// A [`BatchError`] at the first malformed op, exactly as
    /// [`ShardedMatcher::apply_all`].
    pub fn apply_deferred(&mut self, ops: &[UpdateOp]) -> Result<BatchStats, BatchError> {
        if let Some(w) = self.wal.as_mut() {
            w.log(ops);
        }
        let mut out = BatchStats::default();
        for (i, &op) in ops.iter().enumerate() {
            match self.core.apply_lazy_one(op) {
                Ok(s) => out.absorb(s),
                Err(source) => {
                    if let Some(w) = self.wal.as_mut() {
                        w.truncate_unapplied(ops.len() - i);
                    }
                    return Err(BatchError {
                        applied: i,
                        stats: out,
                        source,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Repairs everything deferred by [`ShardedMatcher::apply_deferred`]
    /// in one batched sweep (plus a rebuild epoch if one came due while
    /// deferring), restoring the Fact 1.3 certificate. Returns the
    /// flush's aggregate churn; `applied` stays 0 — the deferred ops
    /// were already counted when ingested.
    pub fn flush_repairs(&mut self) -> BatchStats {
        let s = self.core.flush_repairs();
        if let Some(w) = self.wal.as_mut() {
            w.maybe_snapshot(&self.core);
        }
        BatchStats {
            gain: s.gain,
            recourse: s.recourse,
            augmentations: s.augmentations,
            rebuilds: u64::from(s.rebuilt),
            ..Default::default()
        }
    }

    /// Deferred updates whose repairs are still pending (0 outside
    /// degraded mode).
    pub fn deferred_repairs(&self) -> usize {
        self.core.stale_ops
    }

    /// Enables the write-ahead log, snapshotting the current state
    /// immediately. Every subsequent batch is journaled before it is
    /// applied, so [`ShardedMatcher::recover`] can always rebuild the
    /// committed state.
    pub fn enable_wal(&mut self, cfg: WalConfig) {
        self.wal = Some(Box::new(Wal::new(cfg, &self.core)));
    }

    /// The WAL's observable state, or `None` if no WAL is enabled.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(|w| w.stats())
    }

    /// Rebuilds the engine's semantic state from the WAL: restores the
    /// latest snapshot and replays the journal tail through the ordinary
    /// batch path. By the engine's determinism contract the result is
    /// **bit-identical to the uninterrupted run** (matching, recourse,
    /// counters) — for any snapshot cadence, crash point, shard count,
    /// and thread count. Returns `None` if no WAL is enabled.
    ///
    /// Scheduler telemetry ([`ShardedMatcher::replayed`],
    /// [`ShardedMatcher::fallbacks`], …) is *not* part of the recovery
    /// contract: it describes how work was scheduled, not what state was
    /// committed.
    pub fn recover(&mut self) -> Option<RecoveryReport> {
        let mut wal = self.wal.take()?;
        wal.restore(&mut self.core);
        self.spec.reset_pipeline();
        let tail = wal.take_tail();
        for chunk in tail.chunks(self.batch.max(1)) {
            self.spec
                .apply_batch(&mut self.core, chunk, None)
                .expect("journaled ops committed before the crash");
        }
        let report = RecoveryReport {
            snapshot_updates: wal.snapshot_updates(),
            replayed_ops: tail.len(),
        };
        wal.put_tail(tail);
        self.wal = Some(wal);
        Some(report)
    }

    /// Wipes the engine's live state (graph, matching, counters) as a
    /// crash would — the WAL, being the durable half, survives. Chaos
    /// and recovery tests pair this with [`ShardedMatcher::recover`].
    pub fn simulate_crash(&mut self) {
        let n = self.core.g.vertex_count();
        self.core.g = DynGraph::new(n);
        self.core.m.reset(n);
        self.core.counters = DynamicCounters::default();
        self.core.updates_since_rebuild = 0;
        self.core.write_buf.clear();
        self.core.stale_dirty.clear();
        self.core.stale_ops = 0;
        self.spec.reset_pipeline();
    }

    /// Installs a deterministic fault injector (test and chaos-bench
    /// builds only): op poisoning, speculation-worker panics, matching
    /// corruption, and the sentinel gate cadence are all driven by it.
    pub fn install_chaos(&mut self, cfg: ChaosConfig) {
        self.core.chaos = Some(Box::new(ChaosInjector::new(cfg)));
    }

    /// The installed injector's fault/recovery telemetry, or `None`.
    pub fn chaos_counters(&self) -> Option<ChaosCounters> {
        self.core.chaos.as_ref().map(|c| c.counters)
    }

    /// The invariant sentinel: spot-checks matching consistency (mate
    /// symmetry and every matched entry backed by a live edge of the
    /// same weight) and the bounded-augmentation floor's edge-dominance
    /// consequence (no live edge outweighs the matched weight it
    /// conflicts with — a violation is a positive 1-edge augmentation,
    /// which Fact 1.3 forbids at any `max_len ≥ 1`). Returns the vertex
    /// shard of the first violation. The dominance check is skipped
    /// while deferred repairs are pending — staleness is deliberate
    /// there, not corruption.
    pub fn sentinel_violation(&self) -> Option<usize> {
        let g = &self.core.g;
        let m = &self.core.m;
        let n = g.vertex_count();
        let k = self.spec.k;
        for v in 0..n as Vertex {
            let Some(e) = m.matched_edge(v) else { continue };
            if !e.touches(v) {
                return Some(shard_of(v, k, n));
            }
            let mate = e.other(v);
            let back = m.matched_edge(mate).map(|b| (b.key(), b.weight));
            if back != Some((e.key(), e.weight)) {
                return Some(shard_of(v.min(mate), k, n));
            }
            if e.key().0 == v && !g.has_live_copy(e.u, e.v, e.weight) {
                return Some(shard_of(e.u.min(e.v), k, n));
            }
        }
        if self.core.stale_ops == 0 {
            for e in g.live_iter() {
                let mu = m.matched_edge(e.u);
                let mv = m.matched_edge(e.v);
                let conflict = match (mu, mv) {
                    (Some(a), Some(b)) if a.key() == b.key() => a.weight,
                    _ => mu.map_or(0, |x| x.weight) + mv.map_or(0, |x| x.weight),
                };
                if e.weight > conflict {
                    return Some(shard_of(e.u.min(e.v), k, n));
                }
            }
        }
        None
    }

    /// Quarantines a shard the sentinel flagged and heals the engine:
    /// with a WAL, a full [`ShardedMatcher::recover`] (bit-identical to
    /// the uninterrupted run); without one, dead matched entries are
    /// dropped and a warm restore-only rebuild epoch re-certifies the
    /// Fact 1.3 floor on the surviving state. Public so serve drivers
    /// and watchdogs (e.g. [`ServeDriver`](crate::ServeDriver) after a
    /// deferred-repair flush) can heal a flagged shard on the spot
    /// instead of waiting for the next batch's sentinel gate.
    pub fn quarantine_heal(&mut self, shard: usize) {
        if self.wal.is_some() {
            self.recover();
        } else {
            let EngineCore { g, m, .. } = &mut self.core;
            let n = g.vertex_count();
            for v in 0..n as Vertex {
                if let Some(e) = m.matched_edge(v) {
                    if e.key().0 == v && !g.has_live_copy(e.u, e.v, e.weight) {
                        m.remove_pair(e.u, e.v).expect("edge was matched");
                    }
                }
            }
            // restore-only epoch: rebuild_rounds = 0 skips the class
            // sweep (randomness unused), re-certifying the invariant
            // globally; the epoch counter is not consumed
            let cfg = self.core.cfg.with_rebuild_rounds(0);
            let EngineCore {
                g,
                m,
                pool,
                kit,
                rebuild,
                counters,
                ..
            } = &mut self.core;
            let (recourse, _gain, augs) =
                run_rebuild_epoch(g, m, &cfg, pool, kit, rebuild, counters.rebuilds);
            counters.recourse_total += recourse;
            counters.augmentations_applied += augs;
        }
        if let Some(c) = self.core.chaos.as_mut() {
            c.counters.sentinel_trips += 1;
            c.counters.quarantines += 1;
        }
        let _ = shard;
    }

    /// The post-commit corruption hook: when the injector's bit-flip
    /// cadence fires, one matched entry's stored weight is rewritten to
    /// a value no live copy of the pair carries — exactly the damage the
    /// sentinel's liveness check must catch before the next batch.
    fn inject_bitflip(&mut self) {
        let EngineCore { g, m, chaos, .. } = &mut self.core;
        let Some(c) = chaos.as_mut() else { return };
        if c.config().bitflip_every == 0 {
            return;
        }
        let candidates = m.iter().count();
        let Some(victim) = c.bitflip_victim(candidates) else {
            return;
        };
        let e = m.iter().nth(victim).expect("victim index is in range");
        let live_max = g
            .incident(e.u)
            .filter(|x| x.touches(e.v))
            .map(|x| x.weight)
            .max()
            .unwrap_or(0);
        m.remove_pair(e.u, e.v).expect("edge was matched");
        m.insert(Edge::new(e.u, e.v, live_max + 1))
            .expect("endpoints just freed");
    }

    /// Groups whose speculation worker panicked and were committed
    /// entirely through the sequential fallback (panic-isolation
    /// telemetry; 0 without injected faults).
    pub fn groups_fallback(&self) -> u64 {
        self.spec.groups_fallback
    }
}

impl UpdateEngine for ShardedMatcher {
    /// One-op batch through the batched ingest path (the inline bypass at
    /// a single worker makes this exactly the sequential repair).
    fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        match self.apply_all(&[op]) {
            Ok(s) => Ok(UpdateStats {
                gain: s.gain,
                recourse: s.recourse,
                augmentations: s.augmentations,
                rebuilt: s.rebuilds > 0,
            }),
            Err(e) => Err(e.source),
        }
    }

    fn flush(&mut self) -> UpdateStats {
        let s = ShardedMatcher::flush_repairs(self);
        UpdateStats {
            gain: s.gain,
            recourse: s.recourse,
            augmentations: s.augmentations,
            rebuilt: s.rebuilds > 0,
        }
    }

    fn matching(&self) -> &Matching {
        ShardedMatcher::matching(self)
    }

    fn graph(&self) -> &DynGraph {
        ShardedMatcher::graph(self)
    }

    fn counters(&self) -> DynamicCounters {
        ShardedMatcher::counters(self)
    }

    fn declared_floor(&self) -> f64 {
        self.config().certified_floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DynamicMatcher;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wmatch_graph::Vertex;

    fn churn_ops(n: Vertex, count: usize, seed: u64) -> Vec<UpdateOp> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut live: Vec<(Vertex, Vertex)> = Vec::new();
        let mut ops = Vec::new();
        for _ in 0..count {
            let do_delete = !live.is_empty() && rng.gen_range(0..3) == 0;
            if do_delete {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                ops.push(UpdateOp::delete(u, v));
            } else {
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n);
                if v == u {
                    v = (v + 1) % n;
                }
                ops.push(UpdateOp::insert(u, v, rng.gen_range(1..40u64)));
                live.push((u, v));
            }
        }
        ops
    }

    fn assert_matches_sequential(
        cfg: DynamicConfig,
        ops: &[UpdateOp],
        shards: usize,
        batch: usize,
    ) {
        let mut seq = DynamicMatcher::new(24, cfg);
        let mut sh = ShardedMatcher::new(24, cfg, shards).with_batch_size(batch);
        let seq_stats = seq.apply_all(ops).unwrap();
        let sh_stats = sh.apply_all(ops).unwrap();
        assert_eq!(
            seq.matching().to_edges(),
            sh.matching().to_edges(),
            "shards={shards} batch={batch}"
        );
        assert_eq!(
            seq.counters(),
            sh.counters(),
            "shards={shards} batch={batch}"
        );
        assert_eq!(seq_stats, sh_stats, "shards={shards} batch={batch}");
    }

    #[test]
    fn sharded_is_bit_identical_to_sequential() {
        let ops = churn_ops(24, 300, 0xdead);
        for &shards in &[1usize, 2, 3, 8] {
            for &batch in &[1usize, 7, 64, 1000] {
                assert_matches_sequential(DynamicConfig::default(), &ops, shards, batch);
            }
        }
    }

    #[test]
    fn acceptance_grid_is_bit_identical() {
        // the ISSUE 8 grid: threads × shards × batch, all against the
        // same sequential run (threads > cores exercises stealing and
        // speculation; threads = 0 resolves to the core count)
        let ops = churn_ops(24, 300, 0x6081);
        for &threads in &[1usize, 2, 4, 0] {
            let cfg = DynamicConfig::default().with_threads(threads);
            for &shards in &[1usize, 4, 8] {
                for &batch in &[64usize, 256, 512] {
                    assert_matches_sequential(cfg, &ops, shards, batch);
                }
            }
        }
    }

    #[test]
    fn sharded_matches_sequential_with_rebuild_epochs() {
        let ops = churn_ops(24, 200, 0xbeef);
        for &threads in &[1usize, 2] {
            let cfg = DynamicConfig::default()
                .with_rebuild_threshold(32)
                .with_seed(7)
                .with_threads(threads);
            for &shards in &[2usize, 4] {
                assert_matches_sequential(cfg, &ops, shards, 50);
            }
        }
    }

    #[test]
    fn sharded_matches_sequential_across_threads() {
        let ops = churn_ops(24, 150, 0xfeed);
        for &threads in &[1usize, 2, 4, 0] {
            let cfg = DynamicConfig::default().with_threads(threads);
            assert_matches_sequential(cfg, &ops, 4, 32);
        }
    }

    #[test]
    fn boundary_heavy_churn_stays_identical() {
        // every edge crosses the 2-shard boundary of a 24-vertex range:
        // ownership stays with the low endpoint's shard, and commits on
        // one side keep invalidating the other side's reads
        let mut rng = StdRng::seed_from_u64(0x0b0b);
        let mut ops = Vec::new();
        let mut live = Vec::new();
        for _ in 0..200 {
            if !live.is_empty() && rng.gen_range(0..3) == 0 {
                let i = rng.gen_range(0..live.len());
                let (u, v): (Vertex, Vertex) = live.swap_remove(i);
                ops.push(UpdateOp::delete(u, v));
            } else {
                let u = rng.gen_range(0..12u32);
                let v = rng.gen_range(12..24u32);
                ops.push(UpdateOp::insert(u, v, rng.gen_range(1..30u64)));
                live.push((u, v));
            }
        }
        for &threads in &[1usize, 2] {
            let cfg = DynamicConfig::default().with_threads(threads);
            assert_matches_sequential(cfg, &ops, 2, 40);
            assert_matches_sequential(cfg, &ops, 8, 40);
        }
    }

    #[test]
    fn parallel_edge_churn_stays_identical() {
        // hammer a handful of pairs with parallel copies and interleaved
        // deletes: LIFO copy selection must agree between speculation and
        // sequential replay
        let mut rng = StdRng::seed_from_u64(0x9a9a);
        let pairs = [(0u32, 13u32), (5, 18), (11, 12), (2, 3)];
        let mut ops = Vec::new();
        let mut counts = [0usize; 4];
        for _ in 0..250 {
            let p = rng.gen_range(0..pairs.len());
            let (u, v) = pairs[p];
            if counts[p] > 0 && rng.gen_range(0..2) == 0 {
                ops.push(UpdateOp::delete(u, v));
                counts[p] -= 1;
            } else {
                ops.push(UpdateOp::insert(u, v, rng.gen_range(1..50u64)));
                counts[p] += 1;
            }
        }
        for &threads in &[1usize, 2] {
            let cfg = DynamicConfig::default().with_threads(threads);
            assert_matches_sequential(cfg, &ops, 2, 32);
            assert_matches_sequential(cfg, &ops, 8, 32);
        }
    }

    #[test]
    fn batch_error_reports_applied_count() {
        for &threads in &[1usize, 2] {
            // threads = 1 exercises the inline error path, threads = 2 the
            // speculative one (the bad op's plan carries the error and the
            // fallback surfaces it at commit time)
            let cfg = DynamicConfig::default().with_threads(threads);
            let mut eng = ShardedMatcher::new(8, cfg, 2).with_batch_size(3);
            let ops = [
                UpdateOp::insert(0, 1, 5),
                UpdateOp::insert(2, 3, 4),
                UpdateOp::insert(4, 5, 3),
                UpdateOp::insert(6, 7, 2),
                UpdateOp::delete(0, 7), // never inserted
                UpdateOp::insert(1, 2, 9),
            ];
            let err = eng.apply_all(&ops).unwrap_err();
            assert_eq!(err.applied, 4, "four updates committed before the bad op");
            assert!(matches!(err.source, DynamicError::EdgeNotFound { .. }));
            assert_eq!(eng.counters().updates_applied, 4);
            assert_eq!(eng.matching().weight(), 14);
            let msg = err.to_string();
            assert!(msg.contains("4 updates applied"), "{msg}");
        }
    }

    #[test]
    fn disjoint_shard_traffic_replays() {
        // ops confined to distinct shard-local vertex ranges never
        // conflict: with a parallel pool everything commits by replay,
        // and the overlapping triple within each range forms one group
        let cfg = DynamicConfig::default().with_threads(2);
        let mut eng = ShardedMatcher::new(24, cfg, 4).with_batch_size(64);
        let mut ops = Vec::new();
        for s in 0..4u32 {
            let base = s * 6;
            ops.push(UpdateOp::insert(base, base + 1, 5));
            ops.push(UpdateOp::insert(base + 2, base + 3, 7));
            ops.push(UpdateOp::insert(base + 1, base + 2, 6));
        }
        let stats = eng.apply_all(&ops).unwrap();
        assert_eq!(stats.applied, 12);
        assert_eq!(eng.fallbacks(), 0, "no cross-group conflicts to repair");
        assert_eq!(eng.replayed(), 12);
        assert_eq!(eng.inline_commits(), 0);
        assert_eq!(eng.overlap_groups(), 4, "one overlap group per shard");
        assert_eq!(eng.balls_parallel(), 12);
        let mut seq = DynamicMatcher::new(24, DynamicConfig::default());
        seq.apply_all(&ops).unwrap();
        assert_eq!(seq.matching().to_edges(), eng.matching().to_edges());
    }

    #[test]
    fn one_worker_commits_inline() {
        // the default threads = 1 pool bypasses grouping and speculation
        // entirely: every update is an inline commit
        let mut eng = ShardedMatcher::new(24, DynamicConfig::default(), 4).with_batch_size(64);
        let ops = churn_ops(24, 100, 0x171e);
        eng.apply_all(&ops).unwrap();
        assert_eq!(eng.inline_commits(), 100);
        assert_eq!(eng.replayed(), 0);
        assert_eq!(eng.fallbacks(), 0);
        assert_eq!(eng.overlap_groups(), 0);
        assert_eq!(eng.balls_parallel(), 0);
        assert_eq!(eng.steals(), 0);
    }

    #[test]
    fn hub_batches_collapse_to_one_group_and_match_sequential() {
        // adversarial: every op of a batch touches hub vertex 0, so ball
        // grouping must collapse each batch to a single group (sequential
        // within the group) and still match the sequential engine exactly
        let mut rng = StdRng::seed_from_u64(0x4b0b);
        let mut ops = Vec::new();
        let mut live: Vec<Vertex> = Vec::new();
        for _ in 0..120 {
            if !live.is_empty() && rng.gen_range(0..3) == 0 {
                let i = rng.gen_range(0..live.len());
                let v = live.swap_remove(i);
                ops.push(UpdateOp::delete(0, v));
            } else {
                let v = rng.gen_range(1..24u32);
                ops.push(UpdateOp::insert(0, v, rng.gen_range(1..40u64)));
                live.push(v);
            }
        }
        let cfg = DynamicConfig::default().with_threads(2);
        for &shards in &[1usize, 4] {
            assert_matches_sequential(cfg, &ops, shards, 40);
        }
        // all hub ops route to vertex 0's shard: exactly one group per
        // batch, every op speculated, none inline
        let mut eng = ShardedMatcher::new(24, cfg, 4).with_batch_size(40);
        eng.apply_all(&ops).unwrap();
        assert_eq!(eng.overlap_groups(), 3, "120 ops / 40 per batch = 3 groups");
        assert_eq!(eng.balls_parallel(), 120);
        assert_eq!(eng.replayed() + eng.fallbacks(), 120);
    }

    #[test]
    fn apply_batch_equals_apply_all_chunking() {
        // one explicit batch vs the same ops auto-chunked: identical state
        let ops = churn_ops(24, 90, 0xabcd);
        let cfg = DynamicConfig::default().with_threads(2);
        let mut a = ShardedMatcher::new(24, cfg, 4);
        let mut b = ShardedMatcher::new(24, cfg, 4).with_batch_size(30);
        a.apply_batch(&ops).unwrap();
        b.apply_all(&ops).unwrap();
        assert_eq!(a.matching().to_edges(), b.matching().to_edges());
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn from_graph_bootstraps_like_sequential() {
        let mut g = Graph::new(8);
        g.add_edge(0, 1, 4);
        g.add_edge(1, 2, 6);
        g.add_edge(2, 3, 4);
        g.add_edge(5, 6, 9);
        let sh = ShardedMatcher::from_graph(&g, DynamicConfig::default(), 3).unwrap();
        let seq = DynamicMatcher::from_graph(&g, DynamicConfig::default()).unwrap();
        assert_eq!(sh.matching().to_edges(), seq.matching().to_edges());
        assert_eq!(sh.shard_count(), 3);
    }
}
