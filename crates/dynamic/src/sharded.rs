//! The sharded production-scale dynamic engine.
//!
//! [`ShardedMatcher`] scales the update-stream engine to millions of
//! vertices by partitioning the vertex range into `k` contiguous shards
//! and ingesting updates in batches: every shard *speculates* the repair
//! of its own ops in parallel against the frozen pre-batch state (plus
//! its own pending changes), and a sequential commit pass then replays
//! the speculated plans in the original update order — falling back to
//! an on-the-spot sequential repair for any plan whose reads were
//! invalidated by an earlier-committing update.
//!
//! # Ownership and routing
//!
//! Vertex `v` belongs to shard `v·k/n` (contiguous ranges); the edge
//! `{u, v}` — and therefore every insert or delete of that pair — is
//! owned by the shard of `min(u, v)`. Both endpoints of a pair always
//! route to the same shard, so a shard's speculation sees *every* op
//! affecting the pairs it owns and its structural verdicts (which copy a
//! delete removes, whether a delete finds a live copy) are exact, not
//! speculative.
//!
//! # The determinism contract
//!
//! The committed state after a batch is **bit-identical to feeding the
//! same ops one-by-one into a single [`DynamicMatcher`]** — for any
//! shard count, any worker-thread count, and any batch size. The
//! speculation is pure (frozen inputs, per-shard sequential), the commit
//! order is the update order, and a plan is replayed only when a
//! read-set check proves replaying it is indistinguishable from running
//! the repair sequentially at commit time. Everything else falls back to
//! the sequential path, which *is* the [`DynamicMatcher`] code — both
//! run the same `RepairKit` kernel.
//!
//! [`DynamicMatcher`]: crate::DynamicMatcher

use wmatch_graph::pool::resolve_threads;
use wmatch_graph::scratch::{EpochMap, EpochSet};
use wmatch_graph::{Edge, Graph, Matching, Scratch, Vertex, WorkerPool};

use crate::dyngraph::DynGraph;
use crate::engine::{
    run_rebuild_epoch, static_bounded_matching, BatchError, BatchStats, DynamicConfig,
    DynamicCounters, RebuildKit, UpdateStats,
};
use crate::error::DynamicError;
use crate::repair::{repair_delete, repair_insert, RepairGraph, RepairKit, RepairMatching};
use crate::update::UpdateOp;

/// An edge a shard inserted during the current batch, with a liveness
/// flag so a later same-batch delete can consume it.
#[derive(Debug, Clone, Copy)]
struct SpecEdge {
    u: Vertex,
    v: Vertex,
    weight: u64,
    live: bool,
}

/// A shard's speculative graph view: the frozen pre-batch [`DynGraph`]
/// minus the slab slots this shard virtually deleted, plus the edges it
/// virtually inserted — presented in exactly the adjacency order the
/// real graph will have once the batch commits (batch inserts are newer
/// than every pre-batch edge).
struct SpecGraph<'a> {
    base: &'a DynGraph,
    inserted: &'a [SpecEdge],
    dead: &'a EpochSet,
}

impl RepairGraph for SpecGraph<'_> {
    fn vertex_count(&self) -> usize {
        self.base.vertex_count()
    }

    fn for_each_incident(&self, v: Vertex, f: &mut dyn FnMut(Edge)) {
        for &id in self.base.adj_ids(v) {
            if !self.dead.contains(id) {
                f(self.base.edge_at(id));
            }
        }
        for se in self.inserted {
            if se.live && (se.u == v || se.v == v) {
                f(Edge::new(se.u, se.v, se.weight));
            }
        }
    }

    fn has_live_copy(&self, u: Vertex, v: Vertex, weight: u64) -> bool {
        for &id in self.base.adj_ids(u) {
            if !self.dead.contains(id) {
                let e = self.base.edge_at(id);
                if e.touches(v) && e.weight == weight {
                    return true;
                }
            }
        }
        self.inserted.iter().any(|se| {
            se.live && se.weight == weight && ((se.u == u && se.v == v) || (se.u == v && se.v == u))
        })
    }
}

/// A shard's speculative matching view: the frozen pre-batch [`Matching`]
/// under an epoch-stamped per-vertex overlay (`Some(e)` = matched to `e`,
/// `None` binding = unmatched, no binding = frozen state).
struct SpecMatching<'a> {
    base: &'a Matching,
    overlay: &'a mut EpochMap<Option<Edge>>,
}

impl RepairMatching for SpecMatching<'_> {
    fn matched_edge(&self, v: Vertex) -> Option<Edge> {
        match self.overlay.get(v) {
            Some(o) => o,
            None => self.base.matched_edge(v),
        }
    }

    fn do_insert(&mut self, e: Edge) {
        debug_assert!(self.matched_edge(e.u).is_none());
        debug_assert!(self.matched_edge(e.v).is_none());
        self.overlay.insert(e.u, Some(e));
        self.overlay.insert(e.v, Some(e));
    }

    fn do_remove(&mut self, u: Vertex, v: Vertex) -> Edge {
        let e = self.matched_edge(u).expect("repair removes matched edges");
        debug_assert_eq!(e.other(u), v);
        self.overlay.insert(u, None);
        self.overlay.insert(v, None);
        e
    }
}

/// One speculated op: either a typed rejection or the full repair
/// outcome, with ranges into the shard's pooled journal/write arenas.
#[derive(Debug, Clone)]
struct Plan {
    err: Option<DynamicError>,
    gain: i128,
    recourse: u64,
    augmentations: u64,
    /// `journal_arena` range: the matching mutations, in order.
    journal: (u32, u32),
    /// `writes_arena` range: vertices this op writes (op endpoints plus
    /// every journal-edge endpoint).
    writes: (u32, u32),
}

/// One vertex shard: a read-tracking repair kit plus the speculative
/// overlays and pooled plan storage of the current batch.
#[derive(Debug)]
struct Shard {
    kit: RepairKit,
    overlay: EpochMap<Option<Edge>>,
    /// Pre-batch slab ids this shard virtually deleted.
    dead: EpochSet,
    inserted: Vec<SpecEdge>,
    /// (batch index, op) of every op routed here, in batch order.
    ops: Vec<(usize, UpdateOp)>,
    plans: Vec<Plan>,
    journal_arena: Vec<(Edge, bool)>,
    writes_arena: Vec<Vertex>,
    /// False once a committed update invalidated this shard's
    /// speculation for the rest of the batch.
    clean: bool,
}

impl Shard {
    fn new() -> Self {
        Shard {
            kit: RepairKit::new(true),
            overlay: EpochMap::new(),
            dead: EpochSet::new(),
            inserted: Vec::new(),
            ops: Vec::new(),
            plans: Vec::new(),
            journal_arena: Vec::new(),
            writes_arena: Vec::new(),
            clean: true,
        }
    }

    fn begin_batch(&mut self, n: usize, slab_slots: usize) {
        self.overlay.ensure(n);
        self.overlay.clear();
        self.dead.ensure(slab_slots);
        self.dead.clear();
        self.inserted.clear();
        self.ops.clear();
        self.plans.clear();
        self.journal_arena.clear();
        self.writes_arena.clear();
        self.clean = true;
        self.kit.begin_read_window(n);
    }

    /// The structural half of a speculative insert/delete, mirroring
    /// [`DynGraph::insert`]/[`DynGraph::delete`] exactly (same validation,
    /// same LIFO copy choice) against the shard's virtual state.
    fn spec_structural(&mut self, g: &DynGraph, op: UpdateOp) -> Result<(), DynamicError> {
        match op {
            UpdateOp::Insert { u, v, weight } => {
                g.check_insert(u, v, weight)?;
                self.inserted.push(SpecEdge {
                    u,
                    v,
                    weight,
                    live: true,
                });
                Ok(())
            }
            UpdateOp::Delete { u, v } => {
                // LIFO: the shard's own batch inserts are newer than
                // every pre-batch edge
                if (u as usize) < g.vertex_count() && (v as usize) < g.vertex_count() {
                    if let Some(pos) = self.inserted.iter().rposition(|se| {
                        se.live && ((se.u == u && se.v == v) || (se.u == v && se.v == u))
                    }) {
                        self.inserted[pos].live = false;
                        return Ok(());
                    }
                }
                match g.peek_delete(u, v) {
                    Ok((first_id, _)) => {
                        // the newest *non-dead* pre-batch copy: walk the
                        // adjacency backwards past virtually deleted ids
                        let id = self
                            .base_lifo_copy(g, u, v)
                            .ok_or(DynamicError::EdgeNotFound { u, v })?;
                        let _ = first_id;
                        self.dead.insert(id);
                        Ok(())
                    }
                    Err(e) => {
                        // range errors propagate; EdgeNotFound must still
                        // consider dead-skipping (peek found a copy we
                        // virtually deleted → truly not found now)
                        match e {
                            DynamicError::EdgeNotFound { .. } => {
                                Err(DynamicError::EdgeNotFound { u, v })
                            }
                            other => Err(other),
                        }
                    }
                }
            }
        }
    }

    /// The newest pre-batch live copy of `{u, v}` not yet virtually
    /// deleted, as a slab id.
    fn base_lifo_copy(&self, g: &DynGraph, u: Vertex, v: Vertex) -> Option<u32> {
        g.adj_ids(u)
            .iter()
            .rev()
            .copied()
            .find(|&id| !self.dead.contains(id) && g.edge_at(id).touches(v))
    }

    /// Speculates every op routed to this shard, in batch order, pushing
    /// one [`Plan`] per op. Pure with respect to the frozen `(g, m)` —
    /// this is the parallel phase.
    fn speculate(&mut self, g: &DynGraph, m: &Matching, cfg: &DynamicConfig) {
        for k in 0..self.ops.len() {
            let (_, op) = self.ops[k];
            self.kit.begin_update();
            let structural = self.spec_structural(g, op);
            let plan = match structural {
                Err(e) => Plan {
                    err: Some(e),
                    gain: 0,
                    recourse: 0,
                    augmentations: 0,
                    journal: (0, 0),
                    writes: (0, 0),
                },
                Ok(()) => {
                    let Shard {
                        kit,
                        overlay,
                        dead,
                        inserted,
                        ..
                    } = self;
                    let view = SpecGraph {
                        base: g,
                        inserted,
                        dead,
                    };
                    let mut sm = SpecMatching { base: m, overlay };
                    let fix = match op {
                        UpdateOp::Insert { u, v, weight } => {
                            repair_insert(kit, &view, &mut sm, u, v, weight, cfg.max_len)
                        }
                        UpdateOp::Delete { u, v } => {
                            repair_delete(kit, &view, &mut sm, u, v, cfg.max_len)
                        }
                    };
                    let j0 = self.journal_arena.len() as u32;
                    let w0 = self.writes_arena.len() as u32;
                    let (u, v) = op.endpoints();
                    self.writes_arena.extend([u, v]);
                    for &(e, ins) in &self.kit.journal {
                        self.journal_arena.push((e, ins));
                        self.writes_arena.extend([e.u, e.v]);
                    }
                    Plan {
                        err: None,
                        gain: fix.gain,
                        recourse: self.kit.net_recourse(),
                        augmentations: fix.augmentations,
                        journal: (j0, self.journal_arena.len() as u32),
                        writes: (w0, self.writes_arena.len() as u32),
                    }
                }
            };
            self.plans.push(plan);
        }
    }
}

/// A `k`-shard batched dynamic matching engine, bit-identical to the
/// sequential [`DynamicMatcher`](crate::DynamicMatcher) for any shard
/// count, thread count, and batch size — see the [module docs](self).
///
/// # Example
///
/// ```
/// use wmatch_dynamic::{DynamicConfig, ShardedMatcher, UpdateOp};
///
/// let mut eng = ShardedMatcher::new(6, DynamicConfig::default(), 2);
/// let stats = eng
///     .apply_all(&[
///         UpdateOp::insert(0, 1, 4),
///         UpdateOp::insert(4, 5, 7),
///         UpdateOp::insert(1, 2, 6),
///     ])
///     .unwrap();
/// assert_eq!(stats.applied, 3);
/// assert_eq!(eng.matching().weight(), 13); // {4,5}@7 and the heavier {1,2}@6
/// ```
#[derive(Debug)]
pub struct ShardedMatcher {
    g: DynGraph,
    m: Matching,
    cfg: DynamicConfig,
    shards: Vec<Shard>,
    pool: WorkerPool,
    /// The sequential-fallback and rebuild-epoch repair kit — running
    /// literally the `DynamicMatcher` code path.
    seq_kit: RepairKit,
    rebuild: RebuildKit,
    counters: DynamicCounters,
    updates_since_rebuild: usize,
    batch: usize,
    /// `(shard, plan index)` per op of the current batch.
    route: Vec<(u32, u32)>,
    write_buf: Vec<Vertex>,
    replayed: u64,
    fallbacks: u64,
}

impl ShardedMatcher {
    /// Default ops per ingest batch (tunable via
    /// [`ShardedMatcher::with_batch_size`]).
    pub const DEFAULT_BATCH: usize = 256;

    /// An engine over an initially edgeless graph on `n` vertices with
    /// `shards` vertex shards (0 = one per available core, like the
    /// `threads` knob).
    pub fn new(n: usize, cfg: DynamicConfig, shards: usize) -> Self {
        let k = resolve_threads(shards);
        ShardedMatcher {
            g: DynGraph::new(n),
            m: Matching::new(n),
            pool: WorkerPool::new(cfg.threads),
            cfg,
            shards: (0..k).map(|_| Shard::new()).collect(),
            seq_kit: RepairKit::new(false),
            rebuild: RebuildKit::new(),
            counters: DynamicCounters::default(),
            updates_since_rebuild: 0,
            batch: Self::DEFAULT_BATCH,
            route: Vec::new(),
            write_buf: Vec::new(),
            replayed: 0,
            fallbacks: 0,
        }
    }

    /// An engine seeded with an initial graph, bootstrapped exactly like
    /// [`DynamicMatcher::from_graph`](crate::DynamicMatcher::from_graph)
    /// (not counted as updates or recourse).
    ///
    /// # Errors
    ///
    /// [`DynamicError::ZeroWeight`] if the initial graph carries a
    /// zero-weight edge.
    pub fn from_graph(
        initial: &Graph,
        cfg: DynamicConfig,
        shards: usize,
    ) -> Result<Self, DynamicError> {
        let mut eng = ShardedMatcher::new(initial.vertex_count(), cfg, shards);
        eng.g = DynGraph::from_graph(initial)?;
        eng.m = static_bounded_matching(initial, cfg.max_len, &mut eng.seq_kit.searcher);
        Ok(eng)
    }

    /// Sets the ingest batch size (clamped to ≥ 1). Batch size affects
    /// throughput only — the committed state is identical for any value.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.cfg
    }

    /// The number of vertex shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The maintained matching.
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// The live graph.
    pub fn graph(&self) -> &DynGraph {
        &self.g
    }

    /// Lifetime counters (identical to the sequential engine's on the
    /// same update stream).
    pub fn counters(&self) -> DynamicCounters {
        self.counters
    }

    /// Updates committed by replaying their speculated plan.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Updates that fell back to the sequential repair at commit time.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// The largest dense scratch footprint any repair path has used.
    pub fn scratch_high_water(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.kit.scratch_high_water())
            .max()
            .unwrap_or(0)
            .max(self.seq_kit.scratch_high_water())
            .max(self.rebuild.scratch.high_water())
            .max(self.pool.scratch_high_water())
    }

    /// The shard owning vertex `v` (contiguous ranges; out-of-range
    /// vertices clamp to the last shard, where validation rejects them).
    #[inline]
    fn shard_of(&self, v: Vertex) -> usize {
        let n = self.g.vertex_count();
        if n == 0 {
            return 0;
        }
        let v = (v as usize).min(n - 1);
        v * self.shards.len() / n
    }

    /// Applies one batch: parallel speculation, then an in-order commit.
    ///
    /// # Errors
    ///
    /// A [`BatchError`] at the first malformed op; `applied` counts the
    /// committed updates (which remain applied).
    pub fn apply_batch(&mut self, ops: &[UpdateOp]) -> Result<BatchStats, BatchError> {
        let n = self.g.vertex_count();
        let slots = self.g.slab_slots();
        for shard in &mut self.shards {
            shard.begin_batch(n, slots);
        }
        self.route.clear();
        for (i, &op) in ops.iter().enumerate() {
            let (u, v) = op.endpoints();
            let s = self.shard_of(u.min(v));
            self.route.push((s as u32, self.shards[s].ops.len() as u32));
            self.shards[s].ops.push((i, op));
        }
        // phase A: every shard speculates its ops against the frozen
        // pre-batch state, in parallel — pure, so thread count is moot
        {
            let g = &self.g;
            let m = &self.m;
            let cfg = self.cfg;
            let task = move |_worker: usize, _i: usize, shard: &mut Shard, _scr: &mut Scratch| {
                shard.speculate(g, m, &cfg);
            };
            self.pool.run_over(&mut self.shards, &task);
        }
        // phase B: commit in batch order — replay clean plans, fall back
        // to the sequential repair otherwise
        let mut out = BatchStats::default();
        for (i, &op) in ops.iter().enumerate() {
            let (s_idx, p_idx) = self.route[i];
            let s_idx = s_idx as usize;
            let shard = &mut self.shards[s_idx];
            let plan = &shard.plans[p_idx as usize];
            let mut stats = UpdateStats::default();
            if shard.clean && plan.err.is_none() {
                // replay: provably identical to running the repair here
                match op {
                    UpdateOp::Insert { u, v, weight } => {
                        self.g
                            .insert(u, v, weight)
                            .expect("speculated insert replays");
                    }
                    UpdateOp::Delete { u, v } => {
                        self.g.delete(u, v).expect("speculated delete replays");
                    }
                }
                for k in plan.journal.0..plan.journal.1 {
                    let (e, ins) = shard.journal_arena[k as usize];
                    if ins {
                        self.m.insert(e).expect("replayed insert is valid");
                    } else {
                        self.m
                            .remove_pair(e.u, e.v)
                            .expect("replayed removal is valid");
                    }
                }
                stats.gain = plan.gain;
                stats.recourse = plan.recourse;
                stats.augmentations = plan.augmentations;
                self.write_buf.clear();
                self.write_buf.extend_from_slice(
                    &shard.writes_arena[plan.writes.0 as usize..plan.writes.1 as usize],
                );
                self.replayed += 1;
            } else {
                // sequential fallback — the DynamicMatcher code path
                shard.clean = false;
                self.seq_kit.begin_update();
                let structural = match op {
                    UpdateOp::Insert { u, v, weight } => self.g.insert(u, v, weight).map(|_| ()),
                    UpdateOp::Delete { u, v } => self.g.delete(u, v).map(|_| ()),
                };
                if let Err(source) = structural {
                    return Err(BatchError { applied: i, source });
                }
                let fix = match op {
                    UpdateOp::Insert { u, v, weight } => repair_insert(
                        &mut self.seq_kit,
                        &self.g,
                        &mut self.m,
                        u,
                        v,
                        weight,
                        self.cfg.max_len,
                    ),
                    UpdateOp::Delete { u, v } => repair_delete(
                        &mut self.seq_kit,
                        &self.g,
                        &mut self.m,
                        u,
                        v,
                        self.cfg.max_len,
                    ),
                };
                let (u, v) = op.endpoints();
                self.write_buf.clear();
                self.write_buf.extend([u, v]);
                for &(e, _) in &self.seq_kit.journal {
                    self.write_buf.extend([e.u, e.v]);
                }
                stats.gain = fix.gain;
                stats.augmentations = fix.augmentations;
                stats.recourse = self.seq_kit.net_recourse();
                self.fallbacks += 1;
            }
            // a committed write to any vertex another shard's speculation
            // read invalidates that shard for the rest of the batch
            for (j, other) in self.shards.iter_mut().enumerate() {
                if j != s_idx && other.clean {
                    for &w in &self.write_buf {
                        if other.kit.has_read(w) {
                            other.clean = false;
                            break;
                        }
                    }
                }
            }
            self.counters.updates_applied += 1;
            self.counters.augmentations_applied += stats.augmentations;
            self.updates_since_rebuild += 1;
            if self.cfg.rebuild_threshold > 0
                && self.updates_since_rebuild >= self.cfg.rebuild_threshold
            {
                self.counters.rebuilds += 1;
                self.updates_since_rebuild = 0;
                let (r, gain, augs) = run_rebuild_epoch(
                    &self.g,
                    &mut self.m,
                    &self.cfg,
                    &mut self.pool,
                    &mut self.seq_kit,
                    &mut self.rebuild,
                    self.counters.rebuilds,
                );
                self.counters.augmentations_applied += augs;
                stats.recourse += r;
                stats.gain += gain;
                stats.rebuilt = true;
                // the epoch rewrote the matching globally: every
                // remaining speculation is stale
                for shard in &mut self.shards {
                    shard.clean = false;
                }
            }
            self.counters.recourse_total += stats.recourse;
            out.absorb(stats);
        }
        Ok(out)
    }

    /// Applies a whole update sequence, chunked into engine-sized
    /// batches. Stats aggregate over all batches.
    ///
    /// # Errors
    ///
    /// A [`BatchError`] at the first malformed op; `applied` counts the
    /// committed updates across the whole sequence.
    pub fn apply_all(&mut self, ops: &[UpdateOp]) -> Result<BatchStats, BatchError> {
        let mut out = BatchStats::default();
        let mut offset = 0usize;
        for chunk in ops.chunks(self.batch.max(1)) {
            match self.apply_batch(chunk) {
                Ok(s) => {
                    out.applied += s.applied;
                    out.gain += s.gain;
                    out.recourse += s.recourse;
                    out.augmentations += s.augmentations;
                    out.rebuilds += s.rebuilds;
                }
                Err(e) => {
                    return Err(BatchError {
                        applied: offset + e.applied,
                        source: e.source,
                    })
                }
            }
            offset += chunk.len();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DynamicMatcher;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn churn_ops(n: Vertex, count: usize, seed: u64) -> Vec<UpdateOp> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut live: Vec<(Vertex, Vertex)> = Vec::new();
        let mut ops = Vec::new();
        for _ in 0..count {
            let do_delete = !live.is_empty() && rng.gen_range(0..3) == 0;
            if do_delete {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                ops.push(UpdateOp::delete(u, v));
            } else {
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n);
                if v == u {
                    v = (v + 1) % n;
                }
                ops.push(UpdateOp::insert(u, v, rng.gen_range(1..40u64)));
                live.push((u, v));
            }
        }
        ops
    }

    fn assert_matches_sequential(
        cfg: DynamicConfig,
        ops: &[UpdateOp],
        shards: usize,
        batch: usize,
    ) {
        let mut seq = DynamicMatcher::new(24, cfg);
        let mut sh = ShardedMatcher::new(24, cfg, shards).with_batch_size(batch);
        let seq_stats = seq.apply_all(ops).unwrap();
        let sh_stats = sh.apply_all(ops).unwrap();
        assert_eq!(
            seq.matching().to_edges(),
            sh.matching().to_edges(),
            "shards={shards} batch={batch}"
        );
        assert_eq!(
            seq.counters(),
            sh.counters(),
            "shards={shards} batch={batch}"
        );
        assert_eq!(seq_stats, sh_stats, "shards={shards} batch={batch}");
    }

    #[test]
    fn sharded_is_bit_identical_to_sequential() {
        let ops = churn_ops(24, 300, 0xdead);
        for &shards in &[1usize, 2, 3, 8] {
            for &batch in &[1usize, 7, 64, 1000] {
                assert_matches_sequential(DynamicConfig::default(), &ops, shards, batch);
            }
        }
    }

    #[test]
    fn sharded_matches_sequential_with_rebuild_epochs() {
        let ops = churn_ops(24, 200, 0xbeef);
        let cfg = DynamicConfig::default()
            .with_rebuild_threshold(32)
            .with_seed(7);
        for &shards in &[2usize, 4] {
            assert_matches_sequential(cfg, &ops, shards, 50);
        }
    }

    #[test]
    fn sharded_matches_sequential_across_threads() {
        let ops = churn_ops(24, 150, 0xfeed);
        for &threads in &[1usize, 4, 0] {
            let cfg = DynamicConfig::default().with_threads(threads);
            assert_matches_sequential(cfg, &ops, 4, 32);
        }
    }

    #[test]
    fn boundary_heavy_churn_stays_identical() {
        // every edge crosses the 2-shard boundary of a 24-vertex range:
        // ownership stays with the low endpoint's shard, and commits on
        // one side keep invalidating the other side's reads
        let mut rng = StdRng::seed_from_u64(0x0b0b);
        let mut ops = Vec::new();
        let mut live = Vec::new();
        for _ in 0..200 {
            if !live.is_empty() && rng.gen_range(0..3) == 0 {
                let i = rng.gen_range(0..live.len());
                let (u, v): (Vertex, Vertex) = live.swap_remove(i);
                ops.push(UpdateOp::delete(u, v));
            } else {
                let u = rng.gen_range(0..12u32);
                let v = rng.gen_range(12..24u32);
                ops.push(UpdateOp::insert(u, v, rng.gen_range(1..30u64)));
                live.push((u, v));
            }
        }
        assert_matches_sequential(DynamicConfig::default(), &ops, 2, 40);
        assert_matches_sequential(DynamicConfig::default(), &ops, 8, 40);
    }

    #[test]
    fn parallel_edge_churn_stays_identical() {
        // hammer a handful of pairs with parallel copies and interleaved
        // deletes: LIFO copy selection must agree between speculation and
        // sequential replay
        let mut rng = StdRng::seed_from_u64(0x9a9a);
        let pairs = [(0u32, 13u32), (5, 18), (11, 12), (2, 3)];
        let mut ops = Vec::new();
        let mut counts = [0usize; 4];
        for _ in 0..250 {
            let p = rng.gen_range(0..pairs.len());
            let (u, v) = pairs[p];
            if counts[p] > 0 && rng.gen_range(0..2) == 0 {
                ops.push(UpdateOp::delete(u, v));
                counts[p] -= 1;
            } else {
                ops.push(UpdateOp::insert(u, v, rng.gen_range(1..50u64)));
                counts[p] += 1;
            }
        }
        assert_matches_sequential(DynamicConfig::default(), &ops, 2, 32);
        assert_matches_sequential(DynamicConfig::default(), &ops, 8, 32);
    }

    #[test]
    fn batch_error_reports_applied_count() {
        let cfg = DynamicConfig::default();
        let mut eng = ShardedMatcher::new(8, cfg, 2).with_batch_size(3);
        let ops = [
            UpdateOp::insert(0, 1, 5),
            UpdateOp::insert(2, 3, 4),
            UpdateOp::insert(4, 5, 3),
            UpdateOp::insert(6, 7, 2),
            UpdateOp::delete(0, 7), // never inserted
            UpdateOp::insert(1, 2, 9),
        ];
        let err = eng.apply_all(&ops).unwrap_err();
        assert_eq!(err.applied, 4, "four updates committed before the bad op");
        assert!(matches!(err.source, DynamicError::EdgeNotFound { .. }));
        assert_eq!(eng.counters().updates_applied, 4);
        assert_eq!(eng.matching().weight(), 14);
        let msg = err.to_string();
        assert!(msg.contains("4 updates applied"), "{msg}");
    }

    #[test]
    fn disjoint_shard_traffic_replays() {
        // ops confined to distinct shard-local vertex ranges never
        // conflict: everything should commit by replay
        let mut eng = ShardedMatcher::new(24, DynamicConfig::default(), 4).with_batch_size(64);
        let mut ops = Vec::new();
        for s in 0..4u32 {
            let base = s * 6;
            ops.push(UpdateOp::insert(base, base + 1, 5));
            ops.push(UpdateOp::insert(base + 2, base + 3, 7));
            ops.push(UpdateOp::insert(base + 1, base + 2, 6));
        }
        let stats = eng.apply_all(&ops).unwrap();
        assert_eq!(stats.applied, 12);
        assert_eq!(eng.fallbacks(), 0, "no cross-shard conflicts to repair");
        assert_eq!(eng.replayed(), 12);
        let mut seq = DynamicMatcher::new(24, DynamicConfig::default());
        seq.apply_all(&ops).unwrap();
        assert_eq!(seq.matching().to_edges(), eng.matching().to_edges());
    }

    #[test]
    fn from_graph_bootstraps_like_sequential() {
        let mut g = Graph::new(8);
        g.add_edge(0, 1, 4);
        g.add_edge(1, 2, 6);
        g.add_edge(2, 3, 4);
        g.add_edge(5, 6, 9);
        let sh = ShardedMatcher::from_graph(&g, DynamicConfig::default(), 3).unwrap();
        let seq = DynamicMatcher::from_graph(&g, DynamicConfig::default()).unwrap();
        assert_eq!(sh.matching().to_edges(), seq.matching().to_edges());
        assert_eq!(sh.shard_count(), 3);
    }
}
