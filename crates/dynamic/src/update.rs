//! The update-stream vocabulary: edge insertions and deletions.

use std::fmt;

use wmatch_graph::Vertex;

/// One operation of a fully-dynamic update stream.
///
/// Updates are *structural*: an insertion adds one live copy of an edge
/// (parallel edges are permitted, exactly as in the rest of the
/// workspace), and a deletion removes the most recently inserted live
/// copy with the given endpoints (weights are not part of the deletion
/// key). The [`DynamicMatcher`](crate::DynamicMatcher) repairs the
/// maintained matching after each operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    /// Insert an edge `{u, v}` with the given positive weight.
    Insert {
        /// One endpoint.
        u: Vertex,
        /// The other endpoint.
        v: Vertex,
        /// Positive integer weight (the paper's weight model).
        weight: u64,
    },
    /// Delete the most recently inserted live edge `{u, v}`.
    Delete {
        /// One endpoint.
        u: Vertex,
        /// The other endpoint.
        v: Vertex,
    },
}

impl UpdateOp {
    /// An insertion.
    pub fn insert(u: Vertex, v: Vertex, weight: u64) -> Self {
        UpdateOp::Insert { u, v, weight }
    }

    /// A deletion.
    pub fn delete(u: Vertex, v: Vertex) -> Self {
        UpdateOp::Delete { u, v }
    }

    /// The endpoints this operation touches.
    pub fn endpoints(&self) -> (Vertex, Vertex) {
        match *self {
            UpdateOp::Insert { u, v, .. } | UpdateOp::Delete { u, v } => (u, v),
        }
    }

    /// Whether this operation is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, UpdateOp::Insert { .. })
    }
}

impl fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            UpdateOp::Insert { u, v, weight } => write!(f, "+{{{u},{v}}}@{weight}"),
            UpdateOp::Delete { u, v } => write!(f, "-{{{u},{v}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let ins = UpdateOp::insert(1, 2, 7);
        let del = UpdateOp::delete(3, 4);
        assert!(ins.is_insert());
        assert!(!del.is_insert());
        assert_eq!(ins.endpoints(), (1, 2));
        assert_eq!(del.endpoints(), (3, 4));
        assert_eq!(ins.to_string(), "+{1,2}@7");
        assert_eq!(del.to_string(), "-{3,4}");
    }
}
