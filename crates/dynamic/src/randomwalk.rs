//! The random-walk augmentation engine, à la Angriman et al.
//! (arXiv 2104.13098) — seed-keyed and fully deterministic.
//!
//! [`RandomWalkMatcher`] repairs with **alternating random walks** instead
//! of exhaustive ball search. After each structural change, a handful of
//! walks start at the free endpoints of the touched pair: each step picks
//! a uniformly random live edge to an unvisited vertex, tentatively
//! removes the reached vertex's matched edge, and continues from the
//! freed mate — tracking the cumulative gain of every alternating-path
//! prefix and applying the best strictly-positive one found. A walk is
//! O(`walk_len` · degree) with no ball construction at all, which is the
//! engineered bet of the random-walk heuristics: most repair opportunity
//! sits within a few hops of the update, and a cheap randomized probe
//! finds it.
//!
//! # The floor
//!
//! Walks alone certify nothing, so after the walks every update runs one
//! *single-edge* fix-up sweep (`RepairKit::fix_up` at
//! `max_len = 1`) over the touched vertices. This restores **local
//! dominance**: no live edge `e` has weight exceeding the matched weight
//! adjacent to it (Definition 4.4 neighbourhood-gain semantics). Charging
//! each optimal edge to the matched edges at its endpoints — each matched
//! edge absorbs at most two such charges — gives `w(M*) ≤ 2·w(M)`, a ½
//! floor maintained after every update, independent of where the walks
//! wandered. The walks buy quality *above* the floor; the dominance sweep
//! guarantees it.
//!
//! # Determinism
//!
//! All randomness is drawn from a [`StdRng`] keyed by `(seed, lifetime
//! update index)`, and candidate edges are enumerated in the
//! [`DynGraph`]'s insertion-order adjacency — replaying a stream is
//! bit-identical for any thread count (the engine never touches a pool).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmatch_graph::scratch::EpochSet;
use wmatch_graph::{Edge, Graph, Matching, Vertex};

use crate::dyngraph::DynGraph;
use crate::engine::{DynamicCounters, UpdateEngine, UpdateStats};
use crate::error::DynamicError;
use crate::repair::{FixOutcome, RepairKit};
use crate::update::UpdateOp;

/// Configuration of the random-walk engine: walk shape and seed.
///
/// Follows the workspace's config idiom: `Default` + chainable `with_*`
/// setters, `#[non_exhaustive]` so fields can grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct RandomWalkConfig {
    /// Maximum unmatched-edge steps per walk (the alternating path the
    /// walk builds has at most this many inserted edges).
    pub walk_len: usize,
    /// Walks attempted per update (alternating between the two touched
    /// endpoints as starting points; walks from matched vertices are
    /// skipped — only free vertices can head an augmenting path).
    pub trials: usize,
    /// Seed of the walk randomness. Walk `t` of lifetime update `i`
    /// draws from a [`StdRng`] keyed by `(seed, i)` — replay a stream
    /// with the same seed and every choice repeats.
    pub seed: u64,
}

impl Default for RandomWalkConfig {
    /// 8-step walks, 4 trials per update, seed 0.
    fn default() -> Self {
        RandomWalkConfig {
            walk_len: 8,
            trials: 4,
            seed: 0,
        }
    }
}

impl RandomWalkConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum steps per walk.
    pub fn with_walk_len(mut self, walk_len: usize) -> Self {
        self.walk_len = walk_len;
        self
    }

    /// Sets the walks attempted per update.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The random-walk augmentation-repair engine; see the
/// [module docs](self).
///
/// # Example
///
/// ```
/// use wmatch_dynamic::{RandomWalkConfig, RandomWalkMatcher, UpdateOp};
///
/// let mut eng = RandomWalkMatcher::new(4, RandomWalkConfig::default());
/// eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
/// eng.apply(UpdateOp::insert(1, 2, 9)).unwrap();
/// assert_eq!(eng.matching().weight(), 9); // the heavier edge wins
/// ```
#[derive(Debug)]
pub struct RandomWalkMatcher {
    g: DynGraph,
    m: Matching,
    cfg: RandomWalkConfig,
    /// Shared repair kernel: journals every mutation (unified recourse)
    /// and runs the single-edge dominance sweep.
    kit: RepairKit,
    counters: DynamicCounters,
    walks_taken: u64,
    walk_hits: u64,
    // walk scratch, persistent so steady-state walks allocate nothing
    visited: EpochSet,
    candidates: Vec<Edge>,
    path_added: Vec<Edge>,
    path_removed: Vec<Edge>,
}

impl RandomWalkMatcher {
    /// An engine over an initially edgeless graph on `n` vertices.
    pub fn new(n: usize, cfg: RandomWalkConfig) -> Self {
        RandomWalkMatcher {
            g: DynGraph::new(n),
            m: Matching::new(n),
            cfg,
            kit: RepairKit::new(false),
            counters: DynamicCounters::default(),
            walks_taken: 0,
            walk_hits: 0,
            visited: EpochSet::new(),
            candidates: Vec::new(),
            path_added: Vec::new(),
            path_removed: Vec::new(),
        }
    }

    /// An engine seeded with an initial graph, bootstrapped to local
    /// dominance (greedy-by-weight already satisfies it; the initial
    /// solve is not counted as recourse).
    ///
    /// # Errors
    ///
    /// [`DynamicError::ZeroWeight`] if the initial graph carries a
    /// zero-weight edge.
    pub fn from_graph(initial: &Graph, cfg: RandomWalkConfig) -> Result<Self, DynamicError> {
        let mut eng = RandomWalkMatcher::new(initial.vertex_count(), cfg);
        eng.g = DynGraph::from_graph(initial)?;
        eng.m = crate::engine::static_bounded_matching(initial, 1, &mut eng.kit.searcher);
        Ok(eng)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RandomWalkConfig {
        &self.cfg
    }

    /// The maintained matching (locally dominant — the ½ floor — after
    /// every update).
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// The live graph.
    pub fn graph(&self) -> &DynGraph {
        &self.g
    }

    /// Lifetime counters.
    pub fn counters(&self) -> DynamicCounters {
        self.counters
    }

    /// Walks attempted across all updates.
    pub fn walks_taken(&self) -> u64 {
        self.walks_taken
    }

    /// Walks that found and applied a positive alternating prefix.
    pub fn walk_hits(&self) -> u64 {
        self.walk_hits
    }

    /// Always 0: the engine is walk-local and never touches a worker
    /// pool (kept for telemetry parity with the pooled engines).
    pub fn steals(&self) -> u64 {
        0
    }

    /// The largest dense scratch footprint the dominance sweep has used.
    pub fn scratch_high_water(&self) -> usize {
        self.kit.scratch_high_water()
    }

    /// The approximation floor local dominance certifies: ½.
    pub fn certified_floor(&self) -> f64 {
        0.5
    }

    /// Applies one update: structural change, seeded random walks from
    /// the touched endpoints, then the single-edge dominance sweep.
    ///
    /// # Errors
    ///
    /// A [`DynamicError`] for malformed operations (the engine is
    /// unchanged and nothing is counted).
    pub fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        let mut stats = UpdateStats::default();
        self.kit.begin_update();
        match op {
            UpdateOp::Insert { u, v, weight } => {
                self.g.insert(u, v, weight)?;
                // parallel upgrade: a heavier copy of an already-matched
                // pair cannot be expressed as an augmentation — swap it in
                if let Some(me) = self.m.matched_edge(u) {
                    if me.other(u) == v && weight > me.weight {
                        let old = self.m.remove_pair(u, v).expect("edge was matched");
                        self.kit.journal.push((old, false));
                        let new = Edge::new(u, v, weight);
                        self.m.insert(new).expect("endpoints just freed");
                        self.kit.journal.push((new, true));
                        stats.gain += weight as i128 - old.weight as i128;
                    }
                }
            }
            UpdateOp::Delete { u, v } => {
                self.g.delete(u, v)?;
                let lost = match self.m.matched_edge(u) {
                    Some(me) => me.other(u) == v && !self.g.has_live_copy(u, v, me.weight),
                    None => false,
                };
                if lost {
                    let removed = self.m.remove_pair(u, v).expect("edge was matched");
                    self.kit.journal.push((removed, false));
                    stats.gain -= removed.weight as i128;
                }
            }
        }
        let (u, v) = op.endpoints();
        // dominance-sweep seeds: the touched endpoints plus (below)
        // everything an applied walk changed
        self.kit.dirty.clear();
        self.kit.dirty.extend([u, v]);
        // walk randomness keyed by (seed, lifetime update index): replay
        // is bit-identical, and consecutive updates de-correlate
        let idx = self.counters.updates_applied;
        let mut rng = StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_add(idx.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        for t in 0..self.cfg.trials {
            let start = if t % 2 == 0 { u } else { v };
            if self.m.matched_edge(start).is_some() {
                continue; // only a free vertex can head an augmenting path
            }
            self.walks_taken += 1;
            if let Some(gain) = self.walk_and_apply(start, &mut rng) {
                self.walk_hits += 1;
                stats.gain += gain;
                stats.augmentations += 1;
            }
        }
        // restore local dominance (the ½ floor) around everything touched
        let fix: FixOutcome = self.kit.fix_up(&self.g, &mut self.m, 1);
        stats.gain += fix.gain;
        stats.augmentations += fix.augmentations;
        stats.recourse = self.kit.net_recourse();
        self.counters.updates_applied += 1;
        self.counters.augmentations_applied += stats.augmentations;
        self.counters.recourse_total += stats.recourse;
        Ok(stats)
    }

    /// One alternating random walk from the free vertex `start`: builds a
    /// tentative alternating path (unmatched edge in, matched edge out),
    /// then applies the best strictly-positive prefix, journalling every
    /// mutation and extending the dirty seeds. Returns the applied gain.
    fn walk_and_apply(&mut self, start: Vertex, rng: &mut StdRng) -> Option<i128> {
        let n = self.g.vertex_count();
        self.visited.ensure(n);
        self.visited.clear();
        self.visited.insert(start);
        self.path_added.clear();
        self.path_removed.clear();
        let mut x = start;
        let mut run_gain: i128 = 0;
        let mut best: Option<(i128, usize, usize)> = None; // (gain, added, removed)
        for _ in 0..self.cfg.walk_len {
            // candidates: live edges to unvisited vertices whose mates
            // (if any) are also unvisited — keeps the tentative prefix a
            // simple alternating path with exact gains
            self.candidates.clear();
            for e in self.g.incident(x) {
                let y = e.other(x);
                if self.visited.contains(y) {
                    continue;
                }
                if let Some(me) = self.m.matched_edge(y) {
                    if self.visited.contains(me.other(y)) {
                        continue;
                    }
                }
                self.candidates.push(e);
            }
            if self.candidates.is_empty() {
                break;
            }
            let picked = self.candidates[rng.gen_range(0..self.candidates.len())];
            let y = picked.other(x);
            // always step along the *heaviest* live copy of the chosen
            // pair: a lighter matched copy under a heavier live one is a
            // dominance violation no 1-edge augmentation can express
            let w_best = self
                .g
                .incident(x)
                .filter(|c| c.other(x) == y)
                .map(|c| c.weight)
                .max()
                .unwrap_or(picked.weight);
            let e = Edge::new(x, y, w_best);
            self.visited.insert(y);
            self.path_added.push(e);
            run_gain += e.weight as i128;
            match self.m.matched_edge(y) {
                None => {
                    // y is free: the prefix ends on an augmenting path
                    if run_gain > best.map_or(0, |(g, _, _)| g) {
                        best = Some((run_gain, self.path_added.len(), self.path_removed.len()));
                    }
                    break; // an alternating walk cannot pass a free vertex
                }
                Some(me) => {
                    let z = me.other(y);
                    self.visited.insert(z);
                    self.path_removed.push(me);
                    run_gain -= me.weight as i128;
                    if run_gain > best.map_or(0, |(g, _, _)| g) {
                        best = Some((run_gain, self.path_added.len(), self.path_removed.len()));
                    }
                    x = z;
                }
            }
        }
        let (gain, added, removed) = best?;
        for i in 0..removed {
            let e = self.path_removed[i];
            let got = self.m.remove_pair(e.u, e.v).expect("edge was matched");
            debug_assert_eq!(got.key(), e.key());
            self.kit.journal.push((got, false));
            self.kit.dirty.extend([e.u, e.v]);
        }
        for i in 0..added {
            let e = self.path_added[i];
            self.m.insert(e).expect("prefix endpoints are free");
            self.kit.journal.push((e, true));
            self.kit.dirty.extend([e.u, e.v]);
        }
        Some(gain)
    }
}

impl UpdateEngine for RandomWalkMatcher {
    fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        RandomWalkMatcher::apply(self, op)
    }

    fn matching(&self) -> &Matching {
        RandomWalkMatcher::matching(self)
    }

    fn graph(&self) -> &DynGraph {
        RandomWalkMatcher::graph(self)
    }

    fn counters(&self) -> DynamicCounters {
        RandomWalkMatcher::counters(self)
    }

    fn declared_floor(&self) -> f64 {
        self.certified_floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmatch_graph::exact::max_weight_matching;

    /// Local dominance, checked by brute force on a snapshot: no live
    /// edge outweighs the matched weight adjacent to it.
    fn assert_dominant(eng: &RandomWalkMatcher) {
        let snap = eng.graph().snapshot();
        eng.matching()
            .validate(Some(&snap))
            .expect("valid matching");
        for e in snap.edges() {
            let adj: i128 = [e.u, e.v]
                .iter()
                .filter_map(|&v| eng.matching().matched_edge(v))
                .map(|me| me.weight as i128)
                .sum();
            assert!(
                (e.weight as i128) <= adj,
                "edge {}-{}@{} dominates the matching",
                e.u,
                e.v,
                e.weight
            );
        }
    }

    #[test]
    fn walks_pick_up_simple_augmentations() {
        let mut eng = RandomWalkMatcher::new(4, RandomWalkConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        assert_eq!(eng.matching().weight(), 5);
        eng.apply(UpdateOp::insert(1, 2, 9)).unwrap();
        assert_eq!(eng.matching().weight(), 9, "heavier edge swapped in");
        eng.apply(UpdateOp::delete(1, 2)).unwrap();
        assert_eq!(eng.matching().weight(), 5, "repaired back after delete");
        assert_dominant(&eng);
        assert!(eng.walks_taken() > 0);
    }

    #[test]
    fn dominance_floor_holds_under_churn() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut eng = RandomWalkMatcher::new(14, RandomWalkConfig::default().with_seed(9));
        let mut live: Vec<(Vertex, Vertex)> = Vec::new();
        for step in 0..260 {
            let op = if !live.is_empty() && rng.gen_range(0..3) == 0 {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                UpdateOp::delete(u, v)
            } else {
                let u = rng.gen_range(0..14u32);
                let mut v = rng.gen_range(0..14u32);
                if v == u {
                    v = (v + 1) % 14;
                }
                live.push((u, v));
                UpdateOp::insert(u, v, rng.gen_range(1..40u64))
            };
            eng.apply(op).unwrap();
            if step % 40 == 0 {
                assert_dominant(&eng);
                let opt = max_weight_matching(&eng.graph().snapshot()).weight();
                assert!(
                    eng.matching().weight() * 2 >= opt,
                    "step {step}: {} vs opt {opt}",
                    eng.matching().weight()
                );
            }
        }
        assert_dominant(&eng);
        assert_eq!(eng.counters().updates_applied, 260);
        assert!(eng.counters().recourse_total > 0);
    }

    #[test]
    fn replay_is_bit_identical_for_a_fixed_seed() {
        let mut rng = StdRng::seed_from_u64(47);
        let mut ops = Vec::new();
        for _ in 0..120 {
            let u = rng.gen_range(0..12u32);
            let mut v = rng.gen_range(0..12u32);
            if v == u {
                v = (v + 1) % 12;
            }
            ops.push(UpdateOp::insert(u, v, rng.gen_range(1..25u64)));
        }
        let cfg = RandomWalkConfig::default().with_seed(3);
        let mut a = RandomWalkMatcher::new(12, cfg);
        let mut b = RandomWalkMatcher::new(12, cfg);
        for &op in &ops {
            let sa = a.apply(op).unwrap();
            let sb = b.apply(op).unwrap();
            assert_eq!(sa, sb);
        }
        assert_eq!(a.matching().to_edges(), b.matching().to_edges());
        assert_eq!(a.walks_taken(), b.walks_taken());
        // a different seed is allowed to (and here does) walk differently
        let mut c = RandomWalkMatcher::new(12, cfg.with_seed(4));
        for &op in &ops {
            c.apply(op).unwrap();
        }
        assert_dominant(&c);
    }

    #[test]
    fn recourse_equals_observable_churn() {
        let mut rng = StdRng::seed_from_u64(53);
        let mut eng = RandomWalkMatcher::new(10, RandomWalkConfig::default());
        let mut live: Vec<(Vertex, Vertex)> = Vec::new();
        let mut total = 0u64;
        for _ in 0..150 {
            let op = if !live.is_empty() && rng.gen_range(0..4) == 0 {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                UpdateOp::delete(u, v)
            } else {
                let u = rng.gen_range(0..10u32);
                let mut v = rng.gen_range(0..10u32);
                if v == u {
                    v = (v + 1) % 10;
                }
                live.push((u, v));
                UpdateOp::insert(u, v, rng.gen_range(1..30u64))
            };
            let before = eng.matching().clone();
            let s = eng.apply(op).unwrap();
            let sa: std::collections::HashSet<((Vertex, Vertex), u64)> =
                before.iter().map(|e| (e.key(), e.weight)).collect();
            let sb: std::collections::HashSet<((Vertex, Vertex), u64)> =
                eng.matching().iter().map(|e| (e.key(), e.weight)).collect();
            assert_eq!(s.recourse, sa.symmetric_difference(&sb).count() as u64);
            assert_eq!(s.gain, eng.matching().weight() - before.weight());
            total += s.recourse;
        }
        assert_eq!(eng.counters().recourse_total, total);
    }

    #[test]
    fn malformed_ops_leave_engine_unchanged() {
        let mut eng = RandomWalkMatcher::new(2, RandomWalkConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        assert!(eng.apply(UpdateOp::insert(0, 9, 1)).is_err());
        assert!(eng.apply(UpdateOp::insert(0, 1, 0)).is_err());
        assert_eq!(eng.counters().updates_applied, 1);
        assert_eq!(eng.matching().weight(), 5);
    }
}
