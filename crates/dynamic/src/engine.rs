//! The update-stream engine: bounded-length augmentation repair with
//! bounded recourse, plus batched rebuild epochs on the worker pool.
//!
//! # The invariant
//!
//! After every applied update, the maintained matching `M` admits **no
//! positive augmentation with at most `max_len` edges** (with the
//! matching-neighbourhood gain semantics of Definition 4.4, exactly as
//! [`best_augmentation`](wmatch_graph::aug_search::best_augmentation)
//! searches them). Fact 1.3 then certifies `w(M) ≥ (1 − 1/ℓ)·w(M*)` for
//! `max_len = 2ℓ − 1` — the engine's approximation floor holds at every
//! point of the update stream, not just at the end.
//!
//! # Locality
//!
//! The invariant is repaired locally. If it held before an update, any
//! *newly* positive short component must touch the updated vertices:
//! an inserted edge can only open components through itself, a deleted
//! matched edge only components touching its freed endpoints, and each
//! applied repair only components touching the vertices it changed. The
//! engine therefore maintains a dirty set, searches the radius-`max_len`
//! ball around it (extended by the mates of ball vertices, so
//! neighbourhood gains are computed exactly), and applies the best
//! augmentation found until none remains. The ball is relabelled into a
//! compact sub-instance solved by the reusable
//! [`AugSearcher`] on its
//! epoch-stamped [`Scratch`] arenas — no hashing, no per-update
//! allocation churn once warmed up.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_core::greedy::greedy_by_weight;
use wmatch_core::main_alg::{improve_matching_offline_pooled, MainAlgConfig};
use wmatch_graph::aug_search::AugSearcher;
use wmatch_graph::{Augmentation, Edge, Graph, Matching, Scratch, Vertex, WorkerPool};

use crate::dyngraph::DynGraph;
use crate::error::DynamicError;
use crate::update::UpdateOp;

/// Configuration of the update-stream engine.
///
/// Follows the workspace's config idiom: `Default` + chainable `with_*`
/// setters, `#[non_exhaustive]` so fields can grow.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct DynamicConfig {
    /// Maximum edges per repair augmentation. With `max_len = 2ℓ − 1`
    /// the engine certifies a `(1 − 1/ℓ)` approximation after every
    /// update (Fact 1.3); the default 3 gives the ½ floor. Search cost is
    /// exponential in this value — keep it small.
    pub max_len: usize,
    /// Run a batched rebuild epoch after this many updates (0 = never).
    /// An epoch runs [`DynamicConfig::rebuild_rounds`] rounds of
    /// Algorithm 3's weight-class sweep on the live snapshot (on the
    /// engine's worker pool, warm-started from the maintained matching)
    /// and then restores the bounded-augmentation invariant globally.
    pub rebuild_threshold: usize,
    /// Class-sweep rounds per rebuild epoch.
    pub rebuild_rounds: usize,
    /// Target slack ε of the rebuild epochs' class sweep (granularity and
    /// weight-grid parameters derive from it via
    /// [`MainAlgConfig::practical`]).
    pub eps: f64,
    /// RNG seed for the rebuild epochs' random bipartitions.
    pub seed: u64,
    /// Worker threads of the engine's pool (0 = one per available core —
    /// the same sentinel as `SolveRequest::threads`, resolved by
    /// [`wmatch_graph::pool::resolve_threads`]). Only rebuild epochs
    /// parallelize; the per-update repair path is sequential. The
    /// maintained matching is **bit-identical for every value**.
    pub threads: usize,
}

impl Default for DynamicConfig {
    /// `max_len = 3` (the ½ floor), no rebuild epochs, ε = 0.25, seed 0,
    /// sequential.
    fn default() -> Self {
        DynamicConfig {
            max_len: 3,
            rebuild_threshold: 0,
            rebuild_rounds: 2,
            eps: 0.25,
            seed: 0,
            threads: 1,
        }
    }
}

impl DynamicConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum augmentation length (edges per component).
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len;
        self
    }

    /// Sets the rebuild threshold (updates per epoch; 0 = never).
    pub fn with_rebuild_threshold(mut self, rebuild_threshold: usize) -> Self {
        self.rebuild_threshold = rebuild_threshold;
        self
    }

    /// Sets the class-sweep rounds per rebuild epoch.
    pub fn with_rebuild_rounds(mut self, rebuild_rounds: usize) -> Self {
        self.rebuild_rounds = rebuild_rounds;
        self
    }

    /// Sets the rebuild epochs' target slack ε.
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (0 = one per available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The approximation floor the invariant certifies via Fact 1.3:
    /// `1 − 1/ℓ` where `max_len = 2ℓ − 1` (i.e. `ℓ = (max_len + 1) / 2`).
    pub fn certified_floor(&self) -> f64 {
        let l = self.max_len.div_ceil(2).max(1);
        1.0 - 1.0 / l as f64
    }
}

/// What one applied update did to the matching.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct UpdateStats {
    /// Net matching-weight change.
    pub gain: i128,
    /// Matching edges changed (inserted + removed), the per-update
    /// recourse.
    pub recourse: u64,
    /// Repair augmentations applied.
    pub augmentations: u64,
    /// Whether this update triggered a rebuild epoch.
    pub rebuilt: bool,
}

/// Lifetime counters of an engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DynamicCounters {
    /// Updates applied since construction.
    pub updates_applied: u64,
    /// Total matching edges changed across all updates (recourse).
    pub recourse_total: u64,
    /// Repair augmentations applied (excluding rebuild-epoch internals,
    /// whose churn is folded into `recourse_total` as a matching diff).
    pub augmentations_applied: u64,
    /// Rebuild epochs executed.
    pub rebuilds: u64,
}

/// Outcome of one local fix-up convergence loop.
#[derive(Debug, Default)]
struct FixOutcome {
    gain: i128,
    recourse: u64,
    augmentations: u64,
}

/// The fully-dynamic matching engine. See the [module docs](self) for the
/// invariant and the repair strategy.
///
/// # Example
///
/// ```
/// use wmatch_dynamic::{DynamicConfig, DynamicMatcher, UpdateOp};
///
/// // a 3-edge path: greedy would grab the middle edge; the repair
/// // machinery finds the 3-augmentation to the two outer edges
/// let mut eng = DynamicMatcher::new(4, DynamicConfig::default());
/// for (u, v, w) in [(1, 2, 6), (0, 1, 4), (2, 3, 4)] {
///     eng.apply(UpdateOp::insert(u, v, w)).unwrap();
/// }
/// assert_eq!(eng.matching().weight(), 8);
/// assert_eq!(eng.counters().updates_applied, 3);
/// ```
#[derive(Debug)]
pub struct DynamicMatcher {
    g: DynGraph,
    m: Matching,
    cfg: DynamicConfig,
    pool: WorkerPool,
    searcher: AugSearcher,
    scratch: Scratch,
    rebuild_scratch: Scratch,
    local_to_global: Vec<Vertex>,
    dirty: Vec<Vertex>,
    queue: Vec<(Vertex, u32)>,
    counters: DynamicCounters,
    updates_since_rebuild: usize,
}

impl DynamicMatcher {
    /// An engine over an initially edgeless graph on `n` vertices.
    pub fn new(n: usize, cfg: DynamicConfig) -> Self {
        DynamicMatcher {
            g: DynGraph::new(n),
            m: Matching::new(n),
            pool: WorkerPool::new(cfg.threads),
            cfg,
            searcher: AugSearcher::new(),
            scratch: Scratch::new(),
            rebuild_scratch: Scratch::new(),
            local_to_global: Vec::new(),
            dirty: Vec::new(),
            queue: Vec::new(),
            counters: DynamicCounters::default(),
            updates_since_rebuild: 0,
        }
    }

    /// An engine seeded with an initial graph: the edges are loaded
    /// structurally and the matching is bootstrapped to the invariant
    /// with [`static_bounded_matching`] (this initial construction does
    /// not count towards the update/recourse counters).
    ///
    /// # Errors
    ///
    /// [`DynamicError::ZeroWeight`] if the initial graph carries a
    /// zero-weight edge.
    pub fn from_graph(initial: &Graph, cfg: DynamicConfig) -> Result<Self, DynamicError> {
        let mut eng = DynamicMatcher::new(initial.vertex_count(), cfg);
        eng.g = DynGraph::from_graph(initial)?;
        eng.m = static_bounded_matching(initial, cfg.max_len, &mut eng.searcher);
        Ok(eng)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.cfg
    }

    /// The maintained matching.
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// The live graph.
    pub fn graph(&self) -> &DynGraph {
        &self.g
    }

    /// Lifetime counters.
    pub fn counters(&self) -> DynamicCounters {
        self.counters
    }

    /// The largest dense scratch footprint the repair path has used —
    /// the same `scratch_high_water` measure the static solvers report.
    pub fn scratch_high_water(&self) -> usize {
        self.scratch
            .high_water()
            .max(self.rebuild_scratch.high_water())
            .max(self.pool.scratch_high_water())
    }

    /// Applies one update and repairs the matching.
    ///
    /// # Errors
    ///
    /// A [`DynamicError`] for malformed operations (bad endpoints, zero
    /// weight, deleting a non-live edge); the engine is unchanged.
    pub fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        let mut stats = UpdateStats::default();
        match op {
            UpdateOp::Insert { u, v, weight } => {
                self.g.insert(u, v, weight)?;
                // parallel upgrade: matchings are keyed by endpoint pair,
                // so a heavier copy of an already-matched pair cannot be
                // expressed as an augmentation — swap it in directly
                if let Some(me) = self.m.matched_edge(u) {
                    if me.other(u) == v && weight > me.weight {
                        self.m.remove_pair(u, v).expect("edge was matched");
                        self.m
                            .insert(Edge::new(u, v, weight))
                            .expect("endpoints just freed");
                        stats.gain += weight as i128 - me.weight as i128;
                        stats.recourse += 2;
                    }
                }
                // a new positive component must run through the new edge
                self.dirty.clear();
                self.dirty.extend([u, v]);
                let fix = self.fix_up_dirty();
                stats.gain += fix.gain;
                stats.recourse += fix.recourse;
                stats.augmentations += fix.augmentations;
            }
            UpdateOp::Delete { u, v } => {
                let deleted = self.g.delete(u, v)?;
                let lost_matched_edge = match self.m.matched_edge(u) {
                    // the matched copy is gone only if no live edge with
                    // the same endpoints *and weight* remains (parallel
                    // copies keep the matching valid)
                    Some(me) => me.other(u) == v && !self.g.has_live_copy(u, v, me.weight),
                    None => false,
                };
                if lost_matched_edge {
                    let removed = self.m.remove_pair(u, v).expect("edge was matched");
                    stats.gain -= removed.weight as i128;
                    stats.recourse += 1;
                    self.dirty.clear();
                    self.dirty.extend([u, v]);
                    let fix = self.fix_up_dirty();
                    stats.gain += fix.gain;
                    stats.recourse += fix.recourse;
                    stats.augmentations += fix.augmentations;
                }
                // deleting an unmatched copy cannot create a positive
                // augmentation: gains only shrink
                let _ = deleted;
            }
        }
        self.counters.updates_applied += 1;
        self.counters.augmentations_applied += stats.augmentations;
        self.updates_since_rebuild += 1;
        if self.cfg.rebuild_threshold > 0
            && self.updates_since_rebuild >= self.cfg.rebuild_threshold
        {
            let (rebuild_recourse, gain) = self.rebuild_epoch();
            stats.recourse += rebuild_recourse;
            stats.gain += gain;
            stats.rebuilt = true;
        }
        self.counters.recourse_total += stats.recourse;
        Ok(stats)
    }

    /// Applies a whole update sequence, stopping at the first malformed
    /// operation.
    ///
    /// # Errors
    ///
    /// The first [`DynamicError`] encountered (updates before it remain
    /// applied).
    pub fn apply_all(&mut self, ops: &[UpdateOp]) -> Result<(), DynamicError> {
        for &op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// One batched rebuild epoch: class-sweep rounds on the pool,
    /// warm-started from the maintained matching, then a global invariant
    /// restore. Returns `(recourse, gain)` — recourse measured as the
    /// symmetric difference against the pre-epoch matching.
    fn rebuild_epoch(&mut self) -> (u64, i128) {
        self.counters.rebuilds += 1;
        self.updates_since_rebuild = 0;
        let before_weight = self.m.weight();
        let before: HashSet<((Vertex, Vertex), u64)> =
            self.m.iter().map(|e| (e.key(), e.weight)).collect();
        let snapshot = self.g.snapshot();
        if snapshot.edge_count() > 0 {
            // epoch randomness is keyed by the epoch counter, never by
            // thread count: bit-identical for any pool size
            let seed = self
                .cfg
                .seed
                .wrapping_add(self.counters.rebuilds.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let main_cfg = MainAlgConfig::practical(self.cfg.eps, seed)
                .with_trials(1)
                .with_threads(self.cfg.threads);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..self.cfg.rebuild_rounds.max(1) {
                improve_matching_offline_pooled(
                    &snapshot,
                    &mut self.m,
                    &main_cfg,
                    &mut rng,
                    &mut self.rebuild_scratch,
                    &mut self.pool,
                );
            }
        }
        // parallel upgrade sweep: the class sweep may have committed a
        // lighter copy of a pair that also has a heavier live copy
        for u in 0..self.g.vertex_count() as Vertex {
            if let Some(me) = self.m.matched_edge(u) {
                let v = me.other(u);
                if u < v {
                    let best = self
                        .g
                        .incident(u)
                        .filter(|e| e.touches(v))
                        .map(|e| e.weight)
                        .max()
                        .unwrap_or(me.weight);
                    if best > me.weight {
                        self.m.remove_pair(u, v).expect("edge was matched");
                        self.m
                            .insert(Edge::new(u, v, best))
                            .expect("endpoints just freed");
                    }
                }
            }
        }
        // the class sweep improves but does not certify: restore the
        // bounded-augmentation invariant over the whole graph
        self.dirty.clear();
        self.dirty.extend(0..self.g.vertex_count() as Vertex);
        let fix = self.fix_up_dirty();
        self.counters.augmentations_applied += fix.augmentations;
        let after: HashSet<((Vertex, Vertex), u64)> =
            self.m.iter().map(|e| (e.key(), e.weight)).collect();
        let recourse = before.symmetric_difference(&after).count() as u64;
        (recourse, self.m.weight() - before_weight)
    }

    /// Applies best local augmentations until none with positive gain
    /// remains in the ball around the (accumulating) dirty set, restoring
    /// the engine invariant. Clears the dirty set on return.
    fn fix_up_dirty(&mut self) -> FixOutcome {
        let mut out = FixOutcome::default();
        while let Some(aug) = self.best_local_augmentation() {
            let gain = aug.apply(&mut self.m).expect("local augmentation is valid");
            debug_assert!(gain > 0, "only positive augmentations are applied");
            out.gain += gain;
            out.recourse += aug.size() as u64;
            out.augmentations += 1;
            // later repairs may only appear next to what this one touched,
            // but earlier candidates stay live: accumulate, don't replace
            self.dirty.extend(aug.touched_vertices());
        }
        self.dirty.clear();
        out
    }

    /// The best positive augmentation (≤ `max_len` edges) in the
    /// radius-`max_len` ball around the dirty set, or `None`.
    ///
    /// The ball (extended by the mates of ball vertices, so every
    /// matching-neighbourhood gain is computed exactly) is relabelled
    /// into a compact sub-instance and solved with the exhaustive
    /// [`AugSearcher`]; the winner is mapped back to global vertex ids.
    fn best_local_augmentation(&mut self) -> Option<Augmentation> {
        let n = self.g.vertex_count();
        self.scratch.begin(n);
        self.local_to_global.clear();
        self.queue.clear();
        // canonical seed order makes the search independent of the order
        // augmentations reported their touched vertices
        self.dirty.sort_unstable();
        self.dirty.dedup();
        let ids = &mut self.scratch.count; // global vertex -> local id
        for &d in &self.dirty {
            if !ids.contains(d) {
                ids.insert(d, self.local_to_global.len() as u32);
                self.local_to_global.push(d);
                self.queue.push((d, 0));
            }
        }
        // BFS ball of radius max_len over the live adjacency
        let mut head = 0;
        while head < self.queue.len() {
            let (v, depth) = self.queue[head];
            head += 1;
            if depth as usize >= self.cfg.max_len {
                continue;
            }
            for e in self.g.incident(v) {
                let w = e.other(v);
                if !ids.contains(w) {
                    ids.insert(w, self.local_to_global.len() as u32);
                    self.local_to_global.push(w);
                    self.queue.push((w, depth + 1));
                }
            }
        }
        // extend by mates so neighbourhood gains are exact at the border
        let ball_len = self.local_to_global.len();
        for i in 0..ball_len {
            let v = self.local_to_global[i];
            if let Some(me) = self.m.matched_edge(v) {
                let w = me.other(v);
                if !ids.contains(w) {
                    ids.insert(w, self.local_to_global.len() as u32);
                    self.local_to_global.push(w);
                }
            }
        }
        let sub_n = self.local_to_global.len();
        if sub_n == 0 {
            return None;
        }
        // relabelled sub-instance: every live edge with both endpoints in
        // the extended set, added once from its smaller-local endpoint
        let mut sub_g = Graph::new(sub_n);
        for (li, &v) in self.local_to_global.iter().enumerate() {
            for e in self.g.incident(v) {
                if let Some(lw) = ids.get(e.other(v)) {
                    if (lw as usize) > li {
                        sub_g.add_edge(li as Vertex, lw, e.weight);
                    }
                }
            }
        }
        let mut sub_m = Matching::new(sub_n);
        for (li, &v) in self.local_to_global.iter().enumerate() {
            if let Some(me) = self.m.matched_edge(v) {
                let lw = ids.get(me.other(v)).expect("mates are in the sub-instance");
                if (lw as usize) > li {
                    sub_m
                        .insert(Edge::new(li as Vertex, lw, me.weight))
                        .expect("matched edges are vertex-disjoint");
                }
            }
        }
        let aug = self
            .searcher
            .best_augmentation(&sub_g, &sub_m, self.cfg.max_len)?;
        let unmap = |e: &Edge| {
            Edge::new(
                self.local_to_global[e.u as usize],
                self.local_to_global[e.v as usize],
                e.weight,
            )
        };
        let added = aug.added().iter().map(unmap).collect();
        let removed = aug.removed().iter().map(unmap).collect();
        Some(Augmentation::from_parts(added, removed).expect("relabelling preserves disjointness"))
    }
}

/// The static counterpart of the engine's invariant: greedy-by-weight,
/// then repeatedly apply the best augmentation of at most `max_len` edges
/// until none with positive gain remains. The result certifies the same
/// Fact 1.3 floor the engine maintains incrementally — this is what
/// [`DynamicMatcher::from_graph`] bootstraps with and what the
/// recompute-from-scratch baseline ([`RecomputeBaseline`]) recomputes
/// after every update.
///
/// # Example
///
/// ```
/// use wmatch_dynamic::static_bounded_matching;
/// use wmatch_graph::aug_search::{best_augmentation, AugSearcher};
/// use wmatch_graph::generators;
///
/// let g = generators::path_graph(&[4, 6, 4]);
/// let m = static_bounded_matching(&g, 3, &mut AugSearcher::new());
/// assert_eq!(m.weight(), 8); // outer pair beats the greedy middle edge
/// assert!(best_augmentation(&g, &m, 3).is_none());
/// ```
pub fn static_bounded_matching(g: &Graph, max_len: usize, searcher: &mut AugSearcher) -> Matching {
    let mut m = greedy_by_weight(g);
    while let Some(aug) = searcher.best_augmentation(g, &m, max_len) {
        aug.apply(&mut m).expect("searcher augmentations are valid");
    }
    m
}

/// The honest recompute-from-scratch baseline: the same structural
/// updates and the same Fact 1.3 floor as [`DynamicMatcher`], but the
/// matching is recomputed from scratch (via [`static_bounded_matching`])
/// after every update instead of being repaired locally. Recourse is the
/// symmetric difference between consecutive matchings — what a consumer
/// of the matching would actually observe churn.
#[derive(Debug)]
pub struct RecomputeBaseline {
    g: DynGraph,
    m: Matching,
    max_len: usize,
    searcher: AugSearcher,
    counters: DynamicCounters,
}

impl RecomputeBaseline {
    /// A baseline over an initially edgeless graph on `n` vertices.
    pub fn new(n: usize, max_len: usize) -> Self {
        RecomputeBaseline {
            g: DynGraph::new(n),
            m: Matching::new(n),
            max_len,
            searcher: AugSearcher::new(),
            counters: DynamicCounters::default(),
        }
    }

    /// A baseline seeded with an initial graph (solved once, not counted
    /// as recourse).
    ///
    /// # Errors
    ///
    /// [`DynamicError::ZeroWeight`] if the initial graph carries a
    /// zero-weight edge.
    pub fn from_graph(initial: &Graph, max_len: usize) -> Result<Self, DynamicError> {
        let mut b = RecomputeBaseline::new(initial.vertex_count(), max_len);
        b.g = DynGraph::from_graph(initial)?;
        b.m = static_bounded_matching(initial, max_len, &mut b.searcher);
        Ok(b)
    }

    /// The current matching.
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// The live graph.
    pub fn graph(&self) -> &DynGraph {
        &self.g
    }

    /// Lifetime counters (`augmentations_applied` stays 0: the baseline
    /// reports whole-matching churn, not individual repairs).
    pub fn counters(&self) -> DynamicCounters {
        self.counters
    }

    /// Applies one update: structural change, then a full recompute.
    ///
    /// # Errors
    ///
    /// A [`DynamicError`] for malformed operations (state unchanged).
    pub fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        match op {
            UpdateOp::Insert { u, v, weight } => {
                self.g.insert(u, v, weight)?;
            }
            UpdateOp::Delete { u, v } => {
                self.g.delete(u, v)?;
            }
        }
        let fresh = static_bounded_matching(&self.g.snapshot(), self.max_len, &mut self.searcher);
        let before: HashSet<((Vertex, Vertex), u64)> =
            self.m.iter().map(|e| (e.key(), e.weight)).collect();
        let after: HashSet<((Vertex, Vertex), u64)> =
            fresh.iter().map(|e| (e.key(), e.weight)).collect();
        let recourse = before.symmetric_difference(&after).count() as u64;
        let gain = fresh.weight() - self.m.weight();
        self.m = fresh;
        self.counters.updates_applied += 1;
        self.counters.recourse_total += recourse;
        Ok(UpdateStats {
            gain,
            recourse,
            augmentations: 0,
            rebuilt: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use wmatch_graph::aug_search::best_augmentation;
    use wmatch_graph::exact::max_weight_matching;
    use wmatch_graph::generators::{self, WeightModel};

    /// The engine invariant, checked against the reference searcher on a
    /// snapshot: no positive augmentation of ≤ max_len edges anywhere.
    fn assert_invariant(eng: &DynamicMatcher) {
        let snap = eng.graph().snapshot();
        eng.matching()
            .validate(Some(&snap))
            .expect("valid matching");
        assert!(
            best_augmentation(&snap, eng.matching(), eng.config().max_len).is_none(),
            "engine left a positive augmentation behind"
        );
    }

    #[test]
    fn insert_matches_free_pair() {
        let mut eng = DynamicMatcher::new(4, DynamicConfig::default());
        let s = eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        assert_eq!(s.gain, 5);
        assert_eq!(s.recourse, 1);
        assert_eq!(eng.matching().weight(), 5);
        assert_invariant(&eng);
    }

    #[test]
    fn insert_swaps_in_heavier_edge() {
        let mut eng = DynamicMatcher::new(3, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 2)).unwrap();
        let s = eng.apply(UpdateOp::insert(1, 2, 7)).unwrap();
        assert_eq!(s.gain, 5, "swap 2 out, 7 in");
        assert_eq!(s.recourse, 2);
        assert_eq!(eng.matching().weight(), 7);
        assert_invariant(&eng);
    }

    #[test]
    fn delete_matched_edge_repairs_locally() {
        // path 0-1-2-3 weights 4,6,4: engine holds the outer pair (8);
        // deleting {0,1} frees 0 and 1, repair re-matches {1,2}
        let mut eng = DynamicMatcher::new(4, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 4)).unwrap();
        eng.apply(UpdateOp::insert(1, 2, 6)).unwrap();
        eng.apply(UpdateOp::insert(2, 3, 4)).unwrap();
        assert_eq!(eng.matching().weight(), 8);
        let s = eng.apply(UpdateOp::delete(0, 1)).unwrap();
        assert_eq!(eng.matching().weight(), 6);
        assert!(s.recourse >= 2, "lost {{0,1}}, re-matched {{1,2}}");
        assert_invariant(&eng);
    }

    #[test]
    fn delete_unmatched_edge_is_free() {
        let mut eng = DynamicMatcher::new(3, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 9)).unwrap();
        eng.apply(UpdateOp::insert(1, 2, 1)).unwrap();
        let s = eng.apply(UpdateOp::delete(1, 2)).unwrap();
        assert_eq!(s.recourse, 0);
        assert_eq!(s.gain, 0);
        assert_eq!(eng.matching().weight(), 9);
        assert_invariant(&eng);
    }

    #[test]
    fn parallel_copy_keeps_matching_valid() {
        // two parallel copies of {0,1}@5: deleting one leaves the
        // matching backed by the surviving copy
        let mut eng = DynamicMatcher::new(2, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        let s = eng.apply(UpdateOp::delete(0, 1)).unwrap();
        assert_eq!(s.recourse, 0);
        assert_eq!(eng.matching().weight(), 5);
        assert_invariant(&eng);
        // deleting the second copy finally unmatches
        eng.apply(UpdateOp::delete(0, 1)).unwrap();
        assert_eq!(eng.matching().weight(), 0);
        assert_invariant(&eng);
    }

    #[test]
    fn parallel_copies_of_different_weight() {
        // matched light copy, delete the heavy parallel copy: matching
        // must survive (the light copy still backs it)
        let mut eng = DynamicMatcher::new(2, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 3)).unwrap();
        eng.apply(UpdateOp::insert(0, 1, 8)).unwrap();
        assert_eq!(
            eng.matching().weight(),
            8,
            "repair upgraded to the heavy copy"
        );
        // LIFO deletion removes the heavy copy; the matched heavy edge is
        // gone, repair falls back to the light copy
        eng.apply(UpdateOp::delete(0, 1)).unwrap();
        assert_eq!(eng.matching().weight(), 3);
        assert_invariant(&eng);
    }

    #[test]
    fn malformed_ops_leave_engine_unchanged() {
        let mut eng = DynamicMatcher::new(2, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        assert!(matches!(
            eng.apply(UpdateOp::insert(0, 9, 1)),
            Err(DynamicError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            eng.apply(UpdateOp::insert(0, 1, 0)),
            Err(DynamicError::ZeroWeight { .. })
        ));
        assert!(matches!(
            eng.apply(UpdateOp::delete(1, 0))
                .and_then(|_| eng.apply(UpdateOp::delete(1, 0))),
            Err(DynamicError::EdgeNotFound { .. })
        ));
        assert_eq!(eng.counters().updates_applied, 2, "errors are not counted");
    }

    #[test]
    fn from_graph_bootstraps_invariant() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::gnp(20, 0.3, WeightModel::Uniform { lo: 1, hi: 50 }, &mut rng);
        let eng = DynamicMatcher::from_graph(&g, DynamicConfig::default()).unwrap();
        assert_invariant(&eng);
        let opt = max_weight_matching(&g).weight();
        assert!(
            eng.matching().weight() * 2 >= opt,
            "Fact 1.3 floor at max_len 3: {} vs {opt}",
            eng.matching().weight()
        );
    }

    #[test]
    fn random_churn_keeps_floor_and_invariant() {
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = DynamicConfig::default();
        let mut eng = DynamicMatcher::new(14, cfg);
        let mut live: Vec<(Vertex, Vertex)> = Vec::new();
        for step in 0..240 {
            let do_delete = !live.is_empty() && rng.gen_range(0..3) == 0;
            if do_delete {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                eng.apply(UpdateOp::delete(u, v)).unwrap();
            } else {
                let u = rng.gen_range(0..14u32);
                let mut v = rng.gen_range(0..14u32);
                if v == u {
                    v = (v + 1) % 14;
                }
                let w = rng.gen_range(1..40u64);
                eng.apply(UpdateOp::insert(u, v, w)).unwrap();
                live.push((u, v));
            }
            if step % 40 == 0 {
                assert_invariant(&eng);
                let opt = max_weight_matching(&eng.graph().snapshot()).weight();
                assert!(
                    eng.matching().weight() * 2 >= opt,
                    "step {step}: {} vs opt {opt}",
                    eng.matching().weight()
                );
            }
        }
        assert_invariant(&eng);
        assert_eq!(eng.counters().updates_applied, 240);
        assert!(eng.counters().recourse_total > 0);
        assert!(eng.scratch_high_water() > 0);
    }

    #[test]
    fn rebuild_epochs_fire_and_preserve_invariant() {
        let mut rng = StdRng::seed_from_u64(19);
        let cfg = DynamicConfig::default()
            .with_rebuild_threshold(16)
            .with_rebuild_rounds(1);
        let mut eng = DynamicMatcher::new(12, cfg);
        for _ in 0..48 {
            let u = rng.gen_range(0..12u32);
            let mut v = rng.gen_range(0..12u32);
            if v == u {
                v = (v + 1) % 12;
            }
            eng.apply(UpdateOp::insert(u, v, rng.gen_range(1..20u64)))
                .unwrap();
        }
        assert_eq!(eng.counters().rebuilds, 3, "one epoch per 16 updates");
        assert_invariant(&eng);
    }

    #[test]
    fn rebuild_is_bit_identical_across_threads() {
        for threads in [2usize, 4, 0] {
            let mut rng = StdRng::seed_from_u64(23);
            let cfg1 = DynamicConfig::default()
                .with_rebuild_threshold(8)
                .with_seed(5);
            let cfgt = cfg1.with_threads(threads);
            let mut a = DynamicMatcher::new(16, cfg1);
            let mut b = DynamicMatcher::new(16, cfgt);
            for _ in 0..40 {
                let u = rng.gen_range(0..16u32);
                let mut v = rng.gen_range(0..16u32);
                if v == u {
                    v = (v + 1) % 16;
                }
                let op = UpdateOp::insert(u, v, rng.gen_range(1..30u64));
                let sa = a.apply(op).unwrap();
                let sb = b.apply(op).unwrap();
                assert_eq!(sa, sb, "threads = {threads}");
            }
            assert_eq!(
                a.matching().to_edges(),
                b.matching().to_edges(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn recompute_baseline_agrees_on_quality() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut eng = DynamicMatcher::new(12, DynamicConfig::default());
        let mut base = RecomputeBaseline::new(12, 3);
        for _ in 0..80 {
            let u = rng.gen_range(0..12u32);
            let mut v = rng.gen_range(0..12u32);
            if v == u {
                v = (v + 1) % 12;
            }
            let op = UpdateOp::insert(u, v, rng.gen_range(1..25u64));
            eng.apply(op).unwrap();
            base.apply(op).unwrap();
        }
        // both hold the same certified floor; the incremental engine's
        // total recourse must not exceed the recompute baseline's by the
        // nature of local repair (checked loosely: both are bounded)
        let opt = max_weight_matching(&eng.graph().snapshot()).weight();
        assert!(eng.matching().weight() * 2 >= opt);
        assert!(base.matching().weight() * 2 >= opt);
        assert_eq!(base.counters().updates_applied, 80);
    }

    #[test]
    fn certified_floor_derivation() {
        assert_eq!(DynamicConfig::default().certified_floor(), 0.5);
        assert_eq!(
            DynamicConfig::default().with_max_len(5).certified_floor(),
            1.0 - 1.0 / 3.0
        );
        assert_eq!(
            DynamicConfig::default().with_max_len(1).certified_floor(),
            0.0
        );
    }
}
