//! The update-stream engine: bounded-length augmentation repair with
//! bounded recourse, plus batched rebuild epochs on the worker pool.
//!
//! # The invariant
//!
//! After every applied update, the maintained matching `M` admits **no
//! positive augmentation with at most `max_len` edges** (with the
//! matching-neighbourhood gain semantics of Definition 4.4, exactly as
//! [`best_augmentation`](wmatch_graph::aug_search::best_augmentation)
//! searches them). Fact 1.3 then certifies `w(M) ≥ (1 − 1/ℓ)·w(M*)` for
//! `max_len = 2ℓ − 1` — the engine's approximation floor holds at every
//! point of the update stream, not just at the end.
//!
//! # Locality
//!
//! The invariant is repaired locally. If it held before an update, any
//! *newly* positive short component must touch the updated vertices:
//! an inserted edge can only open components through itself, a deleted
//! matched edge only components touching its freed endpoints, and each
//! applied repair only components touching the vertices it changed. The
//! engine therefore maintains a dirty set, searches the radius-`max_len`
//! ball around it (extended by the mates of ball vertices, so
//! neighbourhood gains are computed exactly), and applies the best
//! augmentation found until none remains. The ball is relabelled into a
//! compact sub-instance solved by the reusable
//! [`AugSearcher`] on its
//! epoch-stamped [`Scratch`] arenas — no hashing, no per-update
//! allocation churn once warmed up.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_core::greedy::greedy_by_weight;
use wmatch_core::main_alg::{improve_matching_offline_pooled, MainAlgConfig};
use wmatch_graph::aug_search::AugSearcher;
use wmatch_graph::{Edge, Graph, Matching, Scratch, Vertex, WorkerPool};

use crate::chaos::ChaosInjector;
use crate::dyngraph::DynGraph;
use crate::error::DynamicError;
use crate::repair::{repair_delete, repair_insert, RepairKit};
use crate::spec::BatchSpec;
use crate::update::UpdateOp;

/// Configuration of the update-stream engine.
///
/// Follows the workspace's config idiom: `Default` + chainable `with_*`
/// setters, `#[non_exhaustive]` so fields can grow.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct DynamicConfig {
    /// Maximum edges per repair augmentation. With `max_len = 2ℓ − 1`
    /// the engine certifies a `(1 − 1/ℓ)` approximation after every
    /// update (Fact 1.3); the default 3 gives the ½ floor. Search cost is
    /// exponential in this value — keep it small.
    pub max_len: usize,
    /// Run a batched rebuild epoch after this many updates (0 = never).
    /// An epoch runs [`DynamicConfig::rebuild_rounds`] rounds of
    /// Algorithm 3's weight-class sweep on the live snapshot (on the
    /// engine's worker pool, warm-started from the maintained matching)
    /// and then restores the bounded-augmentation invariant globally.
    pub rebuild_threshold: usize,
    /// Class-sweep rounds per rebuild epoch.
    pub rebuild_rounds: usize,
    /// Target slack ε of the rebuild epochs' class sweep (granularity and
    /// weight-grid parameters derive from it via
    /// [`MainAlgConfig::practical`]).
    pub eps: f64,
    /// RNG seed for the rebuild epochs' random bipartitions.
    pub seed: u64,
    /// Worker threads of the engine's pool (0 = one per available core —
    /// the same sentinel as `SolveRequest::threads`, resolved by
    /// [`wmatch_graph::pool::resolve_threads`]). Only rebuild epochs
    /// parallelize; the per-update repair path is sequential. The
    /// maintained matching is **bit-identical for every value**.
    pub threads: usize,
}

impl Default for DynamicConfig {
    /// `max_len = 3` (the ½ floor), no rebuild epochs, ε = 0.25, seed 0,
    /// sequential.
    fn default() -> Self {
        DynamicConfig {
            max_len: 3,
            rebuild_threshold: 0,
            rebuild_rounds: 2,
            eps: 0.25,
            seed: 0,
            threads: 1,
        }
    }
}

impl DynamicConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum augmentation length (edges per component).
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len;
        self
    }

    /// Sets the rebuild threshold (updates per epoch; 0 = never).
    pub fn with_rebuild_threshold(mut self, rebuild_threshold: usize) -> Self {
        self.rebuild_threshold = rebuild_threshold;
        self
    }

    /// Sets the class-sweep rounds per rebuild epoch.
    pub fn with_rebuild_rounds(mut self, rebuild_rounds: usize) -> Self {
        self.rebuild_rounds = rebuild_rounds;
        self
    }

    /// Sets the rebuild epochs' target slack ε.
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (0 = one per available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The approximation floor the invariant certifies via Fact 1.3:
    /// `1 − 1/ℓ` where `max_len = 2ℓ − 1` (i.e. `ℓ = (max_len + 1) / 2`).
    pub fn certified_floor(&self) -> f64 {
        let l = self.max_len.div_ceil(2).max(1);
        1.0 - 1.0 / l as f64
    }
}

/// What one applied update did to the matching.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct UpdateStats {
    /// Net matching-weight change.
    pub gain: i128,
    /// Matching edges changed by this update — the *net* symmetric
    /// difference between the matching before and after, counting an
    /// edge by its endpoint pair and weight. An edge swapped out and
    /// back in by intermediate repair steps counts zero: this is the
    /// churn a consumer of the matching actually observes, and the same
    /// measure [`RecomputeBaseline`] and the rebuild epochs report.
    pub recourse: u64,
    /// Repair augmentations applied.
    pub augmentations: u64,
    /// Whether this update triggered a rebuild epoch.
    pub rebuilt: bool,
}

/// Lifetime counters of an engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DynamicCounters {
    /// Updates applied since construction.
    pub updates_applied: u64,
    /// Total matching edges changed across all updates (recourse).
    pub recourse_total: u64,
    /// Repair augmentations applied (excluding rebuild-epoch internals,
    /// whose churn is folded into `recourse_total` as a matching diff).
    pub augmentations_applied: u64,
    /// Rebuild epochs executed.
    pub rebuilds: u64,
}

/// Aggregate outcome of a (possibly partial) update batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct BatchStats {
    /// Updates applied.
    pub applied: usize,
    /// Net matching-weight change over the batch.
    pub gain: i128,
    /// Total net recourse over the batch (sum of per-update recourse).
    pub recourse: u64,
    /// Repair augmentations applied over the batch.
    pub augmentations: u64,
    /// Rebuild epochs triggered within the batch.
    pub rebuilds: u64,
}

impl BatchStats {
    /// Folds another batch's totals into these — what a serve driver
    /// uses to aggregate partial progress across retried batches.
    pub fn merge(&mut self, other: &BatchStats) {
        self.applied += other.applied;
        self.gain += other.gain;
        self.recourse += other.recourse;
        self.augmentations += other.augmentations;
        self.rebuilds += other.rebuilds;
    }

    /// Folds one applied update into the batch totals.
    pub(crate) fn absorb(&mut self, s: UpdateStats) {
        self.applied += 1;
        self.gain += s.gain;
        self.recourse += s.recourse;
        self.augmentations += s.augmentations;
        if s.rebuilt {
            self.rebuilds += 1;
        }
    }
}

/// A batch stopped at a malformed operation. `applied` says how many of
/// the batch's updates were applied (and remain applied) before the
/// offending one — batch application is not transactional, and without
/// this count a caller could not tell how far the engine got.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// Updates applied before the failure (the failing op's batch index).
    pub applied: usize,
    /// Aggregate stats of the applied prefix (`stats.applied` equals
    /// [`BatchError::applied`]) — the partial progress a serve driver
    /// surfaces instead of discarding the batch's accounting.
    pub stats: BatchStats,
    /// Why the batch stopped.
    pub source: DynamicError,
}

impl BatchError {
    /// Whether retrying the rejected suffix can succeed — delegates to
    /// [`DynamicError::is_transient`]. Malformed ops fail forever (skip
    /// them); a [`DynamicError::Quarantined`] rejection heals before
    /// returning, so a bounded retry is the right response.
    pub fn is_transient(&self) -> bool {
        self.source.is_transient()
    }
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch stopped at op {}: {} ({} updates applied)",
            self.applied, self.source, self.applied
        )
    }
}

impl Error for BatchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

/// Persistent buffers of the rebuild epochs: the class-sweep scratch, the
/// pre-epoch matching (for the symmetric-difference recourse), and the
/// snapshot graph the sweep runs on — all reused across epochs so a
/// rebuild allocates nothing at steady state.
#[derive(Debug)]
pub(crate) struct RebuildKit {
    pub scratch: Scratch,
    epoch_before: Matching,
    snapshot: Graph,
}

impl RebuildKit {
    pub fn new() -> Self {
        RebuildKit {
            scratch: Scratch::new(),
            epoch_before: Matching::new(0),
            snapshot: Graph::new(0),
        }
    }
}

/// The shared state and sequential commit path of every dynamic engine:
/// the live graph, the maintained matching, the sequential repair kit,
/// the rebuild machinery, and the lifetime counters. [`DynamicMatcher`]
/// is a thin wrapper over one of these; the sharded engine's commit
/// fallback and inline path run the very same methods — which is what
/// makes "bit-identical to sequential" hold by construction rather than
/// by re-implementation.
#[derive(Debug)]
pub(crate) struct EngineCore {
    pub g: DynGraph,
    pub m: Matching,
    pub cfg: DynamicConfig,
    pub pool: WorkerPool,
    /// The sequential repair kit (no read tracking).
    pub kit: RepairKit,
    pub rebuild: RebuildKit,
    pub counters: DynamicCounters,
    pub updates_since_rebuild: usize,
    /// Vertices written by the most recent [`EngineCore::repair_one`]:
    /// the op endpoints plus every journal-edge endpoint. The sharded
    /// commit uses it to invalidate other groups' speculation.
    pub write_buf: Vec<Vertex>,
    /// Deterministic fault injector, test/chaos-bench only (`None` in
    /// production). Installed via `ShardedMatcher::install_chaos`.
    pub chaos: Option<Box<ChaosInjector>>,
    /// Vertices touched by deferred (lazy-mode) updates whose repairs
    /// have not run yet — drained by [`EngineCore::flush_repairs`].
    pub stale_dirty: Vec<Vertex>,
    /// Deferred updates applied since the last flush. While non-zero the
    /// bounded-augmentation invariant is deliberately stale, and the
    /// sentinel's floor spot-check must be skipped.
    pub stale_ops: usize,
}

impl EngineCore {
    pub fn new(n: usize, cfg: DynamicConfig) -> Self {
        EngineCore {
            g: DynGraph::new(n),
            m: Matching::new(n),
            pool: WorkerPool::new(cfg.threads),
            cfg,
            kit: RepairKit::new(false),
            rebuild: RebuildKit::new(),
            counters: DynamicCounters::default(),
            updates_since_rebuild: 0,
            write_buf: Vec::new(),
            chaos: None,
            stale_dirty: Vec::new(),
            stale_ops: 0,
        }
    }

    /// Structural change + local repair + recourse accounting for one op.
    /// Fills [`EngineCore::write_buf`] and leaves the lifetime counters
    /// untouched (see [`EngineCore::finish`]).
    pub fn repair_one(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        let mut stats = UpdateStats::default();
        self.kit.begin_update();
        let fix = match op {
            UpdateOp::Insert { u, v, weight } => {
                self.g.insert(u, v, weight)?;
                repair_insert(
                    &mut self.kit,
                    &self.g,
                    &mut self.m,
                    u,
                    v,
                    weight,
                    self.cfg.max_len,
                )
            }
            UpdateOp::Delete { u, v } => {
                self.g.delete(u, v)?;
                repair_delete(&mut self.kit, &self.g, &mut self.m, u, v, self.cfg.max_len)
            }
        };
        stats.gain = fix.gain;
        stats.augmentations = fix.augmentations;
        // write set is read off the journal *before* net_recourse drains it
        let (u, v) = op.endpoints();
        self.write_buf.clear();
        self.write_buf.extend([u, v]);
        for &(e, _) in &self.kit.journal {
            self.write_buf.extend([e.u, e.v]);
        }
        // net recourse of this update's own repairs, before any epoch
        // (which reports its churn as a whole-matching diff instead)
        stats.recourse = self.kit.net_recourse();
        Ok(stats)
    }

    /// Counts one applied update and runs the rebuild epoch if due,
    /// folding the epoch's churn into `stats`. Shared verbatim by the
    /// sequential apply, the sharded replay, and the sharded fallback, so
    /// counters and rebuild timing agree bit-for-bit across all paths.
    pub fn finish(&mut self, stats: &mut UpdateStats) {
        self.counters.updates_applied += 1;
        self.counters.augmentations_applied += stats.augmentations;
        self.updates_since_rebuild += 1;
        if self.cfg.rebuild_threshold > 0
            && self.updates_since_rebuild >= self.cfg.rebuild_threshold
        {
            self.counters.rebuilds += 1;
            self.updates_since_rebuild = 0;
            let (rebuild_recourse, gain, augs) = run_rebuild_epoch(
                &self.g,
                &mut self.m,
                &self.cfg,
                &mut self.pool,
                &mut self.kit,
                &mut self.rebuild,
                self.counters.rebuilds,
            );
            self.counters.augmentations_applied += augs;
            stats.recourse += rebuild_recourse;
            stats.gain += gain;
            stats.rebuilt = true;
        }
        self.counters.recourse_total += stats.recourse;
    }

    /// One fully-sequential update: repair + counters + rebuild check.
    pub fn apply_one(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        let mut stats = self.repair_one(op)?;
        self.finish(&mut stats);
        Ok(stats)
    }

    /// One **deferred** update: structural change and dead-match cleanup
    /// only, no repair. The op endpoints join
    /// [`EngineCore::stale_dirty`]; the bounded-augmentation invariant is
    /// restored in one batched sweep by [`EngineCore::flush_repairs`].
    /// This is the degraded serve mode's tolerate-ε-staleness path: under
    /// a fault storm the per-op cost drops to the structural update while
    /// the matching stays *valid* (never backed by a dead edge), just
    /// temporarily uncertified.
    pub fn apply_lazy_one(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        let mut stats = UpdateStats::default();
        match op {
            UpdateOp::Insert { u, v, weight } => {
                self.g.insert(u, v, weight)?;
            }
            UpdateOp::Delete { u, v } => {
                self.g.delete(u, v)?;
                // the matched copy may be the one that just died: drop it
                // now (deferring *this* would leave the matching invalid,
                // not merely stale)
                let lost = match self.m.matched_edge(u) {
                    Some(me) => me.other(u) == v && !self.g.has_live_copy(u, v, me.weight),
                    None => false,
                };
                if lost {
                    let removed = self.m.remove_pair(u, v).expect("edge was matched");
                    stats.gain -= removed.weight as i128;
                    stats.recourse = 1;
                }
            }
        }
        let (u, v) = op.endpoints();
        self.stale_dirty.extend([u, v]);
        self.stale_ops += 1;
        self.counters.updates_applied += 1;
        self.counters.recourse_total += stats.recourse;
        self.updates_since_rebuild += 1;
        Ok(stats)
    }

    /// Repairs everything the deferred updates left stale: one fix-up
    /// sweep over the accumulated dirty set, then a rebuild epoch if one
    /// came due while deferring. Returns the aggregate churn of the
    /// flush; a no-op (and allocation-free) when nothing is deferred.
    pub fn flush_repairs(&mut self) -> UpdateStats {
        let mut stats = UpdateStats::default();
        if self.stale_ops == 0 {
            return stats;
        }
        self.kit.begin_update();
        self.kit.dirty.clear();
        self.kit.dirty.append(&mut self.stale_dirty);
        let fix = self.kit.fix_up(&self.g, &mut self.m, self.cfg.max_len);
        stats.gain = fix.gain;
        stats.augmentations = fix.augmentations;
        stats.recourse = self.kit.net_recourse();
        self.counters.augmentations_applied += stats.augmentations;
        self.stale_ops = 0;
        if self.cfg.rebuild_threshold > 0
            && self.updates_since_rebuild >= self.cfg.rebuild_threshold
        {
            self.counters.rebuilds += 1;
            self.updates_since_rebuild = 0;
            let (rebuild_recourse, gain, augs) = run_rebuild_epoch(
                &self.g,
                &mut self.m,
                &self.cfg,
                &mut self.pool,
                &mut self.kit,
                &mut self.rebuild,
                self.counters.rebuilds,
            );
            self.counters.augmentations_applied += augs;
            stats.recourse += rebuild_recourse;
            stats.gain += gain;
            stats.rebuilt = true;
        }
        self.counters.recourse_total += stats.recourse;
        stats
    }

    pub fn scratch_high_water(&self) -> usize {
        self.kit
            .scratch_high_water()
            .max(self.rebuild.scratch.high_water())
            .max(self.pool.scratch_high_water())
    }
}

/// The uniform surface of every dynamic engine in the crate — the
/// incremental repairer, the recompute baseline, the sharded engine, and
/// the competitor solvers ([`RandomWalkMatcher`](crate::RandomWalkMatcher),
/// [`LazyMatcher`](crate::LazyMatcher), [`StaleMatcher`](crate::StaleMatcher)).
///
/// The trait is what lets the cross-engine agreement suites and the
/// shootout bench drive every engine through one loop: apply a stream,
/// [`UpdateEngine::flush`] whatever repair debt the engine's contract
/// allows it to defer, and compare the matchings, counters, and declared
/// floors. Engines that repair eagerly (no debt) keep the default no-op
/// `flush`.
pub trait UpdateEngine {
    /// Applies one update.
    ///
    /// # Errors
    ///
    /// A [`DynamicError`] for malformed operations; the engine must be
    /// left unchanged (malformed ops are not counted).
    fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError>;

    /// Settles any deferred repair work, restoring whatever invariant the
    /// engine's declared floor rests on. Eager engines (no deferral) keep
    /// this default no-op.
    fn flush(&mut self) -> UpdateStats {
        UpdateStats::default()
    }

    /// The maintained matching.
    fn matching(&self) -> &Matching;

    /// The live graph.
    fn graph(&self) -> &DynGraph;

    /// Lifetime counters.
    fn counters(&self) -> DynamicCounters;

    /// The approximation floor this engine certifies for its matching
    /// once [`UpdateEngine::flush`] has run (for eager engines: after
    /// every update).
    fn declared_floor(&self) -> f64;
}

impl UpdateEngine for DynamicMatcher {
    fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        DynamicMatcher::apply(self, op)
    }

    fn matching(&self) -> &Matching {
        DynamicMatcher::matching(self)
    }

    fn graph(&self) -> &DynGraph {
        DynamicMatcher::graph(self)
    }

    fn counters(&self) -> DynamicCounters {
        DynamicMatcher::counters(self)
    }

    fn declared_floor(&self) -> f64 {
        self.config().certified_floor()
    }
}

impl UpdateEngine for RecomputeBaseline {
    fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        RecomputeBaseline::apply(self, op)
    }

    fn matching(&self) -> &Matching {
        RecomputeBaseline::matching(self)
    }

    fn graph(&self) -> &DynGraph {
        RecomputeBaseline::graph(self)
    }

    fn counters(&self) -> DynamicCounters {
        RecomputeBaseline::counters(self)
    }

    fn declared_floor(&self) -> f64 {
        DynamicConfig::default()
            .with_max_len(self.max_len())
            .certified_floor()
    }
}

/// The fully-dynamic matching engine. See the [module docs](self) for the
/// invariant and the repair strategy.
///
/// # Example
///
/// ```
/// use wmatch_dynamic::{DynamicConfig, DynamicMatcher, UpdateOp};
///
/// // a 3-edge path: greedy would grab the middle edge; the repair
/// // machinery finds the 3-augmentation to the two outer edges
/// let mut eng = DynamicMatcher::new(4, DynamicConfig::default());
/// for (u, v, w) in [(1, 2, 6), (0, 1, 4), (2, 3, 4)] {
///     eng.apply(UpdateOp::insert(u, v, w)).unwrap();
/// }
/// assert_eq!(eng.matching().weight(), 8);
/// assert_eq!(eng.counters().updates_applied, 3);
/// ```
#[derive(Debug)]
pub struct DynamicMatcher {
    core: EngineCore,
    /// Lazily-built batch speculation machinery for
    /// [`DynamicMatcher::apply_batch`] (one global ball-overlap "shard").
    spec: Option<Box<BatchSpec>>,
}

impl DynamicMatcher {
    /// An engine over an initially edgeless graph on `n` vertices.
    pub fn new(n: usize, cfg: DynamicConfig) -> Self {
        DynamicMatcher {
            core: EngineCore::new(n, cfg),
            spec: None,
        }
    }

    /// An engine seeded with an initial graph: the edges are loaded
    /// structurally and the matching is bootstrapped to the invariant
    /// with [`static_bounded_matching`] (this initial construction does
    /// not count towards the update/recourse counters).
    ///
    /// # Errors
    ///
    /// [`DynamicError::ZeroWeight`] if the initial graph carries a
    /// zero-weight edge.
    pub fn from_graph(initial: &Graph, cfg: DynamicConfig) -> Result<Self, DynamicError> {
        let mut eng = DynamicMatcher::new(initial.vertex_count(), cfg);
        eng.core.g = DynGraph::from_graph(initial)?;
        eng.core.m = static_bounded_matching(initial, cfg.max_len, &mut eng.core.kit.searcher);
        Ok(eng)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.core.cfg
    }

    /// The maintained matching.
    pub fn matching(&self) -> &Matching {
        &self.core.m
    }

    /// The live graph.
    pub fn graph(&self) -> &DynGraph {
        &self.core.g
    }

    /// Lifetime counters.
    pub fn counters(&self) -> DynamicCounters {
        self.core.counters
    }

    /// Chunks a worker's claims stole across all pool jobs so far (always
    /// 0 at `threads = 1`) — scheduler telemetry, never semantics.
    pub fn steals(&self) -> u64 {
        self.core.pool.steals()
    }

    /// The largest dense scratch footprint the repair path has used —
    /// the same `scratch_high_water` measure the static solvers report.
    pub fn scratch_high_water(&self) -> usize {
        self.core
            .scratch_high_water()
            .max(self.spec.as_ref().map_or(0, |s| s.scratch_high_water()))
    }

    /// Applies one update and repairs the matching.
    ///
    /// # Errors
    ///
    /// A [`DynamicError`] for malformed operations (bad endpoints, zero
    /// weight, deleting a non-live edge); the engine is unchanged.
    pub fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        self.core.apply_one(op)
    }

    /// Applies a whole update sequence, stopping at the first malformed
    /// operation. Returns the aggregate [`BatchStats`] of the batch.
    ///
    /// # Errors
    ///
    /// A [`BatchError`] wrapping the first [`DynamicError`] encountered;
    /// its `applied` count says how many updates were applied before the
    /// malformed one (those remain applied — batches are not
    /// transactional).
    pub fn apply_all(&mut self, ops: &[UpdateOp]) -> Result<BatchStats, BatchError> {
        let mut out = BatchStats::default();
        for (i, &op) in ops.iter().enumerate() {
            match self.apply(op) {
                Ok(s) => out.absorb(s),
                Err(source) => {
                    return Err(BatchError {
                        applied: i,
                        stats: out,
                        source,
                    })
                }
            }
        }
        Ok(out)
    }

    /// Applies one batch through the **parallel ball-repair path**: the
    /// batch's ops are grouped by ball overlap (union-find on touched
    /// endpoints), disjoint groups speculate their repairs concurrently on
    /// the engine's pool, and a sequential commit replays the plans in
    /// stream order — bit-identical to [`DynamicMatcher::apply_all`] for
    /// any thread count and batch size. With one worker
    /// (`threads = 1`, the default) this *is* `apply_all`: the grouping
    /// and speculation layers cost nothing.
    ///
    /// # Errors
    ///
    /// A [`BatchError`] at the first malformed op, exactly as
    /// [`DynamicMatcher::apply_all`].
    pub fn apply_batch(&mut self, ops: &[UpdateOp]) -> Result<BatchStats, BatchError> {
        let workers = self.core.pool.workers();
        let spec = self
            .spec
            .get_or_insert_with(|| Box::new(BatchSpec::new(1, workers)));
        spec.apply_batch(&mut self.core, ops, None)
    }
}

/// One batched rebuild epoch, shared by [`DynamicMatcher`] and the
/// sharded engine: class-sweep rounds on the pool (warm-started from the
/// maintained matching), a parallel-upgrade sweep, then a global
/// invariant restore via the repair kit. Returns `(recourse, gain,
/// augmentations)` — recourse measured as the symmetric difference
/// against the pre-epoch matching, counting `(endpoints, weight)` pairs.
///
/// `epoch_index` keys the epoch randomness (the caller's rebuild
/// counter): bit-identical for any pool size, shard count, or batch
/// size. With `rebuild_rounds = 0` the class sweep is skipped entirely
/// and the epoch only re-certifies the invariant — a restore-only epoch.
pub(crate) fn run_rebuild_epoch(
    g: &DynGraph,
    m: &mut Matching,
    cfg: &DynamicConfig,
    pool: &mut WorkerPool,
    kit: &mut RepairKit,
    rk: &mut RebuildKit,
    epoch_index: u64,
) -> (u64, i128, u64) {
    let n = g.vertex_count();
    rk.epoch_before.copy_from(m);
    g.snapshot_into(&mut rk.snapshot);
    if cfg.rebuild_rounds > 0 && rk.snapshot.edge_count() > 0 {
        // epoch randomness is keyed by the epoch counter, never by
        // thread count: bit-identical for any pool size
        let seed = cfg
            .seed
            .wrapping_add(epoch_index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let main_cfg = MainAlgConfig::practical(cfg.eps, seed)
            .with_trials(1)
            .with_threads(cfg.threads);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..cfg.rebuild_rounds {
            improve_matching_offline_pooled(
                &rk.snapshot,
                m,
                &main_cfg,
                &mut rng,
                &mut rk.scratch,
                pool,
            );
        }
    }
    // parallel upgrade sweep: the class sweep may have committed a
    // lighter copy of a pair that also has a heavier live copy
    for u in 0..n as Vertex {
        if let Some(me) = m.matched_edge(u) {
            let v = me.other(u);
            if u < v {
                let best = g
                    .incident(u)
                    .filter(|e| e.touches(v))
                    .map(|e| e.weight)
                    .max()
                    .unwrap_or(me.weight);
                if best > me.weight {
                    m.remove_pair(u, v).expect("edge was matched");
                    m.insert(Edge::new(u, v, best))
                        .expect("endpoints just freed");
                }
            }
        }
    }
    // the class sweep improves but does not certify: restore the
    // bounded-augmentation invariant over the whole graph
    kit.dirty.clear();
    kit.dirty.extend(0..n as Vertex);
    let fix = kit.fix_up(g, m, cfg.max_len);
    // O(n) symmetric difference against the pre-epoch matching: each
    // changed edge is counted once, at its `key().0` endpoint
    let ident = |e: Edge| (e.key(), e.weight);
    let mut recourse = 0u64;
    for v in 0..n as Vertex {
        let before = rk
            .epoch_before
            .matched_edge(v)
            .filter(|e| e.key().0 == v)
            .map(ident);
        let after = m.matched_edge(v).filter(|e| e.key().0 == v).map(ident);
        if before != after {
            recourse += before.is_some() as u64 + after.is_some() as u64;
        }
    }
    (
        recourse,
        m.weight() - rk.epoch_before.weight(),
        fix.augmentations,
    )
}

/// The static counterpart of the engine's invariant: greedy-by-weight,
/// then repeatedly apply the best augmentation of at most `max_len` edges
/// until none with positive gain remains. The result certifies the same
/// Fact 1.3 floor the engine maintains incrementally — this is what
/// [`DynamicMatcher::from_graph`] bootstraps with and what the
/// recompute-from-scratch baseline ([`RecomputeBaseline`]) recomputes
/// after every update.
///
/// # Example
///
/// ```
/// use wmatch_dynamic::static_bounded_matching;
/// use wmatch_graph::aug_search::{best_augmentation, AugSearcher};
/// use wmatch_graph::generators;
///
/// let g = generators::path_graph(&[4, 6, 4]);
/// let m = static_bounded_matching(&g, 3, &mut AugSearcher::new());
/// assert_eq!(m.weight(), 8); // outer pair beats the greedy middle edge
/// assert!(best_augmentation(&g, &m, 3).is_none());
/// ```
pub fn static_bounded_matching(g: &Graph, max_len: usize, searcher: &mut AugSearcher) -> Matching {
    let mut m = greedy_by_weight(g);
    while let Some(aug) = searcher.best_augmentation(g, &m, max_len) {
        aug.apply(&mut m).expect("searcher augmentations are valid");
    }
    m
}

/// The honest recompute-from-scratch baseline: the same structural
/// updates and the same Fact 1.3 floor as [`DynamicMatcher`], but the
/// matching is recomputed from scratch (via [`static_bounded_matching`])
/// after every update instead of being repaired locally. Recourse is the
/// symmetric difference between consecutive matchings — what a consumer
/// of the matching would actually observe churn.
#[derive(Debug)]
pub struct RecomputeBaseline {
    g: DynGraph,
    m: Matching,
    max_len: usize,
    searcher: AugSearcher,
    counters: DynamicCounters,
}

impl RecomputeBaseline {
    /// A baseline over an initially edgeless graph on `n` vertices.
    pub fn new(n: usize, max_len: usize) -> Self {
        RecomputeBaseline {
            g: DynGraph::new(n),
            m: Matching::new(n),
            max_len,
            searcher: AugSearcher::new(),
            counters: DynamicCounters::default(),
        }
    }

    /// A baseline seeded with an initial graph (solved once, not counted
    /// as recourse).
    ///
    /// # Errors
    ///
    /// [`DynamicError::ZeroWeight`] if the initial graph carries a
    /// zero-weight edge.
    pub fn from_graph(initial: &Graph, max_len: usize) -> Result<Self, DynamicError> {
        let mut b = RecomputeBaseline::new(initial.vertex_count(), max_len);
        b.g = DynGraph::from_graph(initial)?;
        b.m = static_bounded_matching(initial, max_len, &mut b.searcher);
        Ok(b)
    }

    /// The current matching.
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// The live graph.
    pub fn graph(&self) -> &DynGraph {
        &self.g
    }

    /// The maximum edges per augmentation of the per-update recompute.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Lifetime counters (`augmentations_applied` stays 0: the baseline
    /// reports whole-matching churn, not individual repairs).
    pub fn counters(&self) -> DynamicCounters {
        self.counters
    }

    /// Chunks stolen across worker pools — always 0: the baseline has no
    /// parallel layer. Exposed so the facade's telemetry schema is uniform
    /// across the dynamic engines.
    pub fn steals(&self) -> u64 {
        0
    }

    /// The largest dense scratch footprint the recompute searcher has
    /// used.
    pub fn scratch_high_water(&self) -> usize {
        self.searcher.scratch_high_water()
    }

    /// Applies one update: structural change, then a full recompute.
    ///
    /// # Errors
    ///
    /// A [`DynamicError`] for malformed operations (state unchanged).
    pub fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        match op {
            UpdateOp::Insert { u, v, weight } => {
                self.g.insert(u, v, weight)?;
            }
            UpdateOp::Delete { u, v } => {
                self.g.delete(u, v)?;
            }
        }
        let fresh = static_bounded_matching(&self.g.snapshot(), self.max_len, &mut self.searcher);
        let before: HashSet<((Vertex, Vertex), u64)> =
            self.m.iter().map(|e| (e.key(), e.weight)).collect();
        let after: HashSet<((Vertex, Vertex), u64)> =
            fresh.iter().map(|e| (e.key(), e.weight)).collect();
        let recourse = before.symmetric_difference(&after).count() as u64;
        let gain = fresh.weight() - self.m.weight();
        self.m = fresh;
        self.counters.updates_applied += 1;
        self.counters.recourse_total += recourse;
        Ok(UpdateStats {
            gain,
            recourse,
            augmentations: 0,
            rebuilt: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use wmatch_graph::aug_search::best_augmentation;
    use wmatch_graph::exact::max_weight_matching;
    use wmatch_graph::generators::{self, WeightModel};

    /// The engine invariant, checked against the reference searcher on a
    /// snapshot: no positive augmentation of ≤ max_len edges anywhere.
    fn assert_invariant(eng: &DynamicMatcher) {
        let snap = eng.graph().snapshot();
        eng.matching()
            .validate(Some(&snap))
            .expect("valid matching");
        assert!(
            best_augmentation(&snap, eng.matching(), eng.config().max_len).is_none(),
            "engine left a positive augmentation behind"
        );
    }

    #[test]
    fn insert_matches_free_pair() {
        let mut eng = DynamicMatcher::new(4, DynamicConfig::default());
        let s = eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        assert_eq!(s.gain, 5);
        assert_eq!(s.recourse, 1);
        assert_eq!(eng.matching().weight(), 5);
        assert_invariant(&eng);
    }

    #[test]
    fn insert_swaps_in_heavier_edge() {
        let mut eng = DynamicMatcher::new(3, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 2)).unwrap();
        let s = eng.apply(UpdateOp::insert(1, 2, 7)).unwrap();
        assert_eq!(s.gain, 5, "swap 2 out, 7 in");
        assert_eq!(s.recourse, 2);
        assert_eq!(eng.matching().weight(), 7);
        assert_invariant(&eng);
    }

    #[test]
    fn delete_matched_edge_repairs_locally() {
        // path 0-1-2-3 weights 4,6,4: engine holds the outer pair (8);
        // deleting {0,1} frees 0 and 1, repair re-matches {1,2}
        let mut eng = DynamicMatcher::new(4, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 4)).unwrap();
        eng.apply(UpdateOp::insert(1, 2, 6)).unwrap();
        eng.apply(UpdateOp::insert(2, 3, 4)).unwrap();
        assert_eq!(eng.matching().weight(), 8);
        let s = eng.apply(UpdateOp::delete(0, 1)).unwrap();
        assert_eq!(eng.matching().weight(), 6);
        assert!(s.recourse >= 2, "lost {{0,1}}, re-matched {{1,2}}");
        assert_invariant(&eng);
    }

    #[test]
    fn delete_unmatched_edge_is_free() {
        let mut eng = DynamicMatcher::new(3, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 9)).unwrap();
        eng.apply(UpdateOp::insert(1, 2, 1)).unwrap();
        let s = eng.apply(UpdateOp::delete(1, 2)).unwrap();
        assert_eq!(s.recourse, 0);
        assert_eq!(s.gain, 0);
        assert_eq!(eng.matching().weight(), 9);
        assert_invariant(&eng);
    }

    #[test]
    fn parallel_copy_keeps_matching_valid() {
        // two parallel copies of {0,1}@5: deleting one leaves the
        // matching backed by the surviving copy
        let mut eng = DynamicMatcher::new(2, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        let s = eng.apply(UpdateOp::delete(0, 1)).unwrap();
        assert_eq!(s.recourse, 0);
        assert_eq!(eng.matching().weight(), 5);
        assert_invariant(&eng);
        // deleting the second copy finally unmatches
        eng.apply(UpdateOp::delete(0, 1)).unwrap();
        assert_eq!(eng.matching().weight(), 0);
        assert_invariant(&eng);
    }

    #[test]
    fn parallel_copies_of_different_weight() {
        // matched light copy, delete the heavy parallel copy: matching
        // must survive (the light copy still backs it)
        let mut eng = DynamicMatcher::new(2, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 3)).unwrap();
        eng.apply(UpdateOp::insert(0, 1, 8)).unwrap();
        assert_eq!(
            eng.matching().weight(),
            8,
            "repair upgraded to the heavy copy"
        );
        // LIFO deletion removes the heavy copy; the matched heavy edge is
        // gone, repair falls back to the light copy
        eng.apply(UpdateOp::delete(0, 1)).unwrap();
        assert_eq!(eng.matching().weight(), 3);
        assert_invariant(&eng);
    }

    #[test]
    fn malformed_ops_leave_engine_unchanged() {
        let mut eng = DynamicMatcher::new(2, DynamicConfig::default());
        eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        assert!(matches!(
            eng.apply(UpdateOp::insert(0, 9, 1)),
            Err(DynamicError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            eng.apply(UpdateOp::insert(0, 1, 0)),
            Err(DynamicError::ZeroWeight { .. })
        ));
        assert!(matches!(
            eng.apply(UpdateOp::delete(1, 0))
                .and_then(|_| eng.apply(UpdateOp::delete(1, 0))),
            Err(DynamicError::EdgeNotFound { .. })
        ));
        assert_eq!(eng.counters().updates_applied, 2, "errors are not counted");
    }

    #[test]
    fn from_graph_bootstraps_invariant() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::gnp(20, 0.3, WeightModel::Uniform { lo: 1, hi: 50 }, &mut rng);
        let eng = DynamicMatcher::from_graph(&g, DynamicConfig::default()).unwrap();
        assert_invariant(&eng);
        let opt = max_weight_matching(&g).weight();
        assert!(
            eng.matching().weight() * 2 >= opt,
            "Fact 1.3 floor at max_len 3: {} vs {opt}",
            eng.matching().weight()
        );
    }

    #[test]
    fn random_churn_keeps_floor_and_invariant() {
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = DynamicConfig::default();
        let mut eng = DynamicMatcher::new(14, cfg);
        let mut live: Vec<(Vertex, Vertex)> = Vec::new();
        for step in 0..240 {
            let do_delete = !live.is_empty() && rng.gen_range(0..3) == 0;
            if do_delete {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                eng.apply(UpdateOp::delete(u, v)).unwrap();
            } else {
                let u = rng.gen_range(0..14u32);
                let mut v = rng.gen_range(0..14u32);
                if v == u {
                    v = (v + 1) % 14;
                }
                let w = rng.gen_range(1..40u64);
                eng.apply(UpdateOp::insert(u, v, w)).unwrap();
                live.push((u, v));
            }
            if step % 40 == 0 {
                assert_invariant(&eng);
                let opt = max_weight_matching(&eng.graph().snapshot()).weight();
                assert!(
                    eng.matching().weight() * 2 >= opt,
                    "step {step}: {} vs opt {opt}",
                    eng.matching().weight()
                );
            }
        }
        assert_invariant(&eng);
        assert_eq!(eng.counters().updates_applied, 240);
        assert!(eng.counters().recourse_total > 0);
        assert!(eng.scratch_high_water() > 0);
    }

    #[test]
    fn rebuild_epochs_fire_and_preserve_invariant() {
        let mut rng = StdRng::seed_from_u64(19);
        let cfg = DynamicConfig::default()
            .with_rebuild_threshold(16)
            .with_rebuild_rounds(1);
        let mut eng = DynamicMatcher::new(12, cfg);
        for _ in 0..48 {
            let u = rng.gen_range(0..12u32);
            let mut v = rng.gen_range(0..12u32);
            if v == u {
                v = (v + 1) % 12;
            }
            eng.apply(UpdateOp::insert(u, v, rng.gen_range(1..20u64)))
                .unwrap();
        }
        assert_eq!(eng.counters().rebuilds, 3, "one epoch per 16 updates");
        assert_invariant(&eng);
    }

    #[test]
    fn rebuild_is_bit_identical_across_threads() {
        for threads in [2usize, 4, 0] {
            let mut rng = StdRng::seed_from_u64(23);
            let cfg1 = DynamicConfig::default()
                .with_rebuild_threshold(8)
                .with_seed(5);
            let cfgt = cfg1.with_threads(threads);
            let mut a = DynamicMatcher::new(16, cfg1);
            let mut b = DynamicMatcher::new(16, cfgt);
            for _ in 0..40 {
                let u = rng.gen_range(0..16u32);
                let mut v = rng.gen_range(0..16u32);
                if v == u {
                    v = (v + 1) % 16;
                }
                let op = UpdateOp::insert(u, v, rng.gen_range(1..30u64));
                let sa = a.apply(op).unwrap();
                let sb = b.apply(op).unwrap();
                assert_eq!(sa, sb, "threads = {threads}");
            }
            assert_eq!(
                a.matching().to_edges(),
                b.matching().to_edges(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn recompute_baseline_agrees_on_quality() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut eng = DynamicMatcher::new(12, DynamicConfig::default());
        let mut base = RecomputeBaseline::new(12, 3);
        for _ in 0..80 {
            let u = rng.gen_range(0..12u32);
            let mut v = rng.gen_range(0..12u32);
            if v == u {
                v = (v + 1) % 12;
            }
            let op = UpdateOp::insert(u, v, rng.gen_range(1..25u64));
            eng.apply(op).unwrap();
            base.apply(op).unwrap();
        }
        // both hold the same certified floor; the incremental engine's
        // total recourse must not exceed the recompute baseline's by the
        // nature of local repair (checked loosely: both are bounded)
        let opt = max_weight_matching(&eng.graph().snapshot()).weight();
        assert!(eng.matching().weight() * 2 >= opt);
        assert!(base.matching().weight() * 2 >= opt);
        assert_eq!(base.counters().updates_applied, 80);
    }

    #[test]
    fn recourse_equals_matching_diff_along_churn() {
        // the unified recourse definition: per-update recourse is exactly
        // the (key, weight) symmetric difference between the matchings
        // before and after the update, recomputed here independently
        let mut rng = StdRng::seed_from_u64(41);
        let mut eng = DynamicMatcher::new(14, DynamicConfig::default());
        let mut live: Vec<(Vertex, Vertex)> = Vec::new();
        let diff = |a: &Matching, b: &Matching| {
            let sa: HashSet<((Vertex, Vertex), u64)> =
                a.iter().map(|e| (e.key(), e.weight)).collect();
            let sb: HashSet<((Vertex, Vertex), u64)> =
                b.iter().map(|e| (e.key(), e.weight)).collect();
            sa.symmetric_difference(&sb).count() as u64
        };
        let mut total = 0u64;
        for step in 0..300 {
            let op = if !live.is_empty() && rng.gen_range(0..3) == 0 {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                UpdateOp::delete(u, v)
            } else {
                let u = rng.gen_range(0..14u32);
                let mut v = rng.gen_range(0..14u32);
                if v == u {
                    v = (v + 1) % 14;
                }
                live.push((u, v));
                UpdateOp::insert(u, v, rng.gen_range(1..40u64))
            };
            let before = eng.matching().clone();
            let s = eng.apply(op).unwrap();
            assert_eq!(
                s.recourse,
                diff(&before, eng.matching()),
                "step {step}: reported recourse must equal the observable churn"
            );
            assert_eq!(
                s.gain,
                eng.matching().weight() - before.weight(),
                "step {step}"
            );
            total += s.recourse;
        }
        assert_eq!(eng.counters().recourse_total, total);
    }

    #[test]
    fn apply_all_reports_batch_stats_and_partial_progress() {
        let mut eng = DynamicMatcher::new(6, DynamicConfig::default());
        let stats = eng
            .apply_all(&[
                UpdateOp::insert(0, 1, 5),
                UpdateOp::insert(2, 3, 4),
                UpdateOp::delete(0, 1),
            ])
            .unwrap();
        assert_eq!(stats.applied, 3);
        assert_eq!(stats.gain, 4);
        assert_eq!(stats.recourse, 3, "two matched, one unmatched");
        // a malformed op stops the batch and reports how far it got
        let err = eng
            .apply_all(&[
                UpdateOp::insert(0, 1, 2),
                UpdateOp::insert(4, 5, 1),
                UpdateOp::delete(1, 2), // never inserted
                UpdateOp::insert(0, 2, 9),
            ])
            .unwrap_err();
        assert_eq!(err.applied, 2, "the first two committed and stay applied");
        assert!(matches!(err.source, DynamicError::EdgeNotFound { .. }));
        assert_eq!(eng.counters().updates_applied, 5);
        assert!(err.to_string().contains("2 updates applied"), "{err}");
    }

    #[test]
    fn certified_floor_derivation() {
        assert_eq!(DynamicConfig::default().certified_floor(), 0.5);
        assert_eq!(
            DynamicConfig::default().with_max_len(5).certified_floor(),
            1.0 - 1.0 / 3.0
        );
        assert_eq!(
            DynamicConfig::default().with_max_len(1).certified_floor(),
            0.0
        );
    }
}
