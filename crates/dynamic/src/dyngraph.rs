//! The mutable live-edge store behind the update-stream engine.
//!
//! [`Graph`] is append-only (its cached CSR view is
//! invalidated on every mutation), which is the right trade-off for the
//! static solvers but ruinous under an update stream. [`DynGraph`] is the
//! dynamic counterpart: a struct-of-arrays slab of live edges plus
//! per-vertex adjacency lists of edge ids, giving O(1) insertion,
//! O(degree) deletion, and O(degree) incidence scans without any derived
//! structure to rebuild. [`DynGraph::snapshot_into`] materializes the
//! live edges into a reusable [`Graph`] when a static algorithm (the
//! rebuild epoch's class sweep, an oracle solve) needs one.
//!
//! # Memory layout
//!
//! The slab stores endpoints and weights in three parallel flat arrays
//! (`u32`/`u32`/`u64` per slot — 16 bytes per live edge) rather than a
//! `Vec<Option<Edge>>` (24 bytes with the discriminant), and dead slots
//! are reclaimed two ways: a free list recycles ids one by one, and when
//! more than half the slab is dead a *compaction* re-packs the arrays
//! densely. Compaction preserves slab order and the per-vertex adjacency
//! order (the deletion LIFO key), so it is invisible to replay
//! determinism: any engine replaying the same operation history compacts
//! at the same points with the same result.

use wmatch_graph::{Edge, Graph, Vertex};

use crate::error::DynamicError;

/// Sentinel marking a dead slab slot (`u32::MAX` is never a valid
/// endpoint: the vertex range is checked on insertion).
const TOMBSTONE: Vertex = Vertex::MAX;

/// Dead slots required before a deletion considers compacting.
const COMPACT_MIN_DEAD: usize = 64;

/// A dynamic undirected multigraph over a fixed vertex range `0..n`.
///
/// Edges live in a struct-of-arrays slab (`u32` ids, reused after
/// deletion, compacted when mostly dead) and each vertex keeps the ids of
/// its live incident edges in insertion order. Deleting `{u, v}` removes
/// the most recently inserted live copy — a deterministic rule that keeps
/// replay reproducible under parallel edges.
///
/// # Example
///
/// ```
/// use wmatch_dynamic::DynGraph;
///
/// let mut g = DynGraph::new(3);
/// g.insert(0, 1, 5).unwrap();
/// g.insert(1, 2, 7).unwrap();
/// assert_eq!(g.live_edges(), 2);
/// assert_eq!(g.degree(1), 2);
/// let e = g.delete(1, 2).unwrap();
/// assert_eq!(e.weight, 7);
/// assert_eq!(g.live_edges(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DynGraph {
    n: usize,
    /// Slab endpoints as inserted (`eu[id] == TOMBSTONE` marks a dead
    /// slot) and weights, in parallel arrays.
    eu: Vec<Vertex>,
    ev: Vec<Vertex>,
    ew: Vec<u64>,
    free: Vec<u32>,
    adj: Vec<Vec<u32>>,
    live: usize,
    /// Old-id → new-id table of the last compaction (persistent scratch).
    remap: Vec<u32>,
}

impl DynGraph {
    /// An edgeless dynamic graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        DynGraph {
            n,
            eu: Vec::new(),
            ev: Vec::new(),
            ew: Vec::new(),
            free: Vec::new(),
            adj: vec![Vec::new(); n],
            live: 0,
            remap: Vec::new(),
        }
    }

    /// A dynamic graph seeded with every edge of `g` (in insertion order).
    ///
    /// # Errors
    ///
    /// [`DynamicError::ZeroWeight`] if `g` contains a zero-weight edge
    /// (the static [`Graph`] does not enforce positivity; the dynamic
    /// model does).
    pub fn from_graph(g: &Graph) -> Result<Self, DynamicError> {
        let mut out = DynGraph::new(g.vertex_count());
        for e in g.edges() {
            out.insert(e.u, e.v, e.weight)?;
        }
        Ok(out)
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    #[inline]
    pub fn live_edges(&self) -> usize {
        self.live
    }

    /// Number of slab slots (live + dead) — the actual array footprint,
    /// bounded by compaction to at most ~2× the live count.
    #[inline]
    pub fn slab_slots(&self) -> usize {
        self.eu.len()
    }

    /// Degree of `v` (counting parallel edges).
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v as usize].len()
    }

    /// The live edge in slab slot `id` (must be live).
    #[inline]
    pub(crate) fn edge_at(&self, id: u32) -> Edge {
        debug_assert_ne!(self.eu[id as usize], TOMBSTONE, "slot {id} is dead");
        Edge::new(
            self.eu[id as usize],
            self.ev[id as usize],
            self.ew[id as usize],
        )
    }

    /// The live slab ids incident to `v`, in insertion order.
    #[inline]
    pub(crate) fn adj_ids(&self, v: Vertex) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Inserts a live edge and returns its slab id.
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`], [`DynamicError::SelfLoop`] or
    /// [`DynamicError::ZeroWeight`] for malformed insertions; the graph
    /// is unchanged on error.
    pub fn insert(&mut self, u: Vertex, v: Vertex, weight: u64) -> Result<u32, DynamicError> {
        self.check_insert(u, v, weight)?;
        let id = match self.free.pop() {
            Some(id) => {
                self.eu[id as usize] = u;
                self.ev[id as usize] = v;
                self.ew[id as usize] = weight;
                id
            }
            None => {
                let id = self.eu.len() as u32;
                self.eu.push(u);
                self.ev.push(v);
                self.ew.push(weight);
                id
            }
        };
        self.adj[u as usize].push(id);
        self.adj[v as usize].push(id);
        self.live += 1;
        Ok(id)
    }

    /// Validates an insertion without mutating (shared with the sharded
    /// engine's speculation path, which must reject exactly the ops the
    /// real insertion would).
    pub(crate) fn check_insert(
        &self,
        u: Vertex,
        v: Vertex,
        weight: u64,
    ) -> Result<(), DynamicError> {
        for x in [u, v] {
            if (x as usize) >= self.n {
                return Err(DynamicError::VertexOutOfRange {
                    vertex: x,
                    n: self.n,
                });
            }
        }
        if u == v {
            return Err(DynamicError::SelfLoop { vertex: u });
        }
        if weight == 0 {
            return Err(DynamicError::ZeroWeight { u, v });
        }
        Ok(())
    }

    /// The slab id and edge that [`DynGraph::delete`] would remove for
    /// `{u, v}` — the most recently inserted live copy — without
    /// mutating.
    ///
    /// # Errors
    ///
    /// Exactly the errors `delete` would return.
    pub(crate) fn peek_delete(&self, u: Vertex, v: Vertex) -> Result<(u32, Edge), DynamicError> {
        self.check_delete(u, v)?;
        let pos = self.adj[u as usize]
            .iter()
            .rposition(|&id| self.eu[id as usize] == v || self.ev[id as usize] == v)
            .ok_or(DynamicError::EdgeNotFound { u, v })?;
        let id = self.adj[u as usize][pos];
        Ok((id, self.edge_at(id)))
    }

    /// Validates a deletion's endpoints without scanning for the edge.
    /// A self-loop delete must be rejected here: the adjacency scan in
    /// `delete` matches *any* edge incident to `u` when `u == v`, so
    /// without this check a malformed `delete(v, v)` would silently
    /// remove an arbitrary incident edge and strand the matching on a
    /// dead copy.
    fn check_delete(&self, u: Vertex, v: Vertex) -> Result<(), DynamicError> {
        for x in [u, v] {
            if (x as usize) >= self.n {
                return Err(DynamicError::VertexOutOfRange {
                    vertex: x,
                    n: self.n,
                });
            }
        }
        if u == v {
            return Err(DynamicError::SelfLoop { vertex: u });
        }
        Ok(())
    }

    /// Deletes the most recently inserted live edge `{u, v}` and returns
    /// it.
    ///
    /// # Errors
    ///
    /// [`DynamicError::EdgeNotFound`] if no live copy exists (the graph
    /// is unchanged).
    pub fn delete(&mut self, u: Vertex, v: Vertex) -> Result<Edge, DynamicError> {
        self.check_delete(u, v)?;
        let pos = self.adj[u as usize]
            .iter()
            .rposition(|&id| self.eu[id as usize] == v || self.ev[id as usize] == v)
            .ok_or(DynamicError::EdgeNotFound { u, v })?;
        let id = self.adj[u as usize].remove(pos);
        let vpos = self.adj[v as usize]
            .iter()
            .rposition(|&other| other == id)
            .expect("live edge is in both adjacency lists");
        self.adj[v as usize].remove(vpos);
        let e = self.edge_at(id);
        self.eu[id as usize] = TOMBSTONE;
        self.free.push(id);
        self.live -= 1;
        self.maybe_compact();
        Ok(e)
    }

    /// Whether a live copy of `{u, v}` with exactly this weight exists.
    pub fn has_live_copy(&self, u: Vertex, v: Vertex, weight: u64) -> bool {
        self.adj[u as usize].iter().any(|&id| {
            (self.eu[id as usize] == v || self.ev[id as usize] == v)
                && self.ew[id as usize] == weight
        })
    }

    /// Iterator over the live edges incident to `v`, in insertion order
    /// (with multiplicity for parallel edges).
    pub fn incident(&self, v: Vertex) -> impl Iterator<Item = Edge> + '_ {
        self.adj[v as usize].iter().map(move |&id| self.edge_at(id))
    }

    /// Iterator over all live edges in slab-id order (deterministic for a
    /// given operation history — compaction preserves the order).
    pub fn live_iter(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.eu.len() as u32)
            .filter(move |&id| self.eu[id as usize] != TOMBSTONE)
            .map(move |id| self.edge_at(id))
    }

    /// The maximum live edge weight (0 for an edgeless graph).
    pub fn max_live_weight(&self) -> u64 {
        self.live_iter().map(|e| e.weight).max().unwrap_or(0)
    }

    /// Materializes the live edges as a static [`Graph`] (slab-id order).
    pub fn snapshot(&self) -> Graph {
        let mut out = Graph::new(self.n);
        self.snapshot_into(&mut out);
        out
    }

    /// Materializes the live edges into a reusable [`Graph`] (slab-id
    /// order, as [`DynGraph::snapshot`]), keeping `out`'s allocations —
    /// the rebuild epoch's allocation-free snapshot path.
    pub fn snapshot_into(&self, out: &mut Graph) {
        out.reset(self.n);
        for e in self.live_iter() {
            out.add_edge(e.u, e.v, e.weight);
        }
    }

    /// Compacts when at least [`COMPACT_MIN_DEAD`] slots are dead and the
    /// dead outnumber the live — amortized O(1) per deletion.
    fn maybe_compact(&mut self) {
        if self.free.len() >= COMPACT_MIN_DEAD && self.free.len() * 2 > self.eu.len() {
            self.compact();
        }
    }

    /// Dense re-pack of the slab, preserving slab order; adjacency ids
    /// are remapped in place, so per-vertex insertion order (the deletion
    /// LIFO key) is untouched.
    fn compact(&mut self) {
        self.remap.clear();
        self.remap.resize(self.eu.len(), u32::MAX);
        let mut next = 0usize;
        for id in 0..self.eu.len() {
            if self.eu[id] != TOMBSTONE {
                self.remap[id] = next as u32;
                self.eu[next] = self.eu[id];
                self.ev[next] = self.ev[id];
                self.ew[next] = self.ew[id];
                next += 1;
            }
        }
        self.eu.truncate(next);
        self.ev.truncate(next);
        self.ew.truncate(next);
        self.free.clear();
        let DynGraph { adj, remap, .. } = self;
        for list in adj.iter_mut() {
            for id in list.iter_mut() {
                *id = remap[*id as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_delete_roundtrip() {
        let mut g = DynGraph::new(4);
        g.insert(0, 1, 3).unwrap();
        g.insert(1, 2, 4).unwrap();
        assert_eq!(g.live_edges(), 2);
        assert_eq!(g.delete(2, 1).unwrap(), Edge::new(1, 2, 4));
        assert_eq!(g.live_edges(), 1);
        assert_eq!(g.degree(1), 1);
        assert_eq!(
            g.delete(1, 2),
            Err(DynamicError::EdgeNotFound { u: 1, v: 2 })
        );
    }

    #[test]
    fn delete_takes_most_recent_parallel_copy() {
        let mut g = DynGraph::new(2);
        g.insert(0, 1, 1).unwrap();
        g.insert(0, 1, 9).unwrap();
        assert_eq!(g.delete(0, 1).unwrap().weight, 9, "LIFO on parallel edges");
        assert!(g.has_live_copy(0, 1, 1));
        assert!(!g.has_live_copy(0, 1, 9));
    }

    #[test]
    fn slab_ids_are_reused() {
        let mut g = DynGraph::new(3);
        let a = g.insert(0, 1, 1).unwrap();
        g.delete(0, 1).unwrap();
        let b = g.insert(1, 2, 2).unwrap();
        assert_eq!(a, b, "freed slab slot is recycled");
        assert_eq!(g.live_edges(), 1);
    }

    #[test]
    fn malformed_updates_are_typed_errors() {
        let mut g = DynGraph::new(2);
        assert!(matches!(
            g.insert(0, 5, 1),
            Err(DynamicError::VertexOutOfRange { .. })
        ));
        assert_eq!(g.insert(1, 1, 1), Err(DynamicError::SelfLoop { vertex: 1 }));
        assert_eq!(
            g.insert(0, 1, 0),
            Err(DynamicError::ZeroWeight { u: 0, v: 1 })
        );
        assert_eq!(g.live_edges(), 0);
    }

    #[test]
    fn snapshot_matches_live_set() {
        let mut g = DynGraph::new(4);
        g.insert(0, 1, 2).unwrap();
        g.insert(2, 3, 5).unwrap();
        g.insert(1, 2, 7).unwrap();
        g.delete(2, 3).unwrap();
        let s = g.snapshot();
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.vertex_count(), 4);
        assert_eq!(g.max_live_weight(), 7);
        let mut weights: Vec<u64> = s.edges().iter().map(|e| e.weight).collect();
        weights.sort_unstable();
        assert_eq!(weights, vec![2, 7]);
    }

    #[test]
    fn snapshot_into_reuses_buffer() {
        let mut g = DynGraph::new(3);
        g.insert(0, 1, 2).unwrap();
        g.insert(1, 2, 3).unwrap();
        let mut buf = Graph::new(0);
        g.snapshot_into(&mut buf);
        assert_eq!(buf, g.snapshot());
        g.delete(0, 1).unwrap();
        g.snapshot_into(&mut buf);
        assert_eq!(buf, g.snapshot());
    }

    #[test]
    fn incident_respects_insertion_order() {
        let mut g = DynGraph::new(3);
        g.insert(1, 0, 4).unwrap();
        g.insert(1, 2, 6).unwrap();
        let ws: Vec<u64> = g.incident(1).map(|e| e.weight).collect();
        assert_eq!(ws, vec![4, 6]);
    }

    #[test]
    fn peek_delete_previews_the_lifo_copy() {
        let mut g = DynGraph::new(3);
        g.insert(0, 1, 1).unwrap();
        let heavy = g.insert(1, 0, 9).unwrap();
        let (id, e) = g.peek_delete(0, 1).unwrap();
        assert_eq!(id, heavy);
        assert_eq!(e.weight, 9);
        assert_eq!(g.delete(0, 1).unwrap(), e, "peek agrees with delete");
        assert_eq!(
            g.peek_delete(1, 2),
            Err(DynamicError::EdgeNotFound { u: 1, v: 2 })
        );
    }

    #[test]
    fn compaction_repacks_and_preserves_adjacency_order() {
        let mut g = DynGraph::new(8);
        // grow the slab well past the compaction minimum, then delete
        // most of it
        let mut live = Vec::new();
        for i in 0..200u32 {
            let u = i % 8;
            let v = (i + 1) % 8;
            g.insert(u, v, (i + 1) as u64).unwrap();
            live.push((u, v, (i + 1) as u64));
        }
        let before_slots = g.slab_slots();
        assert_eq!(before_slots, 200);
        // request 150 deletions by endpoint pair; each removes the newest
        // live copy of that pair (weights are unique, so the reference
        // list identifies the removed copy unambiguously)
        for _ in 0..150 {
            let (u, v, _) = live[0];
            let e = g.delete(u, v).unwrap();
            let pos = live
                .iter()
                .rposition(|&(a, b, w)| Edge::new(a, b, w).same_endpoints(&e) && w == e.weight)
                .expect("deleted copy is in the reference list");
            live.remove(pos);
        }
        assert!(
            g.slab_slots() < before_slots,
            "slab compacted: {} slots for {} live edges",
            g.slab_slots(),
            g.live_edges()
        );
        assert_eq!(g.live_edges(), 50);
        // adjacency order still matches a graph freshly replayed from the
        // (slab-ordered) snapshot — compaction preserved both orders
        let replay = DynGraph::from_graph(&g.snapshot()).unwrap();
        for v in 0..8u32 {
            let a: Vec<Edge> = g.incident(v).collect();
            let b: Vec<Edge> = replay.incident(v).collect();
            assert_eq!(a, b, "adjacency of {v}");
        }
        // LIFO deletion still behaves after compaction
        let before = g.live_edges();
        let (u, v, _) = live[live.len() - 1];
        g.delete(u, v).unwrap();
        assert_eq!(g.live_edges(), before - 1);
    }
}
