//! The mutable live-edge store behind the update-stream engine.
//!
//! [`Graph`] is append-only (its cached CSR view is
//! invalidated on every mutation), which is the right trade-off for the
//! static solvers but ruinous under an update stream. [`DynGraph`] is the
//! dynamic counterpart: a slab of live edges plus per-vertex adjacency
//! lists of edge ids, giving O(1) insertion, O(degree) deletion, and
//! O(degree) incidence scans without any derived structure to rebuild.
//! [`DynGraph::snapshot`] materializes the live edges as a [`Graph`] when
//! a static algorithm (the rebuild epoch's class sweep, an oracle solve)
//! needs one.

use wmatch_graph::{Edge, Graph, Vertex};

use crate::error::DynamicError;

/// A dynamic undirected multigraph over a fixed vertex range `0..n`.
///
/// Edges live in a slab (`u32` ids, reused after deletion) and each
/// vertex keeps the ids of its live incident edges in insertion order.
/// Deleting `{u, v}` removes the most recently inserted live copy — a
/// deterministic rule that keeps replay reproducible under parallel
/// edges.
///
/// # Example
///
/// ```
/// use wmatch_dynamic::DynGraph;
///
/// let mut g = DynGraph::new(3);
/// g.insert(0, 1, 5).unwrap();
/// g.insert(1, 2, 7).unwrap();
/// assert_eq!(g.live_edges(), 2);
/// assert_eq!(g.degree(1), 2);
/// let e = g.delete(1, 2).unwrap();
/// assert_eq!(e.weight, 7);
/// assert_eq!(g.live_edges(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DynGraph {
    n: usize,
    slab: Vec<Option<Edge>>,
    free: Vec<u32>,
    adj: Vec<Vec<u32>>,
    live: usize,
}

impl DynGraph {
    /// An edgeless dynamic graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        DynGraph {
            n,
            slab: Vec::new(),
            free: Vec::new(),
            adj: vec![Vec::new(); n],
            live: 0,
        }
    }

    /// A dynamic graph seeded with every edge of `g` (in insertion order).
    ///
    /// # Errors
    ///
    /// [`DynamicError::ZeroWeight`] if `g` contains a zero-weight edge
    /// (the static [`Graph`] does not enforce positivity; the dynamic
    /// model does).
    pub fn from_graph(g: &Graph) -> Result<Self, DynamicError> {
        let mut out = DynGraph::new(g.vertex_count());
        for e in g.edges() {
            out.insert(e.u, e.v, e.weight)?;
        }
        Ok(out)
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    #[inline]
    pub fn live_edges(&self) -> usize {
        self.live
    }

    /// Degree of `v` (counting parallel edges).
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v as usize].len()
    }

    /// Inserts a live edge and returns its slab id.
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`], [`DynamicError::SelfLoop`] or
    /// [`DynamicError::ZeroWeight`] for malformed insertions; the graph
    /// is unchanged on error.
    pub fn insert(&mut self, u: Vertex, v: Vertex, weight: u64) -> Result<u32, DynamicError> {
        for x in [u, v] {
            if (x as usize) >= self.n {
                return Err(DynamicError::VertexOutOfRange {
                    vertex: x,
                    n: self.n,
                });
            }
        }
        if u == v {
            return Err(DynamicError::SelfLoop { vertex: u });
        }
        if weight == 0 {
            return Err(DynamicError::ZeroWeight { u, v });
        }
        let e = Edge::new(u, v, weight);
        let id = match self.free.pop() {
            Some(id) => {
                self.slab[id as usize] = Some(e);
                id
            }
            None => {
                let id = self.slab.len() as u32;
                self.slab.push(Some(e));
                id
            }
        };
        self.adj[u as usize].push(id);
        self.adj[v as usize].push(id);
        self.live += 1;
        Ok(id)
    }

    /// Deletes the most recently inserted live edge `{u, v}` and returns
    /// it.
    ///
    /// # Errors
    ///
    /// [`DynamicError::EdgeNotFound`] if no live copy exists (the graph
    /// is unchanged).
    pub fn delete(&mut self, u: Vertex, v: Vertex) -> Result<Edge, DynamicError> {
        for x in [u, v] {
            if (x as usize) >= self.n {
                return Err(DynamicError::VertexOutOfRange {
                    vertex: x,
                    n: self.n,
                });
            }
        }
        let pos = self.adj[u as usize]
            .iter()
            .rposition(|&id| {
                self.slab[id as usize]
                    .expect("adjacency holds live ids")
                    .touches(v)
            })
            .ok_or(DynamicError::EdgeNotFound { u, v })?;
        let id = self.adj[u as usize].remove(pos);
        let vpos = self.adj[v as usize]
            .iter()
            .rposition(|&other| other == id)
            .expect("live edge is in both adjacency lists");
        self.adj[v as usize].remove(vpos);
        let e = self.slab[id as usize].take().expect("id was live");
        self.free.push(id);
        self.live -= 1;
        Ok(e)
    }

    /// Whether a live copy of `{u, v}` with exactly this weight exists.
    pub fn has_live_copy(&self, u: Vertex, v: Vertex, weight: u64) -> bool {
        self.adj[u as usize].iter().any(|&id| {
            let e = self.slab[id as usize].expect("adjacency holds live ids");
            e.touches(v) && e.weight == weight
        })
    }

    /// Iterator over the live edges incident to `v`, in insertion order
    /// (with multiplicity for parallel edges).
    pub fn incident(&self, v: Vertex) -> impl Iterator<Item = Edge> + '_ {
        self.adj[v as usize]
            .iter()
            .map(move |&id| self.slab[id as usize].expect("adjacency holds live ids"))
    }

    /// Iterator over all live edges in slab-id order (deterministic for a
    /// given operation history).
    pub fn live_iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.slab.iter().filter_map(|e| *e)
    }

    /// The maximum live edge weight (0 for an edgeless graph).
    pub fn max_live_weight(&self) -> u64 {
        self.live_iter().map(|e| e.weight).max().unwrap_or(0)
    }

    /// Materializes the live edges as a static [`Graph`] (slab-id order).
    pub fn snapshot(&self) -> Graph {
        Graph::from_edges(self.n, self.live_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_delete_roundtrip() {
        let mut g = DynGraph::new(4);
        g.insert(0, 1, 3).unwrap();
        g.insert(1, 2, 4).unwrap();
        assert_eq!(g.live_edges(), 2);
        assert_eq!(g.delete(2, 1).unwrap(), Edge::new(1, 2, 4));
        assert_eq!(g.live_edges(), 1);
        assert_eq!(g.degree(1), 1);
        assert_eq!(
            g.delete(1, 2),
            Err(DynamicError::EdgeNotFound { u: 1, v: 2 })
        );
    }

    #[test]
    fn delete_takes_most_recent_parallel_copy() {
        let mut g = DynGraph::new(2);
        g.insert(0, 1, 1).unwrap();
        g.insert(0, 1, 9).unwrap();
        assert_eq!(g.delete(0, 1).unwrap().weight, 9, "LIFO on parallel edges");
        assert!(g.has_live_copy(0, 1, 1));
        assert!(!g.has_live_copy(0, 1, 9));
    }

    #[test]
    fn slab_ids_are_reused() {
        let mut g = DynGraph::new(3);
        let a = g.insert(0, 1, 1).unwrap();
        g.delete(0, 1).unwrap();
        let b = g.insert(1, 2, 2).unwrap();
        assert_eq!(a, b, "freed slab slot is recycled");
        assert_eq!(g.live_edges(), 1);
    }

    #[test]
    fn malformed_updates_are_typed_errors() {
        let mut g = DynGraph::new(2);
        assert!(matches!(
            g.insert(0, 5, 1),
            Err(DynamicError::VertexOutOfRange { .. })
        ));
        assert_eq!(g.insert(1, 1, 1), Err(DynamicError::SelfLoop { vertex: 1 }));
        assert_eq!(
            g.insert(0, 1, 0),
            Err(DynamicError::ZeroWeight { u: 0, v: 1 })
        );
        assert_eq!(g.live_edges(), 0);
    }

    #[test]
    fn snapshot_matches_live_set() {
        let mut g = DynGraph::new(4);
        g.insert(0, 1, 2).unwrap();
        g.insert(2, 3, 5).unwrap();
        g.insert(1, 2, 7).unwrap();
        g.delete(2, 3).unwrap();
        let s = g.snapshot();
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.vertex_count(), 4);
        assert_eq!(g.max_live_weight(), 7);
        let mut weights: Vec<u64> = s.edges().iter().map(|e| e.weight).collect();
        weights.sort_unstable();
        assert_eq!(weights, vec![2, 7]);
    }

    #[test]
    fn incident_respects_insertion_order() {
        let mut g = DynGraph::new(3);
        g.insert(1, 0, 4).unwrap();
        g.insert(1, 2, 6).unwrap();
        let ws: Vec<u64> = g.incident(1).map(|e| e.weight).collect();
        assert_eq!(ws, vec![4, 6]);
    }
}
