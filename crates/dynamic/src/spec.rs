//! Batched speculative execution: ball-overlap grouping, parallel group
//! repair, and in-order commit — the machinery behind
//! [`DynamicMatcher::apply_batch`](crate::DynamicMatcher::apply_batch)
//! and the sharded engine.
//!
//! # The execution model
//!
//! A batch of updates is executed in three stages:
//!
//! 1. **Grouping** (pure). Ops are routed to their owning vertex shard
//!    (the shard of `min(u, v)`, so every op on a pair lands in one
//!    place), then a union-find over touched endpoints merges ops whose
//!    repair balls can overlap *structurally*: two ops sharing an
//!    endpoint join one **overlap group**. Groups are the unit of
//!    speculation — within a group, ops run sequentially in stream order
//!    and see each other's virtual changes, so structural verdicts
//!    (which LIFO copy a delete removes, whether a live copy remains)
//!    are exact, never speculative.
//! 2. **Speculation** (parallel). Disjoint groups repair concurrently on
//!    the [`WorkerPool`] against the frozen pre-batch graph/matching,
//!    each producing per-op [`Plan`]s (journal of matching mutations,
//!    write set, read set) in per-worker arenas that are reused across
//!    batches. When a following batch is known, one extra pool item
//!    builds *its* grouping concurrently — the double-buffered pipelined
//!    ingest stage.
//! 3. **Commit** (sequential, stream order). Each op either *replays*
//!    its plan — valid iff no earlier-committed op outside its group
//!    wrote a vertex the group's speculation read — or falls back to the
//!    sequential repair, which is literally the
//!    [`DynamicMatcher`](crate::DynamicMatcher) code path. Invalidation
//!    is resolved through a vertex → reader-groups chain index built
//!    from the speculation read sets, so a commit touches only the
//!    groups that actually read its written vertices.
//!
//! The committed state is therefore **bit-identical to the sequential
//! engine** for any thread count, shard count, and batch size: grouping
//! and scheduling choose *how* plans are produced, the read-set check
//! decides *whether* a plan is indistinguishable from running the repair
//! at commit time, and everything else takes the sequential path.
//!
//! # The one-worker inline path
//!
//! With a single pool worker there is no concurrency to win, so the
//! whole apparatus is bypassed: ops are committed straight through
//! [`EngineCore::apply_one`] with zero grouping, speculation, or
//! read-tracking overhead. This is what makes the parallel path cost
//! ~nothing at `threads = 1` instead of just breaking even.
//!
//! [`WorkerPool`]: wmatch_graph::WorkerPool

use wmatch_graph::scratch::{EpochMap, EpochSet};
use wmatch_graph::{Edge, Matching, Scratch, Vertex};

use crate::dyngraph::DynGraph;
use crate::engine::{BatchError, BatchStats, DynamicConfig, EngineCore, UpdateStats};
use crate::error::DynamicError;
use crate::repair::{repair_delete, repair_insert, RepairGraph, RepairKit, RepairMatching};
use crate::update::UpdateOp;

/// The shard owning vertex `v` under `k` contiguous vertex ranges
/// (out-of-range vertices clamp to the last shard, where validation
/// rejects them).
#[inline]
pub(crate) fn shard_of(v: Vertex, k: usize, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let v = (v as usize).min(n - 1);
    v * k / n
}

/// An edge a group inserted during the current batch, with a liveness
/// flag so a later same-group delete can consume it.
#[derive(Debug, Clone, Copy)]
struct SpecEdge {
    u: Vertex,
    v: Vertex,
    weight: u64,
    live: bool,
}

/// A group's speculative graph view: the frozen pre-batch [`DynGraph`]
/// minus the slab slots this group virtually deleted, plus the edges it
/// virtually inserted — presented in exactly the adjacency order the
/// real graph will have once the batch commits (batch inserts are newer
/// than every pre-batch edge).
struct SpecGraph<'a> {
    base: &'a DynGraph,
    inserted: &'a [SpecEdge],
    dead: &'a EpochSet,
}

impl RepairGraph for SpecGraph<'_> {
    fn vertex_count(&self) -> usize {
        self.base.vertex_count()
    }

    fn for_each_incident(&self, v: Vertex, f: &mut dyn FnMut(Edge)) {
        for &id in self.base.adj_ids(v) {
            if !self.dead.contains(id) {
                f(self.base.edge_at(id));
            }
        }
        // `inserted` holds only the *current group's* few batch inserts
        // (not a whole shard's), so this linear scan is near-free
        for se in self.inserted {
            if se.live && (se.u == v || se.v == v) {
                f(Edge::new(se.u, se.v, se.weight));
            }
        }
    }

    fn has_live_copy(&self, u: Vertex, v: Vertex, weight: u64) -> bool {
        for &id in self.base.adj_ids(u) {
            if !self.dead.contains(id) {
                let e = self.base.edge_at(id);
                if e.touches(v) && e.weight == weight {
                    return true;
                }
            }
        }
        self.inserted.iter().any(|se| {
            se.live && se.weight == weight && ((se.u == u && se.v == v) || (se.u == v && se.v == u))
        })
    }
}

/// A group's speculative matching view: the frozen pre-batch [`Matching`]
/// under an epoch-stamped per-vertex overlay (`Some(e)` = matched to `e`,
/// `None` binding = unmatched, no binding = frozen state).
struct SpecMatching<'a> {
    base: &'a Matching,
    overlay: &'a mut EpochMap<Option<Edge>>,
}

impl RepairMatching for SpecMatching<'_> {
    fn matched_edge(&self, v: Vertex) -> Option<Edge> {
        match self.overlay.get(v) {
            Some(o) => o,
            None => self.base.matched_edge(v),
        }
    }

    fn do_insert(&mut self, e: Edge) {
        debug_assert!(self.matched_edge(e.u).is_none());
        debug_assert!(self.matched_edge(e.v).is_none());
        self.overlay.insert(e.u, Some(e));
        self.overlay.insert(e.v, Some(e));
    }

    fn do_remove(&mut self, u: Vertex, v: Vertex) -> Edge {
        let e = self.matched_edge(u).expect("repair removes matched edges");
        debug_assert_eq!(e.other(u), v);
        self.overlay.insert(u, None);
        self.overlay.insert(v, None);
        e
    }
}

/// One speculated op: either a typed rejection or the full repair
/// outcome, with ranges into the owning worker's pooled arenas.
#[derive(Debug, Clone)]
struct Plan {
    err: Option<DynamicError>,
    gain: i128,
    recourse: u64,
    augmentations: u64,
    /// `journal_arena` range: the matching mutations, in order.
    journal: (u32, u32),
    /// `writes_arena` range: vertices this op writes (op endpoints plus
    /// every journal-edge endpoint).
    writes: (u32, u32),
}

/// Where one group's speculation results live: the worker slot whose
/// arenas hold them, the first plan index, and the group's read-set range
/// in that worker's `reads_arena`.
#[derive(Debug, Clone, Copy, Default)]
struct GroupResult {
    slot: u32,
    plan_start: u32,
    reads: (u32, u32),
    /// The group's speculation worker panicked mid-repair: its arena
    /// ranges are garbage (possibly out of bounds) and must never be
    /// indexed — the commit runs every op of the group through the
    /// sequential fallback instead.
    panicked: bool,
}

/// Per-pool-worker speculation state: a read-tracking repair kit, the
/// epoch-stamped overlays (cleared in O(1) per group), and the plan /
/// journal / write / read arenas — all reused across groups *and*
/// batches, so steady-state speculation allocates nothing.
#[derive(Debug)]
struct SpecWorker {
    kit: RepairKit,
    overlay: EpochMap<Option<Edge>>,
    /// Pre-batch slab ids the current group virtually deleted.
    dead: EpochSet,
    inserted: Vec<SpecEdge>,
    plans: Vec<Plan>,
    journal_arena: Vec<(Edge, bool)>,
    writes_arena: Vec<Vertex>,
    reads_arena: Vec<Vertex>,
}

impl SpecWorker {
    fn new() -> Self {
        SpecWorker {
            kit: RepairKit::new(true),
            overlay: EpochMap::new(),
            dead: EpochSet::new(),
            inserted: Vec::new(),
            plans: Vec::new(),
            journal_arena: Vec::new(),
            writes_arena: Vec::new(),
            reads_arena: Vec::new(),
        }
    }

    fn begin_batch(&mut self) {
        self.plans.clear();
        self.journal_arena.clear();
        self.writes_arena.clear();
        self.reads_arena.clear();
    }

    /// The structural half of a speculative insert/delete, mirroring
    /// [`DynGraph::insert`]/[`DynGraph::delete`] exactly (same validation,
    /// same LIFO copy choice) against the group's virtual state. Exact
    /// because *every* op on a pair shares both endpoints and therefore
    /// lands in this group.
    fn spec_structural(&mut self, g: &DynGraph, op: UpdateOp) -> Result<(), DynamicError> {
        match op {
            UpdateOp::Insert { u, v, weight } => {
                g.check_insert(u, v, weight)?;
                self.inserted.push(SpecEdge {
                    u,
                    v,
                    weight,
                    live: true,
                });
                Ok(())
            }
            UpdateOp::Delete { u, v } => {
                // LIFO: the group's own batch inserts are newer than
                // every pre-batch edge
                if (u as usize) < g.vertex_count() && (v as usize) < g.vertex_count() {
                    if let Some(pos) = self.inserted.iter().rposition(|se| {
                        se.live && ((se.u == u && se.v == v) || (se.u == v && se.v == u))
                    }) {
                        self.inserted[pos].live = false;
                        return Ok(());
                    }
                }
                match g.peek_delete(u, v) {
                    Ok((first_id, _)) => {
                        // the newest *non-dead* pre-batch copy: walk the
                        // adjacency backwards past virtually deleted ids
                        let id = self
                            .base_lifo_copy(g, u, v)
                            .ok_or(DynamicError::EdgeNotFound { u, v })?;
                        let _ = first_id;
                        self.dead.insert(id);
                        Ok(())
                    }
                    Err(e) => {
                        // range errors propagate; EdgeNotFound must still
                        // consider dead-skipping (peek found a copy we
                        // virtually deleted → truly not found now)
                        match e {
                            DynamicError::EdgeNotFound { .. } => {
                                Err(DynamicError::EdgeNotFound { u, v })
                            }
                            other => Err(other),
                        }
                    }
                }
            }
        }
    }

    /// The newest pre-batch live copy of `{u, v}` not yet virtually
    /// deleted, as a slab id.
    fn base_lifo_copy(&self, g: &DynGraph, u: Vertex, v: Vertex) -> Option<u32> {
        g.adj_ids(u)
            .iter()
            .rev()
            .copied()
            .find(|&id| !self.dead.contains(id) && g.edge_at(id).touches(v))
    }

    /// Speculates one overlap group's ops in stream order against the
    /// frozen `(g, m)`, pushing one [`Plan`] per op — the parallel phase.
    /// With `chaos_panic` the worker panics partway through the group
    /// (the chaos harness's worker-crash fault); the caller's
    /// `catch_unwind` turns that into a panicked [`GroupResult`].
    #[allow(clippy::too_many_arguments)]
    fn speculate_group(
        &mut self,
        g: &DynGraph,
        m: &Matching,
        cfg: &DynamicConfig,
        ops: &[UpdateOp],
        group_ops: &[u32],
        slot: u32,
        chaos_panic: bool,
    ) -> GroupResult {
        let n = g.vertex_count();
        self.overlay.ensure(n.max(1));
        self.overlay.clear();
        self.dead.ensure(g.slab_slots().max(1));
        self.dead.clear();
        self.inserted.clear();
        self.kit.begin_read_window(n);
        let plan_start = self.plans.len() as u32;
        for (done, &opi) in group_ops.iter().enumerate() {
            if chaos_panic && done == group_ops.len() / 2 {
                // mid-ball-repair: earlier ops' plans are already in the
                // arenas (and stay there as garbage), later ops never run
                panic!("chaos: injected worker panic mid-ball-repair");
            }
            let op = ops[opi as usize];
            self.kit.begin_update();
            let structural = self.spec_structural(g, op);
            let plan = match structural {
                Err(e) => Plan {
                    err: Some(e),
                    gain: 0,
                    recourse: 0,
                    augmentations: 0,
                    journal: (0, 0),
                    writes: (0, 0),
                },
                Ok(()) => {
                    let SpecWorker {
                        kit,
                        overlay,
                        dead,
                        inserted,
                        ..
                    } = self;
                    let view = SpecGraph {
                        base: g,
                        inserted,
                        dead,
                    };
                    let mut sm = SpecMatching { base: m, overlay };
                    let fix = match op {
                        UpdateOp::Insert { u, v, weight } => {
                            repair_insert(kit, &view, &mut sm, u, v, weight, cfg.max_len)
                        }
                        UpdateOp::Delete { u, v } => {
                            repair_delete(kit, &view, &mut sm, u, v, cfg.max_len)
                        }
                    };
                    let j0 = self.journal_arena.len() as u32;
                    let w0 = self.writes_arena.len() as u32;
                    let (u, v) = op.endpoints();
                    self.writes_arena.extend([u, v]);
                    for &(e, ins) in &self.kit.journal {
                        self.journal_arena.push((e, ins));
                        self.writes_arena.extend([e.u, e.v]);
                    }
                    Plan {
                        err: None,
                        gain: fix.gain,
                        recourse: self.kit.net_recourse(),
                        augmentations: fix.augmentations,
                        journal: (j0, self.journal_arena.len() as u32),
                        writes: (w0, self.writes_arena.len() as u32),
                    }
                }
            };
            self.plans.push(plan);
        }
        let r0 = self.reads_arena.len() as u32;
        self.reads_arena.extend_from_slice(&self.kit.read);
        GroupResult {
            slot,
            plan_start,
            reads: (r0, self.reads_arena.len() as u32),
            panicked: false,
        }
    }
}

/// One batch's routing and ball-overlap grouping, double-buffered so the
/// grouping of batch *k+1* can be computed (as one extra pool item)
/// while batch *k* speculates. Pure with respect to the op slice, so
/// pipelined and inline grouping are bit-identical.
#[derive(Debug)]
struct GroupingSet {
    /// The ops this grouping describes — both the pipeline-verification
    /// key and the working copy the pipelined build reads.
    ops_copy: Vec<UpdateOp>,
    shard_lists: Vec<Vec<u32>>,
    /// Union-find parents over op indices.
    parent: Vec<u32>,
    /// Endpoint → first op that touched it (per shard; epoch-cleared).
    vnode: EpochMap<u32>,
    /// Union-find root → dense group id.
    gmap: Vec<u32>,
    placed: Vec<u32>,
    /// Per group: `(start, len)` into `ops_arena`.
    groups: Vec<(u32, u32)>,
    /// Op indices grouped contiguously, stream order within each group.
    ops_arena: Vec<u32>,
    /// Per op: `(group id, index within the group)`.
    route: Vec<(u32, u32)>,
}

fn uf_find(parent: &mut [u32], mut i: u32) -> u32 {
    while parent[i as usize] != i {
        let gp = parent[parent[i as usize] as usize];
        parent[i as usize] = gp;
        i = gp;
    }
    i
}

fn uf_union(parent: &mut [u32], i: u32, j: u32) {
    let ri = uf_find(parent, i);
    let rj = uf_find(parent, j);
    if ri != rj {
        parent[ri.max(rj) as usize] = ri.min(rj);
    }
}

impl GroupingSet {
    fn new() -> Self {
        GroupingSet {
            ops_copy: Vec::new(),
            shard_lists: Vec::new(),
            parent: Vec::new(),
            vnode: EpochMap::new(),
            gmap: Vec::new(),
            placed: Vec::new(),
            groups: Vec::new(),
            ops_arena: Vec::new(),
            route: Vec::new(),
        }
    }

    /// Routes `ops` to shards and unions ops sharing an endpoint within a
    /// shard into overlap groups (dense ids in stream order of each
    /// group's first op). All buffers are reused; no steady-state
    /// allocation.
    fn build(&mut self, ops: &[UpdateOp], k: usize, n: usize) {
        self.ops_copy.clear();
        self.ops_copy.extend_from_slice(ops);
        if self.shard_lists.len() < k {
            self.shard_lists.resize_with(k, Vec::new);
        }
        for l in self.shard_lists.iter_mut().take(k) {
            l.clear();
        }
        for (i, op) in ops.iter().enumerate() {
            let (u, v) = op.endpoints();
            self.shard_lists[shard_of(u.min(v), k, n)].push(i as u32);
        }
        self.parent.clear();
        self.parent.extend(0..ops.len() as u32);
        self.vnode.ensure(n.max(1));
        for s in 0..k {
            // per-shard endpoint bindings: ops in different shards stay
            // separate units even when they share a vertex (the commit
            // read-check covers those conflicts)
            self.vnode.clear();
            for li in 0..self.shard_lists[s].len() {
                let i = self.shard_lists[s][li];
                let (u, v) = ops[i as usize].endpoints();
                for x in [u, v] {
                    if (x as usize) < n {
                        match self.vnode.get(x) {
                            Some(j) => uf_union(&mut self.parent, i, j),
                            None => self.vnode.insert(x, i),
                        }
                    }
                }
            }
        }
        self.gmap.clear();
        self.gmap.resize(ops.len(), u32::MAX);
        self.groups.clear();
        self.route.clear();
        for i in 0..ops.len() as u32 {
            let r = uf_find(&mut self.parent, i) as usize;
            let gid = if self.gmap[r] == u32::MAX {
                let gid = self.groups.len() as u32;
                self.gmap[r] = gid;
                self.groups.push((0, 0));
                gid
            } else {
                self.gmap[r]
            };
            self.route.push((gid, self.groups[gid as usize].1));
            self.groups[gid as usize].1 += 1;
        }
        // counting-sort op indices into per-group contiguous ranges
        self.ops_arena.clear();
        self.ops_arena.resize(ops.len(), 0);
        self.placed.clear();
        let mut at = 0u32;
        for g in self.groups.iter_mut() {
            g.0 = at;
            self.placed.push(at);
            at += g.1;
        }
        for (i, &(gid, _)) in self.route.iter().enumerate() {
            let p = &mut self.placed[gid as usize];
            self.ops_arena[*p as usize] = i as u32;
            *p += 1;
        }
    }

    /// The op indices of group `gid`, in stream order.
    fn group_ops(&self, gid: usize) -> &[u32] {
        let (start, len) = self.groups[gid];
        &self.ops_arena[start as usize..(start + len) as usize]
    }
}

/// A raw pointer that asserts cross-thread transferability; every use
/// site guarantees disjoint access (one worker per slot, one pool item
/// for the pipelined grouping buffer).
struct SlotPtr<T>(*mut T);

impl<T> SlotPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: see the struct docs — all dereferences are disjoint by slot or
// by item.
unsafe impl<T> Send for SlotPtr<T> {}
unsafe impl<T> Sync for SlotPtr<T> {}

/// The reusable batch-execution state shared by
/// [`DynamicMatcher::apply_batch`](crate::DynamicMatcher::apply_batch)
/// (`k = 1`) and the sharded engine (`k` = shard count). See the
/// [module docs](self) for the three-stage model.
#[derive(Debug)]
pub(crate) struct BatchSpec {
    /// Routing shard count (grouping granularity; semantics-free).
    pub k: usize,
    workers: Vec<SpecWorker>,
    grouping: [GroupingSet; 2],
    /// Which grouping buffer describes the batch being executed.
    cur: usize,
    /// Whether the *other* buffer holds a pipelined grouping for the
    /// next batch (verified against the actual ops before use).
    next_ready: bool,
    results: Vec<GroupResult>,
    group_ok: Vec<bool>,
    /// Vertex → head of its reader-group chain in `readers_entries`.
    readers_head: EpochMap<u32>,
    /// `(group id, next entry index or MAX)` chain links.
    readers_entries: Vec<(u32, u32)>,
    /// Ops committed by replaying their speculated plan.
    pub replayed: u64,
    /// Ops that fell back to the sequential repair at commit time.
    pub fallbacks: u64,
    /// Ops committed through the one-worker inline path (no speculation).
    pub inline_commits: u64,
    /// Ball-overlap groups formed across all speculative batches.
    pub overlap_groups: u64,
    /// Ops whose repair was speculated in the parallel ball phase.
    pub balls_parallel: u64,
    /// Groups whose speculation worker panicked and were committed
    /// entirely through the sequential fallback — the panic-isolation
    /// telemetry the chaos tests assert on.
    pub groups_fallback: u64,
}

impl BatchSpec {
    pub fn new(k: usize, workers: usize) -> Self {
        BatchSpec {
            k: k.max(1),
            workers: (0..workers.max(1)).map(|_| SpecWorker::new()).collect(),
            grouping: [GroupingSet::new(), GroupingSet::new()],
            cur: 0,
            next_ready: false,
            results: Vec::new(),
            group_ok: Vec::new(),
            readers_head: EpochMap::new(),
            readers_entries: Vec::new(),
            replayed: 0,
            fallbacks: 0,
            inline_commits: 0,
            overlap_groups: 0,
            balls_parallel: 0,
            groups_fallback: 0,
        }
    }

    /// Drops any pipelined next-batch grouping. Crash recovery replays
    /// the journal through fresh batches, so a grouping speculated for a
    /// batch that will never run must not be mistaken for them.
    pub fn reset_pipeline(&mut self) {
        self.next_ready = false;
    }

    /// The largest dense scratch footprint any speculation worker used.
    pub fn scratch_high_water(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.kit.scratch_high_water())
            .max()
            .unwrap_or(0)
    }

    /// Executes one batch against `core`: inline at one worker, otherwise
    /// group → speculate (pipelining `next_ops`'s grouping) → commit.
    ///
    /// # Errors
    ///
    /// A [`BatchError`] at the first malformed op; `applied` counts the
    /// committed updates (which remain applied).
    pub fn apply_batch(
        &mut self,
        core: &mut EngineCore,
        ops: &[UpdateOp],
        next_ops: Option<&[UpdateOp]>,
    ) -> Result<BatchStats, BatchError> {
        let mut out = BatchStats::default();
        if let Some(c) = core.chaos.as_mut() {
            c.begin_batch();
        }
        if core.pool.workers() == 1 {
            // one worker: speculation cannot overlap anything — commit
            // straight through the sequential path, zero extra work
            // (worker-panic injection targets the speculative path only;
            // there is no worker here to crash)
            self.next_ready = false;
            for (i, &op) in ops.iter().enumerate() {
                match core.apply_one(op) {
                    Ok(s) => {
                        self.inline_commits += 1;
                        out.absorb(s);
                    }
                    Err(source) => {
                        return Err(BatchError {
                            applied: i,
                            stats: out,
                            source,
                        })
                    }
                }
            }
            return Ok(out);
        }
        let n = core.g.vertex_count();
        // stage 1 — grouping: take the pipelined buffer if it matches
        // these ops, otherwise build inline
        let other = 1 - self.cur;
        if self.next_ready && self.grouping[other].ops_copy == ops {
            self.cur = other;
        } else {
            self.grouping[self.cur].build(ops, self.k, n);
        }
        self.next_ready = false;
        let groups_n = self.grouping[self.cur].groups.len();
        self.overlap_groups += groups_n as u64;
        self.balls_parallel += ops.len() as u64;
        // stage 2 — parallel speculation (+ pipelined grouping of the
        // next batch as one extra item)
        let panic_victim = core.chaos.as_mut().and_then(|c| c.panic_group(groups_n));
        {
            for w in &mut self.workers {
                w.begin_batch();
            }
            let [g0, g1] = &mut self.grouping;
            let (cur_g, next_g): (&GroupingSet, &mut GroupingSet) =
                if self.cur == 0 { (g0, g1) } else { (g1, g0) };
            let workers_ptr = SlotPtr(self.workers.as_mut_ptr());
            let next_ptr = SlotPtr(next_g as *mut GroupingSet);
            let extra = usize::from(next_ops.is_some());
            let (g, m, cfg, k) = (&core.g, &core.m, core.cfg, self.k);
            let task = move |slot: usize, item: usize, _scr: &mut Scratch| -> GroupResult {
                if item == groups_n {
                    // pipelined ingest: grouping is a pure function of
                    // the op slice, so building it here is bit-identical
                    // to building it inline next batch
                    // SAFETY: only item `groups_n` touches the next
                    // buffer — exclusive by item index
                    let ng = unsafe { &mut *next_ptr.get() };
                    ng.build(next_ops.expect("extra item implies next_ops"), k, n);
                    return GroupResult::default();
                }
                // SAFETY: a worker slot runs at most one task at a time,
                // so `workers[slot]` is exclusively this call's
                let w = unsafe { &mut *workers_ptr.get().add(slot) };
                // isolation boundary: a panicking speculation (injected
                // or genuine) degrades this one group to the sequential
                // fallback instead of unwinding through the pool. The
                // worker's partial arena garbage is harmless: the next
                // group on this slot resets all per-group state and
                // appends past whatever the panic left behind.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    w.speculate_group(
                        g,
                        m,
                        &cfg,
                        ops,
                        cur_g.group_ops(item),
                        slot as u32,
                        panic_victim == Some(item),
                    )
                }));
                caught.unwrap_or(GroupResult {
                    slot: slot as u32,
                    plan_start: 0,
                    reads: (0, 0),
                    panicked: true,
                })
            };
            self.results = core.pool.run_map(groups_n + extra, &task);
            self.results.truncate(groups_n);
            self.next_ready = next_ops.is_some();
            self.groups_fallback += self.results.iter().filter(|r| r.panicked).count() as u64;
        }
        // stage 3 — commit in stream order
        self.group_ok.clear();
        self.group_ok.resize(groups_n, true);
        self.build_readers_index(n);
        let BatchSpec {
            workers,
            grouping,
            cur,
            results,
            group_ok,
            readers_head,
            readers_entries,
            replayed,
            fallbacks,
            ..
        } = self;
        let cur_g = &grouping[*cur];
        for (i, &op) in ops.iter().enumerate() {
            let (gid, idx) = cur_g.route[i];
            let res = results[gid as usize];
            let mut stats = UpdateStats::default();
            // a panicked group's plan ranges are garbage — the short-
            // circuit keeps them from ever being indexed
            let plan_live = group_ok[gid as usize]
                && !res.panicked
                && workers[res.slot as usize].plans[(res.plan_start + idx) as usize]
                    .err
                    .is_none();
            if plan_live {
                let w = &workers[res.slot as usize];
                let plan = &w.plans[(res.plan_start + idx) as usize];
                // replay: the read-set check below proved (for every
                // earlier commit) that no foreign write touched anything
                // this group's speculation read, so replaying is
                // indistinguishable from repairing here
                match op {
                    UpdateOp::Insert { u, v, weight } => {
                        core.g
                            .insert(u, v, weight)
                            .expect("speculated insert replays");
                    }
                    UpdateOp::Delete { u, v } => {
                        core.g.delete(u, v).expect("speculated delete replays");
                    }
                }
                for j in plan.journal.0..plan.journal.1 {
                    let (e, ins) = w.journal_arena[j as usize];
                    if ins {
                        core.m.insert(e).expect("replayed insert is valid");
                    } else {
                        core.m
                            .remove_pair(e.u, e.v)
                            .expect("replayed removal is valid");
                    }
                }
                stats.gain = plan.gain;
                stats.recourse = plan.recourse;
                stats.augmentations = plan.augmentations;
                *replayed += 1;
                let writes = &w.writes_arena[plan.writes.0 as usize..plan.writes.1 as usize];
                invalidate_readers(readers_head, readers_entries, group_ok, writes, gid, n);
            } else {
                // sequential fallback — the DynamicMatcher code path
                group_ok[gid as usize] = false;
                let seq = match core.repair_one(op) {
                    Ok(s) => s,
                    Err(source) => {
                        return Err(BatchError {
                            applied: i,
                            stats: out,
                            source,
                        })
                    }
                };
                stats = seq;
                *fallbacks += 1;
                invalidate_readers(
                    readers_head,
                    readers_entries,
                    group_ok,
                    &core.write_buf,
                    gid,
                    n,
                );
            }
            core.finish(&mut stats);
            if stats.rebuilt {
                // the epoch rewrote the matching globally: every
                // remaining speculation is stale
                group_ok.iter_mut().for_each(|ok| *ok = false);
            }
            out.absorb(stats);
        }
        Ok(out)
    }

    /// Builds the vertex → reader-groups chain index from the groups'
    /// speculation read sets (deduplicated per group by the kit's epoch
    /// marks, so each `(vertex, group)` pair appears once).
    fn build_readers_index(&mut self, n: usize) {
        self.readers_head.ensure(n.max(1));
        self.readers_head.clear();
        self.readers_entries.clear();
        for (gid, res) in self.results.iter().enumerate() {
            let w = &self.workers[res.slot as usize];
            for &v in &w.reads_arena[res.reads.0 as usize..res.reads.1 as usize] {
                let head = self.readers_head.get(v).unwrap_or(u32::MAX);
                self.readers_entries.push((gid as u32, head));
                self.readers_head
                    .insert(v, self.readers_entries.len() as u32 - 1);
            }
        }
    }
}

/// A committed write to any vertex another group's speculation read
/// invalidates that group for the rest of the batch. Walks only the
/// written vertices' reader chains — O(actual conflicts), not
/// O(groups × writes).
fn invalidate_readers(
    readers_head: &EpochMap<u32>,
    readers_entries: &[(u32, u32)],
    group_ok: &mut [bool],
    writes: &[Vertex],
    own: u32,
    n: usize,
) {
    for &wv in writes {
        if (wv as usize) >= n {
            continue;
        }
        let mut cursor = readers_head.get(wv);
        while let Some(idx) = cursor {
            let (gid, next) = readers_entries[idx as usize];
            if gid != own {
                group_ok[gid as usize] = false;
            }
            cursor = (next != u32::MAX).then_some(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups_of(ops: &[UpdateOp], k: usize, n: usize) -> GroupingSet {
        let mut gs = GroupingSet::new();
        gs.build(ops, k, n);
        gs
    }

    #[test]
    fn disjoint_ops_form_singleton_groups() {
        let ops = [
            UpdateOp::insert(0, 1, 5),
            UpdateOp::insert(2, 3, 5),
            UpdateOp::insert(4, 5, 5),
        ];
        let gs = groups_of(&ops, 1, 6);
        assert_eq!(gs.groups.len(), 3);
        for (i, &(gid, idx)) in gs.route.iter().enumerate() {
            assert_eq!(gid as usize, i, "stream-ordered dense ids");
            assert_eq!(idx, 0);
            assert_eq!(gs.group_ops(i), &[i as u32]);
        }
    }

    #[test]
    fn shared_endpoint_merges_transitively() {
        // 0-1, 1-2 share 1; 2-3 shares 2 with the second: one group.
        // 5-6 is separate.
        let ops = [
            UpdateOp::insert(0, 1, 5),
            UpdateOp::insert(5, 6, 5),
            UpdateOp::insert(1, 2, 5),
            UpdateOp::delete(2, 3),
            UpdateOp::insert(6, 5, 9),
        ];
        let gs = groups_of(&ops, 1, 8);
        assert_eq!(gs.groups.len(), 2);
        assert_eq!(gs.route[0].0, 0);
        assert_eq!(gs.route[1].0, 1, "5-6 opens group 1");
        assert_eq!(gs.route[2].0, 0);
        assert_eq!(gs.route[3].0, 0);
        assert_eq!(gs.route[4].0, 1, "same pair rejoins 5-6's group");
        assert_eq!(gs.group_ops(0), &[0, 2, 3]);
        assert_eq!(gs.group_ops(1), &[1, 4]);
        // in-group indices follow stream order
        assert_eq!(gs.route[3].1, 2);
        assert_eq!(gs.route[4].1, 1);
    }

    #[test]
    fn hub_vertex_collapses_batch_to_one_group() {
        // adversarial shape: every op touches vertex 0
        let ops: Vec<UpdateOp> = (1..40u32).map(|v| UpdateOp::insert(0, v, 3)).collect();
        let gs = groups_of(&ops, 1, 64);
        assert_eq!(gs.groups.len(), 1);
        assert_eq!(gs.group_ops(0).len(), 39);
    }

    #[test]
    fn cross_shard_sharing_stays_separate() {
        // {0,1} owned by shard 0; {1,9} owned by... min is 1 → shard 0
        // too. {8,9} is shard 1. A vertex-9 overlap between shards must
        // NOT merge: conflicts across shards go through the read check.
        let ops = [
            UpdateOp::insert(0, 1, 5),
            UpdateOp::insert(8, 9, 5),
            UpdateOp::insert(1, 9, 5),
        ];
        let gs = groups_of(&ops, 2, 16);
        assert_eq!(gs.groups.len(), 2);
        assert_eq!(gs.route[0].0, gs.route[2].0, "same shard, shared vertex 1");
        assert_ne!(gs.route[0].0, gs.route[1].0, "different shards");
    }

    #[test]
    fn grouping_is_reusable_and_pure() {
        let ops_a: Vec<UpdateOp> = (0..30u32).map(|i| UpdateOp::insert(i, i + 30, 2)).collect();
        let ops_b = [UpdateOp::insert(0, 1, 1), UpdateOp::insert(1, 2, 1)];
        let mut gs = GroupingSet::new();
        gs.build(&ops_a, 4, 64);
        let first: Vec<(u32, u32)> = gs.route.clone();
        gs.build(&ops_b, 4, 64);
        assert_eq!(gs.groups.len(), 1);
        gs.build(&ops_a, 4, 64);
        assert_eq!(gs.route, first, "rebuild after reuse is identical");
        assert_eq!(gs.ops_copy, ops_a);
    }

    #[test]
    fn out_of_range_endpoints_do_not_bind() {
        // a malformed op (endpoint ≥ n) still gets a group of its own and
        // must not panic the grouping pass
        let ops = [UpdateOp::insert(0, 99, 5), UpdateOp::insert(0, 1, 5)];
        let gs = groups_of(&ops, 2, 8);
        // vertex 0 is shared and in range: they merge through it
        assert_eq!(gs.route[0].0, gs.route[1].0);
        let lone = [UpdateOp::insert(99, 98, 5), UpdateOp::insert(0, 1, 5)];
        let gs = groups_of(&lone, 2, 8);
        assert_eq!(gs.groups.len(), 2, "fully out-of-range op stays alone");
    }
}
