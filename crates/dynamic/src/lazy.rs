//! The bounded-work repair engine: at most `work_budget` augmentations
//! per update, with the residual carried forward.
//!
//! [`LazyMatcher`] runs the same structural phase and the same ball-local
//! repair kernel as the eager engine, but caps each update's convergence
//! loop at `work_budget` applied augmentations
//! (`RepairKit::fix_up_budgeted`). When the budget runs
//! out before the bounded-augmentation invariant is certified, the
//! not-yet-settled dirty vertices are **carried** into the next update's
//! repair (and re-seeded there), so the engine keeps converging towards
//! the invariant while never spending more than a bounded amount of
//! search per op — the engineered "bounded augmentations" trade of
//! Angriman et al. (arXiv 2104.13098) expressed in this crate's
//! machinery.
//!
//! The Fact 1.3 floor is therefore *deferred*, not abandoned: a
//! [`LazyMatcher::flush`] drains the carry with an unbudgeted fix-up,
//! after which the matching admits no positive augmentation of at most
//! `max_len` edges and the usual `(1 − 1/ℓ)` certificate holds. On calm
//! streams the budget is rarely hit and the engine behaves eagerly; under
//! churn storms it degrades smoothly instead of stalling on one hot ball.

use wmatch_graph::{Edge, Graph, Matching, Vertex};

use crate::dyngraph::DynGraph;
use crate::engine::{DynamicConfig, DynamicCounters, EngineCore, UpdateEngine, UpdateStats};
use crate::error::DynamicError;
use crate::update::UpdateOp;

/// The bounded-augmentation-budget dynamic engine; see the
/// [module docs](self).
///
/// # Example
///
/// ```
/// use wmatch_dynamic::{DynamicConfig, LazyMatcher, UpdateOp};
///
/// let mut eng = LazyMatcher::new(4, DynamicConfig::default(), 2);
/// eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
/// eng.apply(UpdateOp::insert(1, 2, 9)).unwrap();
/// eng.flush(); // settle any carried repair debt
/// assert_eq!(eng.matching().weight(), 9);
/// ```
#[derive(Debug)]
pub struct LazyMatcher {
    core: EngineCore,
    work_budget: usize,
    /// Dirty vertices whose convergence a budget-exhausted repair left
    /// unfinished — re-seeded into the next repair (or the flush).
    carry: Vec<Vertex>,
    exhausted_updates: u64,
}

impl LazyMatcher {
    /// An engine over an initially edgeless graph on `n` vertices,
    /// applying at most `work_budget` augmentations per update
    /// (`work_budget ≥ 1`).
    pub fn new(n: usize, cfg: DynamicConfig, work_budget: usize) -> Self {
        LazyMatcher {
            core: EngineCore::new(n, cfg),
            work_budget: work_budget.max(1),
            carry: Vec::new(),
            exhausted_updates: 0,
        }
    }

    /// An engine seeded with an initial graph, bootstrapped to the full
    /// invariant (the initial solve is not budgeted or counted).
    ///
    /// # Errors
    ///
    /// [`DynamicError::ZeroWeight`] if the initial graph carries a
    /// zero-weight edge.
    pub fn from_graph(
        initial: &Graph,
        cfg: DynamicConfig,
        work_budget: usize,
    ) -> Result<Self, DynamicError> {
        let mut eng = LazyMatcher::new(initial.vertex_count(), cfg, work_budget);
        eng.core.g = DynGraph::from_graph(initial)?;
        eng.core.m = crate::engine::static_bounded_matching(
            initial,
            cfg.max_len,
            &mut eng.core.kit.searcher,
        );
        Ok(eng)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.core.cfg
    }

    /// The per-update augmentation budget.
    pub fn work_budget(&self) -> usize {
        self.work_budget
    }

    /// The maintained matching (always valid; certified to the Fact 1.3
    /// floor once the carry is drained — see [`LazyMatcher::flush`]).
    pub fn matching(&self) -> &Matching {
        &self.core.m
    }

    /// The live graph.
    pub fn graph(&self) -> &DynGraph {
        &self.core.g
    }

    /// Lifetime counters.
    pub fn counters(&self) -> DynamicCounters {
        self.core.counters
    }

    /// Dirty vertices currently carried (0 ⇔ the invariant is certified).
    pub fn carry_len(&self) -> usize {
        self.carry.len()
    }

    /// Updates whose repair hit the budget before certifying.
    pub fn exhausted_updates(&self) -> u64 {
        self.exhausted_updates
    }

    /// Chunks stolen across the pool's jobs (rebuild epochs are the only
    /// parallel layer; always 0 at `threads = 1`).
    pub fn steals(&self) -> u64 {
        self.core.pool.steals()
    }

    /// The largest dense scratch footprint used so far.
    pub fn scratch_high_water(&self) -> usize {
        self.core.scratch_high_water()
    }

    /// Applies one update under the work budget.
    ///
    /// # Errors
    ///
    /// A [`DynamicError`] for malformed operations (the engine — carry
    /// included — is unchanged and nothing is counted).
    pub fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        let mut stats = UpdateStats::default();
        self.core.kit.begin_update();
        match op {
            UpdateOp::Insert { u, v, weight } => {
                self.core.g.insert(u, v, weight)?;
                // parallel upgrade: a heavier copy of an already-matched
                // pair cannot be expressed as an augmentation — swap it in
                if let Some(me) = self.core.m.matched_edge(u) {
                    if me.other(u) == v && weight > me.weight {
                        let old = self.core.m.remove_pair(u, v).expect("edge was matched");
                        self.core.kit.journal.push((old, false));
                        let new = Edge::new(u, v, weight);
                        self.core.m.insert(new).expect("endpoints just freed");
                        self.core.kit.journal.push((new, true));
                        stats.gain += weight as i128 - old.weight as i128;
                    }
                }
            }
            UpdateOp::Delete { u, v } => {
                self.core.g.delete(u, v)?;
                let lost = match self.core.m.matched_edge(u) {
                    Some(me) => me.other(u) == v && !self.core.g.has_live_copy(u, v, me.weight),
                    None => false,
                };
                if lost {
                    let removed = self.core.m.remove_pair(u, v).expect("edge was matched");
                    self.core.kit.journal.push((removed, false));
                    stats.gain -= removed.weight as i128;
                }
            }
        }
        // seeds: the carried residual plus this op's endpoints
        let (u, v) = op.endpoints();
        self.core.kit.dirty.clear();
        self.core.kit.dirty.append(&mut self.carry);
        self.core.kit.dirty.extend([u, v]);
        let (fix, exhausted) = self.core.kit.fix_up_budgeted(
            &self.core.g,
            &mut self.core.m,
            self.core.cfg.max_len,
            self.work_budget,
        );
        if exhausted {
            self.exhausted_updates += 1;
            self.carry.append(&mut self.core.kit.dirty);
            self.carry.sort_unstable();
            self.carry.dedup();
        }
        stats.gain += fix.gain;
        stats.augmentations = fix.augmentations;
        stats.recourse = self.core.kit.net_recourse();
        self.core.finish(&mut stats);
        if stats.rebuilt {
            // a rebuild epoch ends with a global invariant restore: the
            // carried debt is settled by construction
            self.carry.clear();
        }
        Ok(stats)
    }

    /// Drains the carried repair debt with an unbudgeted fix-up,
    /// re-certifying the bounded-augmentation invariant (and with it the
    /// Fact 1.3 floor). A no-op when nothing is carried.
    pub fn flush(&mut self) -> UpdateStats {
        let mut stats = UpdateStats::default();
        if self.carry.is_empty() {
            return stats;
        }
        self.core.kit.begin_update();
        self.core.kit.dirty.clear();
        self.core.kit.dirty.append(&mut self.carry);
        let fix = self
            .core
            .kit
            .fix_up(&self.core.g, &mut self.core.m, self.core.cfg.max_len);
        stats.gain = fix.gain;
        stats.augmentations = fix.augmentations;
        stats.recourse = self.core.kit.net_recourse();
        self.core.counters.augmentations_applied += stats.augmentations;
        self.core.counters.recourse_total += stats.recourse;
        stats
    }
}

impl UpdateEngine for LazyMatcher {
    fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        LazyMatcher::apply(self, op)
    }

    fn flush(&mut self) -> UpdateStats {
        LazyMatcher::flush(self)
    }

    fn matching(&self) -> &Matching {
        LazyMatcher::matching(self)
    }

    fn graph(&self) -> &DynGraph {
        LazyMatcher::graph(self)
    }

    fn counters(&self) -> DynamicCounters {
        LazyMatcher::counters(self)
    }

    fn declared_floor(&self) -> f64 {
        self.core.cfg.certified_floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DynamicMatcher;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wmatch_graph::aug_search::best_augmentation;

    #[test]
    fn budget_defers_the_long_swap() {
        // growing the 4-6-4 path takes a 3-edge swap after the outer
        // inserts; budget 1 per op still converges because the carry
        // re-seeds — then flush certifies
        let mut eng = LazyMatcher::new(4, DynamicConfig::default(), 1);
        eng.apply(UpdateOp::insert(1, 2, 6)).unwrap();
        eng.apply(UpdateOp::insert(0, 1, 4)).unwrap();
        eng.apply(UpdateOp::insert(2, 3, 4)).unwrap();
        eng.flush();
        assert_eq!(eng.matching().weight(), 8, "outer pair after settling");
        let snap = eng.graph().snapshot();
        assert!(best_augmentation(&snap, eng.matching(), 3).is_none());
    }

    #[test]
    fn generous_budget_matches_eager_engine() {
        // a budget no stream exhausts makes the lazy engine the eager
        // engine, bit for bit
        let mut rng = StdRng::seed_from_u64(31);
        let mut lazy = LazyMatcher::new(10, DynamicConfig::default(), usize::MAX);
        let mut eager = DynamicMatcher::new(10, DynamicConfig::default());
        let mut live: Vec<(u32, u32)> = Vec::new();
        for _ in 0..160 {
            let op = if !live.is_empty() && rng.gen_range(0..3) == 0 {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                UpdateOp::delete(u, v)
            } else {
                let u = rng.gen_range(0..10u32);
                let mut v = rng.gen_range(0..10u32);
                if v == u {
                    v = (v + 1) % 10;
                }
                live.push((u, v));
                UpdateOp::insert(u, v, rng.gen_range(1..30u64))
            };
            let sl = lazy.apply(op).unwrap();
            let se = eager.apply(op).unwrap();
            assert_eq!(sl, se);
        }
        assert_eq!(lazy.matching().to_edges(), eager.matching().to_edges());
        assert_eq!(lazy.exhausted_updates(), 0);
        assert_eq!(lazy.carry_len(), 0);
    }

    #[test]
    fn tight_budget_converges_after_flush() {
        let mut rng = StdRng::seed_from_u64(37);
        let cfg = DynamicConfig::default();
        let mut eng = LazyMatcher::new(14, cfg, 1);
        let mut live: Vec<(u32, u32)> = Vec::new();
        for _ in 0..220 {
            let op = if !live.is_empty() && rng.gen_range(0..3) == 0 {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                UpdateOp::delete(u, v)
            } else {
                let u = rng.gen_range(0..14u32);
                let mut v = rng.gen_range(0..14u32);
                if v == u {
                    v = (v + 1) % 14;
                }
                live.push((u, v));
                UpdateOp::insert(u, v, rng.gen_range(1..40u64))
            };
            eng.apply(op).unwrap();
            // valid at every point, certified only after flush
            eng.matching()
                .validate(Some(&eng.graph().snapshot()))
                .expect("matching stays valid under the budget");
        }
        eng.flush();
        assert_eq!(eng.carry_len(), 0);
        let snap = eng.graph().snapshot();
        assert!(
            best_augmentation(&snap, eng.matching(), cfg.max_len).is_none(),
            "flush certifies the full invariant"
        );
        assert_eq!(eng.counters().updates_applied, 220);
    }

    #[test]
    fn malformed_ops_leave_carry_untouched() {
        let mut eng = LazyMatcher::new(2, DynamicConfig::default(), 1);
        eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        let carry_before = eng.carry_len();
        assert!(eng.apply(UpdateOp::insert(0, 9, 1)).is_err());
        assert_eq!(
            eng.carry_len(),
            carry_before,
            "failed op must not touch carry"
        );
        assert!(eng.apply(UpdateOp::delete(1, 0)).is_ok());
        let carry_after = eng.carry_len();
        assert!(eng.apply(UpdateOp::delete(1, 0)).is_err());
        assert_eq!(
            eng.carry_len(),
            carry_after,
            "failed op must not touch carry"
        );
        assert_eq!(eng.counters().updates_applied, 2);
    }
}
