//! Deterministic, seed-keyed fault injection for the dynamic engines.
//!
//! A [`ChaosInjector`] is installed on an engine (test and chaos-bench
//! builds only — production engines carry `None`) and decides, purely as
//! a function of its seed and a per-site stream index, when to inject
//! each fault class:
//!
//! * **Poisoned ops** — a well-formed update is replaced by a malformed
//!   one (out-of-range endpoint, zero weight, self-loop delete, delete of
//!   a never-inserted edge). The engine must reject it with a typed
//!   error and stay bit-identical to the run that never saw it.
//! * **Worker panics** — one speculation group's worker panics
//!   mid-ball-repair. The batch must isolate the panic, commit every
//!   other group, and re-run the victim group through the sequential
//!   fallback.
//! * **Bit flips** — after a batch commits, one shard's matching entry
//!   is corrupted (its stored weight no longer matches any live edge).
//!   The invariant sentinel must catch it, quarantine the shard, and
//!   heal (WAL recovery or a warm rebuild epoch) instead of serving
//!   garbage.
//!
//! Every decision is keyed by `(seed, stream index)` through a splitmix
//! hash — never by call order, wall clock, or thread interleaving — so a
//! chaos run is exactly reproducible and a test can predict which ops a
//! twin injector will poison ([`ChaosInjector::would_poison`]).

use crate::dyngraph::DynGraph;
use crate::update::UpdateOp;
use wmatch_graph::Vertex;

/// Finalizer of splitmix64: the workspace's standard cheap mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `true` roughly once per `every` indices, deterministically in the
/// hash `h` (`every = 0` disables the site).
fn due(every: u64, h: u64) -> bool {
    every > 0 && h.is_multiple_of(every)
}

/// Per-site salts so the fault classes draw independent streams from one
/// seed.
const SALT_POISON: u64 = 0x706f_6973;
const SALT_PANIC: u64 = 0x7061_6e63;
const SALT_FLIP: u64 = 0x666c_6970;

/// Message prefix of every panic the injector raises, so tooling can
/// tell an injected panic from a real one.
pub const INJECTED_PANIC_PREFIX: &str = "chaos:";

/// Installs a process-wide panic hook that suppresses the default
/// message-and-backtrace printing for panics *injected by the chaos
/// harness* (payloads prefixed [`INJECTED_PANIC_PREFIX`]), delegating
/// every other panic to the previously-installed hook unchanged.
///
/// Call once before a chaos run whose injected worker panics (caught per
/// overlap group by the engine) would otherwise flood stderr. Real
/// panics still report normally.
pub fn silence_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
        let injected = msg.is_some_and(|s| s.starts_with(INJECTED_PANIC_PREFIX));
        if !injected {
            previous(info);
        }
    }));
}

/// Cadences of the fault injector. All fault classes default to **off**
/// (`0`); the sentinel spot-check defaults to every batch.
///
/// Follows the workspace's config idiom: `Default` + chainable `with_*`
/// setters, `#[non_exhaustive]` so fields can grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ChaosConfig {
    /// Seed of every injection decision.
    pub seed: u64,
    /// Poison roughly one in this many ops (0 = never).
    pub poison_every: u64,
    /// Panic a speculation worker in roughly one in this many batches
    /// (0 = never). Only the speculative path (≥ 2 workers) has workers
    /// to panic; the one-worker inline path never sees this fault.
    pub panic_every: u64,
    /// Corrupt a matching entry after roughly one in this many batches
    /// (0 = never).
    pub bitflip_every: u64,
    /// Run the invariant sentinel before every this-many-th batch
    /// (0 = never, 1 = every batch).
    pub sentinel_every: u64,
}

impl Default for ChaosConfig {
    /// Seed 0, all fault classes off, sentinel every batch.
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            poison_every: 0,
            panic_every: 0,
            bitflip_every: 0,
            sentinel_every: 1,
        }
    }
}

impl ChaosConfig {
    /// The default configuration (no faults, sentinel every batch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the injection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the op-poisoning cadence (0 = never).
    pub fn with_poison_every(mut self, poison_every: u64) -> Self {
        self.poison_every = poison_every;
        self
    }

    /// Sets the worker-panic cadence in batches (0 = never).
    pub fn with_panic_every(mut self, panic_every: u64) -> Self {
        self.panic_every = panic_every;
        self
    }

    /// Sets the matching-corruption cadence in batches (0 = never).
    pub fn with_bitflip_every(mut self, bitflip_every: u64) -> Self {
        self.bitflip_every = bitflip_every;
        self
    }

    /// Sets the sentinel cadence in batches (0 = never, 1 = every batch).
    pub fn with_sentinel_every(mut self, sentinel_every: u64) -> Self {
        self.sentinel_every = sentinel_every;
        self
    }
}

/// What the injector has done so far — and what the recovery machinery
/// did about it. The first three are written by the injector itself; the
/// last two by the sentinel when it catches the damage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ChaosCounters {
    /// Ops replaced by malformed ones.
    pub poisoned_ops: u64,
    /// Speculation workers panicked mid-ball-repair.
    pub worker_panics: u64,
    /// Matching entries corrupted after a commit.
    pub bit_flips: u64,
    /// Sentinel spot-checks that found a violated invariant.
    pub sentinel_trips: u64,
    /// Shards quarantined and healed after a sentinel trip.
    pub quarantines: u64,
}

impl ChaosCounters {
    /// Total faults injected across all classes (poison + panic + flip) —
    /// the `faults_injected` telemetry the chaos tests assert on.
    pub fn faults_injected(&self) -> u64 {
        self.poisoned_ops + self.worker_panics + self.bit_flips
    }
}

/// The deterministic fault injector. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ChaosInjector {
    cfg: ChaosConfig,
    /// Global op index — the poison-decision key.
    ops_seen: u64,
    /// Global batch index — the panic/flip/sentinel-decision key.
    batches_seen: u64,
    /// Fault and recovery telemetry.
    pub counters: ChaosCounters,
}

impl ChaosInjector {
    /// An injector with the given cadences.
    pub fn new(cfg: ChaosConfig) -> Self {
        ChaosInjector {
            cfg,
            ops_seen: 0,
            batches_seen: 0,
            counters: ChaosCounters::default(),
        }
    }

    /// The injector's configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Whether the op at global stream index `index` gets poisoned —
    /// a pure function of the seed, so a twin injector (same config)
    /// predicts exactly which ops the engine's injector will replace.
    pub fn would_poison(&self, index: u64) -> bool {
        due(
            self.cfg.poison_every,
            mix(self.cfg.seed ^ SALT_POISON ^ index),
        )
    }

    /// Advances the op stream and, when the poison cadence fires,
    /// returns the malformed op to apply *instead of* `op`. The shape
    /// rotates through the malformed-op taxonomy: out-of-range endpoint,
    /// zero-weight insert, self-loop delete, and never-inserted delete
    /// (skipped — falling back to out-of-range — if the hash-chosen pair
    /// happens to have a live copy, so every poisoned op is *guaranteed*
    /// to be rejected).
    pub fn poison_op(&mut self, g: &DynGraph, op: UpdateOp) -> Option<UpdateOp> {
        let i = self.ops_seen;
        self.ops_seen += 1;
        if !self.would_poison(i) {
            return None;
        }
        let h = mix(self.cfg.seed ^ SALT_POISON ^ i ^ 0xbad);
        let n = g.vertex_count();
        let (u, v) = op.endpoints();
        let bad = match h % 4 {
            0 => UpdateOp::insert(n as Vertex, v, 1),
            1 => UpdateOp::insert(u, v, 0),
            2 => UpdateOp::delete(u, u),
            _ => {
                let a = (h >> 8) % n.max(1) as u64;
                let b = (a + 1) % n.max(1) as u64;
                let (a, b) = (a as Vertex, b as Vertex);
                if n >= 2 && !g.incident(a).any(|e| e.touches(b)) {
                    UpdateOp::delete(a, b)
                } else {
                    UpdateOp::delete(u, n as Vertex)
                }
            }
        };
        self.counters.poisoned_ops += 1;
        Some(bad)
    }

    /// Advances the batch stream; call exactly once per engine batch,
    /// *before* the panic/flip/sentinel queries for that batch.
    pub fn begin_batch(&mut self) {
        self.batches_seen += 1;
    }

    /// The overlap group (of `groups`) whose speculation worker panics
    /// mid-ball-repair in the current batch, if the panic cadence fires.
    pub fn panic_group(&mut self, groups: usize) -> Option<usize> {
        let b = self.batches_seen;
        let h = mix(self.cfg.seed ^ SALT_PANIC ^ b);
        if groups == 0 || !due(self.cfg.panic_every, h) {
            return None;
        }
        self.counters.worker_panics += 1;
        Some((mix(h) % groups as u64) as usize)
    }

    /// The victim index (into a list of `candidates` matched vertices)
    /// whose matching entry gets bit-flipped after the current batch
    /// commits, if the corruption cadence fires.
    pub fn bitflip_victim(&mut self, candidates: usize) -> Option<usize> {
        let b = self.batches_seen;
        let h = mix(self.cfg.seed ^ SALT_FLIP ^ b);
        if candidates == 0 || !due(self.cfg.bitflip_every, h) {
            return None;
        }
        self.counters.bit_flips += 1;
        Some((mix(h) % candidates as u64) as usize)
    }

    /// Whether the sentinel spot-check runs before the *next* batch.
    pub fn sentinel_due(&self) -> bool {
        self.cfg.sentinel_every > 0
            && (self.batches_seen + 1).is_multiple_of(self.cfg.sentinel_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_seed_keyed_not_order_keyed() {
        let cfg = ChaosConfig::new().with_poison_every(3).with_seed(42);
        let g = DynGraph::new(8);
        let mut a = ChaosInjector::new(cfg);
        let b = ChaosInjector::new(cfg);
        let op = UpdateOp::insert(0, 1, 5);
        let pa: Vec<bool> = (0..64).map(|_| a.poison_op(&g, op).is_some()).collect();
        let pb: Vec<bool> = (0..64).map(|i| b.would_poison(i)).collect();
        assert_eq!(pa, pb, "poison_op and would_poison agree per index");
        assert!(pa.iter().any(|&x| x), "cadence 3 fires within 64 ops");
        assert!(!pa.iter().all(|&x| x), "cadence 3 is not every op");
        assert_eq!(
            a.counters.poisoned_ops,
            pa.iter().filter(|&&x| x).count() as u64
        );
    }

    #[test]
    fn poisoned_ops_are_always_malformed() {
        // against a clique-ish live graph every rotation must still
        // produce an op the engine rejects
        let mut g = DynGraph::new(6);
        for u in 0..5u32 {
            for v in (u + 1)..6u32 {
                g.insert(u, v, 3).unwrap();
            }
        }
        let cfg = ChaosConfig::new().with_poison_every(1).with_seed(7);
        let mut inj = ChaosInjector::new(cfg);
        for i in 0..40u32 {
            let op = UpdateOp::insert(i % 6, (i + 1) % 6, 4);
            let bad = inj.poison_op(&g, op).expect("cadence 1 poisons every op");
            let malformed = match bad {
                UpdateOp::Insert { u, v, weight } => {
                    (u as usize) >= 6 || (v as usize) >= 6 || weight == 0
                }
                UpdateOp::Delete { u, v } => {
                    (u as usize) >= 6
                        || (v as usize) >= 6
                        || u == v
                        || !g.incident(u).any(|e| e.touches(v))
                }
            };
            assert!(malformed, "op {i}: {bad} must be rejectable");
        }
    }

    #[test]
    fn batch_faults_fire_on_cadence() {
        let cfg = ChaosConfig::new()
            .with_panic_every(2)
            .with_bitflip_every(3)
            .with_seed(9);
        let mut inj = ChaosInjector::new(cfg);
        let mut panics = 0;
        let mut flips = 0;
        for _ in 0..60 {
            inj.begin_batch();
            if let Some(gid) = inj.panic_group(5) {
                assert!(gid < 5);
                panics += 1;
            }
            if let Some(vi) = inj.bitflip_victim(7) {
                assert!(vi < 7);
                flips += 1;
            }
        }
        assert!(panics > 0 && panics < 60, "panic cadence 2: got {panics}");
        assert!(flips > 0 && flips < 60, "flip cadence 3: got {flips}");
        assert_eq!(inj.counters.worker_panics, panics);
        assert_eq!(inj.counters.bit_flips, flips);
        assert_eq!(inj.counters.faults_injected(), panics + flips);
    }

    #[test]
    fn zero_cadences_inject_nothing() {
        let g = DynGraph::new(4);
        let mut inj = ChaosInjector::new(ChaosConfig::default());
        for i in 0..32 {
            assert!(inj.poison_op(&g, UpdateOp::insert(0, 1, 1)).is_none());
            inj.begin_batch();
            assert!(inj.panic_group(4).is_none());
            assert!(inj.bitflip_victim(4).is_none());
            assert!(inj.sentinel_due(), "default sentinel cadence is 1");
            let _ = i;
        }
        assert_eq!(inj.counters.faults_injected(), 0);
    }
}
