//! The certifier hook: checkpoint re-certification of the dynamic
//! engines against the exact bipartite oracle.
//!
//! The engines maintain a Fact 1.3 `(1 − 1/ℓ)` matching under churn; the
//! repo's quality claims compare it against the exact optimum at
//! checkpoints. On bipartite workloads this used to mean a cold blossom
//! or Hungarian solve per checkpoint — now an
//! [`IncrementalCertifier`] rides the stream and each checkpoint is a
//! warm dual-repair re-solve from the previous optimum, so checking every
//! 1k ops costs what every 5k ops used to.

use wmatch_graph::Matching;
use wmatch_oracle::{IncrementalCertifier, OracleError};

use crate::dyngraph::DynGraph;
use crate::engine::{DynamicMatcher, RecomputeBaseline};
use crate::lazy::LazyMatcher;
use crate::randomwalk::RandomWalkMatcher;
use crate::sharded::ShardedMatcher;
use crate::stale::StaleMatcher;

/// One checkpoint's verdict: the engine's maintained matching measured
/// against the exact, certificate-checked optimum.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct CheckpointCertificate {
    /// Exact maximum matching weight of the live graph (`Σ` dual labels,
    /// complementary slackness verified in-code by the oracle).
    pub optimum: i128,
    /// The engine's maintained matching weight at the checkpoint.
    pub engine_weight: i128,
    /// `engine_weight / optimum` (1.0 when the optimum is 0).
    pub ratio: f64,
}

fn checkpoint(
    graph: &DynGraph,
    matching: &Matching,
    cert: &mut IncrementalCertifier,
) -> Result<CheckpointCertificate, OracleError> {
    let g = graph.snapshot();
    let optimum = cert.certify(&g)?.optimum;
    let engine_weight = matching.weight();
    let ratio = if optimum == 0 {
        1.0
    } else {
        engine_weight as f64 / optimum as f64
    };
    Ok(CheckpointCertificate {
        optimum,
        engine_weight,
        ratio,
    })
}

impl DynamicMatcher {
    /// Re-certifies the engine's current graph through `cert` (warm from
    /// the previous checkpoint) and measures the maintained matching
    /// against the exact optimum.
    ///
    /// # Errors
    ///
    /// [`OracleError`] if the live graph does not fit the certifier's
    /// bipartition.
    pub fn certify_checkpoint(
        &self,
        cert: &mut IncrementalCertifier,
    ) -> Result<CheckpointCertificate, OracleError> {
        checkpoint(self.graph(), self.matching(), cert)
    }
}

impl ShardedMatcher {
    /// Re-certifies the committed state through `cert`; see
    /// [`DynamicMatcher::certify_checkpoint`].
    ///
    /// # Errors
    ///
    /// [`OracleError`] if the live graph does not fit the certifier's
    /// bipartition.
    pub fn certify_checkpoint(
        &self,
        cert: &mut IncrementalCertifier,
    ) -> Result<CheckpointCertificate, OracleError> {
        checkpoint(self.graph(), self.matching(), cert)
    }
}

impl RecomputeBaseline {
    /// Re-certifies the baseline's current graph through `cert`; see
    /// [`DynamicMatcher::certify_checkpoint`].
    ///
    /// # Errors
    ///
    /// [`OracleError`] if the live graph does not fit the certifier's
    /// bipartition.
    pub fn certify_checkpoint(
        &self,
        cert: &mut IncrementalCertifier,
    ) -> Result<CheckpointCertificate, OracleError> {
        checkpoint(self.graph(), self.matching(), cert)
    }
}

impl RandomWalkMatcher {
    /// Re-certifies the engine's current graph through `cert`; see
    /// [`DynamicMatcher::certify_checkpoint`]. The walk engine repairs
    /// eagerly (local dominance after every update), so no flush is
    /// needed first.
    ///
    /// # Errors
    ///
    /// [`OracleError`] if the live graph does not fit the certifier's
    /// bipartition.
    pub fn certify_checkpoint(
        &self,
        cert: &mut IncrementalCertifier,
    ) -> Result<CheckpointCertificate, OracleError> {
        checkpoint(self.graph(), self.matching(), cert)
    }
}

impl LazyMatcher {
    /// Settles the carried repair debt, then re-certifies through `cert`
    /// — the flush is what makes the measured ratio comparable against
    /// the engine's declared (post-flush) floor; see
    /// [`DynamicMatcher::certify_checkpoint`].
    ///
    /// # Errors
    ///
    /// [`OracleError`] if the live graph does not fit the certifier's
    /// bipartition.
    pub fn certify_checkpoint(
        &mut self,
        cert: &mut IncrementalCertifier,
    ) -> Result<CheckpointCertificate, OracleError> {
        self.flush();
        checkpoint(self.graph(), self.matching(), cert)
    }
}

impl StaleMatcher {
    /// Settles the deferred repairs, then re-certifies through `cert` —
    /// the staleness contract only claims the floor at flush boundaries;
    /// see [`DynamicMatcher::certify_checkpoint`].
    ///
    /// # Errors
    ///
    /// [`OracleError`] if the live graph does not fit the certifier's
    /// bipartition.
    pub fn certify_checkpoint(
        &mut self,
        cert: &mut IncrementalCertifier,
    ) -> Result<CheckpointCertificate, OracleError> {
        self.flush();
        checkpoint(self.graph(), self.matching(), cert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DynamicConfig;
    use crate::update::UpdateOp;

    #[test]
    fn checkpoint_ratio_respects_the_floor() {
        let mut eng = DynamicMatcher::new(4, DynamicConfig::default());
        // bipartite sides {0, 1} / {2, 3}
        let side = vec![false, false, true, true];
        let mut cert = IncrementalCertifier::new(side);
        eng.apply(UpdateOp::insert(0, 2, 5)).unwrap();
        eng.apply(UpdateOp::insert(1, 3, 7)).unwrap();
        let ck = eng.certify_checkpoint(&mut cert).unwrap();
        assert_eq!(ck.optimum, 12);
        assert!(ck.ratio >= 0.5 - 1e-9);

        eng.apply(UpdateOp::delete(1, 3)).unwrap();
        let ck = eng.certify_checkpoint(&mut cert).unwrap();
        assert_eq!(ck.optimum, 5);
        assert_eq!(cert.stats().warm_checkpoints, 1);
    }

    #[test]
    fn deferred_engines_flush_before_certifying() {
        // bipartite sides {0, 1} / {2, 3}
        let side = vec![false, false, true, true];
        let ops = [UpdateOp::insert(0, 2, 5), UpdateOp::insert(1, 3, 7)];

        // the stale engine defers both repairs; the checkpoint must not
        // measure the unrepaired (empty) matching against the optimum
        let mut stale = crate::StaleMatcher::new(4, DynamicConfig::default(), 10);
        let mut cert = IncrementalCertifier::new(side.clone());
        for &op in &ops {
            stale.apply(op).unwrap();
        }
        assert_eq!(stale.matching().weight(), 0, "both repairs deferred");
        let ck = stale.certify_checkpoint(&mut cert).unwrap();
        assert_eq!(ck.optimum, 12);
        assert_eq!(ck.engine_weight, 12, "checkpoint flushed first");
        assert!(ck.ratio >= 0.5 - 1e-9);

        let mut lazy = crate::LazyMatcher::new(4, DynamicConfig::default(), 1);
        let mut cert = IncrementalCertifier::new(side.clone());
        for &op in &ops {
            lazy.apply(op).unwrap();
        }
        let ck = lazy.certify_checkpoint(&mut cert).unwrap();
        assert_eq!(ck.optimum, 12);
        assert!(ck.ratio >= 0.5 - 1e-9);

        let mut walk = crate::RandomWalkMatcher::new(4, crate::RandomWalkConfig::default());
        let mut cert = IncrementalCertifier::new(side);
        for &op in &ops {
            walk.apply(op).unwrap();
        }
        let ck = walk.certify_checkpoint(&mut cert).unwrap();
        assert_eq!(ck.optimum, 12);
        assert!(ck.ratio >= 0.5 - 1e-9);
    }
}
