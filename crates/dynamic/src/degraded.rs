//! The degraded-mode serve driver: typed transient/fatal fault handling,
//! bounded retry with exponential backoff, and a tolerate-ε-staleness
//! fallback that batches repairs under fault storms.
//!
//! [`ServeDriver`] wraps a [`ShardedMatcher`] with the policy a
//! production ingest loop needs when the stream is hostile:
//!
//! * **Fatal** rejections (malformed ops — [`DynamicError`] variants
//!   other than `Quarantined`) are deterministic: the op is counted as
//!   skipped and the stream continues from the next op. Partial progress
//!   ([`BatchStats`]) is always preserved, never discarded.
//! * **Transient** rejections ([`DynamicError::Quarantined`] — the
//!   sentinel healed corrupted state before rejecting) are retried with
//!   bounded exponential backoff; the healed engine is expected to
//!   accept the same ops on retry.
//! * A **fault storm** (too many consecutive faulted batches, or retries
//!   exhausted without progress) drops the driver into **degraded
//!   mode**: ops ingest through the engine's deferred path (structural
//!   changes only, repairs batched), which keeps accepting traffic at a
//!   fraction of the per-op cost while the Fact 1.3 certificate is
//!   temporarily suspended. Once enough clean batches pass, the driver
//!   flushes the deferred repairs, lets the **quality watchdog**
//!   (sentinel spot-check, healing on violation) re-pin the floor, and
//!   returns to the certified path.
//!
//! The driver never fails: every op is either applied, deferred, or
//! counted as skipped in [`DegradedStats`].
//!
//! [`DynamicError`]: crate::DynamicError
//! [`DynamicError::Quarantined`]: crate::DynamicError::Quarantined

use std::thread;
use std::time::Duration;

use crate::engine::BatchStats;
use crate::sharded::ShardedMatcher;
use crate::update::UpdateOp;

/// Retry, storm, and staleness policy of a [`ServeDriver`].
///
/// Follows the workspace's config idiom: `Default` + chainable `with_*`
/// setters, `#[non_exhaustive]` so fields can grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Bounded retries of a transiently-rejected batch before the driver
    /// gives up on the certified path and degrades.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Consecutive faulted batches that trip degraded mode.
    pub storm_threshold: u32,
    /// In degraded mode, flush deferred repairs once this many are
    /// pending.
    pub max_stale_ops: usize,
    /// Consecutive clean degraded batches before returning to the
    /// certified path.
    pub recovery_streak: u32,
}

impl Default for RetryPolicy {
    /// 3 retries, 1 ms base backoff (doubling, capped at 50 ms), storm
    /// at 3 consecutive faulted batches, flush at 1024 stale ops,
    /// recover after 4 clean batches.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            storm_threshold: 3,
            max_stale_ops: 1024,
            recovery_streak: 4,
        }
    }
}

impl RetryPolicy {
    /// The default policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bounded retry count for transient rejections.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the first-retry backoff (doubles per attempt).
    pub fn with_base_backoff(mut self, base_backoff: Duration) -> Self {
        self.base_backoff = base_backoff;
        self
    }

    /// Sets the backoff ceiling.
    pub fn with_max_backoff(mut self, max_backoff: Duration) -> Self {
        self.max_backoff = max_backoff;
        self
    }

    /// Sets the consecutive-faulted-batch storm threshold.
    pub fn with_storm_threshold(mut self, storm_threshold: u32) -> Self {
        self.storm_threshold = storm_threshold;
        self
    }

    /// Sets the degraded-mode flush cadence (pending deferred repairs).
    pub fn with_max_stale_ops(mut self, max_stale_ops: usize) -> Self {
        self.max_stale_ops = max_stale_ops;
        self
    }

    /// Sets the clean-batch streak that exits degraded mode.
    pub fn with_recovery_streak(mut self, recovery_streak: u32) -> Self {
        self.recovery_streak = recovery_streak;
        self
    }

    /// The backoff before retry number `attempt` (1-based): base × 2^(
    /// attempt−1), capped.
    fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// Lifetime telemetry of a [`ServeDriver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DegradedStats {
    /// Batches served (certified or degraded).
    pub batches: u64,
    /// Batches served through the degraded (deferred-repair) path.
    pub degraded_batches: u64,
    /// Transient rejections retried.
    pub retries: u64,
    /// Transient (retryable) rejections observed.
    pub transient_errors: u64,
    /// Fatal (malformed-op) rejections observed.
    pub fatal_errors: u64,
    /// Ops skipped because they were malformed.
    pub skipped_ops: u64,
    /// Deferred-repair flushes performed.
    pub flushes: u64,
    /// Quality-watchdog sentinel checks after flushes.
    pub watchdog_checks: u64,
    /// Watchdog checks that found (and healed) a violation.
    pub watchdog_trips: u64,
    /// Times the driver entered degraded mode.
    pub storms: u64,
}

/// The fault-tolerant serve loop over a [`ShardedMatcher`]. See the
/// [module docs](self) for the policy.
///
/// # Example
///
/// ```
/// use wmatch_dynamic::{DynamicConfig, RetryPolicy, ServeDriver, ShardedMatcher, UpdateOp};
///
/// let mut eng = ShardedMatcher::new(4, DynamicConfig::default(), 1);
/// let mut driver = ServeDriver::new(RetryPolicy::default());
/// // the malformed delete is skipped, everything else lands
/// let stats = driver.serve(
///     &mut eng,
///     &[
///         UpdateOp::insert(0, 1, 5),
///         UpdateOp::delete(2, 3), // never inserted: fatal, skipped
///         UpdateOp::insert(2, 3, 7),
///     ],
/// );
/// assert_eq!(stats.applied, 2);
/// assert_eq!(driver.stats().skipped_ops, 1);
/// assert_eq!(eng.matching().weight(), 12);
/// ```
#[derive(Debug)]
pub struct ServeDriver {
    policy: RetryPolicy,
    stats: DegradedStats,
    fault_streak: u32,
    clean_streak: u32,
    degraded: bool,
}

impl ServeDriver {
    /// A driver with the given policy, starting on the certified path.
    pub fn new(policy: RetryPolicy) -> Self {
        ServeDriver {
            policy,
            stats: DegradedStats::default(),
            fault_streak: 0,
            clean_streak: 0,
            degraded: false,
        }
    }

    /// Whether the driver is currently on the degraded (deferred-repair)
    /// path.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The driver's lifetime telemetry.
    pub fn stats(&self) -> DegradedStats {
        self.stats
    }

    /// Serves one batch, never failing: applies what it can, retries
    /// transient rejections with backoff, skips malformed ops, and
    /// degrades under a fault storm. Returns the aggregate stats of
    /// everything that landed (including any deferred-repair flush).
    pub fn serve(&mut self, eng: &mut ShardedMatcher, ops: &[UpdateOp]) -> BatchStats {
        self.stats.batches += 1;
        let mut out = BatchStats::default();
        if self.degraded {
            self.serve_degraded(eng, ops, &mut out);
            return out;
        }
        let mut cursor = 0usize;
        let mut attempts = 0u32;
        let mut faulted = false;
        while cursor < ops.len() {
            match eng.apply_all(&ops[cursor..]) {
                Ok(s) => {
                    out.merge(&s);
                    cursor = ops.len();
                }
                Err(e) => {
                    faulted = true;
                    out.merge(&e.stats);
                    cursor += e.applied;
                    if e.is_transient() {
                        // the sentinel already healed the state; a
                        // bounded retry of the same suffix is expected
                        // to succeed
                        self.stats.transient_errors += 1;
                        attempts += 1;
                        if attempts > self.policy.max_retries {
                            // no progress after the retry budget: treat
                            // it as a storm and drain through the
                            // degraded path
                            self.enter_degraded();
                            self.serve_degraded(eng, &ops[cursor..], &mut out);
                            cursor = ops.len();
                        } else {
                            self.stats.retries += 1;
                            thread::sleep(self.policy.backoff(attempts));
                        }
                    } else {
                        // malformed op: deterministic failure — skip it
                        self.stats.fatal_errors += 1;
                        self.stats.skipped_ops += 1;
                        cursor += 1;
                        attempts = 0;
                    }
                }
            }
        }
        if faulted {
            self.fault_streak += 1;
            self.clean_streak = 0;
            if !self.degraded && self.fault_streak >= self.policy.storm_threshold {
                self.enter_degraded();
            }
        } else {
            self.fault_streak = 0;
        }
        out
    }

    /// Flushes any pending deferred repairs and returns to the certified
    /// path — call when the stream ends (or at a quiesce point). The
    /// watchdog re-checks the invariant after the flush.
    pub fn finish(&mut self, eng: &mut ShardedMatcher) -> BatchStats {
        let mut out = BatchStats::default();
        if eng.deferred_repairs() > 0 || self.degraded {
            self.flush(eng, &mut out);
        }
        self.degraded = false;
        self.fault_streak = 0;
        self.clean_streak = 0;
        out
    }

    fn enter_degraded(&mut self) {
        if !self.degraded {
            self.degraded = true;
            self.stats.storms += 1;
            self.clean_streak = 0;
        }
    }

    /// Degraded ingest: deferred structural application, flush on the
    /// staleness budget, and exit once enough clean batches pass.
    fn serve_degraded(&mut self, eng: &mut ShardedMatcher, ops: &[UpdateOp], out: &mut BatchStats) {
        self.stats.degraded_batches += 1;
        let mut cursor = 0usize;
        let mut faulted = false;
        while cursor < ops.len() {
            match eng.apply_deferred(&ops[cursor..]) {
                Ok(s) => {
                    out.merge(&s);
                    cursor = ops.len();
                }
                Err(e) => {
                    // the deferred path only rejects malformed ops: skip
                    faulted = true;
                    out.merge(&e.stats);
                    cursor += e.applied + 1;
                    self.stats.fatal_errors += 1;
                    self.stats.skipped_ops += 1;
                }
            }
        }
        if eng.deferred_repairs() >= self.policy.max_stale_ops {
            self.flush(eng, out);
        }
        if faulted {
            self.clean_streak = 0;
            self.fault_streak += 1;
        } else {
            self.clean_streak += 1;
            self.fault_streak = 0;
            if self.clean_streak >= self.policy.recovery_streak {
                // the storm has passed: flush, re-certify, resume the
                // certified path
                self.flush(eng, out);
                self.degraded = false;
                self.clean_streak = 0;
            }
        }
    }

    /// One deferred-repair flush plus the quality watchdog: after the
    /// sweep the Fact 1.3 floor must hold again, and a sentinel
    /// violation is healed on the spot.
    fn flush(&mut self, eng: &mut ShardedMatcher, out: &mut BatchStats) {
        let s = eng.flush_repairs();
        out.merge(&s);
        self.stats.flushes += 1;
        self.stats.watchdog_checks += 1;
        if let Some(shard) = eng.sentinel_violation() {
            self.stats.watchdog_trips += 1;
            eng.quarantine_heal(shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DynamicConfig;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy::default()
            .with_base_backoff(Duration::from_micros(10))
            .with_max_backoff(Duration::from_micros(100))
    }

    #[test]
    fn clean_stream_stays_certified() {
        let mut eng = ShardedMatcher::new(8, DynamicConfig::default(), 2);
        let mut d = ServeDriver::new(fast_policy());
        let ops: Vec<UpdateOp> = (0..4)
            .map(|i| UpdateOp::insert(2 * i, 2 * i + 1, 5))
            .collect();
        let s = d.serve(&mut eng, &ops);
        assert_eq!(s.applied, 4);
        assert!(!d.is_degraded());
        assert_eq!(d.stats().skipped_ops, 0);
        assert_eq!(eng.matching().weight(), 20);
    }

    #[test]
    fn malformed_ops_are_skipped_with_partial_progress() {
        let mut eng = ShardedMatcher::new(8, DynamicConfig::default(), 2);
        let mut d = ServeDriver::new(fast_policy());
        let ops = [
            UpdateOp::insert(0, 1, 5),
            UpdateOp::insert(0, 0, 3), // self-loop: fatal
            UpdateOp::insert(2, 3, 4),
            UpdateOp::delete(4, 5), // never inserted: fatal
            UpdateOp::insert(4, 5, 2),
        ];
        let s = d.serve(&mut eng, &ops);
        assert_eq!(s.applied, 3, "good ops all land");
        assert_eq!(d.stats().skipped_ops, 2);
        assert_eq!(d.stats().fatal_errors, 2);
        assert_eq!(eng.matching().weight(), 11);
    }

    #[test]
    fn storm_enters_degraded_and_recovers() {
        let mut eng = ShardedMatcher::new(16, DynamicConfig::default(), 2);
        let policy = fast_policy()
            .with_storm_threshold(2)
            .with_recovery_streak(2);
        let mut d = ServeDriver::new(policy);
        // two consecutive faulted batches trip the storm threshold
        for round in 0..2u32 {
            let bad = [
                UpdateOp::insert(0, 1, 2 + round as u64),
                UpdateOp::delete(9, 10), // never inserted
            ];
            d.serve(&mut eng, &bad);
        }
        assert!(d.is_degraded(), "storm threshold reached");
        assert_eq!(d.stats().storms, 1);
        // degraded batches keep ingesting (deferred), then clean traffic
        // flushes and exits
        let clean_a = [UpdateOp::insert(2, 3, 7)];
        let clean_b = [UpdateOp::insert(4, 5, 9)];
        d.serve(&mut eng, &clean_a);
        assert!(eng.deferred_repairs() > 0, "degraded mode defers repairs");
        d.serve(&mut eng, &clean_b);
        assert!(!d.is_degraded(), "recovery streak exits degraded mode");
        assert_eq!(eng.deferred_repairs(), 0, "exit flushes");
        assert!(d.stats().flushes >= 1);
        assert!(d.stats().watchdog_checks >= 1);
        // everything that was deferred is now matched and certified
        assert!(eng.matching().weight() >= 16);
        assert!(eng.sentinel_violation().is_none());
    }

    #[test]
    fn finish_flushes_pending_repairs() {
        let mut eng = ShardedMatcher::new(8, DynamicConfig::default(), 2);
        let mut d = ServeDriver::new(fast_policy().with_storm_threshold(1));
        // one faulted batch with threshold 1 → degraded immediately
        d.serve(
            &mut eng,
            &[UpdateOp::delete(0, 1), UpdateOp::insert(0, 1, 5)],
        );
        assert!(d.is_degraded());
        d.serve(&mut eng, &[UpdateOp::insert(2, 3, 8)]);
        assert!(eng.deferred_repairs() > 0);
        d.finish(&mut eng);
        assert!(!d.is_degraded());
        assert_eq!(eng.deferred_repairs(), 0);
        assert_eq!(eng.matching().weight(), 13);
        assert!(eng.sentinel_violation().is_none());
    }
}
