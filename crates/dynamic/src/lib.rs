//! # `wmatch-dynamic` — the fully-dynamic arrival model
//!
//! An update-stream engine that maintains an approximate maximum-weight
//! matching under interleaved edge insertions and deletions, built from
//! the paper's central primitive: *short unweighted augmentations repair
//! a weighted matching*.
//!
//! The engine ([`DynamicMatcher`]) keeps the invariant that the
//! maintained matching admits **no positive augmentation of at most
//! `max_len` edges** (with the paper's Definition 4.4 matching-
//! neighbourhood gain semantics). By Fact 1.3, with `max_len = 2ℓ − 1`
//! this certifies a `(1 − 1/ℓ)` approximation after *every* update —
//! the default `max_len = 3` gives the ½ floor the facade declares.
//!
//! What makes the invariant cheap to maintain is locality: an insertion
//! can only create new improving components *through the new edge*, and a
//! deletion only ones *touching the freed endpoints*, so each update
//! re-searches just the radius-`max_len` ball around the touched
//! vertices. The ball is relabelled into a compact sub-instance and
//! handed to the exhaustive [`AugSearcher`](wmatch_graph::aug_search::AugSearcher)
//! from `wmatch-graph` — the same searcher (and the same epoch-stamped
//! [`Scratch`](wmatch_graph::Scratch) arenas) the offline machinery runs
//! on, so the dynamic and static notions of "no short augmentation" agree
//! by construction.
//!
//! For batched update epochs, the engine periodically runs a *rebuild*:
//! one or more rounds of Algorithm 3's weight-class sweep
//! ([`wmatch_core::main_alg::improve_matching_offline_pooled`]) on the
//! live snapshot, warm-started from the maintained matching and executed
//! on a persistent [`WorkerPool`](wmatch_graph::WorkerPool) — with the
//! same bit-identical-for-any-`threads` determinism contract as every
//! other parallel layer in the workspace — followed by a global
//! invariant restore.
//!
//! # Example
//!
//! ```
//! use wmatch_dynamic::{DynamicConfig, DynamicMatcher, UpdateOp};
//!
//! let mut eng = DynamicMatcher::new(4, DynamicConfig::default());
//! eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
//! eng.apply(UpdateOp::insert(1, 2, 9)).unwrap();
//! assert_eq!(eng.matching().weight(), 9); // the heavier edge wins
//! eng.apply(UpdateOp::delete(1, 2)).unwrap();
//! assert_eq!(eng.matching().weight(), 5); // repaired from {0,1}
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod certifier;
pub mod chaos;
pub mod degraded;
pub mod dyngraph;
pub mod engine;
pub mod error;
pub mod lazy;
pub mod randomwalk;
mod repair;
pub mod sharded;
mod spec;
pub mod stale;
pub mod update;
pub mod wal;

pub use certifier::CheckpointCertificate;
pub use chaos::{silence_injected_panics, ChaosConfig, ChaosCounters, ChaosInjector};
pub use degraded::{DegradedStats, RetryPolicy, ServeDriver};
pub use dyngraph::DynGraph;
pub use engine::{
    static_bounded_matching, BatchError, BatchStats, DynamicConfig, DynamicCounters,
    DynamicMatcher, RecomputeBaseline, UpdateEngine, UpdateStats,
};
pub use error::DynamicError;
pub use lazy::LazyMatcher;
pub use randomwalk::{RandomWalkConfig, RandomWalkMatcher};
pub use sharded::ShardedMatcher;
pub use stale::StaleMatcher;
pub use update::UpdateOp;
pub use wal::{RecoveryReport, WalConfig};
