//! The shared repair kernel of the dynamic engines.
//!
//! [`DynamicMatcher`](crate::DynamicMatcher) repairs its matching against
//! the real [`DynGraph`]/[`Matching`] pair; the sharded engine
//! ([`ShardedMatcher`](crate::ShardedMatcher)) runs the *same* repair
//! against a speculative overlay (frozen pre-batch state plus the shard's
//! own pending changes). This module factors the repair into a
//! [`RepairKit`] generic over two tiny traits — [`RepairGraph`] for
//! incidence scans and [`RepairMatching`] for matched-state reads and
//! writes — so both paths execute literally the same code and stay
//! bit-identical by construction.
//!
//! Two cross-cutting concerns live here as well:
//!
//! * **Recourse accounting.** Every matching mutation the kit performs is
//!   journalled as `(edge, inserted)`. [`RepairKit::net_recourse`] folds
//!   the journal into the *net* number of matching edges changed — an
//!   edge swapped out and back in within one update counts zero — which
//!   is the one recourse definition the whole workspace reports (the same
//!   symmetric-difference measure the rebuild epochs and the recompute
//!   baseline use).
//! * **Read tracing.** When constructed with `track_reads`, the kit
//!   records every vertex whose adjacency or matched state a repair
//!   depended on. The sharded engine replays a speculated plan only if no
//!   earlier-committing update wrote to any vertex the plan read.

use wmatch_graph::aug_search::AugSearcher;
use wmatch_graph::scratch::EpochSet;
use wmatch_graph::{Edge, Graph, Matching, Scratch, Vertex};

use crate::dyngraph::DynGraph;

/// Incidence reads the repair ball needs from a graph.
///
/// Implemented by the real [`DynGraph`] and by the sharded engine's
/// speculative view (frozen base plus shard-local delta).
pub(crate) trait RepairGraph {
    /// Number of vertices.
    fn vertex_count(&self) -> usize;
    /// Calls `f` for every live edge incident to `v`, in insertion order
    /// (with multiplicity for parallel edges) — the determinism contract
    /// every traversal in the workspace is built on.
    fn for_each_incident(&self, v: Vertex, f: &mut dyn FnMut(Edge));
    /// Whether a live copy of `{u, v}` with exactly this weight exists.
    fn has_live_copy(&self, u: Vertex, v: Vertex, weight: u64) -> bool;
}

impl RepairGraph for DynGraph {
    fn vertex_count(&self) -> usize {
        DynGraph::vertex_count(self)
    }

    fn for_each_incident(&self, v: Vertex, f: &mut dyn FnMut(Edge)) {
        for e in self.incident(v) {
            f(e);
        }
    }

    fn has_live_copy(&self, u: Vertex, v: Vertex, weight: u64) -> bool {
        DynGraph::has_live_copy(self, u, v, weight)
    }
}

/// Matched-state reads and writes the repair performs on a matching.
///
/// Implemented by the real [`Matching`] and by the sharded engine's
/// overlay view. Writes are infallible by contract: the repair only
/// removes edges it just read as matched and only inserts into endpoints
/// it just freed.
pub(crate) trait RepairMatching {
    /// The matched edge at `v`, if any.
    fn matched_edge(&self, v: Vertex) -> Option<Edge>;
    /// Inserts `e`; both endpoints must be free.
    fn do_insert(&mut self, e: Edge);
    /// Removes and returns the matched edge `{u, v}`; must be matched.
    fn do_remove(&mut self, u: Vertex, v: Vertex) -> Edge;
}

impl RepairMatching for Matching {
    fn matched_edge(&self, v: Vertex) -> Option<Edge> {
        Matching::matched_edge(self, v)
    }

    fn do_insert(&mut self, e: Edge) {
        self.insert(e).expect("repair inserts into freed endpoints");
    }

    fn do_remove(&mut self, u: Vertex, v: Vertex) -> Edge {
        self.remove_pair(u, v)
            .expect("repair removes matched edges")
    }
}

/// Outcome of one repair convergence loop (recourse is *not* here — it
/// comes from the journal via [`RepairKit::net_recourse`], so every
/// caller reports the same net measure).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FixOutcome {
    /// Net matching-weight change.
    pub gain: i128,
    /// Augmentations applied.
    pub augmentations: u64,
}

/// All reusable state of one repair executor: the exhaustive searcher,
/// the epoch-stamped ball scratch, the relabelled sub-instance buffers,
/// the mutation journal, and (optionally) the read trace. Everything is
/// persistent — at steady state a repair allocates nothing.
#[derive(Debug)]
pub(crate) struct RepairKit {
    pub searcher: AugSearcher,
    /// `scratch.count` doubles as the global→local id map of the ball.
    pub scratch: Scratch,
    local_to_global: Vec<Vertex>,
    queue: Vec<(Vertex, u32)>,
    pub dirty: Vec<Vertex>,
    sub_g: Graph,
    sub_m: Matching,
    sub_added: Vec<Edge>,
    sub_removed: Vec<Edge>,
    added: Vec<Edge>,
    removed: Vec<Edge>,
    /// Matching mutations of the current update, in order: `(edge, true)`
    /// for inserts, `(edge, false)` for removals.
    pub journal: Vec<(Edge, bool)>,
    track_reads: bool,
    /// Vertices read since [`RepairKit::begin_read_window`], deduplicated.
    pub read: Vec<Vertex>,
    read_mark: EpochSet,
}

impl RepairKit {
    /// A fresh kit. `track_reads` enables the read trace (the sharded
    /// speculation path); the sequential engine leaves it off.
    pub fn new(track_reads: bool) -> Self {
        RepairKit {
            searcher: AugSearcher::new(),
            scratch: Scratch::new(),
            local_to_global: Vec::new(),
            queue: Vec::new(),
            dirty: Vec::new(),
            sub_g: Graph::new(0),
            sub_m: Matching::new(0),
            sub_added: Vec::new(),
            sub_removed: Vec::new(),
            added: Vec::new(),
            removed: Vec::new(),
            journal: Vec::new(),
            track_reads,
            read: Vec::new(),
            read_mark: EpochSet::new(),
        }
    }

    /// Starts a new update: clears the mutation journal. (The read trace
    /// is *not* cleared — it accumulates per read window.)
    pub fn begin_update(&mut self) {
        self.journal.clear();
    }

    /// Starts a new read window over `n` vertices, clearing the read
    /// trace (epoch-stamped, so the clear is O(1)). The speculation path
    /// opens one window per overlap group, so a group's trace covers
    /// everything its speculation depended on and nothing more.
    pub fn begin_read_window(&mut self, n: usize) {
        self.read.clear();
        self.read_mark.ensure(n);
        self.read_mark.clear();
    }

    /// Records that the repair read the state of `v` (no-op unless the
    /// kit tracks reads).
    #[inline]
    pub fn note_read(&mut self, v: Vertex) {
        if self.track_reads && self.read_mark.insert(v) {
            self.read.push(v);
        }
    }

    /// Folds (and drains) the journal into the net number of matching
    /// edges changed: entries are grouped by `(endpoints, weight)` and a
    /// group counts only if its inserts and removals do not cancel.
    pub fn net_recourse(&mut self) -> u64 {
        self.journal
            .sort_unstable_by_key(|&(e, ins)| (e.key(), e.weight, ins));
        let mut recourse = 0u64;
        let mut i = 0;
        while i < self.journal.len() {
            let (e, _) = self.journal[i];
            let mut inserts = 0i64;
            let mut removals = 0i64;
            while i < self.journal.len() {
                let (f, ins) = self.journal[i];
                if f.key() != e.key() || f.weight != e.weight {
                    break;
                }
                if ins {
                    inserts += 1;
                } else {
                    removals += 1;
                }
                i += 1;
            }
            if inserts != removals {
                recourse += 1;
            }
        }
        self.journal.clear();
        recourse
    }

    /// The largest dense scratch footprint this kit has used.
    pub fn scratch_high_water(&self) -> usize {
        self.scratch.high_water()
    }

    /// Applies best local augmentations until none with positive gain
    /// remains in the ball around the (accumulating) dirty set, restoring
    /// the bounded-augmentation invariant. Clears the dirty set on
    /// return; every matching mutation is journalled.
    pub fn fix_up<G, M>(&mut self, g: &G, m: &mut M, max_len: usize) -> FixOutcome
    where
        G: RepairGraph + ?Sized,
        M: RepairMatching + ?Sized,
    {
        self.fix_up_budgeted(g, m, max_len, usize::MAX).0
    }

    /// [`RepairKit::fix_up`] under a work budget: at most `budget`
    /// augmentations are applied. Returns `true` in the second slot when
    /// the budget ran out before the loop certified the invariant — in
    /// that case the dirty set is **kept** (seeds plus everything touched
    /// so far), so the caller can carry it into a later repair and finish
    /// the convergence then. On a clean finish the dirty set is cleared,
    /// exactly as `fix_up`.
    pub fn fix_up_budgeted<G, M>(
        &mut self,
        g: &G,
        m: &mut M,
        max_len: usize,
        budget: usize,
    ) -> (FixOutcome, bool)
    where
        G: RepairGraph + ?Sized,
        M: RepairMatching + ?Sized,
    {
        let mut out = FixOutcome::default();
        loop {
            if out.augmentations as usize >= budget {
                // out of budget with the invariant not yet certified: keep
                // the dirty seeds for the caller to finish later
                return (out, true);
            }
            let Some(gain) = self.best_local_augmentation(g, m, max_len) else {
                break;
            };
            debug_assert!(gain > 0, "only positive augmentations are applied");
            for i in 0..self.removed.len() {
                let e = self.removed[i];
                let got = m.do_remove(e.u, e.v);
                debug_assert_eq!(got.key(), e.key());
                self.journal.push((got, false));
            }
            for i in 0..self.added.len() {
                let e = self.added[i];
                m.do_insert(e);
                self.journal.push((e, true));
            }
            out.gain += gain;
            out.augmentations += 1;
            // later repairs may only appear next to what this one touched,
            // but earlier candidates stay live: accumulate, don't replace
            for i in 0..self.removed.len() {
                let e = self.removed[i];
                self.dirty.extend([e.u, e.v]);
            }
            for i in 0..self.added.len() {
                let e = self.added[i];
                self.dirty.extend([e.u, e.v]);
            }
        }
        self.dirty.clear();
        (out, false)
    }

    /// The best positive augmentation (≤ `max_len` edges) in the
    /// radius-`max_len` ball around the dirty set: the ball (extended by
    /// the mates of ball vertices, so neighbourhood gains are exact) is
    /// relabelled into a compact sub-instance, solved with the exhaustive
    /// searcher, and the winner is unmapped into `self.added` /
    /// `self.removed`. Returns the gain, or `None` when the invariant
    /// holds.
    fn best_local_augmentation<G, M>(&mut self, g: &G, m: &M, max_len: usize) -> Option<i128>
    where
        G: RepairGraph + ?Sized,
        M: RepairMatching + ?Sized,
    {
        let n = g.vertex_count();
        self.scratch.begin(n);
        let RepairKit {
            searcher,
            scratch,
            local_to_global,
            queue,
            dirty,
            sub_g,
            sub_m,
            sub_added,
            sub_removed,
            added,
            removed,
            track_reads,
            read,
            read_mark,
            ..
        } = self;
        let ids = &mut scratch.count; // global vertex -> local id
        local_to_global.clear();
        queue.clear();
        // canonical seed order makes the search independent of the order
        // augmentations reported their touched vertices
        dirty.sort_unstable();
        dirty.dedup();
        for &d in dirty.iter() {
            if !ids.contains(d) {
                ids.insert(d, local_to_global.len() as u32);
                local_to_global.push(d);
                queue.push((d, 0));
            }
        }
        // BFS ball of radius max_len over the live adjacency
        let mut head = 0;
        while head < queue.len() {
            let (v, depth) = queue[head];
            head += 1;
            if depth as usize >= max_len {
                continue;
            }
            g.for_each_incident(v, &mut |e| {
                let w = e.other(v);
                if !ids.contains(w) {
                    ids.insert(w, local_to_global.len() as u32);
                    local_to_global.push(w);
                    queue.push((w, depth + 1));
                }
            });
        }
        // extend by mates so neighbourhood gains are exact at the border
        let ball_len = local_to_global.len();
        for i in 0..ball_len {
            let v = local_to_global[i];
            if let Some(me) = m.matched_edge(v) {
                let w = me.other(v);
                if !ids.contains(w) {
                    ids.insert(w, local_to_global.len() as u32);
                    local_to_global.push(w);
                }
            }
        }
        let sub_n = local_to_global.len();
        if sub_n == 0 {
            return None;
        }
        // everything in the extended ball was read: its adjacency feeds
        // the sub-instance and its matched state the warm matching
        if *track_reads {
            for &v in local_to_global.iter() {
                if read_mark.insert(v) {
                    read.push(v);
                }
            }
        }
        // relabelled sub-instance: every live edge with both endpoints in
        // the extended set, added once from its smaller-local endpoint
        sub_g.reset(sub_n);
        for (li, &v) in local_to_global.iter().enumerate() {
            g.for_each_incident(v, &mut |e| {
                if let Some(lw) = ids.get(e.other(v)) {
                    if (lw as usize) > li {
                        sub_g.add_edge(li as Vertex, lw, e.weight);
                    }
                }
            });
        }
        sub_m.reset(sub_n);
        for (li, &v) in local_to_global.iter().enumerate() {
            if let Some(me) = m.matched_edge(v) {
                let lw = ids.get(me.other(v)).expect("mates are in the sub-instance");
                if (lw as usize) > li {
                    sub_m
                        .insert(Edge::new(li as Vertex, lw, me.weight))
                        .expect("matched edges are vertex-disjoint");
                }
            }
        }
        let gain =
            searcher.best_augmentation_into(sub_g, sub_m, max_len, sub_added, sub_removed)?;
        added.clear();
        removed.clear();
        for e in sub_added.iter() {
            added.push(Edge::new(
                local_to_global[e.u as usize],
                local_to_global[e.v as usize],
                e.weight,
            ));
        }
        for e in sub_removed.iter() {
            removed.push(Edge::new(
                local_to_global[e.u as usize],
                local_to_global[e.v as usize],
                e.weight,
            ));
        }
        Some(gain)
    }
}

/// Repairs after an edge insertion (`g` already contains the new edge):
/// parallel-upgrade swap if a heavier copy of an already-matched pair
/// arrived, then bounded-augmentation fix-up seeded at the endpoints.
pub(crate) fn repair_insert<G, M>(
    kit: &mut RepairKit,
    g: &G,
    m: &mut M,
    u: Vertex,
    v: Vertex,
    weight: u64,
    max_len: usize,
) -> FixOutcome
where
    G: RepairGraph + ?Sized,
    M: RepairMatching + ?Sized,
{
    kit.note_read(u);
    kit.note_read(v);
    let mut out = FixOutcome::default();
    // parallel upgrade: matchings are keyed by endpoint pair, so a
    // heavier copy of an already-matched pair cannot be expressed as an
    // augmentation — swap it in directly
    if let Some(me) = m.matched_edge(u) {
        if me.other(u) == v && weight > me.weight {
            let old = m.do_remove(u, v);
            kit.journal.push((old, false));
            let new = Edge::new(u, v, weight);
            m.do_insert(new);
            kit.journal.push((new, true));
            out.gain += weight as i128 - old.weight as i128;
        }
    }
    // a new positive component must run through the new edge
    kit.dirty.clear();
    kit.dirty.extend([u, v]);
    let fix = kit.fix_up(g, m, max_len);
    out.gain += fix.gain;
    out.augmentations += fix.augmentations;
    out
}

/// Repairs after an edge deletion (`g` no longer contains the deleted
/// copy): if the matched copy of `{u, v}` is gone — no live edge with the
/// same endpoints *and weight* remains — the matching drops it and the
/// fix-up re-matches around the freed endpoints. Deleting an unmatched
/// copy cannot create a positive augmentation (gains only shrink), so it
/// is free.
pub(crate) fn repair_delete<G, M>(
    kit: &mut RepairKit,
    g: &G,
    m: &mut M,
    u: Vertex,
    v: Vertex,
    max_len: usize,
) -> FixOutcome
where
    G: RepairGraph + ?Sized,
    M: RepairMatching + ?Sized,
{
    kit.note_read(u);
    kit.note_read(v);
    let mut out = FixOutcome::default();
    let lost_matched_edge = match m.matched_edge(u) {
        Some(me) => me.other(u) == v && !g.has_live_copy(u, v, me.weight),
        None => false,
    };
    if lost_matched_edge {
        let removed = m.do_remove(u, v);
        kit.journal.push((removed, false));
        out.gain -= removed.weight as i128;
        kit.dirty.clear();
        kit.dirty.extend([u, v]);
        let fix = kit.fix_up(g, m, max_len);
        out.gain += fix.gain;
        out.augmentations += fix.augmentations;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_recourse_cancels_swap_back() {
        let mut kit = RepairKit::new(false);
        kit.begin_update();
        let e = Edge::new(0, 1, 5);
        let f = Edge::new(1, 2, 7);
        // remove e, insert f, remove f, insert e: net zero
        kit.journal
            .extend([(e, false), (f, true), (f, false), (e, true)]);
        assert_eq!(kit.net_recourse(), 0);
        assert!(kit.journal.is_empty(), "net_recourse drains the journal");
        // remove e, insert a *different-weight* copy of the same pair:
        // both count (weight change is observable churn)
        kit.journal.extend([(e, false), (Edge::new(0, 1, 9), true)]);
        assert_eq!(kit.net_recourse(), 2);
    }

    #[test]
    fn budgeted_fix_up_keeps_dirty_and_resumes() {
        // path 0-1(4), 1-2(6), 2-3(4): converging from empty takes two
        // augmentations (grab {1,2}, then the 3-edge swap to the outer
        // pair). Budget 1 must stop after the first and keep the seeds.
        let mut g = DynGraph::new(4);
        g.insert(0, 1, 4).unwrap();
        g.insert(1, 2, 6).unwrap();
        g.insert(2, 3, 4).unwrap();
        let mut m = Matching::new(4);
        let mut kit = RepairKit::new(false);
        kit.begin_update();
        kit.dirty.extend([0u32, 1, 2, 3]);
        let (out, exhausted) = kit.fix_up_budgeted(&g, &mut m, 3, 1);
        assert!(exhausted, "one augmentation cannot certify this ball");
        assert_eq!(out.augmentations, 1);
        assert_eq!(m.weight(), 6, "the middle edge wins the first round");
        assert!(!kit.dirty.is_empty(), "exhaustion preserves the seeds");
        // resuming without a budget finishes the convergence
        let (out, exhausted) = kit.fix_up_budgeted(&g, &mut m, 3, usize::MAX);
        assert!(!exhausted);
        assert_eq!(out.augmentations, 1);
        assert_eq!(m.weight(), 8, "outer pair beats the middle edge");
        assert!(kit.dirty.is_empty(), "clean finish clears the dirty set");
        // a zero budget is exhausted before searching at all
        kit.dirty.push(0);
        let (out, exhausted) = kit.fix_up_budgeted(&g, &mut m, 3, 0);
        assert!(exhausted);
        assert_eq!(out.augmentations, 0);
        assert_eq!(kit.dirty, vec![0]);
        kit.dirty.clear();
    }

    #[test]
    fn read_trace_dedups_and_respects_window() {
        let mut kit = RepairKit::new(true);
        kit.begin_read_window(8);
        kit.note_read(3);
        kit.note_read(3);
        kit.note_read(5);
        assert_eq!(kit.read, vec![3, 5]);
        kit.begin_read_window(8);
        assert!(kit.read.is_empty());
        kit.note_read(3);
        assert_eq!(kit.read, vec![3]);
        let mut off = RepairKit::new(false);
        off.begin_read_window(8);
        off.note_read(3);
        assert!(off.read.is_empty(), "tracking disabled records nothing");
    }
}
