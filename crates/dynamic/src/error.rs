//! Typed failure modes of the update-stream engine.

use std::error::Error;
use std::fmt;

use wmatch_graph::Vertex;

/// An update that the engine cannot apply. The engine's state is
/// unchanged when one of these is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DynamicError {
    /// An endpoint is outside the engine's fixed vertex range `0..n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: Vertex,
        /// The engine's vertex count.
        n: usize,
    },
    /// Both endpoints are the same vertex (self-loops carry no meaning
    /// for matchings).
    SelfLoop {
        /// The repeated endpoint.
        vertex: Vertex,
    },
    /// An insertion with weight zero (the paper's model requires positive
    /// integer weights).
    ZeroWeight {
        /// One endpoint.
        u: Vertex,
        /// The other endpoint.
        v: Vertex,
    },
    /// A deletion of an edge with no live copy.
    EdgeNotFound {
        /// One endpoint.
        u: Vertex,
        /// The other endpoint.
        v: Vertex,
    },
    /// The invariant sentinel found corrupted engine state (a matching
    /// entry with no backing live edge, or a violated bounded-augmentation
    /// floor), quarantined the affected shard, and triggered recovery
    /// **before** applying the rejected batch. This is the one
    /// *transient* failure mode: the state has already been healed when
    /// the error is returned, so retrying the same batch is expected to
    /// succeed — see [`DynamicError::is_transient`].
    Quarantined {
        /// The vertex shard the sentinel quarantined.
        shard: usize,
    },
}

impl DynamicError {
    /// Whether retrying the failed operation can succeed.
    ///
    /// Malformed-operation rejections ([`DynamicError::VertexOutOfRange`],
    /// [`DynamicError::SelfLoop`], [`DynamicError::ZeroWeight`],
    /// [`DynamicError::EdgeNotFound`]) are deterministic: the same op
    /// fails the same way forever, so a serve driver should *skip* the op
    /// and move on. [`DynamicError::Quarantined`] is transient: the
    /// sentinel has already healed the state, so a bounded retry (with
    /// backoff) of the same batch is the right response.
    pub fn is_transient(&self) -> bool {
        matches!(self, DynamicError::Quarantined { .. })
    }
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DynamicError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for {n} vertices")
            }
            DynamicError::SelfLoop { vertex } => {
                write!(f, "self-loop update at vertex {vertex}")
            }
            DynamicError::ZeroWeight { u, v } => {
                write!(
                    f,
                    "insertion {{{u},{v}}} with weight 0 (weights must be positive)"
                )
            }
            DynamicError::EdgeNotFound { u, v } => {
                write!(f, "no live edge {{{u},{v}}} to delete")
            }
            DynamicError::Quarantined { shard } => {
                write!(
                    f,
                    "shard {shard} was quarantined and recovered by the invariant \
                     sentinel; retry the batch"
                )
            }
        }
    }
}

impl Error for DynamicError {}
