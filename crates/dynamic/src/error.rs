//! Typed failure modes of the update-stream engine.

use std::error::Error;
use std::fmt;

use wmatch_graph::Vertex;

/// An update that the engine cannot apply. The engine's state is
/// unchanged when one of these is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DynamicError {
    /// An endpoint is outside the engine's fixed vertex range `0..n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: Vertex,
        /// The engine's vertex count.
        n: usize,
    },
    /// Both endpoints are the same vertex (self-loops carry no meaning
    /// for matchings).
    SelfLoop {
        /// The repeated endpoint.
        vertex: Vertex,
    },
    /// An insertion with weight zero (the paper's model requires positive
    /// integer weights).
    ZeroWeight {
        /// One endpoint.
        u: Vertex,
        /// The other endpoint.
        v: Vertex,
    },
    /// A deletion of an edge with no live copy.
    EdgeNotFound {
        /// One endpoint.
        u: Vertex,
        /// The other endpoint.
        v: Vertex,
    },
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DynamicError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for {n} vertices")
            }
            DynamicError::SelfLoop { vertex } => {
                write!(f, "self-loop update at vertex {vertex}")
            }
            DynamicError::ZeroWeight { u, v } => {
                write!(
                    f,
                    "insertion {{{u},{v}}} with weight 0 (weights must be positive)"
                )
            }
            DynamicError::EdgeNotFound { u, v } => {
                write!(f, "no live edge {{{u},{v}}} to delete")
            }
        }
    }
}

impl Error for DynamicError {}
