//! Write-ahead op journal + periodic snapshots: crash recovery for the
//! sharded engine.
//!
//! The WAL follows the classic log-before-apply discipline: every batch
//! is appended to the in-memory op journal (the *tail*) before the
//! engine touches it, and once the tail grows past the configured
//! cadence a fresh snapshot of the engine's semantic state (graph,
//! matching, counters, rebuild phase) is captured at the batch boundary
//! and the tail is cleared. Durable state is therefore always
//! `snapshot + tail`, and
//! [`ShardedMatcher::recover`](crate::ShardedMatcher::recover) rebuilds
//! it by restoring the snapshot and replaying the tail through the
//! ordinary batch path — which the engine's determinism contract
//! (bit-identical for any batch size, shard count, and thread count)
//! turns into a state **bit-identical to the uninterrupted run**.
//!
//! If a batch stops at a malformed op, the un-applied suffix is
//! truncated from the tail so the journal only ever records ops that
//! actually committed. Deferred (lazy-mode) ops are journaled like any
//! other; recovery replays them eagerly, so a crash canonicalizes
//! pending staleness into the fully-repaired state.

use wmatch_graph::Matching;

use crate::dyngraph::DynGraph;
use crate::engine::{DynamicCounters, EngineCore};
use crate::update::UpdateOp;

/// Snapshot cadence of the write-ahead log.
///
/// Follows the workspace's config idiom: `Default` + chainable `with_*`
/// setters, `#[non_exhaustive]` so fields can grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct WalConfig {
    /// Capture a fresh snapshot (and clear the journal tail) once the
    /// tail holds at least this many ops, checked at batch boundaries.
    /// Smaller values recover faster but snapshot more often.
    pub snapshot_every: usize,
}

impl Default for WalConfig {
    /// Snapshot every 4096 journaled ops.
    fn default() -> Self {
        WalConfig {
            snapshot_every: 4096,
        }
    }
}

impl WalConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the snapshot cadence (clamped to ≥ 1 at use sites).
    pub fn with_snapshot_every(mut self, snapshot_every: usize) -> Self {
        self.snapshot_every = snapshot_every;
        self
    }
}

/// What [`ShardedMatcher::recover`](crate::ShardedMatcher::recover)
/// did: how much state came from the snapshot and how much was replayed
/// from the journal tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct RecoveryReport {
    /// Updates already durable in the restored snapshot.
    pub snapshot_updates: u64,
    /// Journaled ops replayed on top of the snapshot.
    pub replayed_ops: usize,
}

/// Observable state of an engine's WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct WalStats {
    /// Snapshots captured (including the one taken when the WAL was
    /// enabled).
    pub snapshots: u64,
    /// Ops journaled over the WAL's lifetime (truncated ops excluded).
    pub ops_journaled: u64,
    /// Ops currently in the journal tail (the replay cost of a crash
    /// right now).
    pub tail_len: usize,
}

/// The write-ahead log: one snapshot of the engine's semantic state plus
/// the journal tail of every op applied since.
#[derive(Debug)]
pub(crate) struct Wal {
    every: usize,
    snap_g: DynGraph,
    snap_m: Matching,
    snap_counters: DynamicCounters,
    snap_since_rebuild: usize,
    tail: Vec<UpdateOp>,
    snapshots: u64,
    ops_journaled: u64,
}

impl Wal {
    /// A WAL whose initial snapshot is `core`'s current state.
    pub fn new(cfg: WalConfig, core: &EngineCore) -> Self {
        let mut wal = Wal {
            every: cfg.snapshot_every.max(1),
            snap_g: DynGraph::new(0),
            snap_m: Matching::new(0),
            snap_counters: DynamicCounters::default(),
            snap_since_rebuild: 0,
            tail: Vec::new(),
            snapshots: 0,
            ops_journaled: 0,
        };
        wal.capture(core);
        wal
    }

    fn capture(&mut self, core: &EngineCore) {
        self.snap_g.clone_from(&core.g);
        self.snap_m.copy_from(&core.m);
        self.snap_counters = core.counters;
        self.snap_since_rebuild = core.updates_since_rebuild;
        self.tail.clear();
        self.snapshots += 1;
    }

    /// Appends a batch to the journal tail — call *before* applying it.
    pub fn log(&mut self, ops: &[UpdateOp]) {
        self.tail.extend_from_slice(ops);
        self.ops_journaled += ops.len() as u64;
    }

    /// Drops the last `unapplied` ops from the tail: a batch stopped at
    /// a malformed op, so the rejected op and everything after it never
    /// committed and must not be replayed.
    pub fn truncate_unapplied(&mut self, unapplied: usize) {
        let keep = self.tail.len().saturating_sub(unapplied);
        self.tail.truncate(keep);
        self.ops_journaled = self.ops_journaled.saturating_sub(unapplied as u64);
    }

    /// Captures a fresh snapshot (clearing the tail) if the tail has
    /// reached the cadence — call at batch boundaries, after a batch
    /// fully commits.
    pub fn maybe_snapshot(&mut self, core: &EngineCore) {
        if self.tail.len() >= self.every {
            self.capture(core);
        }
    }

    /// Restores `core`'s semantic state to the snapshot. The caller
    /// replays the tail afterwards.
    pub fn restore(&self, core: &mut EngineCore) {
        core.g.clone_from(&self.snap_g);
        core.m.copy_from(&self.snap_m);
        core.counters = self.snap_counters;
        core.updates_since_rebuild = self.snap_since_rebuild;
        core.write_buf.clear();
        core.stale_dirty.clear();
        core.stale_ops = 0;
    }

    /// Updates durable in the snapshot.
    pub fn snapshot_updates(&self) -> u64 {
        self.snap_counters.updates_applied
    }

    /// Moves the tail out for replay (the engine cannot replay through
    /// `self` while it is borrowed); pair with [`Wal::put_tail`].
    pub fn take_tail(&mut self) -> Vec<UpdateOp> {
        std::mem::take(&mut self.tail)
    }

    /// Returns the tail after replay, preserving `snapshot + tail`
    /// as the durable state.
    pub fn put_tail(&mut self, tail: Vec<UpdateOp>) {
        debug_assert!(self.tail.is_empty());
        self.tail = tail;
    }

    /// The WAL's observable state.
    pub fn stats(&self) -> WalStats {
        WalStats {
            snapshots: self.snapshots,
            ops_journaled: self.ops_journaled,
            tail_len: self.tail.len(),
        }
    }
}
