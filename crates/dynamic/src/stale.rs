//! The tolerate-ε-staleness engine: defer repairs, batch-restore.
//!
//! [`StaleMatcher`] promotes the degraded serve mode's deferred path
//! (the engine core's `apply_lazy_one` + `flush_repairs`) into a
//! first-class solver. Every update performs only
//! the structural change (plus dead-matched-edge cleanup, so the matching
//! is never backed by an edge that no longer exists) and accumulates its
//! endpoints into a stale-dirty set; once `staleness_bound` updates have
//! been deferred, one batched fix-up sweep restores the bounded-
//! augmentation invariant over everything touched since the last flush.
//!
//! The trade: per-op cost drops to the structural update (no ball search
//! at all on the fast path) at the price of the Fact 1.3 floor holding
//! only at flush boundaries rather than after every op. Between flushes
//! the matching is *valid but uncertified* — exactly the ε-staleness
//! contract the serve driver uses under fault storms, here exposed with a
//! settable bound.
//!
//! # Batch-order insensitivity
//!
//! Within one staleness window, deferred updates that touch **pairwise
//! disjoint vertex sets** commute: the structural changes land in
//! per-vertex adjacency lists other ops never read, and the flush sweep
//! canonicalises its seed set (sorted, deduplicated) before searching.
//! Permuting such a window therefore yields a bit-identical post-flush
//! matching — a contract the proptest suite pins. Ops sharing a vertex
//! do *not* commute (per-vertex adjacency order is insertion order).

use wmatch_graph::{Graph, Matching};

use crate::dyngraph::DynGraph;
use crate::engine::{DynamicConfig, DynamicCounters, EngineCore, UpdateEngine, UpdateStats};
use crate::error::DynamicError;
use crate::update::UpdateOp;

/// The tolerate-ε-staleness dynamic engine; see the [module docs](self).
///
/// # Example
///
/// ```
/// use wmatch_dynamic::{DynamicConfig, StaleMatcher, UpdateOp};
///
/// let mut eng = StaleMatcher::new(4, DynamicConfig::default(), 2);
/// eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
/// assert_eq!(eng.matching().weight(), 0); // deferred: nothing matched yet
/// eng.apply(UpdateOp::insert(2, 3, 7)).unwrap(); // second op hits the bound
/// assert_eq!(eng.matching().weight(), 12); // flushed: both matched
/// ```
#[derive(Debug)]
pub struct StaleMatcher {
    core: EngineCore,
    staleness_bound: usize,
    flushes: u64,
}

impl StaleMatcher {
    /// An engine over an initially edgeless graph on `n` vertices that
    /// flushes after every `staleness_bound` deferred updates
    /// (`staleness_bound ≥ 1`; a bound of 1 flushes after every op).
    pub fn new(n: usize, cfg: DynamicConfig, staleness_bound: usize) -> Self {
        StaleMatcher {
            core: EngineCore::new(n, cfg),
            staleness_bound: staleness_bound.max(1),
            flushes: 0,
        }
    }

    /// An engine seeded with an initial graph, bootstrapped to the
    /// invariant (the initial solve is not counted as recourse).
    ///
    /// # Errors
    ///
    /// [`DynamicError::ZeroWeight`] if the initial graph carries a
    /// zero-weight edge.
    pub fn from_graph(
        initial: &Graph,
        cfg: DynamicConfig,
        staleness_bound: usize,
    ) -> Result<Self, DynamicError> {
        let mut eng = StaleMatcher::new(initial.vertex_count(), cfg, staleness_bound);
        eng.core.g = DynGraph::from_graph(initial)?;
        eng.core.m = crate::engine::static_bounded_matching(
            initial,
            cfg.max_len,
            &mut eng.core.kit.searcher,
        );
        Ok(eng)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.core.cfg
    }

    /// The staleness bound (deferred updates per flush).
    pub fn staleness_bound(&self) -> usize {
        self.staleness_bound
    }

    /// The maintained matching (valid at all times; certified only at
    /// flush boundaries).
    pub fn matching(&self) -> &Matching {
        &self.core.m
    }

    /// The live graph.
    pub fn graph(&self) -> &DynGraph {
        &self.core.g
    }

    /// Lifetime counters.
    pub fn counters(&self) -> DynamicCounters {
        self.core.counters
    }

    /// Updates deferred since the last flush (0 right after a flush —
    /// the matching is certified exactly then).
    pub fn stale_ops(&self) -> usize {
        self.core.stale_ops
    }

    /// Batched repair sweeps executed (auto-triggered or explicit).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Chunks stolen across the pool's jobs (rebuild epochs are the only
    /// parallel layer; always 0 at `threads = 1`).
    pub fn steals(&self) -> u64 {
        self.core.pool.steals()
    }

    /// The largest dense scratch footprint used so far.
    pub fn scratch_high_water(&self) -> usize {
        self.core.scratch_high_water()
    }

    /// Applies one update: structural change and dead-match cleanup now,
    /// repair deferred; one batched flush once the bound is reached.
    ///
    /// # Errors
    ///
    /// A [`DynamicError`] for malformed operations (the engine is
    /// unchanged; errors do not count towards the staleness window).
    pub fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        let mut stats = self.core.apply_lazy_one(op)?;
        if self.core.stale_ops >= self.staleness_bound {
            let fs = self.flush();
            stats.gain += fs.gain;
            stats.recourse += fs.recourse;
            stats.augmentations += fs.augmentations;
            stats.rebuilt |= fs.rebuilt;
        }
        Ok(stats)
    }

    /// Settles the deferred repairs now (one batched fix-up sweep plus a
    /// rebuild epoch if one came due), re-certifying the bounded-
    /// augmentation invariant. A no-op when nothing is deferred.
    pub fn flush(&mut self) -> UpdateStats {
        if self.core.stale_ops == 0 {
            return UpdateStats::default();
        }
        self.flushes += 1;
        self.core.flush_repairs()
    }
}

impl UpdateEngine for StaleMatcher {
    fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, DynamicError> {
        StaleMatcher::apply(self, op)
    }

    fn flush(&mut self) -> UpdateStats {
        StaleMatcher::flush(self)
    }

    fn matching(&self) -> &Matching {
        StaleMatcher::matching(self)
    }

    fn graph(&self) -> &DynGraph {
        StaleMatcher::graph(self)
    }

    fn counters(&self) -> DynamicCounters {
        StaleMatcher::counters(self)
    }

    fn declared_floor(&self) -> f64 {
        self.core.cfg.certified_floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DynamicMatcher;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wmatch_graph::aug_search::best_augmentation;

    #[test]
    fn defers_until_the_bound_then_flushes() {
        let mut eng = StaleMatcher::new(6, DynamicConfig::default(), 3);
        eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        eng.apply(UpdateOp::insert(2, 3, 4)).unwrap();
        assert_eq!(eng.matching().weight(), 0);
        assert_eq!(eng.stale_ops(), 2);
        let s = eng.apply(UpdateOp::insert(4, 5, 3)).unwrap();
        assert_eq!(eng.matching().weight(), 12, "third op triggered the flush");
        assert_eq!(eng.stale_ops(), 0);
        assert_eq!(eng.flushes(), 1);
        assert!(s.recourse >= 3);
    }

    #[test]
    fn deleted_matched_edge_is_dropped_immediately() {
        // validity is never deferred: deleting the matched copy must
        // unmatch it on the spot, even mid-window
        let mut eng = StaleMatcher::new(4, DynamicConfig::default(), 10);
        eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
        eng.flush();
        assert_eq!(eng.matching().weight(), 5);
        eng.apply(UpdateOp::delete(0, 1)).unwrap();
        assert_eq!(eng.matching().weight(), 0);
        eng.matching()
            .validate(Some(&eng.graph().snapshot()))
            .expect("matching stays valid mid-window");
    }

    #[test]
    fn flushed_state_matches_eager_engine_invariant() {
        let mut rng = StdRng::seed_from_u64(17);
        let cfg = DynamicConfig::default();
        let mut eng = StaleMatcher::new(12, cfg, 7);
        for _ in 0..140 {
            let u = rng.gen_range(0..12u32);
            let mut v = rng.gen_range(0..12u32);
            if v == u {
                v = (v + 1) % 12;
            }
            eng.apply(UpdateOp::insert(u, v, rng.gen_range(1..30u64)))
                .unwrap();
        }
        eng.flush();
        let snap = eng.graph().snapshot();
        eng.matching().validate(Some(&snap)).expect("valid");
        assert!(
            best_augmentation(&snap, eng.matching(), cfg.max_len).is_none(),
            "flush must restore the bounded-augmentation invariant"
        );
        assert_eq!(eng.counters().updates_applied, 140);
    }

    #[test]
    fn bound_one_is_the_eager_engine_on_disjoint_streams() {
        // with staleness_bound = 1 every op flushes immediately; on a
        // stream the eager engine handles identically, weights agree
        let mut stale = StaleMatcher::new(8, DynamicConfig::default(), 1);
        let mut eager = DynamicMatcher::new(8, DynamicConfig::default());
        let ops = [
            UpdateOp::insert(0, 1, 5),
            UpdateOp::insert(2, 3, 7),
            UpdateOp::insert(1, 2, 9),
            UpdateOp::delete(0, 1),
        ];
        for &op in &ops {
            stale.apply(op).unwrap();
            eager.apply(op).unwrap();
        }
        assert_eq!(
            stale.matching().to_edges(),
            eager.matching().to_edges(),
            "bound 1 repairs after every op, like the eager engine"
        );
    }
}
