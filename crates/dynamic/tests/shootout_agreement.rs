//! The cross-engine metamorphic suite behind the shootout: every dynamic
//! engine in the crate — eager, sharded, recompute baseline, random-walk,
//! bounded-lazy, ε-stale — is driven through the one [`UpdateEngine`]
//! surface over pinned-seed update streams, and held to the claims the
//! shootout compares them on:
//!
//! - **consistency**: after a flush the maintained matching validates
//!   against the live snapshot (no vertex matched twice, every matched
//!   edge backed by a live copy);
//! - **quality**: the post-flush matching meets the engine's *declared*
//!   floor against a from-scratch blossom solve at every checkpoint;
//! - **recourse accounting**: the per-op recourse the engines return sums
//!   exactly to their lifetime counter, and the observable churn between
//!   checkpoints (matching symmetric difference) never exceeds what the
//!   journals reported for the span.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmatch_dynamic::{
    DynamicConfig, DynamicMatcher, LazyMatcher, RandomWalkConfig, RandomWalkMatcher,
    RecomputeBaseline, ShardedMatcher, StaleMatcher, UpdateEngine, UpdateOp,
};
use wmatch_graph::exact::max_weight_matching;
use wmatch_graph::{Edge, Vertex};

/// Every engine the shootout compares, freshly configured. The lazy
/// budget and staleness bound are deliberately tight so the deferred
/// paths actually defer on these streams.
fn engines(n: usize) -> Vec<(&'static str, Box<dyn UpdateEngine>)> {
    let cfg = DynamicConfig::default();
    vec![
        ("eager", Box::new(DynamicMatcher::new(n, cfg))),
        ("baseline", Box::new(RecomputeBaseline::new(n, 3))),
        ("sharded", Box::new(ShardedMatcher::new(n, cfg, 4))),
        (
            "randomwalk",
            Box::new(RandomWalkMatcher::new(n, RandomWalkConfig::new())),
        ),
        ("lazy", Box::new(LazyMatcher::new(n, cfg, 1))),
        ("stale", Box::new(StaleMatcher::new(n, cfg, 9))),
    ]
}

/// Heavy churn: interleaved inserts and deletes with a density governor.
fn heavy_churn(n: usize, len: usize, seed: u64) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<(Vertex, Vertex)> = Vec::new();
    let cap = 5 * n / 2;
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let delete = !live.is_empty()
            && (live.len() >= cap || (live.len() > cap / 2 && rng.gen_range(0..2) == 0));
        if delete {
            let i = rng.gen_range(0..live.len());
            let (u, v) = live.swap_remove(i);
            ops.push(UpdateOp::delete(u, v));
        } else {
            let u = rng.gen_range(0..n as Vertex);
            let mut v = rng.gen_range(0..n as Vertex);
            if v == u {
                v = (v + 1) % n as Vertex;
            }
            live.push((u, v));
            ops.push(UpdateOp::insert(u, v, rng.gen_range(1..=200)));
        }
    }
    ops
}

/// Sliding window: pure inserts until the window fills, then every insert
/// evicts the oldest live edge — the time-decay workload.
fn sliding_window(n: usize, len: usize, window: usize, seed: u64) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fifo: std::collections::VecDeque<(Vertex, Vertex)> = Default::default();
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        let u = rng.gen_range(0..n as Vertex);
        let mut v = rng.gen_range(0..n as Vertex);
        if v == u {
            v = (v + 1) % n as Vertex;
        }
        ops.push(UpdateOp::insert(u, v, rng.gen_range(1..=200)));
        fifo.push_back((u, v));
        if fifo.len() > window && ops.len() < len {
            let (du, dv) = fifo.pop_front().unwrap();
            ops.push(UpdateOp::delete(du, dv));
        }
    }
    ops
}

/// Delete-the-matching: an insert phase, then delete exactly the edges a
/// probe eager engine matched — every delete forces a repair.
fn delete_matching(n: usize, inserts: usize, seed: u64) -> Vec<UpdateOp> {
    let mut ops = heavy_churn(n, inserts, seed)
        .into_iter()
        .filter(|op| matches!(op, UpdateOp::Insert { .. }))
        .collect::<Vec<_>>();
    let mut probe = DynamicMatcher::new(n, DynamicConfig::default());
    for &op in &ops {
        probe.apply(op).expect("inserts are well-formed");
    }
    let matched: Vec<Edge> = probe.matching().to_edges();
    ops.extend(matched.iter().map(|e| UpdateOp::delete(e.u, e.v)));
    ops
}

/// Replays `ops` on `eng` with a checkpoint every `cadence` ops: flush,
/// validate against the snapshot, and hold the *declared* floor against a
/// from-scratch blossom solve.
fn replay_with_floor_checkpoints(
    label: &str,
    eng: &mut dyn UpdateEngine,
    ops: &[UpdateOp],
    cadence: usize,
) {
    let floor = eng.declared_floor();
    for (step, &op) in ops.iter().enumerate() {
        eng.apply(op)
            .unwrap_or_else(|e| panic!("{label} step {step}: {e}"));
        if (step + 1) % cadence == 0 || step + 1 == ops.len() {
            eng.flush();
            let snap = eng.graph().snapshot();
            eng.matching()
                .validate(Some(&snap))
                .unwrap_or_else(|e| panic!("{label} step {step}: invalid matching: {e}"));
            let opt = max_weight_matching(&snap).weight();
            assert!(
                eng.matching().weight() as f64 >= (floor - 1e-9) * opt as f64,
                "{label} step {step}: weight {} below declared floor {floor} of optimum {opt}",
                eng.matching().weight()
            );
        }
    }
    assert_eq!(
        eng.counters().updates_applied as usize,
        ops.len(),
        "{label}: every stream op must be counted"
    );
}

#[test]
fn every_engine_holds_its_declared_floor_on_heavy_churn() {
    let ops = heavy_churn(20, 400, 0xC0FFEE);
    for (name, mut eng) in engines(20) {
        replay_with_floor_checkpoints(&format!("churn/{name}"), eng.as_mut(), &ops, 50);
    }
}

#[test]
fn every_engine_holds_its_declared_floor_on_sliding_windows() {
    let ops = sliding_window(20, 400, 30, 0x51DE);
    for (name, mut eng) in engines(20) {
        replay_with_floor_checkpoints(&format!("window/{name}"), eng.as_mut(), &ops, 50);
    }
}

#[test]
fn every_engine_holds_its_declared_floor_when_the_matching_is_deleted() {
    let ops = delete_matching(20, 160, 0xDE1);
    for (name, mut eng) in engines(20) {
        replay_with_floor_checkpoints(&format!("delete-matching/{name}"), eng.as_mut(), &ops, 25);
    }
}

/// The (key, weight) multiset view of a matching, for symmetric diffs.
fn matching_set(eng: &dyn UpdateEngine) -> std::collections::HashSet<((Vertex, Vertex), u64)> {
    eng.matching().iter().map(|e| (e.key(), e.weight)).collect()
}

#[test]
fn recourse_journals_reconcile_with_counters_and_snapshot_diffs() {
    let ops = heavy_churn(18, 300, 0x5EC0);
    for (name, mut eng) in engines(18) {
        let mut total: u64 = 0;
        let mut span: u64 = 0;
        let mut at_checkpoint = matching_set(eng.as_ref());
        for (step, &op) in ops.iter().enumerate() {
            let stats = eng.apply(op).expect("well-formed stream");
            total += stats.recourse;
            span += stats.recourse;
            if (step + 1) % 40 == 0 || step + 1 == ops.len() {
                let fs = eng.flush();
                total += fs.recourse;
                span += fs.recourse;
                // observable churn over the span: every matched-edge
                // change must have passed through a journal, so the
                // symmetric difference cannot exceed the reported recourse
                let now = matching_set(eng.as_ref());
                let diff = now.symmetric_difference(&at_checkpoint).count() as u64;
                assert!(
                    diff <= span,
                    "{name} step {step}: snapshot diff {diff} exceeds journaled recourse {span}"
                );
                at_checkpoint = now;
                span = 0;
            }
        }
        assert_eq!(
            total,
            eng.counters().recourse_total,
            "{name}: returned per-op recourse must sum to the lifetime counter"
        );
    }
}

#[test]
fn generously_budgeted_lazy_engine_is_bit_identical_to_eager() {
    // metamorphic relation: with an unbounded budget the lazy engine never
    // defers, so it *is* the eager engine, op for op
    let ops = heavy_churn(16, 250, 0x1A2B);
    let mut eager = DynamicMatcher::new(16, DynamicConfig::default());
    let mut lazy = LazyMatcher::new(16, DynamicConfig::default(), usize::MAX);
    for &op in &ops {
        let a = eager.apply(op).unwrap();
        let b = LazyMatcher::apply(&mut lazy, op).unwrap();
        assert_eq!(a, b, "per-op stats diverge");
    }
    assert_eq!(eager.matching().to_edges(), lazy.matching().to_edges());
    assert_eq!(lazy.exhausted_updates(), 0, "nothing may be deferred");
    assert_eq!(lazy.carry_len(), 0);
}

proptest! {
    // Seed pinned for reproducibility: every run explores the same cases.
    #![proptest_config(ProptestConfig::with_cases(20).with_seed(0x73686f6f))] // b"shoo"

    /// Pinned-seed random streams through every engine: post-flush the
    /// matching validates and meets the declared floor, and the counters
    /// see the whole stream.
    #[test]
    fn random_streams_hold_floor_across_all_engines(
        stream_seed in 0u64..500,
        len in 30usize..90,
    ) {
        let ops = heavy_churn(12, len, stream_seed);
        for (name, mut eng) in engines(12) {
            let floor = eng.declared_floor();
            for &op in &ops {
                eng.apply(op).expect("well-formed stream");
            }
            eng.flush();
            let snap = eng.graph().snapshot();
            eng.matching().validate(Some(&snap)).expect("valid post-flush");
            let opt = max_weight_matching(&snap).weight();
            prop_assert!(
                eng.matching().weight() as f64 >= (floor - 1e-9) * opt as f64,
                "{} below declared floor", name
            );
            prop_assert_eq!(eng.counters().updates_applied as usize, ops.len());
        }
    }
}
