//! The dynamic-vs-oracle agreement suite: replay update sequences and, at
//! checkpoints, hold the maintained matching to the engine's declared
//! approximation floor against a from-scratch exact (blossom) solve —
//! plus the invariant cross-check against the reference `AugSearcher`
//! (the engine's "no short augmentation" must mean exactly what the
//! static searcher means by it).
//!
//! Covers the unit cases the update model makes interesting (deleting a
//! matched edge, parallel edges, weight-class boundary crossings), a
//! ≥10⁵-operation churn sequence with periodic oracle checkpoints and
//! rebuild epochs, and a pinned-seed property test over random update
//! sequences.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmatch_dynamic::{DynamicConfig, DynamicMatcher, RecomputeBaseline, ShardedMatcher, UpdateOp};
use wmatch_graph::aug_search::best_augmentation;
use wmatch_graph::exact::max_weight_matching;
use wmatch_graph::Vertex;
use wmatch_oracle::{certify_max_weight, IncrementalCertifier};

/// The floor the default configuration certifies (Fact 1.3 at
/// `max_len = 3`, i.e. ℓ = 2).
const FLOOR_NUM: i128 = 1;
const FLOOR_DEN: i128 = 2;

/// Asserts the engine's matching validates, meets the ½ floor against a
/// from-scratch blossom solve of the live graph, and admits no positive
/// augmentation the reference searcher can see.
fn assert_oracle_floor(eng: &DynamicMatcher, label: &str) {
    let snap = eng.graph().snapshot();
    eng.matching()
        .validate(Some(&snap))
        .unwrap_or_else(|e| panic!("{label}: invalid matching: {e}"));
    assert!(
        best_augmentation(&snap, eng.matching(), eng.config().max_len).is_none(),
        "{label}: a positive short augmentation survived"
    );
    let opt = max_weight_matching(&snap).weight();
    assert!(
        eng.matching().weight() * FLOOR_DEN >= FLOOR_NUM * opt,
        "{label}: {} below the ½ floor of optimum {opt}",
        eng.matching().weight()
    );
}

/// A deterministic churn step that keeps the live set near a bounded
/// density (≈2.5 edges per vertex): above the cap it deletes, below half
/// the cap it inserts, in between it flips a coin — so a long sequence
/// stays sparse instead of accreting into a dense graph.
fn churn_op(rng: &mut StdRng, n: usize, live: &mut Vec<(Vertex, Vertex)>) -> UpdateOp {
    let cap = 5 * n / 2;
    let delete = !live.is_empty()
        && (live.len() >= cap || (live.len() > cap / 2 && rng.gen_range(0..2) == 0));
    if delete {
        let i = rng.gen_range(0..live.len());
        let (u, v) = live.swap_remove(i);
        UpdateOp::delete(u, v)
    } else {
        let u = rng.gen_range(0..n as Vertex);
        let mut v = rng.gen_range(0..n as Vertex);
        if v == u {
            v = (v + 1) % n as Vertex;
        }
        live.push((u, v));
        UpdateOp::insert(u, v, rng.gen_range(1..=1000))
    }
}

/// The headline acceptance check: a 10⁵-operation churn sequence with
/// rebuild epochs enabled; at every checkpoint the maintained matching
/// meets the declared floor against the blossom oracle.
#[test]
fn hundred_thousand_op_churn_holds_floor_at_checkpoints() {
    const N: usize = 96;
    const OPS: usize = 100_000;
    const CHECKPOINT: usize = 1_000;
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let cfg = DynamicConfig::default()
        .with_rebuild_threshold(20_000)
        .with_seed(7);
    let mut eng = DynamicMatcher::new(N, cfg);
    let mut live = Vec::new();
    for step in 1..=OPS {
        let op = churn_op(&mut rng, N, &mut live);
        eng.apply(op).expect("generated ops are well-formed");
        if step % CHECKPOINT == 0 {
            assert_oracle_floor(&eng, &format!("churn step {step}"));
        }
    }
    let counters = eng.counters();
    assert_eq!(counters.updates_applied as usize, OPS);
    assert_eq!(counters.rebuilds, 5, "one epoch per 20k updates");
    // bounded recourse in the aggregate: local repair touches a handful
    // of matching edges per update, not the whole matching
    assert!(
        counters.recourse_total < (3 * OPS) as u64,
        "recourse {} is not O(1) per update",
        counters.recourse_total
    );
}

/// A deterministic bipartite churn step (left 0..n/2, right n/2..n) with
/// the same density governor as [`churn_op`].
fn bipartite_churn_op(rng: &mut StdRng, n: usize, live: &mut Vec<(Vertex, Vertex)>) -> UpdateOp {
    let half = (n / 2) as Vertex;
    let cap = 5 * n / 2;
    let delete = !live.is_empty()
        && (live.len() >= cap || (live.len() > cap / 2 && rng.gen_range(0..2) == 0));
    if delete {
        let i = rng.gen_range(0..live.len());
        let (u, v) = live.swap_remove(i);
        UpdateOp::delete(u, v)
    } else {
        let u = rng.gen_range(0..half);
        let v = half + rng.gen_range(0..half);
        live.push((u, v));
        UpdateOp::insert(u, v, rng.gen_range(1..=1000))
    }
}

/// The tightened-cadence bipartite counterpart of the churn acceptance
/// check: every 1k ops the engine is re-certified through the
/// [`IncrementalCertifier`] (warm dual repair from the previous
/// checkpoint's optimum), the warm optimum is cross-checked against a
/// cold solve of the same snapshot, and the maintained matching holds the
/// ½ floor against the certified optimum.
#[test]
fn bipartite_churn_certifies_warm_at_every_thousand_ops() {
    const N: usize = 96;
    const OPS: usize = 20_000;
    const CHECKPOINT: usize = 1_000;
    let mut rng = StdRng::seed_from_u64(0xB1BA);
    let cfg = DynamicConfig::default()
        .with_rebuild_threshold(5_000)
        .with_seed(13);
    let mut eng = DynamicMatcher::new(N, cfg);
    let side: Vec<bool> = (0..N).map(|v| v >= N / 2).collect();
    let mut cert = IncrementalCertifier::new(side.clone());
    let mut live = Vec::new();
    for step in 1..=OPS {
        let op = bipartite_churn_op(&mut rng, N, &mut live);
        eng.apply(op).expect("generated ops are well-formed");
        if step % CHECKPOINT == 0 {
            let ck = eng
                .certify_checkpoint(&mut cert)
                .expect("churn stays bipartite");
            let cold = certify_max_weight(&eng.graph().snapshot(), &side)
                .expect("same snapshot, same bipartition");
            assert_eq!(
                ck.optimum, cold.optimum,
                "step {step}: warm and cold optima disagree"
            );
            assert!(
                ck.ratio >= 0.5 - 1e-9,
                "step {step}: ratio {} below the ½ floor of {}",
                ck.ratio,
                ck.optimum
            );
        }
    }
    let stats = cert.stats();
    assert_eq!(stats.checkpoints, (OPS / CHECKPOINT) as u64);
    assert_eq!(
        stats.warm_checkpoints,
        (OPS / CHECKPOINT - 1) as u64,
        "every checkpoint after the first must warm-start"
    );
}

#[test]
fn deleting_a_matched_edge_repairs_to_oracle_floor() {
    // the canonical hard delete: the matched middle of a weighted path,
    // forcing the repair to re-knit both sides
    let mut eng = DynamicMatcher::new(6, DynamicConfig::default());
    let weights = [
        (0u32, 1u32, 4u64),
        (1, 2, 6),
        (2, 3, 6),
        (3, 4, 4),
        (4, 5, 3),
    ];
    for (u, v, w) in weights {
        eng.apply(UpdateOp::insert(u, v, w)).unwrap();
        assert_oracle_floor(&eng, &format!("insert {{{u},{v}}}"));
    }
    for (u, v) in [(1u32, 2u32), (3, 4), (0, 1)] {
        eng.apply(UpdateOp::delete(u, v)).unwrap();
        assert_oracle_floor(&eng, &format!("delete {{{u},{v}}}"));
    }
}

#[test]
fn parallel_edges_agree_with_oracle_through_churn() {
    // parallel copies of every weight relation: heavier-after, lighter-
    // after, equal; deletions peel them off most-recent-first
    let mut eng = DynamicMatcher::new(4, DynamicConfig::default());
    let script = [
        UpdateOp::insert(0, 1, 5),
        UpdateOp::insert(0, 1, 9), // heavier parallel copy: must upgrade
        UpdateOp::insert(2, 3, 4),
        UpdateOp::insert(2, 3, 1), // lighter parallel copy: no change
        UpdateOp::insert(1, 2, 7),
        UpdateOp::delete(0, 1),    // removes the 9-copy, falls back to 5
        UpdateOp::insert(0, 1, 5), // equal-weight parallel copy
        UpdateOp::delete(2, 3),    // removes the 1-copy (most recent)
        UpdateOp::delete(2, 3),    // removes the 4-copy: endpoint 3 frees
    ];
    for (i, op) in script.iter().enumerate() {
        eng.apply(*op).unwrap();
        assert_oracle_floor(&eng, &format!("script step {i} ({op})"));
    }
}

#[test]
fn weight_class_boundary_crossings_survive_rebuild_epochs() {
    // weights straddling the geometric weight-class boundaries (the
    // power-of-two grid of the rebuild epochs' class sweep): every class
    // of the grid is populated on both sides of a boundary, and rebuild
    // epochs run right through them
    let cfg = DynamicConfig::default()
        .with_rebuild_threshold(8)
        .with_seed(3);
    let mut eng = DynamicMatcher::new(20, cfg);
    let mut step = 0usize;
    for k in 1..6u32 {
        let class = 1u64 << k; // 2, 4, 8, 16, 32
        for d in [-1i64, 0, 1] {
            let w = (class as i64 + d) as u64;
            let base = ((step * 3) % 18) as Vertex;
            eng.apply(UpdateOp::insert(base, base + 1, w)).unwrap();
            eng.apply(UpdateOp::insert(base + 1, base + 2, w + 1))
                .unwrap();
            assert_oracle_floor(&eng, &format!("boundary 2^{k}{d:+}"));
            step += 1;
        }
    }
    // churn the boundary edges back out
    for _ in 0..10 {
        let base = ((step * 3) % 18) as Vertex;
        let _ = eng.apply(UpdateOp::delete(base, base + 1));
        assert_oracle_floor(&eng, &format!("boundary delete at {base}"));
        step += 1;
    }
    assert!(eng.counters().rebuilds > 0, "epochs must have fired");
}

#[test]
fn incremental_engine_matches_recompute_baseline_quality() {
    // same sequence, same floor machinery: the local engine's weight may
    // differ from the from-scratch recompute, but both must clear the
    // oracle floor at every checkpoint
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut eng = DynamicMatcher::new(24, DynamicConfig::default());
    let mut base = RecomputeBaseline::new(24, 3);
    let mut live = Vec::new();
    for step in 1..=400usize {
        let op = churn_op(&mut rng, 24, &mut live);
        eng.apply(op).unwrap();
        base.apply(op).unwrap();
        if step % 50 == 0 {
            assert_oracle_floor(&eng, &format!("engine step {step}"));
            let opt = max_weight_matching(&base.graph().snapshot()).weight();
            assert!(
                base.matching().weight() * FLOOR_DEN >= FLOOR_NUM * opt,
                "baseline step {step}: {} vs {opt}",
                base.matching().weight()
            );
        }
    }
}

/// An abstract update plan: interpreted against the tracked live set so
/// every generated sequence is well-formed by construction.
fn arb_update_plan(
    max_n: usize,
    max_ops: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32, u64, bool)>)> {
    (4usize..=max_n).prop_flat_map(move |n| {
        let raw = proptest::collection::vec(
            (0u32..n as u32, 0u32..n as u32, 1u64..=64, any::<bool>()),
            1..=max_ops,
        );
        raw.prop_map(move |ops| (n, ops))
    })
}

/// Interprets a raw plan into concrete ops (deletes pick a live pair by
/// index; inserts fix self-loops by shifting an endpoint).
fn interpret(n: usize, raw: &[(u32, u32, u64, bool)]) -> Vec<UpdateOp> {
    let mut live: Vec<(Vertex, Vertex)> = Vec::new();
    let mut out = Vec::with_capacity(raw.len());
    for &(a, b, w, del) in raw {
        if del && !live.is_empty() {
            let i = (a as usize + b as usize) % live.len();
            let (u, v) = live.swap_remove(i);
            out.push(UpdateOp::delete(u, v));
        } else {
            let u = a;
            let v = if a == b { (b + 1) % n as u32 } else { b };
            live.push((u, v));
            out.push(UpdateOp::insert(u, v, w));
        }
    }
    out
}

proptest! {
    // Seed pinned for reproducibility: every run explores the same cases.
    #![proptest_config(ProptestConfig::with_cases(48).with_seed(0x64796e61))] // b"dyna"

    /// Random update sequences: after every full replay the engine
    /// validates, holds the oracle floor, admits no short augmentation,
    /// and agrees with a fresh engine replaying the same sequence
    /// (replay determinism).
    #[test]
    fn random_sequences_hold_oracle_floor(
        (n, raw) in arb_update_plan(12, 60),
    ) {
        let ops = interpret(n, &raw);
        let mut eng = DynamicMatcher::new(n, DynamicConfig::default());
        eng.apply_all(&ops).expect("interpreted ops are well-formed");
        let snap = eng.graph().snapshot();
        eng.matching().validate(Some(&snap)).expect("valid matching");
        prop_assert!(best_augmentation(&snap, eng.matching(), 3).is_none());
        let opt = max_weight_matching(&snap).weight();
        prop_assert!(eng.matching().weight() * FLOOR_DEN >= FLOOR_NUM * opt);

        let mut replay = DynamicMatcher::new(n, DynamicConfig::default());
        replay.apply_all(&ops).expect("same ops");
        prop_assert_eq!(replay.matching().to_edges(), eng.matching().to_edges());
    }

    /// The same sequences with rebuild epochs enabled, across thread
    /// counts: bit-identical matchings and counters for threads 1/2/4/0.
    #[test]
    fn random_sequences_bit_identical_across_threads(
        (n, raw) in arb_update_plan(10, 40),
        seed in 0u64..50,
    ) {
        let ops = interpret(n, &raw);
        let run = |threads: usize| {
            let cfg = DynamicConfig::default()
                .with_rebuild_threshold(10)
                .with_seed(seed)
                .with_threads(threads);
            let mut eng = DynamicMatcher::new(n, cfg);
            eng.apply_all(&ops).expect("interpreted ops are well-formed");
            (eng.matching().to_edges(), eng.counters())
        };
        let want = run(1);
        for threads in [2usize, 4, 0] {
            let got = run(threads);
            prop_assert_eq!(&want.0, &got.0, "threads = {}", threads);
            prop_assert_eq!(want.1, got.1, "threads = {}", threads);
        }
    }

    /// The sharded engine against the sequential reference: for every
    /// random sequence, shard counts {1, 2, 8} × thread counts {1, 4, 0}
    /// produce bit-identical matchings, counters, and batch stats — and
    /// the committed matching holds the oracle floor.
    #[test]
    fn sharded_bit_identical_to_sequential_and_holds_floor(
        (n, raw) in arb_update_plan(12, 60),
        seed in 0u64..20,
    ) {
        let ops = interpret(n, &raw);
        let cfg = DynamicConfig::default()
            .with_rebuild_threshold(25)
            .with_seed(seed);
        let mut seq = DynamicMatcher::new(n, cfg);
        let want_stats = seq.apply_all(&ops).expect("interpreted ops are well-formed");
        for shards in [1usize, 2, 8] {
            for threads in [1usize, 4, 0] {
                let mut sh = ShardedMatcher::new(n, cfg.with_threads(threads), shards)
                    .with_batch_size(16);
                let got_stats = sh.apply_all(&ops).expect("same ops");
                prop_assert_eq!(
                    seq.matching().to_edges(),
                    sh.matching().to_edges(),
                    "shards = {}, threads = {}", shards, threads
                );
                prop_assert_eq!(
                    seq.counters(),
                    sh.counters(),
                    "shards = {}, threads = {}", shards, threads
                );
                prop_assert_eq!(
                    want_stats,
                    got_stats,
                    "shards = {}, threads = {}", shards, threads
                );
            }
        }
        let snap = seq.graph().snapshot();
        let opt = max_weight_matching(&snap).weight();
        prop_assert!(seq.matching().weight() * FLOOR_DEN >= FLOOR_NUM * opt);
    }
}

/// Boundary-heavy churn at scale for the sharded engine: a longer
/// deterministic stream where most edges cross shard boundaries, checked
/// against the sequential engine with oracle-floor checkpoints.
#[test]
fn sharded_boundary_churn_matches_sequential_with_floor_checkpoints() {
    const N: usize = 64;
    const OPS: usize = 4_000;
    let mut rng = StdRng::seed_from_u64(0x5AAD);
    let mut live: Vec<(Vertex, Vertex)> = Vec::new();
    let mut ops = Vec::with_capacity(OPS);
    for _ in 0..OPS {
        // bias endpoints toward the 8-shard boundaries of the range
        if !live.is_empty() && rng.gen_range(0..3) == 0 {
            let i = rng.gen_range(0..live.len());
            let (u, v) = live.swap_remove(i);
            ops.push(UpdateOp::delete(u, v));
        } else {
            let b = (rng.gen_range(1..8u32) * (N as u32 / 8)) % N as u32;
            let u = (b + N as u32 - 1 - rng.gen_range(0..2u32)) % N as u32;
            let mut v = (b + rng.gen_range(0..2u32)) % N as u32;
            if v == u {
                v = (v + 1) % N as u32;
            }
            ops.push(UpdateOp::insert(u, v, rng.gen_range(1..=1000)));
            live.push((u, v));
        }
    }
    let cfg = DynamicConfig::default()
        .with_rebuild_threshold(1_000)
        .with_seed(11);
    let mut seq = DynamicMatcher::new(N, cfg);
    // threads = 2 keeps the speculative path engaged (one worker would
    // take the inline bypass and never produce plans to replay)
    let mut sh = ShardedMatcher::new(N, cfg.with_threads(2), 8).with_batch_size(128);
    for (step, chunk) in ops.chunks(500).enumerate() {
        seq.apply_all(chunk).expect("well-formed");
        sh.apply_all(chunk).expect("well-formed");
        assert_eq!(
            seq.matching().to_edges(),
            sh.matching().to_edges(),
            "chunk {step}"
        );
        assert_eq!(seq.counters(), sh.counters(), "chunk {step}");
        assert_oracle_floor(&seq, &format!("boundary chunk {step}"));
    }
    assert!(
        sh.replayed() > 0,
        "some plans must commit by replay even under boundary pressure"
    );
}

/// The ball-grouping adversary: every op of every batch touches a shared
/// hub vertex, so union-find must collapse each batch to a *single*
/// overlap group (speculated sequentially, like it or not) and the
/// committed state must still match the sequential engine exactly, floor
/// checkpoints included.
#[test]
fn hub_vertex_batches_collapse_to_one_group_and_agree() {
    const N: usize = 48;
    const OPS: usize = 2_000;
    const BATCH: usize = 100;
    const HUB: Vertex = 7; // mid-shard, so routing is by min endpoint
    let mut rng = StdRng::seed_from_u64(0x4081);
    let mut live: Vec<Vertex> = Vec::new();
    let mut ops = Vec::with_capacity(OPS);
    for _ in 0..OPS {
        if !live.is_empty() && rng.gen_range(0..3) == 0 {
            let i = rng.gen_range(0..live.len());
            let v = live.swap_remove(i);
            ops.push(UpdateOp::delete(HUB, v));
        } else {
            let mut v = rng.gen_range(0..N as Vertex);
            if v == HUB {
                v = (v + 1) % N as Vertex;
            }
            ops.push(UpdateOp::insert(HUB, v, rng.gen_range(1..=1000)));
            live.push(v);
        }
    }
    let cfg = DynamicConfig::default().with_seed(17);
    let mut seq = DynamicMatcher::new(N, cfg);
    let mut sh = ShardedMatcher::new(N, cfg.with_threads(2), 8).with_batch_size(BATCH);
    for (step, chunk) in ops.chunks(500).enumerate() {
        seq.apply_all(chunk).expect("well-formed");
        sh.apply_all(chunk).expect("well-formed");
        assert_eq!(
            seq.matching().to_edges(),
            sh.matching().to_edges(),
            "hub chunk {step}"
        );
        assert_eq!(seq.counters(), sh.counters(), "hub chunk {step}");
        assert_oracle_floor(&seq, &format!("hub chunk {step}"));
    }
    // ops with min endpoint < HUB route to other shards than HUB's, but
    // *within* a batch everything shares the hub only when the hub is the
    // min endpoint; ops {v, HUB} with v < HUB group by v's shard. Count
    // the exact expected groups per batch instead of assuming 1:
    // every op still touches HUB, so any two ops in the same *shard*
    // share it — groups per batch = number of distinct owning shards.
    let shard_of = |v: Vertex| (v as usize).min(N - 1) * 8 / N;
    let mut expected_groups = 0u64;
    for chunk in ops.chunks(BATCH) {
        let mut seen = [false; 8];
        for op in chunk {
            let (u, v) = match *op {
                UpdateOp::Insert { u, v, .. } => (u, v),
                UpdateOp::Delete { u, v } => (u, v),
            };
            seen[shard_of(u.min(v))] = true;
        }
        expected_groups += seen.iter().filter(|&&s| s).count() as u64;
    }
    assert_eq!(
        sh.overlap_groups(),
        expected_groups,
        "every batch must collapse to one group per touched shard"
    );
    assert_eq!(sh.balls_parallel(), OPS as u64);
    assert_eq!(sh.replayed() + sh.fallbacks(), OPS as u64);
}
