//! Counting-allocator proof that the dynamic engine's update path is
//! allocation-free at steady state: once a warm-up cycle has sized every
//! persistent buffer (slab, adjacency, repair-kit arenas, recycled CSR
//! views, rebuild snapshot), re-applying the identical op cycle — and
//! running restore-only rebuild epochs — must not touch the allocator.
//!
//! This file holds a single test so no concurrent test thread can
//! perturb the counter (the same discipline as the graph crate's
//! `alloc_free.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use wmatch_dynamic::{DynamicConfig, DynamicMatcher, UpdateOp};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A state-neutral op cycle on a path-structured base graph: heavy
/// inserts that force swap repairs, matched deletes that force
/// re-matching, and parallel-copy churn — every insert is matched by a
/// delete, so the graph (and the deterministic repair's matching) return
/// to the pre-cycle state.
fn churn_cycle() -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    for b in (0u32..40).step_by(8) {
        // heavier copy of a matched pair → parallel-upgrade swap, then
        // LIFO delete swaps it back out
        ops.push(UpdateOp::insert(b, b + 1, 50));
        ops.push(UpdateOp::delete(b, b + 1));
        // a 3-augmentation opener and its teardown
        ops.push(UpdateOp::insert(b + 1, b + 2, 9));
        ops.push(UpdateOp::insert(b + 2, b + 3, 9));
        ops.push(UpdateOp::delete(b + 2, b + 3));
        ops.push(UpdateOp::delete(b + 1, b + 2));
    }
    ops
}

#[test]
fn steady_state_apply_and_restore_epochs_are_allocation_free() {
    let n = 48usize;
    // base graph: disjoint matched pairs
    let base: Vec<UpdateOp> = (0u32..40)
        .step_by(8)
        .map(|b| UpdateOp::insert(b, b + 1, 10))
        .collect();
    let cycle = churn_cycle();

    // phase 1: the per-update repair path
    let mut eng = DynamicMatcher::new(n, DynamicConfig::default());
    eng.apply_all(&base).expect("base ops are well-formed");
    let before_warm = eng.matching().to_edges();
    eng.apply_all(&cycle).expect("cycle ops are well-formed");
    assert_eq!(
        eng.matching().to_edges(),
        before_warm,
        "the cycle is state-neutral, so the warmed buffers cover a repeat"
    );
    let before = allocations();
    eng.apply_all(&cycle).expect("cycle ops are well-formed");
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "warmed-up apply must not touch the allocator ({during} allocations)"
    );

    // phase 2: restore-only rebuild epochs (rebuild_rounds = 0 skips the
    // allocating class sweep; the epoch still snapshots, re-certifies the
    // invariant globally, and diffs against the pre-epoch matching)
    let cfg = DynamicConfig::default()
        .with_rebuild_threshold(10)
        .with_rebuild_rounds(0);
    let mut eng = DynamicMatcher::new(n, cfg);
    eng.apply_all(&base).expect("base ops are well-formed");
    // two warm-up cycles: the first grows the epoch buffers, the second
    // proves the op/epoch alignment repeats (cycle length 30 and base 5
    // keep epochs at fixed cycle offsets)
    eng.apply_all(&cycle).expect("cycle ops are well-formed");
    eng.apply_all(&cycle).expect("cycle ops are well-formed");
    let rebuilds_before = eng.counters().rebuilds;
    let before = allocations();
    eng.apply_all(&cycle).expect("cycle ops are well-formed");
    let during = allocations() - before;
    assert!(
        eng.counters().rebuilds > rebuilds_before,
        "epochs must actually fire inside the measured cycle"
    );
    assert_eq!(
        during, 0,
        "warmed-up restore-only epochs must not allocate ({during} allocations)"
    );
}
