//! The crash-recovery and fault-injection suite: WAL + snapshot recovery
//! must be **bit-identical** to the uninterrupted run for any snapshot
//! cadence × crash point × shard count × thread count; injected worker
//! panics must never lose the other overlap groups of a batch; malformed
//! ops (including chaos-poisoned ones) must be rejected typed, never by
//! panicking; and sentinel-detected corruption must heal back to a
//! certified state.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmatch_dynamic::{
    ChaosConfig, DynamicConfig, DynamicError, DynamicMatcher, RetryPolicy, ServeDriver,
    ShardedMatcher, UpdateOp, WalConfig,
};
use wmatch_graph::aug_search::best_augmentation;
use wmatch_graph::Vertex;

/// A deterministic churn step over a bounded-density live set (same
/// shape as the oracle-agreement suite's generator).
fn churn_op(rng: &mut StdRng, n: usize, live: &mut Vec<(Vertex, Vertex)>) -> UpdateOp {
    let cap = 5 * n / 2;
    let delete = !live.is_empty()
        && (live.len() >= cap || (live.len() > cap / 2 && rng.gen_range(0..2) == 0));
    if delete {
        let i = rng.gen_range(0..live.len());
        let (u, v) = live.swap_remove(i);
        UpdateOp::delete(u, v)
    } else {
        let u = rng.gen_range(0..n as Vertex);
        let mut v = rng.gen_range(0..n as Vertex);
        if v == u {
            v = (v + 1) % n as Vertex;
        }
        live.push((u, v));
        UpdateOp::insert(u, v, rng.gen_range(1..=1000))
    }
}

fn churn_stream(seed: u64, n: usize, len: usize) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live = Vec::new();
    (0..len).map(|_| churn_op(&mut rng, n, &mut live)).collect()
}

/// Semantic state two engines must share to count as bit-identical.
fn state_of(eng: &ShardedMatcher) -> (Vec<wmatch_graph::Edge>, i128, String) {
    (
        eng.matching().to_edges(),
        eng.matching().weight(),
        format!("{:?}", eng.counters()),
    )
}

// ---------------------------------------------------------------------
// Satellite (a): malformed single ops are typed rejections, never panics.
// ---------------------------------------------------------------------

#[test]
fn delete_of_never_inserted_edge_is_typed_not_panic() {
    let mut eng = DynamicMatcher::new(8, DynamicConfig::default());
    eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
    let err = eng.apply(UpdateOp::delete(2, 3)).unwrap_err();
    assert_eq!(err, DynamicError::EdgeNotFound { u: 2, v: 3 });
    assert!(!err.is_transient());
    // a once-live, now-deleted edge is equally not found
    eng.apply(UpdateOp::insert(2, 3, 4)).unwrap();
    eng.apply(UpdateOp::delete(2, 3)).unwrap();
    let err = eng.apply(UpdateOp::delete(2, 3)).unwrap_err();
    assert_eq!(err, DynamicError::EdgeNotFound { u: 2, v: 3 });
    // the engine is unharmed and keeps serving
    assert_eq!(eng.matching().weight(), 5);
    eng.apply(UpdateOp::insert(4, 5, 7)).unwrap();
    assert_eq!(eng.matching().weight(), 12);
}

#[test]
fn out_of_range_and_self_loop_deletes_are_typed_not_panic() {
    let mut eng = DynamicMatcher::new(8, DynamicConfig::default());
    eng.apply(UpdateOp::insert(0, 1, 5)).unwrap();
    let err = eng.apply(UpdateOp::delete(0, 99)).unwrap_err();
    assert_eq!(err, DynamicError::VertexOutOfRange { vertex: 99, n: 8 });
    let err = eng.apply(UpdateOp::delete(42, 1)).unwrap_err();
    assert_eq!(err, DynamicError::VertexOutOfRange { vertex: 42, n: 8 });
    // a self-loop delete must not silently delete an arbitrary incident
    // edge (the adjacency scan matches any edge at `u` when `u == v`)
    let err = eng.apply(UpdateOp::delete(0, 0)).unwrap_err();
    assert_eq!(err, DynamicError::SelfLoop { vertex: 0 });
    assert_eq!(eng.graph().live_edges(), 1, "nothing was deleted");
    assert_eq!(eng.matching().weight(), 5);
}

#[test]
fn sharded_batch_rejects_malformed_ops_with_partial_progress() {
    for (shards, threads) in [(1, 1), (4, 2), (8, 4)] {
        let cfg = DynamicConfig::default().with_threads(threads);
        let mut eng = ShardedMatcher::new(16, cfg, shards);
        let ops = [
            UpdateOp::insert(0, 1, 5),
            UpdateOp::insert(2, 3, 6),
            UpdateOp::delete(10, 11), // never inserted
            UpdateOp::insert(4, 5, 7),
        ];
        let e = eng.apply_all(&ops).unwrap_err();
        assert_eq!(e.applied, 2);
        assert_eq!(e.stats.applied, 2);
        assert_eq!(e.source, DynamicError::EdgeNotFound { u: 10, v: 11 });
        assert!(!e.is_transient());
        assert_eq!(eng.matching().weight(), 11, "prefix committed");
    }
}

// ---------------------------------------------------------------------
// Satellite (c): WAL + snapshot recovery is bit-identical for any
// snapshot cadence × crash point × shards × threads.
// ---------------------------------------------------------------------

/// Replays `ops` with a WAL at the given cadence, crashes after
/// `crash_at` ops, recovers, finishes the stream, and demands the final
/// state be bit-identical to the uninterrupted run.
fn crash_recover_roundtrip(
    seed: u64,
    cadence: usize,
    crash_at: usize,
    shards: usize,
    threads: usize,
) {
    const N: usize = 48;
    const OPS: usize = 600;
    let ops = churn_stream(seed, N, OPS);
    let cfg = DynamicConfig::default().with_threads(threads);

    let mut reference = ShardedMatcher::new(N, cfg, shards);
    reference.apply_all(&ops).unwrap();

    let mut eng = ShardedMatcher::new(N, cfg, shards);
    eng.enable_wal(WalConfig::new().with_snapshot_every(cadence));
    let crash_at = crash_at.min(OPS);
    eng.apply_all(&ops[..crash_at]).unwrap();
    let before = state_of(&eng);

    eng.simulate_crash();
    let report = eng
        .recover()
        .expect("a WAL was enabled, so recovery must run");
    assert_eq!(
        state_of(&eng),
        before,
        "cadence {cadence} crash {crash_at} shards {shards} threads {threads}: \
         recovery diverged from the pre-crash state"
    );
    assert_eq!(
        report.snapshot_updates + report.replayed_ops as u64,
        eng.counters().updates_applied,
        "snapshot + tail must account for every applied update"
    );

    eng.apply_all(&ops[crash_at..]).unwrap();
    assert_eq!(
        state_of(&eng),
        state_of(&reference),
        "cadence {cadence} crash {crash_at} shards {shards} threads {threads}: \
         post-recovery stream diverged from the uninterrupted run"
    );
}

#[test]
fn recovery_is_bit_identical_across_the_acceptance_grid() {
    for &(cadence, crash_at) in &[(1usize, 37usize), (64, 300), (10_000, 599)] {
        for &shards in &[1usize, 4, 8] {
            for &threads in &[1usize, 2, 4] {
                crash_recover_roundtrip(0xC0FFEE, cadence, crash_at, shards, threads);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any snapshot cadence × crash point × shards {1,4,8} × threads
    /// {1,2,4}: recovery replays to a state bit-identical (matching,
    /// recourse, counters) to the uninterrupted run.
    #[test]
    fn recovery_bit_identical_for_random_cadence_and_crash_point(
        seed in any::<u64>(),
        cadence in 1usize..200,
        crash_at in 0usize..600,
        shards_ix in 0usize..3,
        threads_ix in 0usize..3,
    ) {
        let shards = [1usize, 4, 8][shards_ix];
        let threads = [1usize, 2, 4][threads_ix];
        crash_recover_roundtrip(seed, cadence, crash_at, shards, threads);
    }
}

#[test]
fn recovery_canonicalizes_deferred_ops_eagerly() {
    const N: usize = 32;
    let ops = churn_stream(7, N, 200);
    let cfg = DynamicConfig::default();

    // reference: the same stream applied eagerly, uninterrupted
    let mut reference = ShardedMatcher::new(N, cfg, 1);
    reference.apply_all(&ops).unwrap();

    let mut eng = ShardedMatcher::new(N, cfg, 1);
    eng.enable_wal(WalConfig::new().with_snapshot_every(64));
    eng.apply_all(&ops[..150]).unwrap();
    eng.apply_deferred(&ops[150..]).unwrap();
    assert!(eng.deferred_repairs() > 0, "lazy ops are pending");

    eng.simulate_crash();
    eng.recover().unwrap();
    assert_eq!(eng.deferred_repairs(), 0, "replay is eager");
    assert_eq!(
        state_of(&eng),
        state_of(&reference),
        "a crash canonicalizes pending staleness into the repaired state"
    );
}

// ---------------------------------------------------------------------
// Satellite (d): a worker panic in one overlap group must commit every
// other group and be recorded in telemetry.
// ---------------------------------------------------------------------

#[test]
fn worker_panic_commits_every_other_group_and_is_recorded() {
    const N: usize = 64;
    let ops = churn_stream(0xD00D, N, 400);
    let cfg = DynamicConfig::default().with_threads(4);

    let mut reference = ShardedMatcher::new(N, cfg, 4);
    reference.apply_all(&ops).unwrap();

    let mut eng = ShardedMatcher::new(N, cfg, 4);
    eng.install_chaos(
        ChaosConfig::new()
            .with_seed(9)
            .with_panic_every(1)
            .with_sentinel_every(0),
    );
    eng.apply_all(&ops).unwrap();

    let counters = eng.chaos_counters().unwrap();
    assert!(counters.worker_panics > 0, "the chaos panic hook fired");
    assert!(counters.faults_injected() > 0);
    assert!(
        eng.groups_fallback() >= counters.worker_panics,
        "every panicked group was re-run sequentially"
    );
    assert_eq!(
        state_of(&eng),
        state_of(&reference),
        "panicked groups fell back without losing the other groups"
    );
}

// ---------------------------------------------------------------------
// Chaos poison: malformed ops injected into the stream are rejected
// typed; the serve driver skips them and the survivors stay certified.
// ---------------------------------------------------------------------

#[test]
fn poisoned_stream_is_served_with_typed_skips_and_certified_survivors() {
    const N: usize = 48;
    let ops = churn_stream(0xBEEF, N, 800);
    let cfg = DynamicConfig::default().with_threads(2);

    let mut eng = ShardedMatcher::new(N, cfg, 4);
    eng.install_chaos(ChaosConfig::new().with_seed(3).with_poison_every(8));
    let mut driver = ServeDriver::new(
        RetryPolicy::default().with_base_backoff(std::time::Duration::from_micros(10)),
    );
    for chunk in ops.chunks(64) {
        driver.serve(&mut eng, chunk);
    }
    driver.finish(&mut eng);

    let counters = eng.chaos_counters().unwrap();
    assert!(counters.poisoned_ops > 0, "poison fired");
    assert!(driver.stats().skipped_ops > 0, "poisoned ops were skipped");
    assert_eq!(driver.stats().skipped_ops, driver.stats().fatal_errors);
    // survivors are a valid, floor-certified matching
    let snap = eng.graph().snapshot();
    eng.matching().validate(Some(&snap)).unwrap();
    assert!(
        best_augmentation(&snap, eng.matching(), eng.config().max_len).is_none(),
        "a positive short augmentation survived the poison storm"
    );
    assert!(eng.sentinel_violation().is_none());
}

// ---------------------------------------------------------------------
// Bit-flip corruption: the invariant sentinel quarantines, heals, and
// rejects the batch with the one transient error.
// ---------------------------------------------------------------------

#[test]
fn bitflip_trips_sentinel_quarantines_and_retry_succeeds() {
    const N: usize = 32;
    let cfg = DynamicConfig::default();
    let mut eng = ShardedMatcher::new(N, cfg, 2);
    eng.install_chaos(
        ChaosConfig::new()
            .with_seed(5)
            .with_bitflip_every(1)
            .with_sentinel_every(1),
    );

    let batch1: Vec<UpdateOp> = (0..8)
        .map(|i| UpdateOp::insert(2 * i, 2 * i + 1, 10))
        .collect();
    eng.apply_batch(&batch1).unwrap();
    let flips = eng.chaos_counters().unwrap().bit_flips;
    assert!(flips > 0, "a matched entry was corrupted after commit");
    assert!(
        eng.sentinel_violation().is_some(),
        "the corruption is visible to the sentinel"
    );

    let batch2 = [UpdateOp::insert(16, 17, 3)];
    let e = eng.apply_batch(&batch2).unwrap_err();
    assert!(e.is_transient(), "quarantine is the one transient error");
    assert!(matches!(e.source, DynamicError::Quarantined { .. }));
    assert_eq!(e.applied, 0, "the batch was rejected before any op ran");

    let counters = eng.chaos_counters().unwrap();
    assert!(counters.sentinel_trips > 0);
    assert!(counters.quarantines > 0);

    // the state was healed before the error returned: the matching
    // validates against the live graph and the retry lands
    let snap = eng.graph().snapshot();
    eng.matching().validate(Some(&snap)).unwrap();
    eng.apply_batch(&batch2).unwrap();
    assert!(eng.graph().live_edges() >= 9);
}

#[test]
fn bitflip_with_wal_heals_bit_identical_to_clean_run() {
    const N: usize = 48;
    let ops = churn_stream(0xFA11, N, 500);
    let cfg = DynamicConfig::default().with_threads(2);

    let mut reference = ShardedMatcher::new(N, cfg, 4);
    reference.apply_all(&ops).unwrap();

    let mut eng = ShardedMatcher::new(N, cfg, 4);
    eng.enable_wal(WalConfig::new().with_snapshot_every(50));
    eng.install_chaos(
        ChaosConfig::new()
            .with_seed(11)
            .with_bitflip_every(2)
            .with_sentinel_every(1),
    );
    // storm threshold pinned off: bit-identity to the eager clean run is
    // the *certified* path's contract — degraded mode trades it for
    // liveness, and a snapshot of a lazily-flushed state would bake the
    // (deliberate) difference into the durable state
    let mut driver = ServeDriver::new(
        RetryPolicy::default()
            .with_base_backoff(std::time::Duration::from_micros(10))
            .with_max_retries(8)
            .with_storm_threshold(u32::MAX),
    );
    for chunk in ops.chunks(40) {
        driver.serve(&mut eng, chunk);
    }
    driver.finish(&mut eng);

    let counters = eng.chaos_counters().unwrap();
    assert!(counters.bit_flips > 0, "corruption was injected");
    assert!(counters.quarantines > 0, "the sentinel healed via the WAL");
    assert!(driver.stats().transient_errors > 0);
    assert!(
        driver.stats().retries > 0,
        "transient rejections were retried"
    );
    assert_eq!(driver.stats().skipped_ops, 0, "no op was lost");

    // the durable state (snapshot + journal tail) is exactly the clean
    // run: recovery proves it by reproducing the reference bit-for-bit
    eng.recover().unwrap();
    assert_eq!(
        state_of(&eng),
        state_of(&reference),
        "WAL-backed healing must converge to the uninterrupted clean run"
    );
}

// ---------------------------------------------------------------------
// Degraded mode under a sustained fault storm: the driver keeps
// ingesting, flushes on the staleness budget, and exits certified.
// ---------------------------------------------------------------------

#[test]
fn fault_storm_degrades_then_recovers_certified() {
    const N: usize = 48;
    let ops = churn_stream(0x570, N, 600);
    let cfg = DynamicConfig::default().with_threads(2);

    let mut eng = ShardedMatcher::new(N, cfg, 4);
    eng.install_chaos(ChaosConfig::new().with_seed(2).with_poison_every(2));
    let policy = RetryPolicy::default()
        .with_base_backoff(std::time::Duration::from_micros(10))
        .with_storm_threshold(2)
        .with_max_stale_ops(64)
        .with_recovery_streak(3);
    let mut driver = ServeDriver::new(policy);
    for chunk in ops.chunks(32) {
        driver.serve(&mut eng, chunk);
    }
    driver.finish(&mut eng);

    let stats = driver.stats();
    assert!(stats.storms > 0, "the poison storm tripped degraded mode");
    assert!(stats.degraded_batches > 0);
    assert!(stats.flushes > 0);
    assert!(stats.watchdog_checks >= stats.flushes);
    assert!(!driver.is_degraded(), "finish() exits degraded mode");
    assert_eq!(eng.deferred_repairs(), 0, "no staleness left behind");

    let snap = eng.graph().snapshot();
    eng.matching().validate(Some(&snap)).unwrap();
    assert!(
        best_augmentation(&snap, eng.matching(), eng.config().max_len).is_none(),
        "the quality watchdog must leave a floor-certified matching"
    );
}
