//! Property-based tests for the core algorithms.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_core::decompose::decompose_walk;
use wmatch_core::greedy::greedy_by_weight;
use wmatch_core::layered::{LayeredSpec, Parametrization};
use wmatch_core::local_ratio::LocalRatio;
use wmatch_core::main_alg::{max_weight_matching_offline, MainAlgConfig};
use wmatch_core::rand_arr_matching::{rand_arr_matching, RandArrConfig};
use wmatch_core::random_order_unweighted::{random_order_unweighted, RouConfig};
use wmatch_core::tau::{enumerate_good_pairs, TauConfig};
use wmatch_core::unw3aug::Unw3AugPaths;
use wmatch_core::weight_classes::weight_grid;
use wmatch_graph::alternating::check_alternating;
use wmatch_graph::exact::{max_cardinality_matching, max_weight_matching};
use wmatch_graph::{Edge, Graph, Matching};
use wmatch_stream::{EdgeStream, VecStream};

fn arb_weighted_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (3usize..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1u64..=50), 0..=max_m).prop_map(
            move |raw| {
                let mut g = Graph::new(n);
                let mut seen = std::collections::HashSet::new();
                for (u, v, w) in raw {
                    if u != v && seen.insert(if u < v { (u, v) } else { (v, u) }) {
                        g.add_edge(u, v, w);
                    }
                }
                g
            },
        )
    })
}

proptest! {
    // Seed pinned for reproducibility: every run explores the same cases.
    #![proptest_config(ProptestConfig::with_cases(120).with_seed(0x636f_7265))] // b"core"

    /// Local-ratio is a 1/2-approximation under ANY arrival order.
    #[test]
    fn local_ratio_half_approx(g in arb_weighted_graph(12, 30), seed in 0u64..500) {
        let mut lr = LocalRatio::new(g.vertex_count());
        let mut s = VecStream::random_order(g.edges().to_vec(), seed)
            .with_vertex_count(g.vertex_count());
        s.stream_pass(&mut |e| lr.on_edge(e));
        let m = lr.unwind();
        let opt = max_weight_matching(&g);
        prop_assert!(2 * m.weight() >= opt.weight());
        m.validate(Some(&g)).unwrap();
    }

    /// Rand-Arr-Matching never returns an invalid matching and never loses
    /// to half the optimum by more than rounding on any instance/order.
    #[test]
    fn rand_arr_is_sound(g in arb_weighted_graph(12, 26), seed in 0u64..200) {
        let mut s = VecStream::random_order(g.edges().to_vec(), seed)
            .with_vertex_count(g.vertex_count());
        let res = rand_arr_matching(&mut s, &RandArrConfig::default());
        res.matching.validate(None).unwrap();
        let opt = max_weight_matching(&g).weight();
        prop_assert!(res.matching.weight() <= opt);
        // single-instance randomized guarantee is in expectation; sanity:
        // at least a 1/4 fraction on every draw we test
        prop_assert!(4 * res.matching.weight() >= opt);
    }

    /// The 0.506 algorithm always returns a valid matching at least as
    /// large as half the maximum.
    #[test]
    fn random_order_unweighted_sound(g in arb_weighted_graph(14, 30), seed in 0u64..200) {
        let unit = g.unweighted_copy();
        let mut s = VecStream::random_order(unit.edges().to_vec(), seed)
            .with_vertex_count(unit.vertex_count());
        let res = random_order_unweighted(&mut s, &RouConfig::default());
        res.matching.validate(Some(&unit)).unwrap();
        let opt = max_cardinality_matching(&unit);
        prop_assert!(2 * res.matching.len() >= opt.len());
    }

    /// Unw-3-Aug-Paths memory bound: support is at most 4|M|, and on unit
    /// weights every returned path is a genuine +1 augmentation.
    #[test]
    fn unw3aug_space(g in arb_weighted_graph(14, 40), lambda in 1u32..20) {
        let unit = g.unweighted_copy();
        let mut m = Matching::new(unit.vertex_count());
        for e in unit.edges() {
            let _ = m.insert(*e);
        }
        let msize = m.len();
        let mut alg = Unw3AugPaths::new(m, lambda);
        for e in unit.edges() {
            alg.feed(*e);
        }
        prop_assert!(alg.support_size() <= 4 * msize);
        let mut base = alg.matching().clone();
        for p in alg.finalize() {
            let aug = wmatch_graph::Augmentation::from_component(&base, &p.edges()).unwrap();
            prop_assert_eq!(aug.gain(), 1);
            aug.apply(&mut base).unwrap();
        }
        base.validate(Some(&unit)).unwrap();
    }

    /// Every enumerated (τᴬ, τᴮ) pair is good, and every layered graph
    /// built from it is bipartite with alternating translated walks.
    #[test]
    fn layered_graphs_are_bipartite_and_alternating(
        g in arb_weighted_graph(10, 20),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matching::new(g.vertex_count());
        for e in g.edges() {
            let _ = m.insert(*e);
        }
        let param = Parametrization::random(g.vertex_count(), &mut rng);
        let cfg = TauConfig::practical(4, 3).with_max_pairs(200);
        for w_class in weight_grid(g.max_weight(), 2.0) {
            let (ba, bb) = wmatch_core::single_class::achievable_buckets(
                g.edges(), &m, &param, w_class, &cfg,
            );
            for tau in enumerate_good_pairs(&cfg, &ba, &bb) {
                prop_assert!(tau.is_good(&cfg));
                let spec = LayeredSpec::new(&tau, w_class, cfg.q, &param, &m);
                let lg = spec.build(g.edges().iter().copied());
                prop_assert!(lg.graph.respects_bipartition(&lg.side).unwrap());
                let m_prime = wmatch_graph::exact::max_bipartite_cardinality_matching(
                    &lg.graph, &lg.side,
                );
                for (vs, es) in lg.augmenting_walks(&m_prime) {
                    for comp in decompose_walk(&vs, &es) {
                        // Lemma 4.11: every component alternates
                        prop_assert!(check_alternating(&m, &comp).is_ok());
                    }
                }
            }
        }
    }

    /// Main-Alg (offline) produces valid matchings that never trail the
    /// weighted-greedy 1/2 baseline.
    #[test]
    fn main_alg_beats_greedy(g in arb_weighted_graph(12, 24), seed in 0u64..50) {
        let cfg = MainAlgConfig::practical(0.25, seed).with_max_rounds(14).with_trials(6).with_stall_rounds(4);
        let m = max_weight_matching_offline(&g, &cfg);
        m.validate(Some(&g)).unwrap();
        let greedy = greedy_by_weight(&g);
        // greedy is 1/2-approx; main-alg subsumes single-edge augmentations
        // so it must reach at least 2/3 of greedy... empirically it beats
        // greedy outright, which is what we assert statistically elsewhere;
        // here: never drastically worse
        prop_assert!(2 * m.weight() >= greedy.weight());
        let opt = max_weight_matching(&g).weight();
        prop_assert!(m.weight() <= opt);
    }

    /// decompose_walk partitions the walk's edges exactly.
    #[test]
    fn decompose_preserves_edges(n in 3u32..8, len in 1usize..12, seed in 0u64..500) {
        // random walk on K_n
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut vs = vec![rng.gen_range(0..n)];
        let mut es = Vec::new();
        for _ in 0..len {
            let cur = *vs.last().unwrap();
            let mut nxt = rng.gen_range(0..n);
            while nxt == cur {
                nxt = rng.gen_range(0..n);
            }
            es.push(Edge::new(cur, nxt, 1));
            vs.push(nxt);
        }
        let comps = decompose_walk(&vs, &es);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, es.len());
        // each component is vertex-simple
        for comp in &comps {
            let mut seen = std::collections::HashSet::new();
            let walk = if comp.len() == 1 {
                vec![comp[0].u, comp[0].v]
            } else {
                let mut cur = if comp[1].touches(comp[0].v) { comp[0].v } else { comp[0].u };
                let mut w = vec![comp[0].other(cur), cur];
                for e in &comp[1..] {
                    cur = e.other(cur);
                    w.push(cur);
                }
                w
            };
            let is_cycle = walk.first() == walk.last();
            let interior = if is_cycle { &walk[1..] } else { &walk[..] };
            for v in interior {
                prop_assert!(seen.insert(*v), "repeated vertex in component");
            }
        }
    }
}

#[test]
fn streaming_driver_beats_local_ratio_statistically() {
    // E5/E6 shape: over several random graphs, the (1-eps) machinery beats
    // the single-pass 1/2-approx baseline on average
    let mut rng = StdRng::seed_from_u64(99);
    let mut wins = 0;
    let trials = 6;
    for t in 0..trials {
        let g = wmatch_graph::generators::gnp(
            18,
            0.3,
            wmatch_graph::generators::WeightModel::Uniform { lo: 1, hi: 40 },
            &mut rng,
        );
        let cfg = MainAlgConfig::practical(0.25, t)
            .with_max_rounds(12)
            .with_trials(6)
            .with_stall_rounds(4);
        let main = max_weight_matching_offline(&g, &cfg);
        let mut lr = LocalRatio::new(g.vertex_count());
        for e in g.edges() {
            lr.on_edge(*e);
        }
        let base = lr.unwind();
        if main.weight() >= base.weight() {
            wins += 1;
        }
    }
    assert!(
        wins >= trials - 1,
        "main alg lost to local-ratio {wins}/{trials}"
    );
}
