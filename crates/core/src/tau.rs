//! Good (τᴬ, τᴮ) pairs — the filtering thresholds of Section 4.3.3
//! (Table 1).
//!
//! Thresholds are represented in integer *units* of the granularity
//! `g = 1/q` (the paper's `g = ε¹²`): an entry `t` stands for the
//! threshold `τ = t·g`, so a matched edge passes layer `i`'s filter when
//! `w ∈ ((τᴬᵢ−g)·W, τᴬᵢ·W]` — i.e. when its **up-bucket**
//! `⌈w·q/W⌉` equals `τᴬᵢ`'s unit value — and an unmatched edge passes
//! between layers `i, i+1` when its **down-bucket** `⌊w·q/W⌋` equals
//! `τᴮᵢ`'s.
//!
//! All arithmetic is exact (u128 products), so the filters are precisely
//! the paper's half-open intervals.

use std::collections::BTreeSet;

/// Up-bucket: the unit value `⌈w·q/W⌉` (matched-edge filter).
///
/// # Example
///
/// ```
/// use wmatch_core::tau::{bucket_down, bucket_up};
///
/// // W = 16, q = 8 (granularity 2): the two filters of the layered
/// // construction — an exact multiple buckets equally both ways, an
/// // in-between weight splits
/// assert_eq!(bucket_up(10, 16, 8), 5);
/// assert_eq!(bucket_down(10, 16, 8), 5);
/// assert_eq!(bucket_up(9, 16, 8), 5);
/// assert_eq!(bucket_down(9, 16, 8), 4);
/// ```
pub fn bucket_up(w: u64, w_class: u64, q: u32) -> u32 {
    let num = w as u128 * q as u128;
    (num.div_ceil(w_class.max(1) as u128)) as u32
}

/// Down-bucket: the unit value `⌊w·q/W⌋` (unmatched-edge filter).
pub fn bucket_down(w: u64, w_class: u64, q: u32) -> u32 {
    let num = w as u128 * q as u128;
    (num / w_class.max(1) as u128) as u32
}

/// A candidate (τᴬ, τᴮ) pair in granularity units.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TauPair {
    /// τᴬ: one entry per layer (|τᴬ| = k+1).
    pub a: Vec<u32>,
    /// τᴮ: one entry per layer gap (|τᴮ| = k).
    pub b: Vec<u32>,
}

impl TauPair {
    /// Number of layer gaps `k`.
    pub fn k(&self) -> usize {
        self.b.len()
    }

    /// Number of layers `k + 1`.
    pub fn layers(&self) -> usize {
        self.a.len()
    }

    /// Checks the goodness conditions of Table 1 against `cfg`.
    ///
    /// # Example
    ///
    /// ```
    /// use wmatch_core::tau::{TauConfig, TauPair};
    ///
    /// let cfg = TauConfig::practical(8, 3);
    /// // the 3-augmentation pair: Σ τᴮ = 8 ≤ cap, Σ τᴮ > Σ τᴬ
    /// let good = TauPair { a: vec![0, 5, 0], b: vec![4, 4] };
    /// assert!(good.is_good(&cfg));
    /// // gains that round away are rejected: Σ τᴮ = Σ τᴬ
    /// let flat = TauPair { a: vec![0, 8, 0], b: vec![4, 4] };
    /// assert!(!flat.is_good(&cfg));
    /// ```
    pub fn is_good(&self, cfg: &TauConfig) -> bool {
        // (A) length cap and (B) |τᴮ| = |τᴬ| − 1
        if self.a.len() > cfg.max_layers || self.a.len() != self.b.len() + 1 {
            return false;
        }
        if self.a.len() < 2 {
            return false;
        }
        // (C) entries are unit-represented by construction; (D) interior
        // τᴬ and all τᴮ entries at least `min_entry`
        if self.b.iter().any(|&t| t < cfg.min_entry) {
            return false;
        }
        let interior = &self.a[1..self.a.len() - 1];
        if interior.iter().any(|&t| t < cfg.min_entry) {
            return false;
        }
        // (E) Σ τᴮ ≤ 1 + ε⁴ (in units: sum_b_cap)
        let sum_b: u64 = self.b.iter().map(|&t| t as u64).sum();
        if sum_b > cfg.sum_b_cap as u64 {
            return false;
        }
        // (F) Σ τᴮ − Σ τᴬ ≥ ε¹² (one unit)
        let sum_a: u64 = self.a.iter().map(|&t| t as u64).sum();
        sum_b > sum_a
    }
}

/// Configuration of the τ-pair space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct TauConfig {
    /// Granularity denominator `q` (the paper's `1/ε¹²`).
    pub q: u32,
    /// Maximum layers |τᴬ| (the paper's 32/ε²+1).
    pub max_layers: usize,
    /// Minimum unit value for τᴮ entries and interior τᴬ entries
    /// (Table 1 property D uses 2; coarse practical grids use 1).
    pub min_entry: u32,
    /// Cap on Σ τᴮ in units (the paper's (1+ε⁴)·q).
    pub sum_b_cap: u32,
    /// Hard cap on the number of enumerated pairs (enumeration guard).
    pub max_pairs: usize,
}

impl TauConfig {
    /// A practical configuration: granularity `1/q`, up to `max_layers`
    /// layers, Σ τᴮ ≤ (1+ε⁴)q rounded up with one unit of slack.
    pub fn practical(q: u32, max_layers: usize) -> Self {
        TauConfig {
            q,
            max_layers,
            min_entry: 1,
            sum_b_cap: q + 1,
            max_pairs: 200_000,
        }
    }

    /// Sets the granularity denominator `q`.
    pub fn with_q(mut self, q: u32) -> Self {
        self.q = q;
        self
    }

    /// Sets the maximum number of layers |τᴬ|.
    pub fn with_max_layers(mut self, max_layers: usize) -> Self {
        self.max_layers = max_layers;
        self
    }

    /// Sets the minimum unit value for τᴮ and interior τᴬ entries.
    pub fn with_min_entry(mut self, min_entry: u32) -> Self {
        self.min_entry = min_entry;
        self
    }

    /// Sets the cap on Σ τᴮ in units.
    pub fn with_sum_b_cap(mut self, sum_b_cap: u32) -> Self {
        self.sum_b_cap = sum_b_cap;
        self
    }

    /// Sets the hard cap on the number of enumerated pairs.
    pub fn with_max_pairs(mut self, max_pairs: usize) -> Self {
        self.max_pairs = max_pairs;
        self
    }
}

impl Default for TauConfig {
    /// [`TauConfig::practical`] with granularity 1/8 and three layers.
    fn default() -> Self {
        TauConfig::practical(8, 3)
    }
}

/// Enumerates good (τᴬ, τᴮ) pairs restricted to threshold values that are
/// actually *achievable* in the instance: `buckets_a` are the up-buckets of
/// matched crossing edges (plus 0 is always considered for the first/last
/// layer), `buckets_b` the down-buckets of unmatched crossing edges.
///
/// The restriction is sound: a layer whose τᴬ value matches no matched
/// edge produces an empty layer, and a gap whose τᴮ matches no unmatched
/// edge produces no layer-crossing edges, so such pairs can never yield an
/// augmenting path. Enumeration is depth-first with sum-cap pruning and
/// stops at `cfg.max_pairs`.
///
/// # Example
///
/// ```
/// use std::collections::BTreeSet;
/// use wmatch_core::tau::{enumerate_good_pairs, TauConfig};
///
/// // one matched bucket (5) and one unmatched bucket (4): the classic
/// // 3-augmentation shape [0,5,0]/[4,4] is among the enumerated pairs
/// let cfg = TauConfig::practical(8, 3);
/// let pairs = enumerate_good_pairs(&cfg, &BTreeSet::from([5]), &BTreeSet::from([4]));
/// assert!(pairs.iter().any(|p| p.a == [0, 5, 0] && p.b == [4, 4]));
/// assert!(pairs.iter().all(|p| p.is_good(&cfg)));
/// ```
pub fn enumerate_good_pairs(
    cfg: &TauConfig,
    buckets_a: &BTreeSet<u32>,
    buckets_b: &BTreeSet<u32>,
) -> Vec<TauPair> {
    let b_vals: Vec<u32> = buckets_b
        .iter()
        .copied()
        .filter(|&t| t >= cfg.min_entry && t <= cfg.sum_b_cap)
        .collect();
    let a_interior: Vec<u32> = buckets_a
        .iter()
        .copied()
        .filter(|&t| t >= cfg.min_entry)
        .collect();
    let mut a_ends: Vec<u32> = buckets_a.iter().copied().collect();
    if !a_ends.contains(&0) {
        a_ends.insert(0, 0);
    }

    let mut out = Vec::new();
    if b_vals.is_empty() {
        return out;
    }
    let max_k = cfg.max_layers.saturating_sub(1);
    for k in 1..=max_k {
        let mut b_seq = Vec::with_capacity(k);
        enumerate_b(
            cfg,
            &b_vals,
            k,
            0,
            &mut b_seq,
            &a_interior,
            &a_ends,
            &mut out,
        );
        if out.len() >= cfg.max_pairs {
            break;
        }
    }
    out.truncate(cfg.max_pairs);
    out
}

#[allow(clippy::too_many_arguments)]
fn enumerate_b(
    cfg: &TauConfig,
    b_vals: &[u32],
    k: usize,
    sum_b: u64,
    b_seq: &mut Vec<u32>,
    a_interior: &[u32],
    a_ends: &[u32],
    out: &mut Vec<TauPair>,
) {
    if out.len() >= cfg.max_pairs {
        return;
    }
    if b_seq.len() == k {
        // τᴬ budget: Σ τᴬ ≤ Σ τᴮ − 1
        if sum_b == 0 {
            return;
        }
        let budget = sum_b - 1;
        let mut a_seq = Vec::with_capacity(k + 1);
        enumerate_a(
            cfg,
            a_interior,
            a_ends,
            k + 1,
            budget,
            &mut a_seq,
            b_seq,
            out,
        );
        return;
    }
    for &t in b_vals {
        let ns = sum_b + t as u64;
        if ns > cfg.sum_b_cap as u64 {
            continue;
        }
        b_seq.push(t);
        enumerate_b(cfg, b_vals, k, ns, b_seq, a_interior, a_ends, out);
        b_seq.pop();
        if out.len() >= cfg.max_pairs {
            return;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate_a(
    cfg: &TauConfig,
    a_interior: &[u32],
    a_ends: &[u32],
    len: usize,
    budget: u64,
    a_seq: &mut Vec<u32>,
    b_seq: &[u32],
    out: &mut Vec<TauPair>,
) {
    if out.len() >= cfg.max_pairs {
        return;
    }
    if a_seq.len() == len {
        let pair = TauPair {
            a: a_seq.clone(),
            b: b_seq.to_vec(),
        };
        debug_assert!(
            pair.is_good(cfg),
            "enumeration produced a bad pair {pair:?}"
        );
        out.push(pair);
        return;
    }
    let is_end = a_seq.is_empty() || a_seq.len() == len - 1;
    let domain = if is_end { a_ends } else { a_interior };
    for &t in domain {
        if t as u64 > budget {
            continue;
        }
        a_seq.push(t);
        enumerate_a(
            cfg,
            a_interior,
            a_ends,
            len,
            budget - t as u64,
            a_seq,
            b_seq,
            out,
        );
        a_seq.pop();
        if out.len() >= cfg.max_pairs {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_interval_tests() {
        // W = 8, q = 4: granularity gW = 2
        // up-bucket t means w in ((t-1)*2, t*2]
        assert_eq!(bucket_up(1, 8, 4), 1);
        assert_eq!(bucket_up(2, 8, 4), 1);
        assert_eq!(bucket_up(3, 8, 4), 2);
        assert_eq!(bucket_up(4, 8, 4), 2);
        assert_eq!(bucket_up(5, 8, 4), 3);
        // down-bucket t means w in [t*2, (t+1)*2)
        assert_eq!(bucket_down(1, 8, 4), 0);
        assert_eq!(bucket_down(2, 8, 4), 1);
        assert_eq!(bucket_down(3, 8, 4), 1);
        assert_eq!(bucket_down(4, 8, 4), 2);
        assert_eq!(bucket_down(0, 8, 4), 0);
    }

    #[test]
    fn goodness_conditions() {
        let cfg = TauConfig {
            q: 4,
            max_layers: 4,
            min_entry: 1,
            sum_b_cap: 5,
            max_pairs: 1000,
        };
        // valid: τᴬ=(0,2,0), τᴮ=(2,1): ΣB=3 ≥ ΣA+1=3 ✓
        assert!(TauPair {
            a: vec![0, 2, 0],
            b: vec![2, 1]
        }
        .is_good(&cfg));
        // length mismatch
        assert!(!TauPair {
            a: vec![0, 2],
            b: vec![2, 1]
        }
        .is_good(&cfg));
        // interior zero violates property D
        assert!(!TauPair {
            a: vec![0, 0, 0],
            b: vec![2, 1]
        }
        .is_good(&cfg));
        // ΣB cap
        assert!(!TauPair {
            a: vec![0, 1, 0],
            b: vec![3, 3]
        }
        .is_good(&cfg));
        // gain condition F
        assert!(!TauPair {
            a: vec![1, 1, 1],
            b: vec![2, 1]
        }
        .is_good(&cfg));
        // too many layers
        let cfg2 = TauConfig {
            max_layers: 2,
            ..cfg
        };
        assert!(!TauPair {
            a: vec![0, 2, 0],
            b: vec![2, 1]
        }
        .is_good(&cfg2));
    }

    #[test]
    fn enumeration_emits_only_good_pairs() {
        let cfg = TauConfig {
            q: 4,
            max_layers: 3,
            min_entry: 1,
            sum_b_cap: 5,
            max_pairs: 10_000,
        };
        let ba: BTreeSet<u32> = [1, 2, 3].into_iter().collect();
        let bb: BTreeSet<u32> = [1, 2, 3, 4].into_iter().collect();
        let pairs = enumerate_good_pairs(&cfg, &ba, &bb);
        assert!(!pairs.is_empty());
        for p in &pairs {
            assert!(p.is_good(&cfg), "{p:?}");
        }
        // k=1 pair capturing a single-edge augmentation exists:
        // a = (0, 0) with b = (t) for any t >= 1
        assert!(pairs.iter().any(|p| p.a == vec![0, 0] && p.b == vec![1]));
    }

    #[test]
    fn enumeration_respects_bucket_restriction() {
        let cfg = TauConfig {
            q: 4,
            max_layers: 3,
            min_entry: 1,
            sum_b_cap: 5,
            max_pairs: 10_000,
        };
        let ba: BTreeSet<u32> = [2].into_iter().collect();
        let bb: BTreeSet<u32> = [3].into_iter().collect();
        let pairs = enumerate_good_pairs(&cfg, &ba, &bb);
        for p in &pairs {
            assert!(p.b.iter().all(|&t| t == 3));
            assert!(p.a[1..p.a.len() - 1].iter().all(|&t| t == 2));
            for &t in &[p.a[0], *p.a.last().unwrap()] {
                assert!(t == 0 || t == 2);
            }
        }
        // with k=1 and b=(3): budget 2: ends from {0,2}: (0,0),(2,0),(0,2)
        let k1: Vec<_> = pairs.iter().filter(|p| p.k() == 1).collect();
        assert_eq!(k1.len(), 3);
    }

    #[test]
    fn enumeration_cap_is_enforced() {
        let cfg = TauConfig {
            q: 16,
            max_layers: 6,
            min_entry: 1,
            sum_b_cap: 17,
            max_pairs: 500,
        };
        let ba: BTreeSet<u32> = (1..=16).collect();
        let bb: BTreeSet<u32> = (1..=16).collect();
        let pairs = enumerate_good_pairs(&cfg, &ba, &bb);
        assert_eq!(pairs.len(), 500);
    }

    #[test]
    fn empty_buckets_give_no_pairs() {
        let cfg = TauConfig::practical(4, 3);
        let pairs = enumerate_good_pairs(&cfg, &BTreeSet::new(), &BTreeSet::new());
        assert!(pairs.is_empty());
    }

    #[test]
    fn practical_config_shape() {
        let cfg = TauConfig::practical(8, 4);
        assert_eq!(cfg.q, 8);
        assert_eq!(cfg.sum_b_cap, 9);
        assert_eq!(cfg.min_entry, 1);
    }
}
