//! The paper's constants, exactly as stated, plus the practical overrides
//! used by the experiments.
//!
//! The worst-case constants are astronomically conservative (they were
//! chosen to make the proofs go through, not to be run): e.g. for ε = 0.1
//! the unweighted black box slack is δ = ε^(28+900/ε²) = 10⁻⁹⁰⁰²⁸ and the
//! number of good (τᴬ, τᴮ) pairs exceeds (2·ε⁻¹² + 2)^(65/ε²). Every
//! formula is implemented here and unit-tested against the paper's text;
//! experiments instantiate the same algorithms with practical values
//! (DESIGN.md §3, substitution 1).

/// The constants of the paper, parameterized by ε where applicable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperConstants;

impl PaperConstants {
    /// α = 0.02 — the excess-weight slack of Algorithm 1 (set in the proof
    /// of Lemma 3.6).
    pub const ALPHA: f64 = 0.02;

    /// β = 1/16000 — the weight-class density threshold of Section 3.2.1
    /// (set in the proof of Lemma 3.10).
    pub const BETA: f64 = 1.0 / 16000.0;

    /// λ = 8/β — the support-degree cap of `Unw-3-Aug-Paths` (Lemma 3.1's
    /// proof uses λ = 8/β).
    pub fn lambda(beta: f64) -> f64 {
        8.0 / beta
    }

    /// c — the absolute constant of Theorem 1.1:
    /// c = (1/8)·(αβ²/(3·1024))·0.002 (end of the proof of Lemma 3.10).
    pub fn theorem_1_1_c() -> f64 {
        let alpha = Self::ALPHA;
        let beta = Self::BETA;
        (1.0 / 8.0) * (alpha * beta * beta / (3.0 * 1024.0)) * 0.002
    }

    /// p = 100/log n — the first-phase fraction of Algorithm 2 (line 2).
    pub fn p_fraction(n: usize) -> f64 {
        if n < 4 {
            return 1.0;
        }
        (100.0 / (n as f64).log2()).min(1.0)
    }

    /// δ(ε) = ε^(28+900/ε²) — the unweighted black box slack of
    /// Theorem 4.1. Returns 0 when the value underflows `f64` (it almost
    /// always does — that is the point of the practical overrides).
    pub fn delta_for_epsilon(eps: f64) -> f64 {
        let exponent = 28.0 + 900.0 / (eps * eps);
        eps.powf(exponent)
    }

    /// The filter granularity ε¹² of Section 4.3 (weights are bucketed in
    /// multiples of ε¹²·W).
    pub fn granularity(eps: f64) -> f64 {
        eps.powi(12)
    }

    /// Maximum length of the τᴬ sequence (Table 1, property A):
    /// (2/ε)·(16/ε) + 1 = 32/ε² + 1 layers.
    pub fn max_tau_len(eps: f64) -> usize {
        (32.0 / (eps * eps)).ceil() as usize + 1
    }

    /// The weight-grid ratio 1 + ε⁴ of Algorithm 3 (augmentation classes
    /// are W = (1+ε⁴)^i).
    pub fn grid_ratio(eps: f64) -> f64 {
        1.0 + eps.powi(4)
    }

    /// Maximum number of vertices in one augmentation (Definition 4.6,
    /// property 4): 64/ε² + 1.
    pub fn max_aug_vertices(eps: f64) -> usize {
        (64.0 / (eps * eps)).ceil() as usize + 1
    }

    /// Maximum number of edges in C ∪ C_M for the structural augmentations
    /// of Lemma 4.9: 4/ε.
    pub fn max_structural_edges(eps: f64) -> usize {
        (4.0 / eps).ceil() as usize
    }

    /// The number of Theorem 4.1 iterations sufficient for (1−ε):
    /// (1/ε)^(O(1/ε²)); we report the paper's bound with the explicit
    /// constant from the proof (gain ≥ ε^(c″/ε²)·w(M*) per round, so
    /// (1/ε)^(c″/ε²)·(1/ε) rounds suffice); capped at `usize::MAX`.
    pub fn iterations_bound(eps: f64, c_dprime: f64) -> f64 {
        (1.0 / eps).powf(c_dprime / (eps * eps)) / eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_1_1_constant_is_tiny_but_positive() {
        let c = PaperConstants::theorem_1_1_c();
        assert!(c > 0.0);
        assert!(c < 2f64.powi(-15), "the proof requires c < 2^-15, got {c}");
    }

    #[test]
    fn alpha_beta_match_paper() {
        assert_eq!(PaperConstants::ALPHA, 0.02);
        assert!((PaperConstants::BETA - 6.25e-5).abs() < 1e-12);
        assert_eq!(PaperConstants::lambda(0.5), 16.0);
    }

    #[test]
    fn p_fraction_behaviour() {
        // p = 100/log n exceeds 1 for any practical n below 2^100: clamped
        assert_eq!(PaperConstants::p_fraction(1000), 1.0);
        // the formula itself kicks in only for astronomically large n;
        // check monotonicity of the raw expression instead
        let raw = |n: f64| 100.0 / n.log2();
        assert!(raw(2f64.powi(400)) < raw(2f64.powi(200)));
        assert!((raw(2f64.powi(200)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delta_underflows_as_documented() {
        // δ(0.1) = 0.1^(28+90000) underflows f64: documented behaviour
        assert_eq!(PaperConstants::delta_for_epsilon(0.1), 0.0);
        // at very coarse ε it is representable
        let d = PaperConstants::delta_for_epsilon(0.9);
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn granularity_and_lengths() {
        assert!((PaperConstants::granularity(0.5) - 0.5f64.powi(12)).abs() < 1e-15);
        // ε = 1/4: 32·16 + 1 = 513 layers
        assert_eq!(PaperConstants::max_tau_len(0.25), 513);
        assert_eq!(PaperConstants::max_aug_vertices(0.25), 1025);
        assert_eq!(PaperConstants::max_structural_edges(0.25), 16);
    }

    #[test]
    fn grid_ratio_is_barely_above_one() {
        let r = PaperConstants::grid_ratio(0.1);
        assert!(r > 1.0 && r < 1.001);
    }

    #[test]
    fn iteration_bound_explodes() {
        // even modest ε make the worst-case iteration bound astronomical
        assert!(PaperConstants::iterations_bound(0.25, 22.0) > 1e100);
    }
}
