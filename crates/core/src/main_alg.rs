//! `Main-Alg` (Algorithm 3) and the Theorem 1.2 outer loop, with offline,
//! multi-pass streaming, and MPC drivers.
//!
//! One *round* of Algorithm 3:
//!
//! 1. draw a random bipartition (L, R),
//! 2. for every augmentation-class weight `W` on the geometric grid, run
//!    Algorithm 4 ([`crate::single_class`]) to collect vertex-disjoint
//!    augmentations `A_W`,
//! 3. sweep the classes in decreasing `W`, greedily applying every
//!    augmentation that does not conflict with one already applied.
//!
//! Theorem 4.1 guarantees each round gains `Ω_ε(w(M*))` while
//! `w(M) < (1−ε)·w(M*)`, so iterating rounds from `M = ∅` converges to a
//! (1−ε)-approximation; the drivers iterate until a round budget or until
//! `stall_rounds` consecutive rounds yield no gain.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use wmatch_graph::exact::hopcroft_karp::max_bipartite_cardinality_matching_from;
use wmatch_graph::{Augmentation, Graph, Matching, Scratch, WorkerPool};
use wmatch_mpc::{mpc_bipartite_mcm_pooled, MpcConfig, MpcMcmConfig, MpcSimulator};
use wmatch_stream::{multipass_bipartite_mcm, EdgeStream, McmConfig};

use crate::layered::{LayeredSpec, LayeredStream, Parametrization};
use crate::single_class::{select_augmentations_pooled, single_class_augmentations, ClassOutcome};
use crate::tau::{enumerate_good_pairs, TauConfig};
use crate::weight_classes::weight_grid;

/// Configuration of the (1−ε) machinery.
///
/// The paper's worst-case parameters are recorded in
/// [`crate::PaperConstants`]; [`MainAlgConfig::practical`] produces
/// tractable values (DESIGN.md §3, substitution 1) whose effect experiment
/// E5 sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct MainAlgConfig {
    /// Target slack ε (for reporting and default derivation).
    pub eps: f64,
    /// Granularity denominator `q` (paper: `1/ε¹²`).
    pub q: u32,
    /// Maximum layers |τᴬ| (paper: 32/ε²+1).
    pub max_layers: usize,
    /// Minimum τ entry in units (paper: 2).
    pub min_entry: u32,
    /// Weight-grid ratio (paper: 1+ε⁴).
    pub grid_ratio: f64,
    /// Enumeration cap on (τᴬ, τᴮ) pairs per class.
    pub max_pairs: usize,
    /// Random bipartitions per round.
    pub trials: usize,
    /// Maximum rounds of Algorithm 3.
    pub max_rounds: usize,
    /// Stop after this many consecutive gainless rounds.
    pub stall_rounds: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel layers (the per-class sweep of
    /// Algorithm 3 line 3, Algorithm 4 candidate scoring, the MPC
    /// simulator's machine rounds): `1` = sequential, `0` = one per
    /// available core (the same contract as `SolveRequest::threads` in
    /// `wmatch-api`; resolved by `wmatch_graph::pool::resolve_threads`).
    /// For a fixed seed the returned matching is **bit-identical for every
    /// value** — the pool writes results into deterministic owner-indexed
    /// slots and all commits happen in canonical order.
    pub threads: usize,
}

impl Default for MainAlgConfig {
    /// [`MainAlgConfig::practical`] at ε = 0.25 with seed 0.
    fn default() -> Self {
        MainAlgConfig::practical(0.25, 0)
    }
}

impl MainAlgConfig {
    /// Tractable defaults for a target ε: granularity 1/8, three layers
    /// (augmentations up to the 3-augmentation scale plus boundary edges),
    /// power-of-two weight grid, a handful of bipartition trials.
    pub fn practical(eps: f64, seed: u64) -> Self {
        MainAlgConfig {
            eps,
            q: 8,
            max_layers: 3,
            min_entry: 1,
            grid_ratio: 2.0,
            max_pairs: 20_000,
            trials: 4,
            max_rounds: 40,
            stall_rounds: 3,
            seed,
            threads: 1,
        }
    }

    /// A finer (slower) configuration: granularity 1/16 and more
    /// bipartition samples per round.
    pub fn thorough(eps: f64, seed: u64) -> Self {
        MainAlgConfig {
            q: 16,
            max_pairs: 40_000,
            trials: 6,
            stall_rounds: 4,
            ..Self::practical(eps, seed)
        }
    }

    /// Sets the target slack ε.
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets the granularity denominator `q`.
    pub fn with_q(mut self, q: u32) -> Self {
        self.q = q;
        self
    }

    /// Sets the maximum number of layers |τᴬ|.
    pub fn with_max_layers(mut self, max_layers: usize) -> Self {
        self.max_layers = max_layers;
        self
    }

    /// Sets the minimum τ entry in units.
    pub fn with_min_entry(mut self, min_entry: u32) -> Self {
        self.min_entry = min_entry;
        self
    }

    /// Sets the weight-grid ratio.
    pub fn with_grid_ratio(mut self, grid_ratio: f64) -> Self {
        self.grid_ratio = grid_ratio;
        self
    }

    /// Sets the enumeration cap on (τᴬ, τᴮ) pairs per class.
    pub fn with_max_pairs(mut self, max_pairs: usize) -> Self {
        self.max_pairs = max_pairs;
        self
    }

    /// Sets the number of random bipartitions per round.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the maximum number of Algorithm 3 rounds.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the stall threshold (consecutive gainless rounds before stop).
    pub fn with_stall_rounds(mut self, stall_rounds: usize) -> Self {
        self.stall_rounds = stall_rounds;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count for the per-class sweep (0 = one per
    /// available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The τ-space configuration induced by these parameters.
    pub fn tau_config(&self) -> TauConfig {
        let slack = (self.eps.powi(4) * self.q as f64).ceil() as u32;
        TauConfig {
            q: self.q,
            max_layers: self.max_layers,
            min_entry: self.min_entry,
            sum_b_cap: self.q + slack.max(1),
            max_pairs: self.max_pairs,
        }
    }

    /// The augmentation-class weight grid for a maximum edge weight.
    pub fn grid(&self, max_w: u64) -> Vec<u64> {
        // class weights can exceed the max edge weight: the blow-up paths
        // of Section 1.1.2 weigh up to ~(layers)·2W
        let cap = max_w.max(1).saturating_mul(2 * self.max_layers as u64 + 2);
        weight_grid(cap, self.grid_ratio)
    }
}

/// Statistics of one Algorithm 3 round.
#[derive(Debug, Clone, Default)]
pub struct RoundStats {
    /// Total weight gained this round.
    pub gain: i128,
    /// Augmentations applied.
    pub applied: usize,
    /// (τᴬ, τᴮ) pairs examined across classes and trials.
    pub pairs_tried: usize,
    /// Scratch-arena footprint (dense vertex slots): the high-water mark
    /// of the round's arena, which is monotone over the arena's lifetime
    /// when the caller reuses one across rounds
    /// ([`improve_matching_offline_with`]).
    pub scratch_high_water: usize,
}

/// Runs one round of Algorithm 3 on `m` with the offline (Hopcroft–Karp)
/// black box, mutating the matching in place.
pub fn improve_matching_offline(
    g: &Graph,
    m: &mut Matching,
    cfg: &MainAlgConfig,
    rng: &mut StdRng,
) -> RoundStats {
    let mut scratch = Scratch::new();
    improve_matching_offline_with(g, m, cfg, rng, &mut scratch)
}

/// Like [`improve_matching_offline`], reusing the caller's scratch arena
/// across rounds.
///
/// This convenience wrapper builds a fresh [`WorkerPool`] from
/// `cfg.threads` per call; a driver loop should instead own one pool for
/// its whole solve and call [`improve_matching_offline_pooled`] so worker
/// threads are spawned once, not once per round.
pub fn improve_matching_offline_with(
    g: &Graph,
    m: &mut Matching,
    cfg: &MainAlgConfig,
    rng: &mut StdRng,
    scratch: &mut Scratch,
) -> RoundStats {
    let mut pool = WorkerPool::new(cfg.threads);
    let stats = improve_matching_offline_pooled(g, m, cfg, rng, scratch, &mut pool);
    scratch.absorb_high_water(pool.scratch_high_water());
    stats
}

/// One round of Algorithm 3 on the caller's persistent [`WorkerPool`] —
/// the hot path of the offline driver. `scratch` backs the sequential
/// cross-class commit; the per-class sweep runs on the pool's per-worker
/// arenas (fold [`WorkerPool::scratch_high_water`] into your telemetry).
pub fn improve_matching_offline_pooled(
    g: &Graph,
    m: &mut Matching,
    cfg: &MainAlgConfig,
    rng: &mut StdRng,
    scratch: &mut Scratch,
    pool: &mut WorkerPool,
) -> RoundStats {
    let mut stats = RoundStats::default();
    if g.edge_count() == 0 {
        return stats;
    }
    let grid = cfg.grid(g.max_weight());
    let tau_cfg = cfg.tau_config();
    for _ in 0..cfg.trials.max(1) {
        let param = Parametrization::random(g.vertex_count(), rng);
        // Algorithm 3, line 3: all classes in parallel against the same M
        let mut outcomes = sweep_classes(g, m, &grid, &param, &tau_cfg, pool);
        stats.pairs_tried += outcomes.iter().map(|(_, o)| o.pairs_tried).sum::<usize>();
        outcomes.retain(|(_, o)| o.gain > 0);
        // lines 5–8: greedy cross-class selection, decreasing W
        outcomes.sort_by_key(|(w, _)| std::cmp::Reverse(*w));
        let applied = apply_cross_class(
            m,
            outcomes.into_iter().flat_map(|(_, o)| o.augmentations),
            scratch,
        );
        stats.gain += applied.0;
        stats.applied += applied.1;
    }
    stats.scratch_high_water = scratch.high_water().max(pool.scratch_high_water());
    stats
}

/// Runs Algorithm 4 for every class weight against the same matching,
/// fanning the classes out over the caller's [`WorkerPool`] (the classes
/// are independent read-only computations). Each worker writes its
/// outcome into the deterministic slot of its class index — no result
/// lock, no reordering pass — so results come back in grid order and
/// parallel and sequential execution are indistinguishable. Each worker
/// owns one [`Scratch`] arena for its whole share of the sweep, so the
/// parallel path performs no per-class allocation.
fn sweep_classes(
    g: &Graph,
    m: &Matching,
    grid: &[u64],
    param: &Parametrization,
    tau_cfg: &TauConfig,
    pool: &mut WorkerPool,
) -> Vec<(u64, ClassOutcome)> {
    pool.run_map(grid.len(), &|_worker, i, scratch: &mut Scratch| {
        let w_class = grid[i];
        let mut solve = |lg: &Graph, side: &[bool], init: Matching| {
            max_bipartite_cardinality_matching_from(lg, side, init)
        };
        (
            w_class,
            single_class_augmentations(g.edges(), m, w_class, param, tau_cfg, &mut solve, scratch),
        )
    })
}

/// Applies a stream of candidate augmentations greedily (skipping
/// conflicts), returning `(total gain, applied count)`. Conflict marks
/// live in the caller's scratch arena (`scratch.mark`, epoch-reset).
fn apply_cross_class(
    m: &mut Matching,
    augs: impl IntoIterator<Item = Augmentation>,
    scratch: &mut Scratch,
) -> (i128, usize) {
    scratch.begin(m.vertex_count());
    let mut gain = 0i128;
    let mut count = 0usize;
    for aug in augs {
        if aug.conflicts_with_marks(&scratch.mark) {
            continue;
        }
        match aug.apply(m) {
            Ok(g) => {
                debug_assert!(g > 0);
                gain += g;
                count += 1;
                aug.mark_touched(&mut scratch.mark);
            }
            Err(_) => {
                // stale augmentation (an earlier trial touched its edges):
                // the conflict set keeps this rare; skip defensively
                continue;
            }
        }
    }
    (gain, count)
}

/// Computes a (1−ε)-style approximate maximum weight matching offline by
/// iterating Algorithm 3 from the empty matching (Theorem 1.2's loop).
///
/// Most callers should drive this through the `wmatch-api` facade (the
/// `main-alg-offline` registry solver), which validates configuration and
/// reports uniform telemetry; this free function remains the low-level
/// entry point the facade delegates to.
///
/// # Example
///
/// ```
/// use wmatch_core::main_alg::{max_weight_matching_offline, MainAlgConfig};
/// use wmatch_graph::generators;
///
/// let (g, _) = generators::fig1_graph();
/// let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, 3));
/// assert_eq!(m.weight(), 8); // the optimum of Figure 1
/// ```
pub fn max_weight_matching_offline(g: &Graph, cfg: &MainAlgConfig) -> Matching {
    max_weight_matching_offline_traced(g, cfg).0
}

/// Like [`max_weight_matching_offline`], also returning the matching
/// weight after every round (the convergence series of experiment E5).
pub fn max_weight_matching_offline_traced(g: &Graph, cfg: &MainAlgConfig) -> (Matching, Vec<i128>) {
    max_weight_matching_offline_from(g, Matching::new(g.vertex_count()), cfg)
}

/// Warm-started variant: iterates Algorithm 3 from an arbitrary initial
/// matching (Theorem 4.1 improves *any* matching below (1−ε); starting
/// from e.g. [`crate::greedy::greedy_by_weight`] halves the rounds needed
/// in practice).
///
/// # Panics
///
/// Panics if `init` is defined over a different vertex count than `g`.
pub fn max_weight_matching_offline_from(
    g: &Graph,
    init: Matching,
    cfg: &MainAlgConfig,
) -> (Matching, Vec<i128>) {
    let out = max_weight_matching_offline_stats(g, init, cfg);
    (out.matching, out.trace)
}

/// Output of [`max_weight_matching_offline_stats`]: the matching, the
/// per-round convergence trace, and the real resource counters of the run.
#[derive(Debug, Clone)]
pub struct OfflineOutcome {
    /// The matching found.
    pub matching: Matching,
    /// Matching weight after every round.
    pub trace: Vec<i128>,
    /// Largest scratch-arena footprint (dense vertex slots) across all
    /// rounds and workers.
    pub scratch_high_water: usize,
    /// CSR views built for the input graph during the run (rebuilds are
    /// mutation-triggered; a read-only run builds at most one).
    pub csr_rebuilds: u64,
    /// Worker threads the solve's pool ran with (caller included).
    pub workers_used: usize,
    /// Cumulative task-execution nanoseconds per worker slot (slot 0 is
    /// the driver thread) — the pool-utilization telemetry of the facade.
    pub busy_ns: Vec<u64>,
}

/// Like [`max_weight_matching_offline_from`], also returning the scratch
/// high-water mark and CSR rebuild count — the real memory counters the
/// `wmatch-api` facade reports in its telemetry extras.
///
/// # Panics
///
/// Panics if `init` is defined over a different vertex count than `g`.
pub fn max_weight_matching_offline_stats(
    g: &Graph,
    init: Matching,
    cfg: &MainAlgConfig,
) -> OfflineOutcome {
    assert_eq!(
        init.vertex_count(),
        g.vertex_count(),
        "vertex count mismatch"
    );
    let csr_rebuilds_before = g.csr_rebuild_count();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut scratch = Scratch::new();
    // the solve's one pool: workers spawn here and persist across rounds
    let mut pool = WorkerPool::new(cfg.threads);
    let mut m = init;
    let mut trace = Vec::new();
    let mut stall = 0;
    for _round in 0..cfg.max_rounds {
        let stats =
            improve_matching_offline_pooled(g, &mut m, cfg, &mut rng, &mut scratch, &mut pool);
        trace.push(m.weight());
        if stats.gain == 0 {
            stall += 1;
            if stall >= cfg.stall_rounds {
                break;
            }
        } else {
            stall = 0;
        }
    }
    OfflineOutcome {
        matching: m,
        trace,
        scratch_high_water: scratch.high_water().max(pool.scratch_high_water()),
        csr_rebuilds: g.csr_rebuild_count() - csr_rebuilds_before,
        workers_used: pool.workers(),
        busy_ns: pool.busy_ns(),
    }
}

/// Output of the streaming driver.
#[derive(Debug, Clone)]
pub struct StreamingResult {
    /// The matching found.
    pub matching: Matching,
    /// Rounds of Algorithm 3 executed.
    pub rounds: usize,
    /// Passes if every (W, τ) box runs sequentially (what this process
    /// actually did).
    pub passes_sequential: usize,
    /// Passes in the model's accounting, where the boxes of a round run in
    /// parallel on shared passes (1 bucket pass + the slowest box per
    /// round) — the measure Theorem 1.2.2 bounds by O_ε(U_S).
    pub passes_model: usize,
    /// Peak stored edges across boxes (plus the matching itself).
    pub peak_memory_edges: usize,
    /// Largest scratch-arena footprint (dense vertex slots) of the run.
    pub scratch_high_water: usize,
}

/// The multi-pass streaming driver of Theorem 1.2.2 (the `wmatch-api`
/// facade exposes it as the `main-alg-streaming` registry solver).
///
/// Each round draws a bipartition, spends one pass computing the
/// achievable τ-buckets for every class, and then runs the streaming
/// `Unw-Bip-Matching` box on each (W, τᴬ, τᴮ) layered stream.
pub fn max_weight_matching_streaming(
    stream: &mut dyn EdgeStream,
    cfg: &MainAlgConfig,
    mcm: &McmConfig,
) -> StreamingResult {
    let n = stream.vertex_count();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut m = Matching::new(n);
    let mut scratch = Scratch::new();
    // one pool per solve: the stream passes are inherently sequential, but
    // walk scoring (Algorithm 4 lines 9-11) fans out per candidate
    let mut pool = WorkerPool::new(cfg.threads);
    let tau_cfg = cfg.tau_config();
    let mut passes_sequential = 0usize;
    let mut passes_model = 0usize;
    let mut peak_memory = 0usize;
    let mut rounds = 0usize;
    let mut stall = 0usize;

    // one initial pass discovers the maximum weight for the grid
    let mut max_w = 0u64;
    stream.stream_pass(&mut |e| max_w = max_w.max(e.weight));
    passes_sequential += 1;
    passes_model += 1;
    let grid = cfg.grid(max_w);

    for _round in 0..cfg.max_rounds {
        rounds += 1;
        let param = Parametrization::random(n, &mut rng);

        // bucket pass: per class, which τ values are achievable
        let mut buckets_b: Vec<std::collections::BTreeSet<u32>> =
            vec![Default::default(); grid.len()];
        {
            let m_ref = &m;
            let param_ref = &param;
            let grid_ref = &grid;
            let bb = &mut buckets_b;
            stream.stream_pass(&mut |e| {
                if m_ref.contains(&e) || !param_ref.crosses(&e) {
                    return;
                }
                for (i, &w_class) in grid_ref.iter().enumerate() {
                    let b = crate::tau::bucket_down(e.weight, w_class, tau_cfg.q);
                    if b >= tau_cfg.min_entry && b <= tau_cfg.sum_b_cap {
                        bb[i].insert(b);
                    }
                }
            });
        }
        passes_sequential += 1;
        passes_model += 1;

        let mut outcomes: Vec<(u64, Vec<Augmentation>)> = Vec::new();
        let mut max_box_passes = 0usize;
        for (i, &w_class) in grid.iter().enumerate() {
            let mut buckets_a = std::collections::BTreeSet::new();
            for e in m.iter() {
                if param.crosses(&e) {
                    buckets_a.insert(crate::tau::bucket_up(e.weight, w_class, tau_cfg.q));
                }
            }
            let pairs = enumerate_good_pairs(&tau_cfg, &buckets_a, &buckets_b[i]);
            let mut best: Option<(i128, Vec<Augmentation>)> = None;
            for tau in &pairs {
                let spec = LayeredSpec::new(tau, w_class, tau_cfg.q, &param, &m);
                let skeleton = spec.build(std::iter::empty());
                let side: Vec<bool> = (0..spec.layered_vertex_count() as u32)
                    .map(|lv| spec.layered_side(lv))
                    .collect();
                let mut ls = LayeredStream::new(spec.clone(), stream);
                let res = multipass_bipartite_mcm(&mut ls, &side, mcm);
                passes_sequential += res.passes;
                max_box_passes = max_box_passes.max(res.passes);
                peak_memory = peak_memory.max(res.peak_memory_edges);
                let augs = select_augmentations_pooled(
                    &skeleton.augmenting_walks(&res.matching),
                    &m,
                    &mut scratch,
                    &mut pool,
                );
                let gain: i128 = augs.iter().map(|a| a.gain()).sum();
                if gain > 0 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                    best = Some((gain, augs));
                }
            }
            if let Some((_, augs)) = best {
                outcomes.push((w_class, augs));
            }
        }
        passes_model += max_box_passes;

        outcomes.sort_by_key(|(w, _)| std::cmp::Reverse(*w));
        let (gain, _) = apply_cross_class(
            &mut m,
            outcomes.into_iter().flat_map(|(_, a)| a),
            &mut scratch,
        );
        if gain == 0 {
            stall += 1;
            if stall >= cfg.stall_rounds {
                break;
            }
        } else {
            stall = 0;
        }
    }

    StreamingResult {
        matching: m,
        rounds,
        passes_sequential,
        passes_model,
        peak_memory_edges: peak_memory + n,
        scratch_high_water: scratch.high_water().max(pool.scratch_high_water()),
    }
}

/// Output of the MPC driver.
#[derive(Debug, Clone)]
pub struct MpcResult {
    /// The matching found.
    pub matching: Matching,
    /// Rounds if the boxes of each Algorithm 3 round run in parallel on
    /// disjoint machine groups (the model's accounting in Theorem 1.2.1).
    pub rounds_model: usize,
    /// Total simulated rounds across all boxes (sequential execution).
    pub rounds_sequential: usize,
    /// Peak per-machine memory across boxes, in words.
    pub peak_machine_words: usize,
    /// Largest scratch-arena footprint (dense vertex slots) of the run.
    pub scratch_high_water: usize,
    /// Worker threads the solve's pool ran with (caller included).
    pub workers_used: usize,
    /// Cumulative task-execution nanoseconds per worker slot (slot 0 is
    /// the driver thread).
    pub busy_ns: Vec<u64>,
}

/// The MPC driver of Theorem 1.2.1 (the `wmatch-api` facade exposes it as
/// the `main-alg-mpc` registry solver).
///
/// The layered-graph mapping is edge-local, so machines derive their part
/// of each layered graph without communication; each (W, τ) box then runs
/// the MPC `Unw-Bip-Matching` black box on its own machine group
/// (simulated here as a fresh simulator per box; the model accounting
/// takes the per-round maximum). The simulated machines of every box
/// execute their local computations on the solve's worker pool
/// (`cfg.threads`), with the simulator's `exchange` as the only barrier —
/// so the box's round telemetry reflects genuinely concurrent machine
/// rounds while the returned matching stays bit-identical to `threads = 1`.
pub fn max_weight_matching_mpc(
    g: &Graph,
    cfg: &MainAlgConfig,
    mpc_cfg: MpcConfig,
    mcm: &MpcMcmConfig,
) -> Result<MpcResult, wmatch_mpc::MpcError> {
    let n = g.vertex_count();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut m = Matching::new(n);
    let mut scratch = Scratch::new();
    // one pool per solve, shared by every box's simulated machine rounds
    let mut pool = WorkerPool::new(cfg.threads);
    let tau_cfg = cfg.tau_config();
    let grid = cfg.grid(g.max_weight());
    let mut rounds_model = 0usize;
    let mut rounds_sequential = 0usize;
    let mut peak_words = 0usize;
    let mut stall = 0usize;

    for _round in 0..cfg.max_rounds {
        let param = Parametrization::random(n, &mut rng);
        // broadcast of M + bipartition: 2 rounds in the model
        rounds_model += 2;
        rounds_sequential += 2;

        let mut outcomes: Vec<(u64, Vec<Augmentation>)> = Vec::new();
        let mut max_box_rounds = 0usize;
        for &w_class in grid.iter() {
            let (buckets_a, buckets_b) =
                crate::single_class::achievable_buckets(g.edges(), &m, &param, w_class, &tau_cfg);
            let pairs = enumerate_good_pairs(&tau_cfg, &buckets_a, &buckets_b);
            let mut best: Option<(i128, Vec<Augmentation>)> = None;
            for tau in &pairs {
                let spec = LayeredSpec::new(tau, w_class, tau_cfg.q, &param, &m);
                let lg = spec.build(g.edges().iter().copied());
                if lg.graph.edge_count() == 0 {
                    continue;
                }
                let mut sim = MpcSimulator::new(mpc_cfg);
                let res = mpc_bipartite_mcm_pooled(
                    &mut sim,
                    lg.graph.edges().to_vec(),
                    &lg.side,
                    &mcm.with_seed(rng.gen()),
                    &mut pool,
                )?;
                rounds_sequential += res.rounds;
                max_box_rounds = max_box_rounds.max(res.rounds);
                peak_words = peak_words.max(res.peak_machine_words);
                let augs = select_augmentations_pooled(
                    &lg.augmenting_walks(&res.matching),
                    &m,
                    &mut scratch,
                    &mut pool,
                );
                let gain: i128 = augs.iter().map(|a| a.gain()).sum();
                if gain > 0 && best.as_ref().is_none_or(|(gg, _)| gain > *gg) {
                    best = Some((gain, augs));
                }
            }
            if let Some((_, augs)) = best {
                outcomes.push((w_class, augs));
            }
        }
        rounds_model += max_box_rounds;

        outcomes.sort_by_key(|(w, _)| std::cmp::Reverse(*w));
        let (gain, _) = apply_cross_class(
            &mut m,
            outcomes.into_iter().flat_map(|(_, a)| a),
            &mut scratch,
        );
        if gain == 0 {
            stall += 1;
            if stall >= cfg.stall_rounds {
                break;
            }
        } else {
            stall = 0;
        }
    }

    Ok(MpcResult {
        matching: m,
        rounds_model,
        rounds_sequential,
        peak_machine_words: peak_words,
        scratch_high_water: scratch.high_water().max(pool.scratch_high_water()),
        workers_used: pool.workers(),
        busy_ns: pool.busy_ns(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmatch_graph::exact::max_weight_matching;
    use wmatch_graph::generators::{self, WeightModel};
    use wmatch_stream::VecStream;

    #[test]
    fn fig1_reaches_optimum() {
        let (g, _) = generators::fig1_graph();
        let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, 3));
        assert_eq!(m.weight(), 8);
    }

    #[test]
    fn four_cycle_needs_cycle_machinery() {
        // the (4,5,4,5) cycle: optimum 10 is reachable only via an
        // augmenting cycle, i.e. a blow-up path of k = 5 gaps; the
        // granularity must resolve the gain ratio 2/18 (q = 32 at W = 32)
        let (g, _) = generators::four_cycle_eps(4);
        let mut cfg = MainAlgConfig::practical(0.1, 5);
        cfg.q = 32;
        cfg.max_layers = 7;
        // the alternating bipartition survives with probability 1/8 per
        // trial: sample generously so the blow-up path appears
        cfg.trials = 16;
        cfg.stall_rounds = 4;
        let m = max_weight_matching_offline(&g, &cfg);
        assert_eq!(m.weight(), 10);
    }

    #[test]
    fn random_graphs_come_close_to_exact() {
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..5 {
            let g = generators::gnp(24, 0.25, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng);
            let opt = max_weight_matching(&g).weight();
            let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, trial));
            m.validate(Some(&g)).unwrap();
            assert!(
                m.weight() as f64 >= 0.75 * opt as f64,
                "trial {trial}: {} vs opt {opt}",
                m.weight()
            );
        }
    }

    #[test]
    fn trace_is_monotone() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::gnp(20, 0.3, WeightModel::Uniform { lo: 1, hi: 50 }, &mut rng);
        let (_, trace) = max_weight_matching_offline_traced(&g, &MainAlgConfig::practical(0.25, 1));
        for w in trace.windows(2) {
            assert!(w[1] >= w[0], "weights must never decrease: {trace:?}");
        }
    }

    #[test]
    fn streaming_driver_matches_offline_quality() {
        let mut rng = StdRng::seed_from_u64(29);
        let g = generators::gnp(20, 0.3, WeightModel::Uniform { lo: 1, hi: 32 }, &mut rng);
        let opt = max_weight_matching(&g).weight();
        let mut cfg = MainAlgConfig::practical(0.25, 2);
        cfg.max_rounds = 10;
        let mut s = VecStream::adversarial(g.edges().to_vec()).with_vertex_count(20);
        let res = max_weight_matching_streaming(&mut s, &cfg, &McmConfig::for_delta(0.2));
        res.matching.validate(Some(&g)).unwrap();
        assert!(
            res.matching.weight() as f64 >= 0.7 * opt as f64,
            "{} vs {opt}",
            res.matching.weight()
        );
        assert!(res.passes_model <= res.passes_sequential);
        assert!(res.rounds <= 10);
    }

    #[test]
    fn mpc_driver_matches_offline_quality() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::gnp(16, 0.3, WeightModel::Uniform { lo: 1, hi: 32 }, &mut rng);
        let opt = max_weight_matching(&g).weight();
        let mut cfg = MainAlgConfig::practical(0.25, 4);
        cfg.max_rounds = 8;
        cfg.trials = 1;
        let res = max_weight_matching_mpc(
            &g,
            &cfg,
            MpcConfig::new(3, 5000),
            &MpcMcmConfig::for_delta(0.25, 9),
        )
        .unwrap();
        res.matching.validate(Some(&g)).unwrap();
        assert!(
            res.matching.weight() as f64 >= 0.7 * opt as f64,
            "{} vs {opt}",
            res.matching.weight()
        );
        assert!(res.rounds_model <= res.rounds_sequential);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(5);
        let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.5, 0));
        assert!(m.is_empty());
    }

    #[test]
    fn parallel_sweep_equals_sequential() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = generators::gnp(22, 0.3, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng);
        let mut seq_cfg = MainAlgConfig::practical(0.25, 9);
        seq_cfg.threads = 1;
        let mut par_cfg = seq_cfg;
        par_cfg.threads = 0; // one per core
        let (m_seq, trace_seq) = max_weight_matching_offline_traced(&g, &seq_cfg);
        let (m_par, trace_par) = max_weight_matching_offline_traced(&g, &par_cfg);
        assert_eq!(trace_seq, trace_par, "parallel sweep must be deterministic");
        assert_eq!(m_seq.weight(), m_par.weight());
        assert_eq!(m_seq.to_edges(), m_par.to_edges());
    }

    #[test]
    fn config_derivations() {
        let cfg = MainAlgConfig::practical(0.25, 0);
        let t = cfg.tau_config();
        assert_eq!(t.q, 8);
        assert_eq!(t.sum_b_cap, 9);
        let grid = cfg.grid(100);
        assert!(grid.contains(&512), "grid must extend past max weight");
        let th = MainAlgConfig::thorough(0.25, 0);
        assert_eq!(th.q, 16);
    }
}
