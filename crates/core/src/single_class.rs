//! Algorithm 4 — recovering the augmentations of a single augmentation
//! class `W` (Theorem 4.8).
//!
//! For each good (τᴬ, τᴮ) pair (restricted to thresholds achievable in the
//! instance), build the layered graph `L′`, hand it to the
//! `Unw-Bip-Matching` black box, read off the augmenting paths of the
//! returned matching against `M` restricted to `L′`, translate them back
//! to `G` (Lemma 4.11 decomposition, keeping each path's best-gain
//! component, line 11), and greedily retain a vertex-disjoint set
//! (line 12). The pair with the largest total gain wins (line 13).

use std::collections::BTreeSet;

use wmatch_graph::{Augmentation, Edge, Graph, Matching, Scratch, WorkerPool};

use crate::decompose::decompose_walk;
use crate::layered::{LayeredSpec, Parametrization};
use crate::tau::{bucket_down, bucket_up, enumerate_good_pairs, TauConfig, TauPair};

/// The `Unw-Bip-Matching` black box: given a bipartite graph, its side
/// labels, and an initial matching, return a (hopefully near-maximum)
/// matching. Offline instantiation: Hopcroft–Karp (δ = 0).
pub type BipartiteBox<'x> = dyn FnMut(&Graph, &[bool], Matching) -> Matching + 'x;

/// Result of one Algorithm 4 invocation.
#[derive(Debug, Clone)]
pub struct ClassOutcome {
    /// The vertex-disjoint augmentations of the winning pair.
    pub augmentations: Vec<Augmentation>,
    /// Total gain of the winning pair's augmentations.
    pub gain: i128,
    /// Number of (τᴬ, τᴮ) pairs examined.
    pub pairs_tried: usize,
    /// The winning pair, if any augmentation was found.
    pub best_pair: Option<TauPair>,
}

/// Bucket sets achievable in this instance for class `W`: up-buckets of
/// matched crossing edges and down-buckets of unmatched crossing edges.
pub fn achievable_buckets(
    edges: &[Edge],
    m: &Matching,
    param: &Parametrization,
    w_class: u64,
    cfg: &TauConfig,
) -> (BTreeSet<u32>, BTreeSet<u32>) {
    let mut buckets_a = BTreeSet::new();
    for e in m.iter() {
        if param.crosses(&e) {
            let b = bucket_up(e.weight, w_class, cfg.q);
            if b as u64 <= cfg.sum_b_cap as u64 {
                buckets_a.insert(b);
            }
        }
    }
    let mut buckets_b = BTreeSet::new();
    for e in edges {
        if !m.contains(e) && param.crosses(e) {
            let b = bucket_down(e.weight, w_class, cfg.q);
            if b >= cfg.min_entry && b <= cfg.sum_b_cap {
                buckets_b.insert(b);
            }
        }
    }
    (buckets_a, buckets_b)
}

/// Runs Algorithm 4 for the augmentation class of `w_class`.
///
/// `solve` is the unweighted bipartite matching black box; pass Hopcroft–
/// Karp for the offline δ = 0 instantiation. `scratch` is the caller's
/// arena (one per worker thread in the Algorithm 3 sweep), reset per
/// (τᴬ, τᴮ) pair in O(1).
pub fn single_class_augmentations(
    edges: &[Edge],
    m: &Matching,
    w_class: u64,
    param: &Parametrization,
    cfg: &TauConfig,
    solve: &mut BipartiteBox<'_>,
    scratch: &mut Scratch,
) -> ClassOutcome {
    let (buckets_a, buckets_b) = achievable_buckets(edges, m, param, w_class, cfg);
    let pairs = enumerate_good_pairs(cfg, &buckets_a, &buckets_b);
    let pairs_tried = pairs.len();

    let mut best: Option<(i128, TauPair, Vec<Augmentation>)> = None;
    for tau in pairs {
        let spec = LayeredSpec::new(&tau, w_class, cfg.q, param, m);
        let lg = spec.build(edges.iter().copied());
        if lg.graph.edge_count() == 0 {
            continue;
        }
        let m_prime = solve(&lg.graph, &lg.side, lg.ml_prime.clone());
        let augs = select_augmentations(&lg.augmenting_walks(&m_prime), m, scratch);
        let gain: i128 = augs.iter().map(|a| a.gain()).sum();
        if gain > 0 && best.as_ref().is_none_or(|(g, _, _)| gain > *g) {
            best = Some((gain, tau.clone(), augs));
        }
    }

    match best {
        Some((gain, pair, augmentations)) => ClassOutcome {
            augmentations,
            gain,
            pairs_tried,
            best_pair: Some(pair),
        },
        None => ClassOutcome {
            augmentations: Vec::new(),
            gain: 0,
            pairs_tried,
            best_pair: None,
        },
    }
}

/// Lines 9–12 of Algorithm 4: decompose each translated walk, keep its
/// best-gain component, and retain a vertex-disjoint subset greedily.
///
/// Conflict marks live in `scratch.mark` (epoch-reset, no per-call set
/// allocation); the marks are valid until the arena's next reset.
pub fn select_augmentations(
    walks: &[(Vec<wmatch_graph::Vertex>, Vec<Edge>)],
    m: &Matching,
    scratch: &mut Scratch,
) -> Vec<Augmentation> {
    scratch.begin(m.vertex_count());
    let mut chosen: Vec<Augmentation> = Vec::new();
    for (vs, es) in walks {
        if let Some(aug) = best_of_walk(vs, es, m) {
            commit_candidate(aug, scratch, &mut chosen);
        }
    }
    chosen
}

/// Walks below this count run sequentially even on a multi-worker pool:
/// the dispatch handshake costs more than the scoring itself.
const PAR_SELECT_MIN_WALKS: usize = 16;

/// The parallel two-phase variant of [`select_augmentations`], with output
/// **bit-identical** to the sequential function for every thread count.
///
/// Phase 1 (parallel): each walk's decomposition and best-gain component
/// is scored on the pool — the expensive part, a pure read-only function
/// of the walk and `M`, independent of the conflict marks. Phase 2
/// (sequential): candidates are committed in canonical walk order against
/// the marks, exactly as the sequential loop interleaves them. Because the
/// marks only ever influence *acceptance* (never the per-walk best), the
/// snapshot-then-commit split preserves the sequential semantics exactly.
pub fn select_augmentations_pooled(
    walks: &[(Vec<wmatch_graph::Vertex>, Vec<Edge>)],
    m: &Matching,
    scratch: &mut Scratch,
    pool: &mut WorkerPool,
) -> Vec<Augmentation> {
    if pool.workers() <= 1 || walks.len() < PAR_SELECT_MIN_WALKS {
        return select_augmentations(walks, m, scratch);
    }
    // phase 1: parallel scoring, one result slot per walk
    let best = pool.run_map(walks.len(), &|_worker, i, _s: &mut Scratch| {
        let (vs, es) = &walks[i];
        best_of_walk(vs, es, m)
    });
    // phase 2: sequential commit in canonical (walk) order
    scratch.begin(m.vertex_count());
    let mut chosen: Vec<Augmentation> = Vec::new();
    for aug in best.into_iter().flatten() {
        commit_candidate(aug, scratch, &mut chosen);
    }
    chosen
}

/// Lines 9–11 of Algorithm 4 for one walk: decompose and keep the
/// best-gain component (read-only; safe to score in parallel).
fn best_of_walk(vs: &[wmatch_graph::Vertex], es: &[Edge], m: &Matching) -> Option<Augmentation> {
    let mut best: Option<Augmentation> = None;
    for comp in decompose_walk(vs, es) {
        if let Ok(aug) = Augmentation::from_component(m, &comp) {
            if aug.gain() > 0 && best.as_ref().is_none_or(|b| aug.gain() > b.gain()) {
                best = Some(aug);
            }
        }
    }
    best
}

/// Line 12 of Algorithm 4 for one candidate: greedy vertex-disjoint
/// acceptance against the conflict marks (inherently sequential).
fn commit_candidate(aug: Augmentation, scratch: &mut Scratch, chosen: &mut Vec<Augmentation>) {
    if !aug.conflicts_with_marks(&scratch.mark) {
        aug.mark_touched(&mut scratch.mark);
        chosen.push(aug);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmatch_graph::exact::hopcroft_karp::max_bipartite_cardinality_matching_from;
    use wmatch_graph::generators;

    fn hk_box(g: &Graph, side: &[bool], init: Matching) -> Matching {
        max_bipartite_cardinality_matching_from(g, side, init)
    }

    fn cfg(q: u32, layers: usize) -> TauConfig {
        TauConfig {
            q,
            max_layers: layers,
            min_entry: 1,
            sum_b_cap: q + 1,
            max_pairs: 50_000,
        }
    }

    #[test]
    fn buckets_reflect_instance() {
        let g = generators::path_graph(&[9, 10, 9]);
        let m = Matching::from_edges(4, [g.edge(1)]).unwrap();
        let param = Parametrization::from_sides(vec![false, true, false, true]);
        let c = cfg(8, 3);
        let (ba, bb) = achievable_buckets(g.edges(), &m, &param, 16, &c);
        assert_eq!(ba, [5u32].into_iter().collect());
        assert_eq!(bb, [4u32].into_iter().collect());
    }

    #[test]
    fn finds_three_augmentation() {
        let g = generators::path_graph(&[9, 10, 9]);
        let m = Matching::from_edges(4, [g.edge(1)]).unwrap();
        let param = Parametrization::from_sides(vec![false, true, false, true]);
        let out = single_class_augmentations(
            g.edges(),
            &m,
            16,
            &param,
            &cfg(8, 3),
            &mut hk_box,
            &mut Scratch::new(),
        );
        assert_eq!(out.gain, 8);
        assert_eq!(out.augmentations.len(), 1);
        assert!(out.best_pair.is_some());
        // applying realizes the gain
        let mut m2 = m.clone();
        for aug in &out.augmentations {
            aug.apply(&mut m2).unwrap();
        }
        assert_eq!(m2.weight(), 18);
    }

    #[test]
    fn single_edge_augmentation_via_k1() {
        // one heavy unmatched edge between free vertices: class pair
        // τᴬ=(0,0), τᴮ=(t) recovers it
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 12);
        let m = Matching::new(2);
        let param = Parametrization::from_sides(vec![true, false]);
        let out = single_class_augmentations(
            g.edges(),
            &m,
            16,
            &param,
            &cfg(8, 2),
            &mut hk_box,
            &mut Scratch::new(),
        );
        assert_eq!(out.gain, 12);
    }

    #[test]
    fn no_augmentations_when_optimal() {
        let g = generators::path_graph(&[9, 30, 9]);
        let m = Matching::from_edges(4, [g.edge(1)]).unwrap(); // optimal
        let param = Parametrization::from_sides(vec![false, true, false, true]);
        for w in [8u64, 16, 32, 64] {
            let out = single_class_augmentations(
                g.edges(),
                &m,
                w,
                &param,
                &cfg(8, 3),
                &mut hk_box,
                &mut Scratch::new(),
            );
            assert_eq!(out.gain, 0, "W={w}");
        }
    }

    #[test]
    fn cycle_class_found_by_enumeration() {
        // the (4,5,4,5) cycle: enumeration must discover the blow-up pair
        // and recover the +2 cycle augmentation
        let (g, m) = generators::four_cycle_eps(4);
        let param = Parametrization::from_sides(vec![true, false, true, false]);
        let c = TauConfig {
            q: 32,
            max_layers: 7,
            min_entry: 1,
            sum_b_cap: 33,
            max_pairs: 100_000,
        };
        let out = single_class_augmentations(
            g.edges(),
            &m,
            32,
            &param,
            &c,
            &mut hk_box,
            &mut Scratch::new(),
        );
        assert_eq!(out.gain, 2, "augmenting cycle must be recovered");
        let mut m2 = m.clone();
        for aug in &out.augmentations {
            aug.apply(&mut m2).unwrap();
        }
        assert_eq!(m2.weight(), 10);
    }

    #[test]
    fn disjointness_of_returned_augmentations() {
        // many parallel 3-aug paths: all should be returned, all disjoint
        let k = 6;
        let mut g = Graph::new(4 * k);
        let mut medges = Vec::new();
        for i in 0..k as u32 {
            let b = 4 * i;
            g.add_edge(b, b + 1, 9);
            g.add_edge(b + 1, b + 2, 10);
            g.add_edge(b + 2, b + 3, 9);
            medges.push(g.edge((3 * i + 1) as usize));
        }
        let m = Matching::from_edges(4 * k, medges).unwrap();
        let sides: Vec<bool> = (0..4 * k).map(|v| v % 2 == 1).collect();
        let param = Parametrization::from_sides(sides);
        let out = single_class_augmentations(
            g.edges(),
            &m,
            16,
            &param,
            &cfg(8, 3),
            &mut hk_box,
            &mut Scratch::new(),
        );
        assert_eq!(out.augmentations.len(), k);
        assert_eq!(out.gain, 8 * k as i128);
        let mut m2 = m.clone();
        for aug in &out.augmentations {
            aug.apply(&mut m2).unwrap();
        }
        assert_eq!(m2.len(), 2 * k);
    }

    #[test]
    fn pooled_selection_is_bit_identical() {
        // many overlapping 3-aug walks: enough that the pooled variant
        // actually fans out, with real conflicts to exercise the commit
        let k = 30;
        let mut g = Graph::new(2 * k + 2);
        let mut medges = Vec::new();
        for i in 0..k as u32 {
            g.add_edge(2 * i, 2 * i + 1, 9);
            g.add_edge(2 * i + 1, 2 * i + 2, 10);
            g.add_edge(2 * i + 2, 2 * i + 3, 9);
            medges.push(g.edge((3 * i + 1) as usize));
        }
        let m = Matching::from_edges(2 * k + 2, medges.into_iter().step_by(2)).unwrap();
        let walks: Vec<(Vec<u32>, Vec<Edge>)> = (0..k as u32)
            .map(|i| {
                let es: Vec<Edge> = (0..3).map(|j| g.edge((3 * i + j) as usize)).collect();
                let vs: Vec<u32> = (0..4).map(|j| 2 * i + j).collect();
                (vs, es)
            })
            .collect();
        let seq = select_augmentations(&walks, &m, &mut Scratch::new());
        assert!(!seq.is_empty());
        for threads in [1usize, 2, 4, 0] {
            let mut pool = WorkerPool::new(threads);
            let pooled = select_augmentations_pooled(&walks, &m, &mut Scratch::new(), &mut pool);
            assert_eq!(seq, pooled, "threads = {threads}");
        }
    }

    #[test]
    fn empty_instance() {
        let g = Graph::new(4);
        let m = Matching::new(4);
        let param = Parametrization::from_sides(vec![true, false, true, false]);
        let out = single_class_augmentations(
            g.edges(),
            &m,
            8,
            &param,
            &cfg(8, 3),
            &mut hk_box,
            &mut Scratch::new(),
        );
        assert_eq!(out.pairs_tried, 0);
        assert_eq!(out.gain, 0);
    }
}
