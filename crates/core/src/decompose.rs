//! The walk decomposition of Lemma 4.11.
//!
//! An alternating path of the layered graph, translated back to the
//! original graph, is a *walk* that may repeat vertices and edges (the
//! cycle blow-up of Section 1.1.2 repeats entire cycles). Lemma 4.11 shows
//! such a walk decomposes into one simple path and a collection of simple
//! even cycles, **each of which alternates** between matched and unmatched
//! edges — the bipartition (L, R) orients matched edges L→R and unmatched
//! edges R→L, so every vertex is entered and left by a fixed edge type,
//! which makes any stack-splitting at a repeated vertex preserve
//! alternation.
//!
//! [`decompose_walk`] implements the splitting: scan the walk keeping a
//! stack of vertices; when the walk revisits a vertex on the stack, pop the
//! enclosed segment as a cycle component. The remainder is the path.

use std::collections::HashMap;

use wmatch_graph::{Edge, Vertex};

/// Decomposes a walk into simple components: zero or more cycles plus at
/// most one path, returned as ordered edge sequences.
///
/// `vertices` must have exactly one more element than `edges`, with
/// `edges[i]` connecting `vertices[i]` and `vertices[i+1]`.
///
/// The walk itself may repeat vertices and edges; each returned component
/// is vertex-simple. When the input comes from a layered graph (its
/// intended use), every component is also alternating — callers can check
/// with [`wmatch_graph::alternating::check_alternating`].
///
/// # Panics
///
/// Panics if the vertex/edge counts are inconsistent or an edge does not
/// connect its neighbouring walk vertices.
///
/// # Example
///
/// ```
/// use wmatch_core::decompose::decompose_walk;
/// use wmatch_graph::Edge;
///
/// // the walk 0-1-2-0-3 contains the triangle 0-1-2 and the path 0-3
/// let vs = [0, 1, 2, 0, 3];
/// let es = [
///     Edge::new(0, 1, 1),
///     Edge::new(1, 2, 1),
///     Edge::new(2, 0, 1),
///     Edge::new(0, 3, 1),
/// ];
/// let comps = decompose_walk(&vs, &es);
/// assert_eq!(comps.len(), 2);
/// assert_eq!(comps[0].len(), 3); // the cycle
/// assert_eq!(comps[1].len(), 1); // the path
/// ```
pub fn decompose_walk(vertices: &[Vertex], edges: &[Edge]) -> Vec<Vec<Edge>> {
    assert_eq!(
        vertices.len(),
        edges.len() + 1,
        "walk must have one more vertex than edges"
    );
    for (i, e) in edges.iter().enumerate() {
        assert!(
            e.touches(vertices[i]) && e.touches(vertices[i + 1]),
            "edge {e} does not connect walk vertices {} and {}",
            vertices[i],
            vertices[i + 1]
        );
    }
    let mut components = Vec::new();
    let mut sv: Vec<Vertex> = vec![vertices[0]];
    let mut se: Vec<Edge> = Vec::new();
    let mut pos: HashMap<Vertex, usize> = HashMap::new();
    pos.insert(vertices[0], 0);
    for (i, &e) in edges.iter().enumerate() {
        let v = vertices[i + 1];
        se.push(e);
        if let Some(&j) = pos.get(&v) {
            // the segment since position j closes a cycle at v
            let cycle: Vec<Edge> = se.drain(j..).collect();
            for u in sv.drain(j + 1..) {
                pos.remove(&u);
            }
            components.push(cycle);
        } else {
            sv.push(v);
            pos.insert(v, sv.len() - 1);
        }
    }
    if !se.is_empty() {
        components.push(se);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmatch_graph::alternating::{check_alternating, ComponentKind};
    use wmatch_graph::Matching;

    #[test]
    fn simple_path_is_one_component() {
        let vs = [0, 1, 2, 3];
        let es = [Edge::new(0, 1, 1), Edge::new(1, 2, 1), Edge::new(2, 3, 1)];
        let comps = decompose_walk(&vs, &es);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 3);
    }

    #[test]
    fn pure_cycle_yields_one_cycle_no_path() {
        let vs = [0, 1, 2, 3, 0];
        let es = [
            Edge::new(0, 1, 1),
            Edge::new(1, 2, 1),
            Edge::new(2, 3, 1),
            Edge::new(3, 0, 1),
        ];
        let comps = decompose_walk(&vs, &es);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 4);
    }

    #[test]
    fn cycle_blowup_decomposes_into_repeated_cycles() {
        // the paper's repetition trick: (e1 o1 e2 o2) x3 then e1:
        // walk 0-1-2-3-0-1-2-3-0-1-2-3-0-1
        let cycle_edges = [
            Edge::new(0, 1, 3),
            Edge::new(1, 2, 4),
            Edge::new(2, 3, 3),
            Edge::new(3, 0, 4),
        ];
        let mut vs = vec![0u32];
        let mut es = Vec::new();
        for _rep in 0..3 {
            for (i, e) in cycle_edges.iter().enumerate() {
                es.push(*e);
                vs.push([1, 2, 3, 0][i]);
            }
        }
        es.push(cycle_edges[0]);
        vs.push(1);
        let comps = decompose_walk(&vs, &es);
        // 3 copies of the 4-cycle plus the final path edge 0-1
        assert_eq!(comps.len(), 4);
        assert_eq!(comps.iter().filter(|c| c.len() == 4).count(), 3);
        assert_eq!(comps.iter().filter(|c| c.len() == 1).count(), 1);
        // every 4-cycle component alternates w.r.t. the matching {e1, e2}
        let m = Matching::from_edges(4, [cycle_edges[0], cycle_edges[2]]).unwrap();
        for c in comps.iter().filter(|c| c.len() == 4) {
            assert_eq!(check_alternating(&m, c).unwrap(), ComponentKind::Cycle);
        }
    }

    #[test]
    fn nonsimple_paper_example_splits() {
        // Section 1.1.2's non-simple walk a-b-c-d-b-a would be produced by
        // a layered graph *without* the bipartition trick; the decomposition
        // still separates it into a cycle (b-c-d-b) and a path (a-b, b-a
        // collapses to cycle a-b... walk: a(0) b(1) c(2) d(3) b(1) a(0))
        let vs = [0, 1, 2, 3, 1, 0];
        let es = [
            Edge::new(0, 1, 1),
            Edge::new(1, 2, 2),
            Edge::new(2, 3, 1),
            Edge::new(3, 1, 2),
            Edge::new(1, 0, 1),
        ];
        let comps = decompose_walk(&vs, &es);
        // cycle 1-2-3-1 pops first, then 0-1-0 closes as a 2-cycle
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn empty_walk() {
        let comps = decompose_walk(&[5], &[]);
        assert!(comps.is_empty());
    }

    #[test]
    #[should_panic(expected = "one more vertex")]
    fn rejects_inconsistent_lengths() {
        decompose_walk(&[0, 1], &[]);
    }

    #[test]
    #[should_panic(expected = "does not connect")]
    fn rejects_disconnected_walk() {
        decompose_walk(&[0, 5], &[Edge::new(0, 1, 1)]);
    }

    #[test]
    fn figure8_walk() {
        // two cycles sharing vertex 0: 0-1-2-0-3-4-0
        let vs = [0, 1, 2, 0, 3, 4, 0];
        let es = [
            Edge::new(0, 1, 1),
            Edge::new(1, 2, 1),
            Edge::new(2, 0, 1),
            Edge::new(0, 3, 1),
            Edge::new(3, 4, 1),
            Edge::new(4, 0, 1),
        ];
        let comps = decompose_walk(&vs, &es);
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| c.len() == 3));
    }
}
