//! `Unw-3-Aug-Paths` — the streaming algorithm of Lemma 3.1 (Appendix A.1,
//! based on Kale–Tirodkar \[KT17\]).
//!
//! Initialized with a matching `M̃` and a degree cap λ (the lemma's proof
//! uses λ = 8/β). A *support* edge connects an `M̃`-unmatched vertex to an
//! `M̃`-matched vertex; arriving support edges are stored while the
//! unmatched endpoint has support degree < λ and the matched endpoint has
//! support degree < 2. At the end, vertex-disjoint 3-augmenting paths
//! `a−u−v−b` (with `uv ∈ M̃`) are extracted greedily.
//!
//! Space: at most 4·|M̃| stored edges (each matched vertex holds ≤ 2).
//! Guarantee (Lemma 3.1): if the stream contains β·|M̃| vertex-disjoint
//! 3-augmenting paths, at least (β²/32)·|M̃| are returned.

use wmatch_graph::{Edge, Matching};

/// A 3-augmenting path `a−u−v−b` found for the matched middle edge `uv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreeAugPath {
    /// The wing `{a, u}` with `a` unmatched.
    pub left: Edge,
    /// The middle matched edge `{u, v}`.
    pub middle: Edge,
    /// The wing `{v, b}` with `b` unmatched.
    pub right: Edge,
}

impl ThreeAugPath {
    /// The component edges in path order.
    pub fn edges(&self) -> [Edge; 3] {
        [self.left, self.middle, self.right]
    }
}

/// Streaming state for `Unw-3-Aug-Paths`.
///
/// # Example
///
/// ```
/// use wmatch_core::unw3aug::Unw3AugPaths;
/// use wmatch_graph::{Edge, Matching};
///
/// let m = Matching::from_edges(4, [Edge::new(1, 2, 1)]).unwrap();
/// let mut alg = Unw3AugPaths::new(m, 16);
/// alg.feed(Edge::new(0, 1, 1));
/// alg.feed(Edge::new(2, 3, 1));
/// let paths = alg.finalize();
/// assert_eq!(paths.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Unw3AugPaths {
    m: Matching,
    lambda: u32,
    support: Vec<Edge>,
    support_deg: Vec<u32>,
}

impl Unw3AugPaths {
    /// Initializes with the matching `M̃` and degree cap `lambda`
    /// (Lemma 3.1's λ = 8/β).
    pub fn new(m: Matching, lambda: u32) -> Self {
        let n = m.vertex_count();
        Unw3AugPaths {
            m,
            lambda: lambda.max(1),
            support: Vec::new(),
            support_deg: vec![0; n],
        }
    }

    /// The initial matching `M̃`.
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// Feeds one stream edge; stores it if it is a support edge within the
    /// degree caps.
    pub fn feed(&mut self, e: Edge) {
        let (mu, mv) = (self.m.is_matched(e.u), self.m.is_matched(e.v));
        let (free, matched) = match (mu, mv) {
            (false, true) => (e.u, e.v),
            (true, false) => (e.v, e.u),
            _ => return, // not a support edge
        };
        if self.support_deg[free as usize] < self.lambda && self.support_deg[matched as usize] < 2 {
            self.support_deg[free as usize] += 1;
            self.support_deg[matched as usize] += 1;
            self.support.push(e);
        }
    }

    /// Number of stored support edges (O(|M̃|) by construction).
    pub fn support_size(&self) -> usize {
        self.support.len()
    }

    /// Greedily extracts vertex-disjoint 3-augmenting paths from the
    /// support set.
    pub fn finalize(&self) -> Vec<ThreeAugPath> {
        let n = self.m.vertex_count();
        // wing bucket per matched vertex, as flat counting-sorted arrays
        // (support order preserved within each bucket)
        let matched_end = |e: &Edge| if self.m.is_matched(e.u) { e.u } else { e.v };
        let (off, order) = wmatch_graph::csr::bucket_stable(n, self.support.len(), |i| {
            matched_end(&self.support[i])
        });
        let flat: Vec<Edge> = order.iter().map(|&i| self.support[i as usize]).collect();
        let wings = |x: u32| &flat[off[x as usize] as usize..off[x as usize + 1] as usize];
        let mut used = vec![false; n];
        let mut out = Vec::new();
        for middle in self.m.iter() {
            let (u, v) = (middle.u, middle.v);
            if used[u as usize] || used[v as usize] {
                continue;
            }
            let left = wings(u)
                .iter()
                .find(|e| !used[e.other(u) as usize])
                .copied();
            let Some(left) = left else { continue };
            let a = left.other(u);
            let right = wings(v)
                .iter()
                .find(|e| {
                    let b = e.other(v);
                    b != a && !used[b as usize]
                })
                .copied();
            let Some(right) = right else { continue };
            let b = right.other(v);
            used[a as usize] = true;
            used[u as usize] = true;
            used[v as usize] = true;
            used[b as usize] = true;
            out.push(ThreeAugPath {
                left,
                middle,
                right,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use wmatch_graph::generators;

    #[test]
    fn finds_planted_paths() {
        let (_, m, wings) = generators::planted_3aug_paths(5, 5);
        let mut alg = Unw3AugPaths::new(m, 16);
        for e in wings {
            alg.feed(e);
        }
        let paths = alg.finalize();
        assert_eq!(paths.len(), 5);
        for p in &paths {
            assert!(alg.matching().contains(&p.middle));
        }
    }

    #[test]
    fn paths_are_vertex_disjoint() {
        let (_, m, wings) = generators::planted_3aug_paths(8, 10);
        let mut alg = Unw3AugPaths::new(m, 16);
        for e in wings {
            alg.feed(e);
        }
        let paths = alg.finalize();
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            for e in p.edges() {
                assert!(seen.insert(e.u) || seen.contains(&e.u));
            }
        }
        // stronger: endpoints all distinct
        let mut vs = std::collections::HashSet::new();
        for p in &paths {
            for x in [
                p.left.other(p.middle.u.min(p.middle.v)),
                p.middle.u,
                p.middle.v,
            ] {
                let _ = x;
            }
            let a = if alg.matching().is_matched(p.left.u) {
                p.left.v
            } else {
                p.left.u
            };
            let b = if alg.matching().is_matched(p.right.u) {
                p.right.v
            } else {
                p.right.u
            };
            for x in [a, p.middle.u, p.middle.v, b] {
                assert!(vs.insert(x), "vertex {x} reused across paths");
            }
        }
    }

    #[test]
    fn lemma_3_1_quantitative_guarantee() {
        // beta-fraction of planted paths; random feeding order; expect at
        // least (beta^2/32)|M| recovered with lambda = 8/beta
        let mut rng = StdRng::seed_from_u64(5);
        for &(k, total) in &[(20usize, 40usize), (10, 40), (40, 40)] {
            let beta = k as f64 / total as f64;
            let lambda = (8.0 / beta).ceil() as u32;
            let (_, m, mut wings) = generators::planted_3aug_paths(k, total);
            wings.shuffle(&mut rng);
            let mut alg = Unw3AugPaths::new(m, lambda);
            for e in wings {
                alg.feed(e);
            }
            let got = alg.finalize().len() as f64;
            let promised = beta * beta / 32.0 * total as f64;
            assert!(
                got >= promised,
                "k={k}/{total}: got {got}, promised {promised}"
            );
            // space bound: |S| <= 4 |M|
            assert!(alg.support_size() <= 4 * total);
        }
    }

    #[test]
    fn non_support_edges_ignored() {
        let m = Matching::from_edges(6, [Edge::new(1, 2, 1), Edge::new(3, 4, 1)]).unwrap();
        let mut alg = Unw3AugPaths::new(m, 4);
        alg.feed(Edge::new(1, 3, 1)); // matched-matched
        alg.feed(Edge::new(0, 5, 1)); // free-free
        assert_eq!(alg.support_size(), 0);
    }

    #[test]
    fn degree_caps_respected() {
        // star: one matched edge, many free neighbours of the same matched
        // endpoint: cap 2 on matched side limits support
        let m = Matching::from_edges(10, [Edge::new(0, 1, 1)]).unwrap();
        let mut alg = Unw3AugPaths::new(m, 100);
        for b in 2..10u32 {
            alg.feed(Edge::new(0, b, 1));
        }
        assert_eq!(alg.support_size(), 2, "matched endpoint holds at most 2");
        // free-side cap
        let m = Matching::from_edges(10, (0..4).map(|i| Edge::new(2 * i, 2 * i + 1, 1))).unwrap();
        let mut alg = Unw3AugPaths::new(m, 2);
        for i in 0..4u32 {
            alg.feed(Edge::new(8, 2 * i, 1)); // 8 is free... but 8 is matched!
        }
        // use vertex 9 beyond matched range? matching covers 0..7, so 8,9 free
        let mut alg2 = Unw3AugPaths::new(alg.m.clone(), 2);
        for i in 0..4u32 {
            alg2.feed(Edge::new(9, 2 * i, 1));
        }
        assert_eq!(alg2.support_size(), 2, "free endpoint capped at lambda=2");
    }

    #[test]
    fn triangle_wings_do_not_fake_augmentation() {
        // a-u and a-v with the same free vertex a: no 3-augmentation exists
        let m = Matching::from_edges(3, [Edge::new(1, 2, 1)]).unwrap();
        let mut alg = Unw3AugPaths::new(m, 8);
        alg.feed(Edge::new(0, 1, 1));
        alg.feed(Edge::new(0, 2, 1));
        assert!(alg.finalize().is_empty(), "b must differ from a");
    }

    #[test]
    fn augmentations_actually_augment() {
        let (g, m, wings) = generators::planted_3aug_paths(6, 9);
        let mut alg = Unw3AugPaths::new(m.clone(), 16);
        for e in wings {
            alg.feed(e);
        }
        let mut m2 = m;
        for p in alg.finalize() {
            let aug = wmatch_graph::Augmentation::from_component(&m2, &p.edges()).unwrap();
            assert_eq!(aug.gain(), 1); // unit weights: +1 edge
            aug.apply(&mut m2).unwrap();
        }
        m2.validate(Some(&g)).unwrap();
        assert_eq!(m2.len(), 9 + 6);
    }
}
