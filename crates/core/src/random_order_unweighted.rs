//! The 0.506-approximation for **unweighted** matching on random-order
//! streams (Section 3.1, Theorem 3.4).
//!
//! One pass, three parallel branches after an initial greedy phase on the
//! first `p` fraction of the stream (which yields `M₀`):
//!
//! 1. **free–free** — store every edge between `M₀`-unmatched vertices
//!    (the set `S₁`), and at the end add a maximum matching of `S₁` to
//!    `M₀` (Case 1 of the analysis: wins when `|M₀| ≤ (½−α)|M*|`),
//! 2. **continued greedy** — keep growing `M₀` to a maximal matching `M′`,
//! 3. **3-augmentations** — find vertex-disjoint 3-augmenting paths for
//!    `M₀` with `Unw-3-Aug-Paths` (wins when `M₀` is stuck near ½).
//!
//! The best of the three is returned; the analysis shows the maximum is a
//! 0.506-approximation in expectation over random arrival orders
//! (0.512 for triangle-free graphs).

use wmatch_graph::exact::blossom::max_cardinality_matching;
use wmatch_graph::{Augmentation, Edge, Graph, Matching};
use wmatch_stream::EdgeStream;

use crate::unw3aug::Unw3AugPaths;

/// Which branch produced the returned matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branch {
    /// `M₀` plus a maximum matching among free–free edges.
    FreeFree,
    /// The maximal matching grown over the whole stream.
    ContinuedGreedy,
    /// `M₀` improved by 3-augmenting paths.
    ThreeAug,
}

/// Configuration for [`random_order_unweighted`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouConfig {
    /// Fraction of the stream used to build `M₀` (the paper's analysis
    /// uses `p ≤ 0.0001`; practical instances use larger values — the
    /// trade-off is measured in experiment E1).
    pub p: f64,
    /// Support-degree cap λ of `Unw-3-Aug-Paths` (the paper's λ = 8/β).
    pub lambda: u32,
}

impl Default for RouConfig {
    fn default() -> Self {
        RouConfig { p: 0.1, lambda: 16 }
    }
}

/// Statistics and output of one run.
#[derive(Debug, Clone)]
pub struct RouResult {
    /// The best matching found.
    pub matching: Matching,
    /// Which branch won.
    pub winner: Branch,
    /// Size of the phase-one matching `M₀`.
    pub m0_size: usize,
    /// Number of stored free–free edges (`|S₁|`, Lemma 3.3 memory).
    pub s1_size: usize,
    /// Stored support edges of the 3-augmentation branch.
    pub support_size: usize,
}

/// Runs the single-pass random-order algorithm of Theorem 3.4.
///
/// The caller controls the arrival order through the stream; feeding an
/// adversarial order is allowed (the guarantee then degrades to ½, which
/// experiment E1 demonstrates).
///
/// # Example
///
/// ```
/// use wmatch_core::random_order_unweighted::{random_order_unweighted, RouConfig};
/// use wmatch_graph::generators;
/// use wmatch_stream::VecStream;
///
/// let g = generators::disjoint_paths3(50);
/// let mut s = VecStream::random_order(g.edges().to_vec(), 3)
///     .with_vertex_count(g.vertex_count());
/// let res = random_order_unweighted(&mut s, &RouConfig::default());
/// assert!(res.matching.len() * 2 >= 100); // never worse than 1/2 of OPT=100
/// ```
pub fn random_order_unweighted(stream: &mut dyn EdgeStream, cfg: &RouConfig) -> RouResult {
    let n = stream.vertex_count();
    let m_total = stream.edge_count();
    let cutoff = ((cfg.p * m_total as f64).ceil() as usize).max(1);

    struct State {
        idx: usize,
        cutoff: usize,
        m0: Matching,
        phase2: Option<Phase2>,
    }
    struct Phase2 {
        s1: Vec<Edge>,
        m_prime: Matching,
        aug: Unw3AugPaths,
    }

    let mut st = State {
        idx: 0,
        cutoff,
        m0: Matching::new(n),
        phase2: None,
    };
    let lambda = cfg.lambda;
    stream.stream_pass(&mut |e| {
        if st.idx < st.cutoff {
            let _ = st.m0.insert(e);
        } else {
            if st.phase2.is_none() {
                st.phase2 = Some(Phase2 {
                    s1: Vec::new(),
                    m_prime: st.m0.clone(),
                    aug: Unw3AugPaths::new(st.m0.clone(), lambda),
                });
            }
            let p2 = st.phase2.as_mut().expect("just initialized");
            if !st.m0.is_matched(e.u) && !st.m0.is_matched(e.v) {
                p2.s1.push(e);
            }
            let _ = p2.m_prime.insert(e);
            p2.aug.feed(e);
        }
        st.idx += 1;
    });

    let m0_size = st.m0.len();
    let Some(p2) = st.phase2 else {
        // the whole stream fell into phase one: plain greedy
        return RouResult {
            matching: st.m0,
            winner: Branch::ContinuedGreedy,
            m0_size,
            s1_size: 0,
            support_size: 0,
        };
    };

    // Branch 1: maximum matching among the free-free edges, added to M0.
    let s1_graph = Graph::from_edges(n, p2.s1.iter().copied());
    let s1_matching = max_cardinality_matching(&s1_graph);
    let mut branch1 = st.m0.clone();
    for e in s1_matching.iter() {
        branch1.insert(e).expect("S1 touches only M0-free vertices");
    }

    // Branch 2: the continued greedy matching.
    let branch2 = p2.m_prime;

    // Branch 3: M0 improved by the recovered 3-augmenting paths.
    let mut branch3 = st.m0.clone();
    for path in p2.aug.finalize() {
        let aug = Augmentation::from_component(&branch3, &path.edges())
            .expect("finalize yields valid disjoint paths");
        aug.apply(&mut branch3).expect("paths are vertex-disjoint");
    }

    let (winner, matching) = [
        (Branch::FreeFree, branch1),
        (Branch::ContinuedGreedy, branch2),
        (Branch::ThreeAug, branch3),
    ]
    .into_iter()
    .max_by_key(|(_, m)| m.len())
    .expect("three branches");

    RouResult {
        matching,
        winner,
        m0_size,
        s1_size: p2.s1.len(),
        support_size: p2.aug.support_size(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wmatch_graph::exact::max_cardinality_matching as exact_mcm;
    use wmatch_graph::generators::{self, WeightModel};
    use wmatch_stream::VecStream;

    fn ratio_over_seeds(g: &Graph, cfg: &RouConfig, seeds: std::ops::Range<u64>) -> f64 {
        let opt = exact_mcm(g).len() as f64;
        if opt == 0.0 {
            return 1.0;
        }
        let mut total = 0.0;
        let k = seeds.end - seeds.start;
        for seed in seeds {
            let mut s = VecStream::random_order(g.edges().to_vec(), seed)
                .with_vertex_count(g.vertex_count());
            let res = random_order_unweighted(&mut s, cfg);
            res.matching.validate(Some(g)).unwrap();
            total += res.matching.len() as f64 / opt;
        }
        total / k as f64
    }

    #[test]
    fn beats_half_on_barrier_paths() {
        // disjoint 3-edge paths: greedy alone averages ~5/6... the point is
        // the algorithm must clearly exceed 1/2 + 0.006
        let g = generators::disjoint_paths3(60);
        let avg = ratio_over_seeds(&g, &RouConfig::default(), 0..10);
        assert!(avg > 0.506, "average ratio {avg} must beat 0.506");
    }

    #[test]
    fn never_below_half_even_adversarial() {
        // middle edges first: plain greedy would stop at exactly 1/2
        let g = generators::disjoint_paths3(40);
        let mut order = Vec::new();
        for i in 0..40 {
            order.push(g.edge(3 * i + 1)); // middle edges first
        }
        for i in 0..40 {
            order.push(g.edge(3 * i));
            order.push(g.edge(3 * i + 2));
        }
        let mut s = VecStream::adversarial(order).with_vertex_count(g.vertex_count());
        let res = random_order_unweighted(&mut s, &RouConfig { p: 0.2, lambda: 16 });
        // phase one sees only middle edges -> M0 hits the greedy trap, but
        // the 3-aug branch repairs it
        assert!(
            res.matching.len() * 2 > 40 + 4,
            "got {}",
            res.matching.len()
        );
    }

    #[test]
    fn random_graphs_track_exact_optimum() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..8 {
            let g = generators::gnp(40, 0.15, WeightModel::Unit, &mut rng);
            let avg = ratio_over_seeds(&g, &RouConfig::default(), trial..trial + 5);
            assert!(avg >= 0.5, "trial {trial}: ratio {avg} below 1/2");
        }
    }

    #[test]
    fn free_free_branch_wins_when_m0_is_tiny() {
        // p so small that M0 captures one edge; the rest is a fresh perfect
        // matching among untouched vertices
        let mut edges = vec![Edge::new(0, 1, 1)];
        for i in 1..30u32 {
            edges.push(Edge::new(2 * i, 2 * i + 1, 1));
        }
        let mut s = VecStream::adversarial(edges).with_vertex_count(60);
        let res = random_order_unweighted(&mut s, &RouConfig { p: 1e-9, lambda: 8 });
        assert_eq!(res.matching.len(), 30);
        assert_eq!(res.m0_size, 1);
    }

    #[test]
    fn handles_whole_stream_in_phase_one() {
        let g = generators::disjoint_paths3(5);
        let mut s =
            VecStream::random_order(g.edges().to_vec(), 1).with_vertex_count(g.vertex_count());
        let res = random_order_unweighted(&mut s, &RouConfig { p: 1.0, lambda: 8 });
        assert!(res.matching.len() >= 5, "greedy maximal on everything");
        assert_eq!(res.s1_size, 0);
    }

    #[test]
    fn empty_stream() {
        let mut s = VecStream::adversarial(vec![]);
        let res = random_order_unweighted(&mut s, &RouConfig::default());
        assert!(res.matching.is_empty());
    }

    #[test]
    fn support_memory_is_linear_in_matching() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp(60, 0.4, WeightModel::Unit, &mut rng);
        let mut s = VecStream::random_order(g.edges().to_vec(), 4).with_vertex_count(60);
        let res = random_order_unweighted(&mut s, &RouConfig::default());
        assert!(res.support_size <= 4 * res.m0_size.max(1));
    }
}
