//! `Rand-Arr-Matching` (Algorithm 2) — the (½+c)-approximation for
//! **weighted** matching on single-pass random-order streams
//! (Theorem 1.1).
//!
//! Phase one (first `p` fraction of the stream): run the local-ratio
//! algorithm, producing the stack `S`, vertex potentials `α`, and the
//! phase-one matching `M₀` (unwound from `S`). The potentials are then
//! **frozen**.
//!
//! Phase two (rest of the stream): every edge with `w(e) > α_u + α_v` is
//! stored in `T`; every edge is also fed to `Wgt-Aug-Paths` (Algorithm 1).
//!
//! Finalize: `M₁` = a maximum-weight matching of `T` under the reduced
//! weights `w''(e) = w(e) − α_u − α_v`, completed by unwinding `S` over it
//! (the delegation argument of Lemma 3.13 shows this wins whenever `M₀`
//! was weak); `M₂` = the output of `Wgt-Aug-Paths` (wins when `M₀` is
//! stuck near ½). Return the heavier.

use wmatch_graph::{Edge, Graph, Matching};
use wmatch_stream::EdgeStream;

use crate::greedy::greedy_by_weight;
use crate::local_ratio::LocalRatio;
use crate::wgt_aug_paths::{WapConfig, WgtAugPaths};

/// Which branch produced the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandArrBranch {
    /// `M₁`: reduced-weight matching on `T` + stack unwinding.
    StackAndT,
    /// `M₂`: `Wgt-Aug-Paths` (excess matching or 3-augmentations).
    WgtAugPaths,
}

/// Configuration for [`rand_arr_matching`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandArrConfig {
    /// First-phase fraction `p`. The paper sets `p = 100/log n`, which is
    /// ≥ 1 for every practical `n`; experiments therefore sweep practical
    /// values (default 0.1). See DESIGN.md §3.
    pub p: f64,
    /// Algorithm 1's parameters.
    pub wap: WapConfig,
    /// Use the exact general-graph solver on `T` while `|T|` is at most
    /// this; beyond it, fall back to ½-approximate greedy on the reduced
    /// weights (documented substitution 3).
    pub exact_t_threshold: usize,
}

impl Default for RandArrConfig {
    fn default() -> Self {
        RandArrConfig {
            p: 0.1,
            wap: WapConfig::default(),
            exact_t_threshold: 50_000,
        }
    }
}

/// Output and diagnostics.
#[derive(Debug, Clone)]
pub struct RandArrResult {
    /// The matching returned (the heavier branch).
    pub matching: Matching,
    /// Which branch won.
    pub winner: RandArrBranch,
    /// Local-ratio stack size `|S|` (Lemma 3.15 memory).
    pub stack_size: usize,
    /// Stored above-potential edges `|T|` (Lemma 3.15 memory).
    pub t_size: usize,
    /// Weight of the phase-one matching `M₀`.
    pub m0_weight: i128,
}

/// Runs Algorithm 2 over a single pass of `stream` (the `wmatch-api`
/// facade exposes it as the `rand-arr-matching` registry solver).
///
/// # Example
///
/// ```
/// use wmatch_core::rand_arr_matching::{rand_arr_matching, RandArrConfig};
/// use wmatch_graph::generators;
/// use wmatch_stream::VecStream;
///
/// let g = generators::weighted_barrier_paths(20, 50);
/// let mut s = VecStream::random_order(g.edges().to_vec(), 1)
///     .with_vertex_count(g.vertex_count());
/// let res = rand_arr_matching(&mut s, &RandArrConfig::default());
/// assert!(res.matching.weight() * 2 >= 20 * 101); // never below 1/2
/// ```
pub fn rand_arr_matching(stream: &mut dyn EdgeStream, cfg: &RandArrConfig) -> RandArrResult {
    let n = stream.vertex_count();
    let m_total = stream.edge_count();
    let cutoff = ((cfg.p * m_total as f64).ceil() as usize).max(1);

    struct State {
        idx: usize,
        cutoff: usize,
        lr: LocalRatio,
        wap: Option<WgtAugPaths>,
        t: Vec<Edge>,
        m0_weight: i128,
    }
    let mut st = State {
        idx: 0,
        cutoff,
        lr: LocalRatio::new(n),
        wap: None,
        t: Vec::new(),
        m0_weight: 0,
    };
    let wap_cfg = cfg.wap;

    stream.stream_pass(&mut |e| {
        if st.idx < st.cutoff {
            st.lr.on_edge(e);
        } else {
            if st.wap.is_none() {
                // phase switch: unwind M0, freeze potentials
                let m0 = st.lr.unwind();
                st.m0_weight = m0.weight();
                st.lr.freeze();
                st.wap = Some(WgtAugPaths::new(m0, &wap_cfg));
            }
            if st.lr.above_potential(&e) {
                st.t.push(e);
            }
            st.wap.as_mut().expect("initialized above").feed(e);
        }
        st.idx += 1;
    });

    let stack_size = st.lr.stack_len();
    let t_size = st.t.len();

    let Some(wap) = st.wap else {
        // whole stream in phase one: plain local ratio
        let matching = st.lr.unwind();
        let m0_weight = matching.weight();
        return RandArrResult {
            matching,
            winner: RandArrBranch::StackAndT,
            stack_size,
            t_size,
            m0_weight,
        };
    };

    // M1: matching on T under reduced weights, then unwind the stack.
    let mut m1 = matching_on_t(&st.lr, &st.t, n, cfg.exact_t_threshold);
    st.lr.unwind_onto(&mut m1);

    // M2: Wgt-Aug-Paths output.
    let m2 = wap.finalize().matching;

    let (winner, matching) = if m1.weight() >= m2.weight() {
        (RandArrBranch::StackAndT, m1)
    } else {
        (RandArrBranch::WgtAugPaths, m2)
    };

    RandArrResult {
        matching,
        winner,
        stack_size,
        t_size,
        m0_weight: st.m0_weight,
    }
}

/// Builds the `M₁` core: a matching of `T` maximizing the reduced weights
/// `w''`, reported with original weights.
fn matching_on_t(lr: &LocalRatio, t: &[Edge], n: usize, exact_threshold: usize) -> Matching {
    // graph over reduced weights (all positive: T only stores
    // above-potential edges)
    let mut reduced = Graph::new(n);
    for e in t {
        let r = lr.residual(e);
        debug_assert!(r > 0);
        reduced.add_edge(e.u, e.v, r as u64);
    }
    let reduced_matching = if t.len() <= exact_threshold {
        wmatch_graph::exact::max_weight_matching(&reduced)
    } else {
        greedy_by_weight(&reduced)
    };
    let mut m = Matching::new(n);
    for re in reduced_matching.iter() {
        let orig = re.weight + lr.potential(re.u) + lr.potential(re.v);
        m.insert(Edge::new(re.u, re.v, orig))
            .expect("a matching stays a matching under reweighting");
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wmatch_graph::exact::max_weight_matching;
    use wmatch_graph::generators::{self, WeightModel};
    use wmatch_stream::VecStream;

    fn avg_ratio(g: &Graph, cfg: &RandArrConfig, seeds: std::ops::Range<u64>) -> f64 {
        let opt = max_weight_matching(g).weight() as f64;
        if opt == 0.0 {
            return 1.0;
        }
        let count = (seeds.end - seeds.start) as f64;
        let mut total = 0.0;
        for seed in seeds {
            let mut s = VecStream::random_order(g.edges().to_vec(), seed)
                .with_vertex_count(g.vertex_count());
            let mut c = *cfg;
            c.wap.seed = seed.wrapping_add(77);
            let res = rand_arr_matching(&mut s, &c);
            res.matching.validate(None).unwrap();
            total += res.matching.weight() as f64 / opt;
        }
        total / count
    }

    #[test]
    fn beats_half_on_weighted_barrier() {
        // (w, w+1, w) paths: local-ratio sticks at (w+1)/(2w) ≈ 0.505;
        // the augmenting machinery must push clearly past it
        let g = generators::weighted_barrier_paths(40, 100);
        let avg = avg_ratio(&g, &RandArrConfig::default(), 0..8);
        assert!(avg > 0.52, "expected clearly above 1/2, got {avg}");
    }

    #[test]
    fn never_below_half_minus_slack_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..6 {
            let g = generators::gnp(30, 0.2, WeightModel::Uniform { lo: 1, hi: 100 }, &mut rng);
            let avg = avg_ratio(&g, &RandArrConfig::default(), trial..trial + 4);
            assert!(avg >= 0.5, "trial {trial}: ratio {avg}");
        }
    }

    #[test]
    fn t_branch_wins_when_phase_one_sees_junk() {
        // phase one: only light edges; heavy disjoint edges arrive later:
        // the T-set catches them and M1 dominates
        let mut edges = vec![Edge::new(0, 1, 1)];
        for i in 1..20u32 {
            edges.push(Edge::new(2 * i, 2 * i + 1, 1000));
        }
        let mut s = VecStream::adversarial(edges).with_vertex_count(40);
        let res = rand_arr_matching(
            &mut s,
            &RandArrConfig {
                p: 1e-9,
                ..Default::default()
            },
        );
        assert_eq!(res.winner, RandArrBranch::StackAndT);
        assert!(res.matching.weight() >= 19 * 1000);
    }

    #[test]
    fn four_cycle_with_random_arrivals() {
        // the (3,4,3,4) cycle: optimum 8; any single matching edge is 4;
        // check validity and the 1/2 bound
        let (g, _) = generators::four_cycle_3434();
        let avg = avg_ratio(
            &g,
            &RandArrConfig {
                p: 0.25,
                ..Default::default()
            },
            0..16,
        );
        assert!(avg >= 0.5, "got {avg}");
    }

    #[test]
    fn memory_is_subquadratic_on_random_order() {
        // dense graph, random arrivals: stack and T stay near-linear
        // (Lemmas 3.3/3.15); adversarial order can blow T up
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::complete(60, WeightModel::Polynomial { exponent: 2 }, &mut rng);
        let m_edges = g.edge_count(); // 1770
        let mut s = VecStream::random_order(g.edges().to_vec(), 3).with_vertex_count(60);
        let res = rand_arr_matching(&mut s, &RandArrConfig::default());
        assert!(
            res.stack_size + res.t_size < m_edges / 2,
            "stored {} + {} of {m_edges} edges",
            res.stack_size,
            res.t_size
        );
    }

    #[test]
    fn whole_stream_in_phase_one_degrades_to_local_ratio() {
        // p = 1: the algorithm is exactly local-ratio, which solves the
        // barrier instance in natural order (see local_ratio tests)
        let g = generators::weighted_barrier_paths(5, 10);
        let mut s = VecStream::adversarial(g.edges().to_vec()).with_vertex_count(20);
        let res = rand_arr_matching(
            &mut s,
            &RandArrConfig {
                p: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(res.matching.weight(), 5 * 20);
        assert_eq!(res.t_size, 0);
    }

    #[test]
    fn empty_stream() {
        let mut s = VecStream::adversarial(vec![]);
        let res = rand_arr_matching(&mut s, &RandArrConfig::default());
        assert!(res.matching.is_empty());
    }

    #[test]
    fn greedy_fallback_on_huge_t() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::gnp(30, 0.3, WeightModel::Uniform { lo: 1, hi: 50 }, &mut rng);
        let mut s = VecStream::random_order(g.edges().to_vec(), 9).with_vertex_count(30);
        let cfg = RandArrConfig {
            exact_t_threshold: 0,
            ..Default::default()
        };
        let res = rand_arr_matching(&mut s, &cfg);
        res.matching.validate(None).unwrap();
        assert!(res.matching.weight() > 0);
    }
}
