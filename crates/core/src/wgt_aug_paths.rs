//! `Wgt-Aug-Paths` (Algorithm 1) — finding weighted augmentations of an
//! initial matching `M₀` via unweighted 3-augmenting paths.
//!
//! The structure mirrors the paper's pseudocode:
//!
//! * **Initialize** — mark each `M₀` edge independently with probability ½
//!   (the guessed *middle* edges of weighted 3-augmentations), group the
//!   marked edges into geometric weight classes `W_i = [2^{i−1}, 2^i)`, and
//!   create one `Unw-3-Aug-Paths` instance per class.
//! * **Feed-Edge** — an edge with positive *excess*
//!   `w'(e) = w(e) − w(M₀(u)) − w(M₀(v))` feeds `Approx-Wgt-Matching`
//!   (a truncated local-ratio instance on the excess weights, a
//!   ¼-approximation); an edge with small excess
//!   (`w(e) ≤ (1+α)(w(M₀(u))+w(M₀(v)))`) incident to exactly one marked
//!   edge is forwarded to that marked edge's class instance when it clears
//!   the filtering threshold `w(e) > (1+2α)(½·w(M₀(marked side)) +
//!   w(M₀(other side)))` — the τ-threshold trick of Section 1.1.1.
//! * **Finalize** — `M₁` = `M₀` patched with the excess-weight matching;
//!   `M₂` = `M₀` improved by the recovered 3-augmentations, applied
//!   greedily from the heaviest weight class down; return the heavier.
//!
//! Note on classes: the paper's pseudocode (line 12) indexes instances by
//! the weight class of the *forwarded* edge, while its analysis
//! (Lemma 3.9) classifies by the *marked middle* edge and initializes
//! `A_i` with `Marked ∩ W_i`. We follow the analysis (see DESIGN.md §3,
//! substitution 5).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use wmatch_graph::{Augmentation, Edge, Matching};

use crate::local_ratio::LocalRatio;
use crate::unw3aug::Unw3AugPaths;

/// Weight class index of a weight: `i` such that `w ∈ [2^{i−1}, 2^i)`
/// (class 0 holds weight 0).
pub fn weight_class(w: u64) -> u32 {
    if w == 0 {
        0
    } else {
        64 - w.leading_zeros()
    }
}

/// Configuration for [`WgtAugPaths`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WapConfig {
    /// The excess-weight slack α (paper: 0.02).
    pub alpha: f64,
    /// Marking probability for middle-edge guessing (paper: ½).
    pub mark_prob: f64,
    /// Support cap λ for the per-class `Unw-3-Aug-Paths` instances.
    pub lambda: u32,
    /// Truncation ε for `Approx-Wgt-Matching` (any value ≤ ¼ keeps it a
    /// ¼-approximation; paper cites \[PS17\]).
    pub lr_truncation: f64,
    /// RNG seed for the marking.
    pub seed: u64,
}

impl Default for WapConfig {
    fn default() -> Self {
        WapConfig {
            alpha: crate::PaperConstants::ALPHA,
            mark_prob: 0.5,
            lambda: 16,
            lr_truncation: 0.25,
            seed: 0,
        }
    }
}

/// Streaming state of Algorithm 1.
///
/// # Example
///
/// ```
/// use wmatch_core::wgt_aug_paths::{WapConfig, WgtAugPaths};
/// use wmatch_graph::{Edge, Matching};
///
/// let m0 = Matching::from_edges(4, [Edge::new(1, 2, 10)]).unwrap();
/// let mut wap = WgtAugPaths::new(m0, &WapConfig::default());
/// wap.feed(Edge::new(0, 1, 30)); // excess 20: goes to Approx-Wgt-Matching
/// let out = wap.finalize();
/// assert!(out.matching.weight() >= 30);
/// ```
#[derive(Debug, Clone)]
pub struct WgtAugPaths {
    m0: Matching,
    /// per vertex: is its matched edge marked?
    marked: Vec<bool>,
    cfg: WapConfig,
    /// per-class instances on the geometric grid, sorted by class index
    /// ascending (binary-searched on the `feed` hot path).
    classes: Vec<(u32, Unw3AugPaths)>,
    excess_lr: LocalRatio,
}

/// Output and diagnostics of [`WgtAugPaths::finalize`].
#[derive(Debug, Clone)]
pub struct WapOutput {
    /// The better of `M₁` and `M₂`.
    pub matching: Matching,
    /// `M₁`: excess-weight patching.
    pub m1: Matching,
    /// `M₂`: 3-augmentation improvement.
    pub m2: Matching,
    /// Total support edges stored across class instances.
    pub support_size: usize,
    /// Stack size of the excess-weight local-ratio instance.
    pub excess_stack: usize,
}

impl WgtAugPaths {
    /// Initializes Algorithm 1 with the phase-one matching `M₀`.
    pub fn new(m0: Matching, cfg: &WapConfig) -> Self {
        let n = m0.vertex_count();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut marked = vec![false; n];
        let mut marked_edges: Vec<(u32, Edge)> = Vec::new();
        for e in m0.iter() {
            if rng.gen_bool(cfg.mark_prob.clamp(0.0, 1.0)) {
                marked[e.u as usize] = true;
                marked[e.v as usize] = true;
                marked_edges.push((weight_class(e.weight), e));
            }
        }
        marked_edges.sort_by_key(|(cls, _)| *cls);
        let mut classes: Vec<(u32, Unw3AugPaths)> = Vec::new();
        for chunk in marked_edges.chunk_by(|(a, _), (b, _)| a == b) {
            let cls = chunk[0].0;
            let m = Matching::from_edges(n, chunk.iter().map(|(_, e)| *e)).expect("subset of M0");
            classes.push((cls, Unw3AugPaths::new(m, cfg.lambda)));
        }
        WgtAugPaths {
            m0,
            marked,
            cfg: *cfg,
            classes,
            excess_lr: LocalRatio::new(n).with_truncation(cfg.lr_truncation),
        }
    }

    /// The initial matching `M₀`.
    pub fn initial_matching(&self) -> &Matching {
        &self.m0
    }

    /// Whether the matched edge at `v` was marked as a middle-edge guess.
    pub fn is_marked(&self, v: wmatch_graph::Vertex) -> bool {
        self.marked[v as usize]
    }

    /// The per-class instance for a weight class, if any middle edge of
    /// that class was marked.
    fn class_mut(&mut self, cls: u32) -> Option<&mut Unw3AugPaths> {
        self.classes
            .binary_search_by_key(&cls, |(c, _)| *c)
            .ok()
            .map(|i| &mut self.classes[i].1)
    }

    /// Processes one stream edge (Algorithm 1, `Feed-Edge`).
    pub fn feed(&mut self, e: Edge) {
        let wu = self.m0.incident_weight(e.u);
        let wv = self.m0.incident_weight(e.v);
        let excess = e.weight as i128 - wu as i128 - wv as i128;
        if excess > 0 {
            // line 8: feed to Approx-Wgt-Matching with the excess weight
            self.excess_lr.on_edge(Edge::new(e.u, e.v, excess as u64));
        }
        // line 9: small-excess edges are 3-augmentation candidates
        if (e.weight as f64) <= (1.0 + self.cfg.alpha) * (wu + wv) as f64 {
            let (mu, mv) = (self.marked[e.u as usize], self.marked[e.v as usize]);
            if mu && !mv {
                // line 11: marked side's weight counts half
                if (e.weight as f64) > (1.0 + 2.0 * self.cfg.alpha) * (0.5 * wu as f64 + wv as f64)
                {
                    if let Some(inst) = self.class_mut(weight_class(wu)) {
                        inst.feed(e);
                    }
                }
            } else if mv && !mu {
                // line 14: symmetric case
                if (e.weight as f64) > (1.0 + 2.0 * self.cfg.alpha) * (wu as f64 + 0.5 * wv as f64)
                {
                    if let Some(inst) = self.class_mut(weight_class(wv)) {
                        inst.feed(e);
                    }
                }
            }
        }
    }

    /// Produces the final matching (Algorithm 1, `Finalize`).
    pub fn finalize(&self) -> WapOutput {
        // M1: excess-weight matching M' patched into M0.
        let residual_matching = self.excess_lr.unwind();
        let mut m1 = self.m0.clone();
        for re in residual_matching.iter() {
            // reconstruct the original weight: w = w' + w(M0(u)) + w(M0(v))
            let orig = re.weight + self.m0.incident_weight(re.u) + self.m0.incident_weight(re.v);
            let add = Edge::new(re.u, re.v, orig);
            // collect each blocking M0 edge once: when u and v are mates
            // (e.g. the lighter twin of a parallel edge pair is in M0),
            // both endpoints report the same matched edge
            let mut removed: Vec<Edge> = Vec::new();
            if let Some(eu) = m1.matched_edge(re.u) {
                removed.push(eu);
            }
            if m1.mate(re.u) != Some(re.v) {
                if let Some(ev) = m1.matched_edge(re.v) {
                    removed.push(ev);
                }
            }
            let aug = Augmentation::from_parts(vec![add], removed).expect("single edge");
            aug.apply(&mut m1)
                .expect("conflicting M0 edges are scheduled for removal");
        }

        // M2: apply the recovered 3-augmentations, heaviest class first
        // (line 19's greedy non-conflicting order).
        let mut m2 = self.m0.clone();
        let mut used = vec![false; self.m0.vertex_count()];
        let mut support_size = 0;
        for (_cls, inst) in self.classes.iter().rev() {
            // sorted ascending, so .rev() walks the heaviest class first
            support_size += inst.support_size();
            for path in inst.finalize() {
                let vs: Vec<u32> = path.edges().iter().flat_map(|e| [e.u, e.v]).collect();
                if vs.iter().any(|&v| used[v as usize]) {
                    continue;
                }
                let Ok(aug) = Augmentation::from_component(&m2, &path.edges()) else {
                    continue;
                };
                if aug.gain() <= 0 {
                    // the τ-thresholds should guarantee positive gain; skip
                    // defensively rather than lose weight
                    continue;
                }
                let touched = aug.touched_vertices();
                if aug.apply(&mut m2).is_ok() {
                    for v in touched {
                        used[v as usize] = true;
                    }
                }
            }
        }

        let matching = if m1.weight() >= m2.weight() {
            m1.clone()
        } else {
            m2.clone()
        };
        WapOutput {
            matching,
            m1,
            m2,
            support_size,
            excess_stack: self.excess_lr.stack_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wmatch_graph::exact::max_weight_matching;
    use wmatch_graph::generators::{self, WeightModel};

    #[test]
    fn weight_class_boundaries() {
        assert_eq!(weight_class(0), 0);
        assert_eq!(weight_class(1), 1);
        assert_eq!(weight_class(2), 2);
        assert_eq!(weight_class(3), 2);
        assert_eq!(weight_class(4), 3);
        assert_eq!(weight_class((1 << 40) - 1), 40);
        assert_eq!(weight_class(1 << 40), 41);
    }

    #[test]
    fn excess_branch_handles_parallel_twin_of_matched_edge() {
        // M0 holds the light copy of a parallel edge pair; the heavy copy
        // has positive excess over both (identical) incident M0 edges.
        // Regression: the blocking edge used to be scheduled for removal
        // twice, panicking in finalize.
        let m0 = Matching::from_edges(2, [Edge::new(0, 1, 1)]).unwrap();
        let mut wap = WgtAugPaths::new(m0, &WapConfig::default());
        wap.feed(Edge::new(0, 1, 4));
        let out = wap.finalize();
        assert_eq!(
            out.m1.weight(),
            4,
            "the heavy twin must displace the light one"
        );
        out.matching.validate(None).unwrap();
    }

    #[test]
    fn excess_branch_replaces_weak_pairs() {
        // M0 = {1-2}@10; edge (0,1)@30 has excess 20 and must displace it
        let m0 = Matching::from_edges(4, [Edge::new(1, 2, 10)]).unwrap();
        let mut wap = WgtAugPaths::new(m0, &WapConfig::default());
        wap.feed(Edge::new(0, 1, 30));
        let out = wap.finalize();
        assert_eq!(out.m1.weight(), 30);
        assert!(out.matching.weight() >= 30);
    }

    #[test]
    fn three_aug_branch_fires_when_middle_marked() {
        // path a-u-v-b with (u,v)@10 in M0 and wings @9: classic weighted
        // 3-augmentation of gain 8. Find a seed marking (u,v).
        for seed in 0..20 {
            let m0 = Matching::from_edges(4, [Edge::new(1, 2, 10)]).unwrap();
            let cfg = WapConfig {
                seed,
                ..WapConfig::default()
            };
            let mut wap = WgtAugPaths::new(m0, &cfg);
            if !wap.is_marked(1) {
                continue;
            }
            wap.feed(Edge::new(0, 1, 9));
            wap.feed(Edge::new(2, 3, 9));
            let out = wap.finalize();
            assert_eq!(out.m2.weight(), 18, "seed {seed}");
            assert_eq!(out.matching.weight(), 18);
            return;
        }
        panic!("no seed marked the middle edge in 20 tries");
    }

    #[test]
    fn wings_below_threshold_are_filtered() {
        // wings too light relative to the half-weighted middle: must NOT
        // be forwarded (they would not be weight-positive augmentations)
        for seed in 0..20 {
            let m0 = Matching::from_edges(4, [Edge::new(1, 2, 10)]).unwrap();
            let cfg = WapConfig {
                seed,
                ..WapConfig::default()
            };
            let mut wap = WgtAugPaths::new(m0, &cfg);
            if !wap.is_marked(1) {
                continue;
            }
            // threshold is (1+2α)(5 + 0) = 5.2: a weight-5 wing fails it
            wap.feed(Edge::new(0, 1, 5));
            wap.feed(Edge::new(2, 3, 5));
            let out = wap.finalize();
            assert_eq!(out.m2.weight(), 10, "no augmentation should fire");
            return;
        }
        panic!("no seed marked the middle edge");
    }

    #[test]
    fn marked_both_sides_excluded() {
        // both endpoints' matched edges marked: lines 10/13 require exactly
        // one marked side, so nothing is forwarded
        let m0 = Matching::from_edges(4, [Edge::new(0, 1, 10), Edge::new(2, 3, 10)]).unwrap();
        let cfg = WapConfig {
            mark_prob: 1.0,
            ..WapConfig::default()
        };
        let mut wap = WgtAugPaths::new(m0, &cfg);
        wap.feed(Edge::new(1, 2, 21));
        let out = wap.finalize();
        assert_eq!(out.support_size, 0);
    }

    #[test]
    fn fig2_first_type_augmentation() {
        // the paper's Figure 2: {e,h}@2 has excess 2-1-0 = 1 > 0 and goes
        // to the excess branch
        let (_, m0, dashed) = generators::fig2_graph();
        let mut wap = WgtAugPaths::new(m0.clone(), &WapConfig::default());
        for e in dashed {
            wap.feed(e);
        }
        let out = wap.finalize();
        assert!(
            out.matching.weight() > m0.weight(),
            "figure 2 admits improving augmentations: {} vs {}",
            out.matching.weight(),
            m0.weight()
        );
    }

    #[test]
    fn never_worse_than_m0() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..20 {
            let g = generators::gnp(20, 0.3, WeightModel::Uniform { lo: 1, hi: 60 }, &mut rng);
            // arbitrary M0: greedy by arrival
            let mut m0 = Matching::new(20);
            for e in g.edges() {
                let _ = m0.insert(*e);
            }
            let mut wap = WgtAugPaths::new(
                m0.clone(),
                &WapConfig {
                    seed: trial,
                    ..WapConfig::default()
                },
            );
            for e in g.edges() {
                wap.feed(*e);
            }
            let out = wap.finalize();
            assert!(out.matching.weight() >= m0.weight(), "trial {trial}");
            out.matching.validate(None).unwrap();
            let opt = max_weight_matching(&g);
            assert!(out.matching.weight() <= opt.weight());
        }
    }

    #[test]
    fn class_instances_grouped_by_middle_weight() {
        // middles of weight 3 (class 2) and 40 (class 6); heavy wings near
        // the light middle must not leak into the heavy class
        let m0 = Matching::from_edges(8, [Edge::new(1, 2, 3), Edge::new(5, 6, 40)]).unwrap();
        let cfg = WapConfig {
            mark_prob: 1.0,
            ..WapConfig::default()
        };
        // mark_prob 1 marks both: no wing passes the one-marked filter;
        // instead verify instance existence by class
        let wap = WgtAugPaths::new(m0, &cfg);
        let classes: Vec<u32> = wap.classes.iter().map(|(c, _)| *c).collect();
        assert_eq!(classes, vec![weight_class(3), weight_class(40)]);
    }
}
