//! Augmentation classes (Definition 4.6) and the geometric weight grid of
//! Algorithm 3.

use wmatch_graph::Augmentation;

/// The geometric grid of augmentation-class weights `W` considered by
//  Algorithm 3: values `ratio^i` (deduplicated after integer rounding)
/// covering `[1, max_w]`.
///
/// The paper uses `ratio = 1 + ε⁴` (see
/// [`crate::PaperConstants::grid_ratio`]); experiments default to coarser
/// grids (DESIGN.md §3, substitution 1).
///
/// # Example
///
/// ```
/// use wmatch_core::weight_classes::weight_grid;
/// assert_eq!(weight_grid(10, 2.0), vec![1, 2, 4, 8, 16]);
/// ```
pub fn weight_grid(max_w: u64, ratio: f64) -> Vec<u64> {
    assert!(ratio > 1.0, "grid ratio must exceed 1");
    let mut out = Vec::new();
    let mut w = 1f64;
    let bound = max_w.max(1) as f64 * ratio; // one step past max_w
    while w <= bound {
        let iw = w.round() as u64;
        if out.last() != Some(&iw) {
            out.push(iw);
        }
        w *= ratio;
        if out.len() > 10_000 {
            break; // guard against pathological ratios
        }
    }
    out
}

/// Checks membership of an augmentation in the augmentation class of `W`
/// (Definition 4.6) with granularity `g = 1/q` standing in for the paper's
/// ε¹² (and `max_vertices` for 64/ε²+1):
///
/// 1. every edge weight lies in `[W/q, 2W]`,
/// 2. the gain is at most `2W`,
/// 3. the gain survives rounding matched weights **up** and unmatched
///    weights **down** to multiples of `W/q` by at least `W/q`,
/// 4. the augmentation has at most `max_vertices` vertices.
pub fn in_augmentation_class(
    aug: &Augmentation,
    w_class: u64,
    q: u32,
    max_vertices: usize,
) -> bool {
    let wq = w_class as u128;
    let q = q as u128;
    // property 1: edge weights within [W/q, 2W]
    for e in aug.added().iter().chain(aug.removed().iter()) {
        let w = e.weight as u128;
        if w * q < wq || w > 2 * wq {
            return false;
        }
    }
    // property 2: gain at most 2W
    if aug.gain() > 2 * w_class as i128 {
        return false;
    }
    // property 3: rounded gain at least W/q, measured in W/q units:
    // sum over added of floor(w·q/W) minus sum over removed of
    // ceil(w·q/W) must be at least 1
    let down: i128 = aug
        .added()
        .iter()
        .map(|e| ((e.weight as u128 * q) / wq) as i128)
        .sum();
    let up: i128 = aug
        .removed()
        .iter()
        .map(|e| ((e.weight as u128 * q).div_ceil(wq)) as i128)
        .sum();
    if down - up < 1 {
        return false;
    }
    // property 4
    aug.touched_vertices().len() <= max_vertices
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmatch_graph::{Edge, Matching};

    #[test]
    fn grid_covers_and_dedups() {
        let g = weight_grid(100, 2.0);
        assert_eq!(g, vec![1, 2, 4, 8, 16, 32, 64, 128]);
        // fine ratios near 1 dedup the low end
        let g = weight_grid(4, 1.3);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!(*g.last().unwrap() >= 4);
    }

    #[test]
    #[should_panic(expected = "ratio must exceed")]
    fn grid_rejects_unit_ratio() {
        weight_grid(10, 1.0);
    }

    #[test]
    fn class_membership_positive_case() {
        // path augmentation: add 6+6, remove 5+4: gain 3, W = 8, q = 4
        // (granularity W/q = 2)
        let m = Matching::from_edges(6, [Edge::new(1, 2, 5), Edge::new(3, 4, 4)]).unwrap();
        let comp = [
            Edge::new(0, 1, 6),
            Edge::new(1, 2, 5),
            Edge::new(2, 3, 6),
            Edge::new(3, 4, 4),
        ];
        // not a valid component (2-3 shares endpoint with 3-4?) build via parts
        let _ = comp;
        let aug = Augmentation::from_parts(
            vec![Edge::new(0, 1, 6), Edge::new(2, 3, 6)],
            vec![Edge::new(1, 2, 5), Edge::new(3, 4, 4)],
        )
        .unwrap();
        let _ = &m;
        // rounded: down(6)=3 units each, up(5)=3, up(4)=2: 6-5 = 1 ✓
        assert!(in_augmentation_class(&aug, 8, 4, 10));
    }

    #[test]
    fn class_membership_rejects_small_edges() {
        // a weight-1 edge is below W/q = 2
        let aug = Augmentation::from_parts(vec![Edge::new(0, 1, 1)], vec![]).unwrap();
        assert!(!in_augmentation_class(&aug, 8, 4, 10));
    }

    #[test]
    fn class_membership_rejects_rounding_losses() {
        // gain 1 with W/q = 2: rounding wipes it out
        let aug =
            Augmentation::from_parts(vec![Edge::new(0, 1, 5)], vec![Edge::new(1, 2, 4)]).unwrap();
        // down(5·4/8)=2, up(4·4/8)=2 -> 0 < 1
        assert!(!in_augmentation_class(&aug, 8, 4, 10));
    }

    #[test]
    fn class_membership_rejects_oversized_gain() {
        let aug = Augmentation::from_parts(vec![Edge::new(0, 1, 16)], vec![]).unwrap();
        // gain 16 > 2W for W = 7... but property 1 also fails (16 > 14);
        // use W=8: gain 16 = 2W passes, W=7 fails
        assert!(in_augmentation_class(&aug, 8, 8, 10));
        assert!(!in_augmentation_class(&aug, 7, 8, 10));
    }

    #[test]
    fn class_membership_rejects_too_many_vertices() {
        let aug =
            Augmentation::from_parts(vec![Edge::new(0, 1, 6), Edge::new(2, 3, 6)], vec![]).unwrap();
        assert!(!in_augmentation_class(&aug, 8, 4, 3));
        assert!(in_augmentation_class(&aug, 8, 4, 4));
    }
}
