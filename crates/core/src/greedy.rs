//! Greedy matching baselines.
//!
//! * [`greedy_insertion`] — the classic streaming greedy: insert every edge
//!   whose endpoints are free. For unweighted graphs this is the maximal
//!   matching ½-approximation that Section 3.1 improves on.
//! * [`greedy_by_weight`] — the offline weighted greedy (heaviest edge
//!   first), a ½-approximation baseline for the weighted experiments.

use wmatch_graph::{Edge, Graph, Matching};
use wmatch_stream::EdgeStream;

/// Builds a maximal matching by inserting each arriving edge whose
/// endpoints are both free (one streaming pass).
///
/// # Example
///
/// ```
/// use wmatch_core::greedy::greedy_insertion;
/// use wmatch_graph::Edge;
/// use wmatch_stream::VecStream;
///
/// let mut s = VecStream::adversarial(vec![
///     Edge::new(1, 2, 1), // arrives first, blocks both optimal edges
///     Edge::new(0, 1, 1),
///     Edge::new(2, 3, 1),
/// ]);
/// let m = greedy_insertion(&mut s);
/// assert_eq!(m.len(), 1);
/// ```
pub fn greedy_insertion(stream: &mut dyn EdgeStream) -> Matching {
    let mut m = Matching::new(stream.vertex_count());
    stream.stream_pass(&mut |e| {
        let _ = m.insert(e);
    });
    m
}

/// Continues growing an existing matching greedily over a slice of edges.
pub fn greedy_extend(m: &mut Matching, edges: impl IntoIterator<Item = Edge>) {
    for e in edges {
        let _ = m.insert(e);
    }
}

/// Offline greedy by decreasing weight: the classic ½-approximation for
/// maximum weight matching.
///
/// # Example
///
/// ```
/// use wmatch_core::greedy::greedy_by_weight;
/// use wmatch_graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 5);
/// g.add_edge(1, 2, 7); // taken first, blocks both weight-5 edges
/// g.add_edge(2, 3, 5);
/// assert_eq!(greedy_by_weight(&g).weight(), 7);
/// ```
pub fn greedy_by_weight(g: &Graph) -> Matching {
    let mut edges = g.edges().to_vec();
    edges.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.key().cmp(&b.key())));
    let mut m = Matching::new(g.vertex_count());
    greedy_extend(&mut m, edges);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wmatch_graph::exact::{max_cardinality_matching, max_weight_matching};
    use wmatch_graph::generators::{self, WeightModel};
    use wmatch_stream::VecStream;

    #[test]
    fn greedy_is_maximal() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnp(30, 0.2, WeightModel::Unit, &mut rng);
        let mut s = VecStream::random_order(g.edges().to_vec(), 2).with_vertex_count(30);
        let m = greedy_insertion(&mut s);
        for e in g.edges() {
            assert!(m.is_matched(e.u) || m.is_matched(e.v), "not maximal at {e}");
        }
    }

    #[test]
    fn greedy_half_approx_cardinality() {
        let mut rng = StdRng::seed_from_u64(2);
        for seed in 0..20 {
            let g = generators::gnp(20, 0.25, WeightModel::Unit, &mut rng);
            let mut s = VecStream::random_order(g.edges().to_vec(), seed).with_vertex_count(20);
            let m = greedy_insertion(&mut s);
            let opt = max_cardinality_matching(&g);
            assert!(2 * m.len() >= opt.len());
        }
    }

    #[test]
    fn weighted_greedy_half_approx() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let g = generators::gnp(16, 0.3, WeightModel::Uniform { lo: 1, hi: 50 }, &mut rng);
            let m = greedy_by_weight(&g);
            let opt = max_weight_matching(&g);
            assert!(2 * m.weight() >= opt.weight());
            m.validate(Some(&g)).unwrap();
        }
    }

    #[test]
    fn weighted_greedy_hits_the_barrier() {
        // (w, w+1, w) paths: greedy takes the middle, ratio -> 1/2
        let g = generators::weighted_barrier_paths(10, 100);
        let m = greedy_by_weight(&g);
        assert_eq!(m.weight(), 10 * 101);
        let opt = max_weight_matching(&g);
        assert_eq!(opt.weight(), 10 * 200);
    }

    #[test]
    fn greedy_extend_respects_existing() {
        let mut m = Matching::from_edges(4, [Edge::new(0, 1, 1)]).unwrap();
        greedy_extend(&mut m, [Edge::new(1, 2, 1), Edge::new(2, 3, 1)]);
        assert_eq!(m.len(), 2);
        assert!(m.contains_pair(2, 3));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut g = Graph::new(4);
        g.add_edge(2, 3, 5);
        g.add_edge(0, 1, 5);
        let m1 = greedy_by_weight(&g);
        let m2 = greedy_by_weight(&g);
        assert_eq!(m1, m2);
        assert_eq!(m1.len(), 2);
    }
}
