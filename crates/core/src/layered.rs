//! Weighted layered graphs (Definition 4.10) and their translation back to
//! the original graph.
//!
//! Given a parametrized graph `G_P = (L, R, A, B)` (a random bipartition of
//! `V` with `A` = matched crossing edges, `B` = unmatched crossing edges),
//! a good pair `(τᴬ, τᴮ)`, a class weight `W` and granularity `g = 1/q`,
//! the layered graph `L(τᴬ, τᴮ, W, G_P)` has `k+1` copies of `V` (layers):
//!
//! * **X edges**: a matched edge `e ∈ A` is copied into layer `t` iff its
//!   weight rounds **up** to `τᴬ_t·W` (up-bucket = τᴬ_t),
//! * **Y edges**: an unmatched edge `e ∈ B` is copied between layers
//!   `t, t+1` — oriented from its `R` endpoint in layer `t` to its `L`
//!   endpoint in layer `t+1` — iff its weight rounds **down** to `τᴮ_t·W`,
//! * **vertex filtering**: interior-layer vertices without an X copy are
//!   removed; first-layer `R` vertices (resp. last-layer `L` vertices)
//!   without an X copy survive only if they are `M`-free and `τᴬ` is 0
//!   there.
//!
//! `L′` (the graph actually handed to `Unw-Bip-Matching`) drops the X
//! edges of the first and last layer, making their endpoints free: every
//! augmenting path of `L′` with respect to `M` restricted to `L′` then
//! runs monotonically from layer 1 to layer k+1 (the bipartition orients
//! all Y edges forward), and translating it back — re-attaching the
//! dropped first/last X edges — yields a weight-positive augmenting walk
//! in `G` by the goodness conditions of Table 1.

use std::collections::HashMap;

use rand::Rng;

use wmatch_graph::alternating::symmetric_difference_components;
use wmatch_graph::{Edge, Graph, Matching, Vertex};
use wmatch_stream::EdgeStream;

use crate::tau::{bucket_down, bucket_up, TauPair};

/// A random bipartition (L, R) of the vertex set (Section 4.3.1).
///
/// # Example
///
/// ```
/// use wmatch_core::layered::Parametrization;
/// use wmatch_graph::Edge;
///
/// let param = Parametrization::from_sides(vec![false, true, false]);
/// assert!(param.is_left(1) && !param.is_left(0));
/// assert!(param.crosses(&Edge::new(0, 1, 5)));
/// assert!(!param.crosses(&Edge::new(0, 2, 5)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parametrization {
    in_l: Vec<bool>,
}

impl Parametrization {
    /// Assigns each vertex to L or R uniformly at random.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        Parametrization {
            in_l: (0..n).map(|_| rng.gen_bool(0.5)).collect(),
        }
    }

    /// Uses the given side assignment (`true` = L).
    pub fn from_sides(in_l: Vec<bool>) -> Self {
        Parametrization { in_l }
    }

    /// Whether `v ∈ L`.
    pub fn is_left(&self, v: Vertex) -> bool {
        self.in_l[v as usize]
    }

    /// Whether the edge crosses the bipartition (is in `A ∪ B`).
    pub fn crosses(&self, e: &Edge) -> bool {
        self.in_l[e.u as usize] != self.in_l[e.v as usize]
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.in_l.len()
    }

    /// Whether the parametrization is empty.
    pub fn is_empty(&self) -> bool {
        self.in_l.is_empty()
    }
}

/// The defining parameters of one layered graph, with the pure filter
/// predicates shared by the offline builder and the streaming adapter.
///
/// # Example
///
/// The classic 3-augmentation: a path 0–1–2–3 with weights (9, 10, 9)
/// and the middle edge matched. At `W = 16, q = 8` the pair
/// `τᴬ = [0, 5, 0], τᴮ = [4, 4]` places the matched edge in the middle
/// layer and both wings across the gaps — and the built graph's
/// maximum matching translates back to the augmenting walk.
///
/// ```
/// use wmatch_core::layered::{LayeredSpec, Parametrization};
/// use wmatch_core::tau::TauPair;
/// use wmatch_graph::generators::path_graph;
/// use wmatch_graph::Matching;
///
/// let g = path_graph(&[9, 10, 9]);
/// let m = Matching::from_edges(4, [g.edge(1)]).unwrap();
/// let param = Parametrization::from_sides(vec![false, true, false, true]);
/// let tau = TauPair { a: vec![0, 5, 0], b: vec![4, 4] };
/// let spec = LayeredSpec::new(&tau, 16, 8, &param, &m);
/// assert_eq!(spec.layers(), 3);
/// assert_eq!(spec.x_layers(&g.edge(1)), vec![1]); // matched copy, middle layer
/// assert_eq!(spec.y_gaps(&g.edge(0)), vec![0, 1]); // wing crosses both gaps
///
/// let lg = spec.build(g.edges().iter().copied().filter(|e| !m.contains(e)));
/// assert!(lg.graph.edge_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct LayeredSpec<'a> {
    n: usize,
    tau: &'a TauPair,
    w_class: u64,
    q: u32,
    param: &'a Parametrization,
    m: &'a Matching,
}

impl<'a> LayeredSpec<'a> {
    /// Creates a spec for `L(τᴬ, τᴮ, W, G_P)` over the current matching.
    ///
    /// # Panics
    ///
    /// Panics if the matching and parametrization disagree on `n`.
    pub fn new(
        tau: &'a TauPair,
        w_class: u64,
        q: u32,
        param: &'a Parametrization,
        m: &'a Matching,
    ) -> Self {
        assert_eq!(param.len(), m.vertex_count(), "inconsistent vertex counts");
        LayeredSpec {
            n: param.len(),
            tau,
            w_class,
            q,
            param,
            m,
        }
    }

    /// Gaps between layers (`k`).
    pub fn k(&self) -> usize {
        self.tau.k()
    }

    /// Number of layers (`k + 1`).
    pub fn layers(&self) -> usize {
        self.tau.layers()
    }

    /// Vertices in the layered graph: `(k+1)·n`.
    pub fn layered_vertex_count(&self) -> usize {
        self.layers() * self.n
    }

    /// The layered id of vertex `v`'s copy in `layer`.
    pub fn lv(&self, layer: usize, v: Vertex) -> Vertex {
        (layer * self.n) as Vertex + v
    }

    /// Inverse of [`LayeredSpec::lv`]: `(layer, original vertex)`.
    pub fn base(&self, lv: Vertex) -> (usize, Vertex) {
        ((lv as usize) / self.n, lv % self.n as Vertex)
    }

    /// Layers into which a matched crossing edge is copied.
    pub fn x_layers(&self, e: &Edge) -> Vec<usize> {
        let b = bucket_up(e.weight, self.w_class, self.q);
        (0..self.layers()).filter(|&t| self.tau.a[t] == b).collect()
    }

    /// Layer gaps into which an unmatched crossing edge is copied.
    pub fn y_gaps(&self, e: &Edge) -> Vec<usize> {
        let b = bucket_down(e.weight, self.w_class, self.q);
        (0..self.k()).filter(|&t| self.tau.b[t] == b).collect()
    }

    /// Whether `v` carries an X copy in `layer`.
    pub fn x_present(&self, layer: usize, v: Vertex) -> bool {
        match self.m.matched_edge(v) {
            Some(me) if self.param.crosses(&me) => {
                bucket_up(me.weight, self.w_class, self.q) == self.tau.a[layer]
            }
            _ => false,
        }
    }

    /// The vertex filtering rule of Definition 4.10.
    pub fn vertex_kept(&self, layer: usize, v: Vertex) -> bool {
        if self.x_present(layer, v) {
            return true;
        }
        let free = !self.m.is_matched(v);
        if layer == 0 {
            // first layer: only M-free R vertices with τᴬ₁ = 0 survive
            !self.param.is_left(v) && free && self.tau.a[0] == 0
        } else if layer == self.k() {
            // last layer: only M-free L vertices with τᴬ_{k+1} = 0 survive
            self.param.is_left(v) && free && *self.tau.a.last().unwrap() == 0
        } else {
            false
        }
    }

    /// Bipartition side of a layered vertex (copies inherit their base
    /// vertex's side, which 2-colours both X and Y edges).
    pub fn layered_side(&self, lv: Vertex) -> bool {
        let (_, v) = self.base(lv);
        self.param.is_left(v)
    }

    /// Materializes the layered graph from an iterator over the unmatched
    /// edges of `G` (matched edges are taken from the matching itself).
    pub fn build(&self, unmatched_edges: impl IntoIterator<Item = Edge>) -> LayeredGraph {
        let ln = self.layered_vertex_count();
        let mut graph = Graph::new(ln);
        let mut ml_prime = Matching::new(ln);
        let mut first_x = HashMap::new();
        let mut last_x = HashMap::new();
        let k = self.k();

        for e in self.m.iter() {
            if !self.param.crosses(&e) {
                continue;
            }
            for t in self.x_layers(&e) {
                if t == 0 {
                    // the path-start candidate is the R-side endpoint
                    let r = if self.param.is_left(e.u) { e.v } else { e.u };
                    first_x.insert(self.lv(0, r), e);
                } else if t == k {
                    let l = if self.param.is_left(e.u) { e.u } else { e.v };
                    last_x.insert(self.lv(k, l), e);
                } else {
                    let le = Edge::new(self.lv(t, e.u), self.lv(t, e.v), e.weight);
                    graph.add_edge(le.u, le.v, le.weight);
                    ml_prime.insert(le).expect("layer copies are disjoint");
                }
            }
        }
        for e in unmatched_edges {
            if self.m.contains(&e) || !self.param.crosses(&e) {
                continue;
            }
            let (r, l) = if self.param.is_left(e.u) {
                (e.v, e.u)
            } else {
                (e.u, e.v)
            };
            for t in self.y_gaps(&e) {
                if self.vertex_kept(t, r) && self.vertex_kept(t + 1, l) {
                    graph.add_edge(self.lv(t, r), self.lv(t + 1, l), e.weight);
                }
            }
        }
        let side = (0..ln as Vertex).map(|lv| self.layered_side(lv)).collect();
        LayeredGraph {
            graph,
            side,
            ml_prime,
            first_x,
            last_x,
            n: self.n,
            k,
        }
    }
}

/// A materialized layered graph `L′` plus the bookkeeping needed to
/// translate its augmenting paths back to `G`.
#[derive(Debug, Clone)]
pub struct LayeredGraph {
    /// `L′`: interior X copies and Y copies (bipartite).
    pub graph: Graph,
    /// Bipartition side per layered vertex.
    pub side: Vec<bool>,
    /// `M` restricted to `L′` (interior X copies), in layered ids.
    pub ml_prime: Matching,
    /// First-layer X edges dropped from `L′`, keyed by their path-start
    /// (R-side) layered endpoint.
    pub first_x: HashMap<Vertex, Edge>,
    /// Last-layer X edges dropped from `L′`, keyed by their path-end
    /// (L-side) layered endpoint.
    pub last_x: HashMap<Vertex, Edge>,
    /// Original vertex count.
    pub n: usize,
    /// Gap count.
    pub k: usize,
}

impl LayeredGraph {
    /// Maps a layered edge back to the original edge.
    pub fn to_original(&self, le: &Edge) -> Edge {
        Edge::new(le.u % self.n as Vertex, le.v % self.n as Vertex, le.weight)
    }

    /// Extracts the augmenting paths of `m_prime` (a matching of `L′`)
    /// with respect to `ml_prime`, translated into original-graph walks
    /// with the dropped first/last X edges re-attached.
    ///
    /// Returns, per path, the walk's vertex sequence and edge sequence in
    /// the original graph, ready for
    /// [`crate::decompose::decompose_walk`].
    pub fn augmenting_walks(&self, m_prime: &Matching) -> Vec<(Vec<Vertex>, Vec<Edge>)> {
        let mut out = Vec::new();
        for comp in symmetric_difference_components(&self.ml_prime, m_prime) {
            let added = comp.iter().filter(|e| !self.ml_prime.contains(e)).count();
            let removed = comp.len() - added;
            if added != removed + 1 {
                continue; // cycles or non-augmenting paths
            }
            // reconstruct the layered walk vertex sequence
            let mut walk = walk_vertices(&comp);
            let mut edges = comp.clone();
            // orient from layer 0 towards layer k
            if walk.first().unwrap() / self.n as Vertex > walk.last().unwrap() / self.n as Vertex {
                walk.reverse();
                edges.reverse();
            }
            // translate to original ids
            let mut ovs: Vec<Vertex> = walk.iter().map(|&lv| lv % self.n as Vertex).collect();
            let mut oes: Vec<Edge> = edges.iter().map(|e| self.to_original(e)).collect();
            // re-attach the dropped boundary X edges
            if let Some(e1) = self.first_x.get(walk.first().unwrap()) {
                let start = ovs[0];
                ovs.insert(0, e1.other(start));
                oes.insert(0, *e1);
            }
            if let Some(ek) = self.last_x.get(walk.last().unwrap()) {
                let end = *ovs.last().unwrap();
                ovs.push(ek.other(end));
                oes.push(*ek);
            }
            out.push((ovs, oes));
        }
        out
    }
}

/// Reconstructs the vertex sequence of an ordered path component.
fn walk_vertices(comp: &[Edge]) -> Vec<Vertex> {
    if comp.len() == 1 {
        return vec![comp[0].u, comp[0].v];
    }
    let first = comp[0];
    let second = comp[1];
    let mut cur = if second.touches(first.v) {
        first.v
    } else {
        first.u
    };
    let mut walk = vec![first.other(cur), cur];
    for e in &comp[1..] {
        cur = e.other(cur);
        walk.push(cur);
    }
    walk
}

/// An [`EdgeStream`] adapter that exposes the edges of `L′` as a stream
/// derived from the underlying graph stream: each pass first emits the
/// interior X copies (known from the stored matching) and then maps every
/// arriving unmatched crossing edge to its Y copies. Memory: O(1) beyond
/// the stored matching — the filters are purely local.
pub struct LayeredStream<'a> {
    spec: LayeredSpec<'a>,
    inner: &'a mut dyn EdgeStream,
    passes_at_start: usize,
}

impl<'a> LayeredStream<'a> {
    /// Wraps `inner` with the layered filters of `spec`.
    pub fn new(spec: LayeredSpec<'a>, inner: &'a mut dyn EdgeStream) -> Self {
        let passes_at_start = inner.passes();
        LayeredStream {
            spec,
            inner,
            passes_at_start,
        }
    }
}

impl EdgeStream for LayeredStream<'_> {
    fn stream_pass(&mut self, sink: &mut dyn FnMut(Edge)) {
        let spec = &self.spec;
        let k = spec.k();
        for e in spec.m.iter() {
            if !spec.param.crosses(&e) {
                continue;
            }
            for t in spec.x_layers(&e) {
                if t != 0 && t != k {
                    sink(Edge::new(spec.lv(t, e.u), spec.lv(t, e.v), e.weight));
                }
            }
        }
        self.inner.stream_pass(&mut |e| {
            if spec.m.contains(&e) || !spec.param.crosses(&e) {
                return;
            }
            let (r, l) = if spec.param.is_left(e.u) {
                (e.v, e.u)
            } else {
                (e.u, e.v)
            };
            for t in spec.y_gaps(&e) {
                if spec.vertex_kept(t, r) && spec.vertex_kept(t + 1, l) {
                    sink(Edge::new(spec.lv(t, r), spec.lv(t + 1, l), e.weight));
                }
            }
        });
    }

    fn edge_count(&self) -> usize {
        self.inner.edge_count() // upper bound; exact count needs a pass
    }

    fn vertex_count(&self) -> usize {
        self.spec.layered_vertex_count()
    }

    fn passes(&self) -> usize {
        self.inner.passes() - self.passes_at_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose_walk;
    use crate::tau::TauPair;
    use wmatch_graph::alternating::check_alternating;
    use wmatch_graph::exact::max_bipartite_cardinality_matching;
    use wmatch_graph::generators;
    use wmatch_graph::Augmentation;

    /// Path 0-1-2-3 with weights (9,10,9) and the middle edge matched:
    /// the classic 3-augmentation, k = 2.
    fn three_aug_setup() -> (Graph, Matching, Parametrization) {
        let g = generators::path_graph(&[9, 10, 9]);
        let m = Matching::from_edges(4, [g.edge(1)]).unwrap();
        // alternate sides so all edges cross: 0∈R,1∈L,2∈R,3∈L
        let param = Parametrization::from_sides(vec![false, true, false, true]);
        (g, m, param)
    }

    #[test]
    fn x_and_y_copy_placement() {
        let (g, m, param) = three_aug_setup();
        // W = 16, q = 8 -> granularity 2; middle@10: up-bucket 5; wings@9:
        // down-bucket 4
        let tau = TauPair {
            a: vec![0, 5, 0],
            b: vec![4, 4],
        };
        let spec = LayeredSpec::new(&tau, 16, 8, &param, &m);
        assert_eq!(spec.layers(), 3);
        assert_eq!(spec.x_layers(&g.edge(1)), vec![1]);
        assert_eq!(spec.y_gaps(&g.edge(0)), vec![0, 1]);
        // middle edge's copies exist only at layer 1 -> x_present
        assert!(spec.x_present(1, 1) && spec.x_present(1, 2));
        assert!(!spec.x_present(0, 1));
    }

    #[test]
    fn vertex_filtering_rules() {
        let (_, m, param) = three_aug_setup();
        let tau = TauPair {
            a: vec![0, 5, 0],
            b: vec![4, 4],
        };
        let spec = LayeredSpec::new(&tau, 16, 8, &param, &m);
        // layer 0: R vertices 0, 2; 0 is M-free and τᴬ₀=0 -> kept
        assert!(spec.vertex_kept(0, 0));
        // 2 is matched (no X at layer 0) -> removed
        assert!(!spec.vertex_kept(0, 2));
        // L vertices never survive layer 0 without X
        assert!(!spec.vertex_kept(0, 1) && !spec.vertex_kept(0, 3));
        // layer 2 (last): L vertex 3 free -> kept; 1 matched -> removed
        assert!(spec.vertex_kept(2, 3));
        assert!(!spec.vertex_kept(2, 1));
        // interior layer: only X carriers
        assert!(spec.vertex_kept(1, 1) && spec.vertex_kept(1, 2));
        assert!(!spec.vertex_kept(1, 0) && !spec.vertex_kept(1, 3));
    }

    #[test]
    fn layered_graph_is_bipartite() {
        let (g, m, param) = three_aug_setup();
        let tau = TauPair {
            a: vec![0, 5, 0],
            b: vec![4, 4],
        };
        let spec = LayeredSpec::new(&tau, 16, 8, &param, &m);
        let lg = spec.build(g.edges().iter().copied());
        assert!(lg.graph.respects_bipartition(&lg.side).unwrap());
    }

    #[test]
    fn three_augmentation_end_to_end() {
        let (g, m, param) = three_aug_setup();
        let tau = TauPair {
            a: vec![0, 5, 0],
            b: vec![4, 4],
        };
        let spec = LayeredSpec::new(&tau, 16, 8, &param, &m);
        let lg = spec.build(g.edges().iter().copied());
        // L' has the interior X copy (middle edge at layer 1) + Y copies
        assert_eq!(lg.ml_prime.len(), 1);
        let m_prime = max_bipartite_cardinality_matching(&lg.graph, &lg.side);
        let walks = lg.augmenting_walks(&m_prime);
        assert_eq!(walks.len(), 1);
        let (vs, es) = &walks[0];
        // the walk is the full path 0-1-2-3 (no boundary X edges here:
        // endpoints are free vertices)
        assert_eq!(es.len(), 3);
        let comps = decompose_walk(vs, es);
        assert_eq!(comps.len(), 1);
        let aug = Augmentation::from_component(&m, &comps[0]).unwrap();
        assert_eq!(aug.gain(), 9 + 9 - 10);
    }

    #[test]
    fn augmenting_cycle_via_blowup() {
        // the paper's cycle device: 4-cycle (4,5,4,5); the cycle repeated
        // 2.5 times appears as a 6-layer path; decomposition recovers the
        // augmenting cycle with gain +2
        let (g, m) = generators::four_cycle_eps(4); // weights 4,5,4,5
        let param = Parametrization::from_sides(vec![true, false, true, false]);
        // W = 32, q = 32: up(4)=4, down(5)=5
        let tau = TauPair {
            a: vec![4; 6],
            b: vec![5; 5],
        };
        let cfg = crate::tau::TauConfig {
            q: 32,
            max_layers: 7,
            min_entry: 1,
            sum_b_cap: 33,
            max_pairs: 10,
        };
        assert!(tau.is_good(&cfg), "the blow-up pair must be good");
        let spec = LayeredSpec::new(&tau, 32, 32, &param, &m);
        let lg = spec.build(g.edges().iter().copied());
        let m_prime = max_bipartite_cardinality_matching(&lg.graph, &lg.side);
        let walks = lg.augmenting_walks(&m_prime);
        assert!(!walks.is_empty(), "the blow-up path must survive in L'");
        let mut best_gain = 0i128;
        for (vs, es) in &walks {
            for comp in decompose_walk(vs, es) {
                // every component must alternate (Lemma 4.11)
                check_alternating(&m, &comp).unwrap();
                if let Ok(aug) = Augmentation::from_component(&m, &comp) {
                    best_gain = best_gain.max(aug.gain());
                }
            }
        }
        assert_eq!(best_gain, 2, "the augmenting cycle gains 5+5-4-4");
    }

    #[test]
    fn boundary_x_edges_are_reattached() {
        // path 0-1-2-3 weights (4,10,9), matched {1,2}@10 and... make the
        // first wing too weak so only a path with a boundary X edge exists:
        // use path (10, 9): vertices 0-1-2 with {0,1}@10 matched, wing 9
        let g = generators::path_graph(&[10, 9]);
        let m = Matching::from_edges(3, [g.edge(0)]).unwrap();
        // 0∈R? the Y edge (1,2) needs its R endpoint at layer t: sides:
        // 1∈R, 2∈L, 0∈L
        let param = Parametrization::from_sides(vec![true, false, true]);
        // k=1: τᴬ=(5, 0), τᴮ=(4): W=16,q=8: up(10)=5, down(9)=4
        let tau = TauPair {
            a: vec![5, 0],
            b: vec![4],
        };
        let spec = LayeredSpec::new(&tau, 16, 8, &param, &m);
        let lg = spec.build(g.edges().iter().copied());
        // L' contains only the Y copy (1@0 -> 2@1); ml_prime is empty
        assert_eq!(lg.ml_prime.len(), 0);
        assert_eq!(lg.graph.edge_count(), 1);
        assert_eq!(lg.first_x.len(), 1);
        let m_prime = max_bipartite_cardinality_matching(&lg.graph, &lg.side);
        let walks = lg.augmenting_walks(&m_prime);
        assert_eq!(walks.len(), 1);
        let (vs, es) = &walks[0];
        // boundary X edge {0,1}@10 re-attached: walk 0-1-2
        assert_eq!(es.len(), 2);
        let comps = decompose_walk(vs, es);
        let aug = Augmentation::from_component(&m, &comps[0]).unwrap();
        assert_eq!(aug.gain(), 9 - 10);
        let _ = vs;
    }

    #[test]
    fn non_crossing_edges_are_dropped() {
        let (g, m, _) = three_aug_setup();
        // all vertices on the same side: nothing crosses
        let param = Parametrization::from_sides(vec![true; 4]);
        let tau = TauPair {
            a: vec![0, 5, 0],
            b: vec![4, 4],
        };
        let spec = LayeredSpec::new(&tau, 16, 8, &param, &m);
        let lg = spec.build(g.edges().iter().copied());
        assert_eq!(lg.graph.edge_count(), 0);
    }

    #[test]
    fn streamed_layered_edges_match_materialized() {
        let (g, m, param) = three_aug_setup();
        let tau = TauPair {
            a: vec![0, 5, 0],
            b: vec![4, 4],
        };
        let spec = LayeredSpec::new(&tau, 16, 8, &param, &m);
        let lg = spec.build(g.edges().iter().copied());
        let mut inner =
            wmatch_stream::VecStream::adversarial(g.edges().to_vec()).with_vertex_count(4);
        let mut ls = LayeredStream::new(spec.clone(), &mut inner);
        let mut streamed = Vec::new();
        ls.stream_pass(&mut |e| streamed.push(e));
        assert_eq!(ls.passes(), 1);
        assert_eq!(ls.vertex_count(), 12);
        // streamed edges = ml_prime edges + L' Y edges (same multiset)
        let mut a: Vec<_> = streamed.iter().map(|e| e.key()).collect();
        let mut b: Vec<_> = lg.graph.edges().iter().map(|e| e.key()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn fig1_filtering_blocks_bad_paths() {
        // Figure 1: τ_c + τ_d > w({c,d}) must exclude the weight-losing
        // path b-c-d-e while keeping a-c-d-f. With W=8, q=8 (granularity
        // 1): τᴬ=(0, 5, 0) (the matched {c,d}@5), τᴮ=(4,4) keeps only
        // wings of weight ≥ 4: exactly the paper's center picture with
        // τ_c = τ_d = 4... wait τᴮ entries are per-gap thresholds; a
        // weight-2 wing has down-bucket 2 ≠ 4 and is filtered.
        let (g, m) = generators::fig1_graph();
        // sides: c∈L, d∈R; a,b ∈ R (wings to c cross), e,f ∈ L
        let param = Parametrization::from_sides(
            // a=0, b=1, c=2, d=3, e=4, f=5
            vec![false, false, true, false, true, true],
        );
        let tau = TauPair {
            a: vec![0, 5, 0],
            b: vec![4, 4],
        };
        let spec = LayeredSpec::new(&tau, 8, 8, &param, &m);
        let lg = spec.build(g.edges().iter().copied());
        // only {a,c}@4 and {d,f}@4 survive as Y copies; weight-2 wings are
        // filtered out (L' also holds the interior X copy {c,d}@5)
        for e in lg.graph.edges() {
            assert!(
                e.weight == 4 || (e.weight == 5 && lg.ml_prime.contains(e)),
                "weight-2 wings must be filtered: {e}"
            );
        }
        assert_eq!(lg.graph.edge_count(), 3);
        let m_prime = max_bipartite_cardinality_matching(&lg.graph, &lg.side);
        let walks = lg.augmenting_walks(&m_prime);
        assert_eq!(walks.len(), 1);
        let (vs, es) = &walks[0];
        let comps = decompose_walk(vs, es);
        let aug = Augmentation::from_component(&m, &comps[0]).unwrap();
        assert_eq!(aug.gain(), 4 + 4 - 5, "the paper's optimal augmentation");
    }
}
