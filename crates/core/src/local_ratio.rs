//! The local-ratio algorithm for weighted matching in streams
//! (Paz–Schwartzman \[PS17\], as recapped in Section 3.2 of the paper).
//!
//! For each arriving edge `e = {u,v}` with residual
//! `w'(e) = w(e) − α_u − α_v > 0`, push `e` onto a stack and add `w'(e)` to
//! both vertex potentials. Unwinding the stack greedily (last pushed first)
//! yields a ½-approximate maximum weight matching.
//!
//! Two paper-relevant variants are provided:
//!
//! * **truncation** (`with_truncation(ε)`): push only when
//!   `w(e) > (1+ε)(α_u+α_v)` — the (½−ε')-approximation of \[PS17\]/\[GW19\]
//!   whose stack provably stays small on adversarial streams; used as
//!   `Approx-Wgt-Matching` inside Algorithm 1,
//! * **frozen potentials** (`freeze()`): stop updating potentials — the
//!   paper's adaptation for random-order streams (Section 1.1.1), which
//!   lets Algorithm 2 classify the tail of the stream against the
//!   potentials learned on the first `p` fraction.

use wmatch_graph::{Edge, Matching, Vertex};

/// Streaming local-ratio state: vertex potentials plus the edge stack.
///
/// # Example
///
/// ```
/// use wmatch_core::local_ratio::LocalRatio;
/// use wmatch_graph::Edge;
///
/// let mut lr = LocalRatio::new(4);
/// lr.on_edge(Edge::new(0, 1, 5));
/// lr.on_edge(Edge::new(1, 2, 7));
/// lr.on_edge(Edge::new(2, 3, 5));
/// let m = lr.unwind();
/// assert!(m.weight() * 2 >= 10); // 1/2-approximate
/// ```
#[derive(Debug, Clone)]
pub struct LocalRatio {
    potentials: Vec<u64>,
    stack: Vec<Edge>,
    frozen: bool,
    truncation: Option<f64>,
}

impl LocalRatio {
    /// A fresh instance over `n` vertices (exact local-ratio, no
    /// truncation).
    pub fn new(n: usize) -> Self {
        LocalRatio {
            potentials: vec![0; n],
            stack: Vec::new(),
            frozen: false,
            truncation: None,
        }
    }

    /// Enables the \[PS17\] truncation: push only if
    /// `w(e) > (1+eps)(α_u+α_v)`. The unwound matching is a
    /// (½(1+eps)⁻¹ ≥ ½−eps)-approximation with provably small stack.
    pub fn with_truncation(mut self, eps: f64) -> Self {
        self.truncation = Some(eps.max(0.0));
        self
    }

    /// Freezes the vertex potentials: subsequent [`LocalRatio::on_edge`]
    /// calls become no-ops; use [`LocalRatio::above_potential`] to classify
    /// tail edges.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Whether potentials are frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// The residual `w(e) − α_u − α_v` under the current potentials.
    pub fn residual(&self, e: &Edge) -> i128 {
        e.weight as i128
            - self.potentials[e.u as usize] as i128
            - self.potentials[e.v as usize] as i128
    }

    /// Whether `w(e) > α_u + α_v` (the "above potential" test of
    /// Algorithm 2, line 12).
    pub fn above_potential(&self, e: &Edge) -> bool {
        self.residual(e) > 0
    }

    /// Current potential of a vertex.
    pub fn potential(&self, v: Vertex) -> u64 {
        self.potentials[v as usize]
    }

    /// Processes one arriving edge (no-op when frozen).
    pub fn on_edge(&mut self, e: Edge) {
        if self.frozen {
            return;
        }
        let base = self.potentials[e.u as usize] as i128 + self.potentials[e.v as usize] as i128;
        let keep = match self.truncation {
            None => (e.weight as i128) > base,
            Some(eps) => (e.weight as f64) > (1.0 + eps) * base as f64,
        };
        if keep {
            let gain = (e.weight as i128 - base) as u64;
            self.potentials[e.u as usize] += gain;
            self.potentials[e.v as usize] += gain;
            self.stack.push(e);
        }
    }

    /// Number of stacked edges (the memory the algorithm holds).
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }

    /// The stacked edges in push order.
    pub fn stack(&self) -> &[Edge] {
        &self.stack
    }

    /// Pops the stack greedily (most recent first) into a matching.
    /// Non-destructive: the stack is retained (Algorithm 2 unwinds the
    /// stack twice — once at the phase switch, once at the end).
    pub fn unwind(&self) -> Matching {
        let mut m = Matching::new(self.potentials.len());
        for e in self.stack.iter().rev() {
            let _ = m.insert(*e);
        }
        m
    }

    /// Unwinds the stack on top of an existing matching `m`, inserting each
    /// popped edge whose endpoints are free (Algorithm 2, lines 15–17).
    pub fn unwind_onto(&self, m: &mut Matching) {
        for e in self.stack.iter().rev() {
            let _ = m.insert(*e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wmatch_graph::exact::max_weight_matching;
    use wmatch_graph::generators::{self, WeightModel};
    use wmatch_stream::{EdgeStream, VecStream};

    fn run_lr(edges: Vec<Edge>, n: usize, trunc: Option<f64>) -> (Matching, usize) {
        let mut lr = match trunc {
            None => LocalRatio::new(n),
            Some(t) => LocalRatio::new(n).with_truncation(t),
        };
        let mut s = VecStream::adversarial(edges).with_vertex_count(n);
        s.stream_pass(&mut |e| lr.on_edge(e));
        let stack = lr.stack_len();
        (lr.unwind(), stack)
    }

    #[test]
    fn half_approximation_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let g = generators::gnp(14, 0.35, WeightModel::Uniform { lo: 1, hi: 40 }, &mut rng);
            let (m, _) = run_lr(g.edges().to_vec(), 14, None);
            let opt = max_weight_matching(&g);
            assert!(
                2 * m.weight() >= opt.weight(),
                "local ratio below 1/2: {} vs {}",
                m.weight(),
                opt.weight()
            );
            m.validate(Some(&g)).unwrap();
        }
    }

    #[test]
    fn truncated_still_near_half() {
        let mut rng = StdRng::seed_from_u64(12);
        let eps = 0.1;
        for _ in 0..30 {
            let g = generators::gnp(14, 0.35, WeightModel::Uniform { lo: 1, hi: 40 }, &mut rng);
            let (m, _) = run_lr(g.edges().to_vec(), 14, Some(eps));
            let opt = max_weight_matching(&g).weight() as f64;
            assert!(
                m.weight() as f64 >= (0.5 / (1.0 + eps)) * opt - 1e-9,
                "truncated local ratio too weak: {} vs {opt}",
                m.weight()
            );
        }
    }

    #[test]
    fn barrier_instance_sticks_at_half_middle_first() {
        // the (w, w+1, w) barrier bites local-ratio only when the middle
        // edges arrive first: the outer edges then fall below potential
        let g = generators::weighted_barrier_paths(5, 50);
        let mut order: Vec<Edge> = Vec::new();
        for i in 0..5 {
            order.push(g.edge(3 * i + 1));
        }
        for i in 0..5 {
            order.push(g.edge(3 * i));
            order.push(g.edge(3 * i + 2));
        }
        let (m, _) = run_lr(order, g.vertex_count(), None);
        assert_eq!(m.weight(), 5 * 51, "middle-first order traps local-ratio");
        // in natural (outer, middle, outer) order the unwinding recovers
        // the optimum — the barrier is order-dependent
        let (m2, _) = run_lr(g.edges().to_vec(), g.vertex_count(), None);
        assert_eq!(m2.weight(), 5 * 100);
    }

    #[test]
    fn stack_grows_on_increasing_path_and_unwind_recovers() {
        // increasing weights along a path stack every edge; unwinding from
        // the top recovers the optimum on this instance
        let weights: Vec<u64> = (1..=6).map(|i| 10u64.pow(i)).collect();
        let g = generators::path_graph(&weights);
        let (m, stack) = run_lr(g.edges().to_vec(), g.vertex_count(), None);
        assert_eq!(stack, 6);
        let opt = max_weight_matching(&g);
        assert_eq!(m.weight(), opt.weight());
    }

    #[test]
    fn frozen_potentials_stop_updates() {
        let mut lr = LocalRatio::new(4);
        lr.on_edge(Edge::new(0, 1, 10));
        assert_eq!(lr.potential(0), 10);
        lr.freeze();
        lr.on_edge(Edge::new(1, 2, 100));
        assert_eq!(lr.potential(1), 10, "frozen potentials must not move");
        assert_eq!(lr.stack_len(), 1);
        assert!(lr.above_potential(&Edge::new(1, 2, 100)));
        assert!(!lr.above_potential(&Edge::new(1, 2, 5)));
        assert_eq!(lr.residual(&Edge::new(1, 2, 5)), -5);
    }

    #[test]
    fn unwind_is_nondestructive_and_onto_works() {
        let mut lr = LocalRatio::new(6);
        for e in [Edge::new(0, 1, 5), Edge::new(2, 3, 5)] {
            lr.on_edge(e);
        }
        let m1 = lr.unwind();
        let m2 = lr.unwind();
        assert_eq!(m1, m2);
        // unwind_onto respects existing matched vertices
        let mut m = Matching::from_edges(6, [Edge::new(1, 2, 9)]).unwrap();
        lr.unwind_onto(&mut m);
        assert_eq!(m.len(), 1, "both stack edges conflict with {{1,2}}");
    }

    #[test]
    fn zero_weight_edges_never_stack() {
        let mut lr = LocalRatio::new(2);
        lr.on_edge(Edge::new(0, 1, 0));
        assert_eq!(lr.stack_len(), 0);
    }

    #[test]
    fn truncation_shrinks_stack_on_geometric_path() {
        // weights growing by 5% along a path: exact stacks everything,
        // eps=0.2-truncated stacks only a fraction
        let weights: Vec<u64> = (0..60).map(|i| (1.05f64.powi(i) * 1000.0) as u64).collect();
        let g = generators::path_graph(&weights);
        let (_, exact_stack) = run_lr(g.edges().to_vec(), g.vertex_count(), None);
        let (_, trunc_stack) = run_lr(g.edges().to_vec(), g.vertex_count(), Some(0.2));
        assert!(trunc_stack < exact_stack, "{trunc_stack} !< {exact_stack}");
    }
}
