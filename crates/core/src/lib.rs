//! # Weighted Matchings via Unweighted Augmentations
//!
//! A faithful implementation of the algorithms of Gamlath, Kale, Mitrović
//! and Svensson, *"Weighted Matchings via Unweighted Augmentations"*
//! (PODC 2019, [arXiv:1811.02760](https://arxiv.org/abs/1811.02760)).
//!
//! The paper's central idea is a generic reduction from finding **weighted**
//! augmentations to finding **unweighted** augmenting paths, enabling:
//!
//! * [`random_order_unweighted`] — a 0.506-approximation for *unweighted*
//!   matching in single-pass random-order streams (Theorem 3.4),
//! * [`rand_arr_matching`] — a (½+c)-approximation for *weighted* matching
//!   in single-pass random-order streams (Theorem 1.1, Algorithm 2), built
//!   on [`wgt_aug_paths`] (Algorithm 1) and [`unw3aug`] (Lemma 3.1),
//! * [`main_alg`] — the (1−ε)-approximation for weighted matching in
//!   general graphs via the layered-graph reduction to bipartite unweighted
//!   matching (Theorem 1.2/4.1, Algorithms 3–4), with offline, multi-pass
//!   streaming, and MPC drivers.
//!
//! Substrates: [`local_ratio`] (Paz–Schwartzman), [`greedy`], the layered
//! graph construction ([`layered`], [`tau`], [`weight_classes`]) and the
//! Eulerian path decomposition of Lemma 4.11 ([`decompose`]).
//!
//! # Quickstart
//!
//! ```
//! use wmatch_core::main_alg::{max_weight_matching_offline, MainAlgConfig};
//! use wmatch_graph::generators::{gnp, WeightModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let g = gnp(30, 0.2, WeightModel::Uniform { lo: 1, hi: 100 }, &mut rng);
//! let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, 7));
//! m.validate(Some(&g)).unwrap();
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod decompose;
pub mod greedy;
pub mod layered;
pub mod local_ratio;
pub mod main_alg;
pub mod rand_arr_matching;
pub mod random_order_unweighted;
pub mod single_class;
pub mod tau;
pub mod unw3aug;
pub mod weight_classes;
pub mod wgt_aug_paths;

pub use config::PaperConstants;
