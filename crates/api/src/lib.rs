//! # `wmatch-api` — the unified solver facade
//!
//! One trait, one request/report contract, one registry over every
//! matching algorithm in the `wmatch` workspace.
//!
//! The paper's thesis is a *generic reduction*: weighted matching reduces
//! to unweighted augmentations regardless of the computational model.
//! This crate makes that uniformity concrete at the API level. An
//! [`Instance`] is a graph plus an [`ArrivalModel`] (offline,
//! random-order stream, adversarial stream, MPC, or a fully-dynamic
//! insert/delete update stream); a [`SolveRequest`]
//! carries the validated run parameters (ε, seed, budgets, threads); every
//! algorithm is a [`Solver`] returning a [`SolveReport`] with the
//! [`Matching`](wmatch_graph::Matching) plus uniform [`Telemetry`]
//! (rounds, passes, stored-edge peak, wall time) and an optional
//! approximation [`Certificate`] against the exact oracle. Failures are
//! typed [`SolveError`]s, never panics.
//!
//! ## Registry
//!
//! | solver | paper result | model(s) | objective | exact |
//! |---|---|---|---|---|
//! | `main-alg-offline` | Theorem 1.2/4.1, Algorithms 3–4 | offline | weight | no (1−ε) |
//! | `main-alg-streaming` | Theorem 1.2.2 | adversarial, random-order | weight | no (1−ε) |
//! | `main-alg-mpc` | Theorem 1.2.1 | MPC | weight | no (1−ε) |
//! | `rand-arr-matching` | Theorem 1.1, Algorithm 2 | random-order | weight | no (½+c) |
//! | `dynamic-wgtaug` | Fact 1.3 repair loop (update streams) | dynamic | weight | no (½) |
//! | `dynamic-sharded` | Fact 1.3 sharded speculate-and-replay engine | dynamic | weight | no (½) |
//! | `dynamic-rebuild` | Fact 1.3 recompute-from-scratch baseline | dynamic | weight | no (½) |
//! | `dynamic-randomwalk` | local dominance via seeded random-walk repair (cf. arXiv:2104.13098) | dynamic | weight | no (½) |
//! | `dynamic-lazy` | Fact 1.3 under a per-update work budget, restored at flush | dynamic | weight | no (½) |
//! | `dynamic-stale` | Fact 1.3 with ε-stale deferred repair, restored at flush | dynamic | weight | no (½) |
//! | `random-order-unweighted` | Theorem 3.4 | random-order | cardinality | no (0.506) |
//! | `greedy` | folklore ½ baseline | offline, streams | weight | no |
//! | `local-ratio` | \[PS17\], Section 3.2 | offline, streams | weight | no |
//! | `blossom` | exact oracle (Galil) | offline | weight | yes |
//! | `hungarian` | exact oracle (bipartite) | offline | weight | yes |
//! | `oracle-lekm` | exact oracle: slack-array Hungarian, certified duals, warm-startable | offline | weight | yes |
//! | `hopcroft-karp` | offline `Unw-Bip-Matching` box | offline | cardinality | yes |
//! | `stream-mcm` | streaming `Unw-Bip-Matching` box (\[AG13\] role) | streams | cardinality | no |
//! | `mpc-mcm` | MPC coreset box (\[ABB+19\]/\[GGK+18\] role) | MPC | cardinality | no |
//!
//! ## One solve per arrival model
//!
//! ```
//! use wmatch_api::{registry_for, solve, Instance, SolveRequest};
//! use wmatch_graph::generators::{gnp, WeightModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let g = gnp(24, 0.25, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng);
//! let req = SolveRequest::new().with_seed(7);
//!
//! // offline: the (1-eps) layered-graph machinery
//! let offline = solve("main-alg-offline", &Instance::offline(g.clone()), &req).unwrap();
//! offline.matching.validate(Some(&g)).unwrap();
//!
//! // single-pass random-order stream: Algorithm 2
//! let ra = solve("rand-arr-matching", &Instance::random_order(g.clone(), 3), &req).unwrap();
//! assert_eq!(ra.telemetry.passes, 1);
//!
//! // multi-pass adversarial stream
//! let st = solve("main-alg-streaming", &Instance::adversarial(g.clone()), &req).unwrap();
//! assert!(st.telemetry.passes <= st.telemetry.extra("passes_sequential").unwrap().parse().unwrap());
//!
//! // MPC: 4 machines x 4000 words
//! let mpc = solve("main-alg-mpc", &Instance::mpc(g.clone(), 4, 4000), &req).unwrap();
//! assert!(mpc.value > 0);
//!
//! // fully dynamic: maintain the matching under inserts and deletes
//! use wmatch_api::UpdateOp;
//! let ops = vec![UpdateOp::insert(0, 1, 4), UpdateOp::insert(1, 2, 6), UpdateOp::delete(1, 2)];
//! let dy = solve("dynamic-wgtaug", &Instance::dynamic(wmatch_graph::Graph::new(3), ops), &req).unwrap();
//! assert_eq!(dy.value, 4); // repaired back to {0,1} after the delete
//! assert_eq!(dy.telemetry.extra("updates_applied"), Some("3"));
//!
//! // or enumerate everything that can run on an instance
//! for s in registry_for(&Instance::offline(g.clone())) {
//!     let report = s.solve(&Instance::offline(g.clone()), &req).unwrap();
//!     report.matching.validate(Some(&g)).unwrap();
//! }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod capabilities;
pub mod error;
pub mod instance;
pub mod registry;
pub mod report;
pub mod request;
pub mod solvers;

pub use capabilities::{Capabilities, ModelKind, Objective};
pub use error::SolveError;
pub use instance::{ArrivalModel, Instance};
pub use registry::{registry, registry_for, solve, solver};
pub use report::{objective_value, Certificate, SolveReport, Telemetry};
pub use request::{Effort, SolveRequest, MAX_AUG_DEPTH, MAX_BUDGET, MAX_THREADS, MAX_WALK_LEN};
pub use solvers::Solver;
// the dynamic model's update vocabulary, re-exported so facade consumers
// can build `Instance::dynamic` sequences without naming wmatch-dynamic
pub use wmatch_dynamic::UpdateOp;
