//! Adapter for the `wmatch-oracle` slack-array Hungarian: exact,
//! certificate-producing maximum-weight bipartite matching at engine
//! scale, and the only exact solver in the registry that accepts a warm
//! start.

use wmatch_oracle::WeightOracle;

use crate::capabilities::{Capabilities, ModelKind, Objective};
use crate::error::SolveError;
use crate::instance::Instance;
use crate::report::{SolveReport, Telemetry};
use crate::request::SolveRequest;
use crate::solvers::{preflight, required_bipartition, timed, warm_start_or_empty, Solver};

/// Exact maximum **weight** matching on bipartite graphs via the
/// slack-array Hungarian of `wmatch-oracle` (label-driven BFS over flat
/// slack arrays, O(V·E) worst case, near-linear on sparse instances).
///
/// Every solve runs the oracle's in-code complementary-slackness check
/// before returning, so the reported matching is certified optimal even
/// when the request does not ask for a [`Certificate`](crate::Certificate).
/// A [`SolveRequest::warm_start`] matching is passed down as a primal
/// hint: tight warm edges are adopted into the initial matching and only
/// the remainder is searched.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleLekm;

impl Solver for OracleLekm {
    fn name(&self) -> &'static str {
        "oracle-lekm"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Offline],
            objective: Objective::Weight,
            bipartite_only: true,
            exact: true,
            approx_floor: 1.0,
            theorem:
                "exact oracle: slack-array Hungarian (bipartite), certified duals, warm-startable",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        let side = required_bipartition(self.name(), instance)?;
        let hint = warm_start_or_empty(instance, request)?;
        let g = instance.graph();
        let mut oracle = WeightOracle::new(side);
        let (cert, wall) = timed(|| {
            oracle
                .certify_hinted(g, &hint)
                .expect("instance bipartition fits the oracle")
        });
        let telemetry = Telemetry {
            peak_stored_edges: g.edge_count(),
            wall,
            extras: vec![
                ("oracle_phases", cert.stats.phases.to_string()),
                ("oracle_delta_steps", cert.stats.delta_steps.to_string()),
                ("oracle_adopted", cert.stats.adopted.to_string()),
            ],
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            cert.matching,
            Objective::Weight,
            g,
            request.certify,
            telemetry,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmatch_graph::{generators, Graph, Matching};

    #[test]
    fn solves_and_certifies_fig1() {
        let (g, _) = generators::fig1_graph();
        let instance = Instance::offline(g);
        let report = OracleLekm
            .solve(&instance, &SolveRequest::new().with_certify(true))
            .unwrap();
        assert_eq!(report.value, 8);
        let cert = report.certificate.as_ref().unwrap();
        assert_eq!(cert.optimum, 8);
        assert!(cert.duals.is_some());
        cert.verify(instance.graph(), &report.matching).unwrap();
        assert!(report.telemetry.extra("certify_ns").is_some());
    }

    #[test]
    fn accepts_a_warm_start_hint() {
        let mut g = Graph::new(4);
        let e = g.add_edge(0, 2, 5);
        g.add_edge(0, 3, 9);
        g.add_edge(1, 3, 8);
        let mut warm = Matching::new(4);
        warm.insert(g.edges()[e]).unwrap();
        let instance = Instance::offline(g);
        let request = SolveRequest::new().with_warm_start(warm);
        let report = OracleLekm.solve(&instance, &request).unwrap();
        assert_eq!(report.value, 13);
    }

    #[test]
    fn rejects_non_bipartite_instances() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(0, 2, 1);
        let err = OracleLekm
            .solve(&Instance::offline(g), &SolveRequest::new())
            .unwrap_err();
        assert!(matches!(err, SolveError::NotBipartite { .. }));
    }
}
