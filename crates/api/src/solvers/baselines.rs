//! Adapters for the baseline algorithms the paper improves on: greedy,
//! local-ratio \[PS17\], and the 0.506 random-order unweighted algorithm
//! (Theorem 3.4).

use wmatch_core::greedy::{greedy_by_weight, greedy_insertion};
use wmatch_core::local_ratio::LocalRatio;
use wmatch_core::random_order_unweighted::{random_order_unweighted, Branch, RouConfig};
use wmatch_stream::EdgeStream;

use crate::capabilities::{Capabilities, ModelKind, Objective};
use crate::error::SolveError;
use crate::instance::{ArrivalModel, Instance};
use crate::report::{SolveReport, Telemetry};
use crate::request::SolveRequest;
use crate::solvers::{preflight, reject_warm_start, timed, Solver};

/// The classic greedy ½-approximation: heaviest-edge-first offline, or
/// insert-if-free in arrival order on streams.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySolver;

impl Solver for GreedySolver {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[
                ModelKind::Offline,
                ModelKind::RandomOrder,
                ModelKind::Adversarial,
            ],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            // ½ in weight offline (heaviest first); on streams the matching
            // is maximal, which halves the cardinality but not the weight.
            approx_floor: 0.5,
            theorem: "folklore 1/2-approximation (Section 3.1 baseline)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let g = instance.graph();
        let (m, passes, wall) = match instance.model() {
            ArrivalModel::Offline => {
                let (m, wall) = timed(|| greedy_by_weight(g));
                (m, 0, wall)
            }
            _ => {
                let mut stream = instance.stream();
                let (m, wall) = timed(|| greedy_insertion(&mut stream));
                (m, stream.passes(), wall)
            }
        };
        let telemetry = Telemetry {
            passes,
            peak_stored_edges: m.len(),
            wall,
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            m,
            Objective::Weight,
            g,
            request.certify,
            telemetry,
        ))
    }
}

/// The local-ratio ½-approximation of Paz–Schwartzman \[PS17\]
/// (Section 3.2): potentials + stack, unwound greedily.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalRatioSolver;

impl Solver for LocalRatioSolver {
    fn name(&self) -> &'static str {
        "local-ratio"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[
                ModelKind::Offline,
                ModelKind::RandomOrder,
                ModelKind::Adversarial,
            ],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            approx_floor: 0.5,
            theorem: "[PS17] local-ratio (Section 3.2, Approx-Wgt-Matching role)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let g = instance.graph();
        // the unwind is part of the algorithm: time it with the feed
        let ((m, stack_size, passes), wall) = timed(|| {
            let mut lr = LocalRatio::new(g.vertex_count());
            match instance.model() {
                ArrivalModel::Offline => {
                    for e in g.edges() {
                        lr.on_edge(*e);
                    }
                    (lr.unwind(), lr.stack_len(), 0)
                }
                _ => {
                    let mut stream = instance.stream();
                    stream.stream_pass(&mut |e| lr.on_edge(e));
                    (lr.unwind(), lr.stack_len(), stream.passes())
                }
            }
        });
        let telemetry = Telemetry {
            passes,
            peak_stored_edges: stack_size,
            wall,
            extras: vec![("stack_size", stack_size.to_string())],
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            m,
            Objective::Weight,
            g,
            request.certify,
            telemetry,
        ))
    }
}

/// Theorem 3.4: the 0.506-approximation for **unweighted** matching on
/// single-pass random-order streams (weights are ignored).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomOrderUnweightedSolver;

impl Solver for RandomOrderUnweightedSolver {
    fn name(&self) -> &'static str {
        "random-order-unweighted"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::RandomOrder],
            objective: Objective::Cardinality,
            bipartite_only: false,
            exact: false,
            approx_floor: 0.5,
            theorem: "Theorem 3.4 (Section 3.1, three-branch single pass)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let mut stream = instance.stream();
        let (res, wall) = timed(|| random_order_unweighted(&mut stream, &RouConfig::default()));
        let winner = match res.winner {
            Branch::FreeFree => "free-free",
            Branch::ContinuedGreedy => "continued-greedy",
            Branch::ThreeAug => "3-aug",
        };
        let telemetry = Telemetry {
            passes: stream.passes(),
            peak_stored_edges: res.s1_size + res.support_size,
            wall,
            extras: vec![
                ("winner", winner.to_string()),
                ("m0_size", res.m0_size.to_string()),
                ("s1_size", res.s1_size.to_string()),
                ("support_size", res.support_size.to_string()),
            ],
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            res.matching,
            Objective::Cardinality,
            instance.graph(),
            request.certify,
            telemetry,
        ))
    }
}
