//! Adapters for the paper's four drivers: the (1−ε) machinery in its
//! offline, multi-pass streaming, and MPC instantiations (Theorem 1.2),
//! and `Rand-Arr-Matching` (Theorem 1.1).

use wmatch_core::main_alg::{
    max_weight_matching_mpc, max_weight_matching_offline_stats, max_weight_matching_streaming,
    MainAlgConfig,
};
use wmatch_core::rand_arr_matching::{rand_arr_matching, RandArrBranch, RandArrConfig};
use wmatch_mpc::{MpcConfig, MpcMcmConfig};
use wmatch_stream::{EdgeStream, McmConfig};

use crate::capabilities::{Capabilities, ModelKind, Objective};
use crate::error::SolveError;
use crate::instance::{ArrivalModel, Instance};
use crate::report::{SolveReport, Telemetry};
use crate::request::{Effort, SolveRequest};
use crate::solvers::{preflight, reject_warm_start, timed, warm_start_or_empty, Solver};

/// Renders a per-worker busy-time vector as the uniform comma-separated
/// telemetry extra (`busy_ns`), slot 0 being the driver thread.
fn busy_ns_extra(busy_ns: &[u64]) -> String {
    busy_ns
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// The [`MainAlgConfig`] a request maps onto.
fn main_cfg(request: &SolveRequest) -> MainAlgConfig {
    let base = match request.effort {
        Effort::Quick => MainAlgConfig::practical(request.eps, request.seed)
            .with_trials(2)
            .with_stall_rounds(2),
        Effort::Standard => MainAlgConfig::practical(request.eps, request.seed),
        Effort::Thorough => MainAlgConfig::thorough(request.eps, request.seed),
    };
    base.with_max_rounds(request.round_budget)
        .with_threads(request.threads)
}

/// The streaming `Unw-Bip-Matching` box configuration a request maps onto.
fn mcm_cfg(request: &SolveRequest) -> McmConfig {
    McmConfig::for_delta(request.eps).with_max_passes(request.pass_budget)
}

/// Theorem 1.2 (offline): the (1−ε)-approximation via layered graphs,
/// iterated from the empty matching or the request's warm start.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfflineMainAlg;

impl Solver for OfflineMainAlg {
    fn name(&self) -> &'static str {
        "main-alg-offline"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Offline],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            approx_floor: 0.75,
            theorem: "Theorem 1.2 / 4.1 (offline driver, Algorithms 3-4)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        let init = warm_start_or_empty(instance, request)?;
        let g = instance.graph();
        let cfg = main_cfg(request);
        let (out, wall) = timed(|| max_weight_matching_offline_stats(g, init, &cfg));
        let telemetry = Telemetry {
            rounds: out.trace.len(),
            peak_stored_edges: g.edge_count() + out.matching.len(),
            wall,
            trace: out.trace,
            extras: vec![
                ("scratch_high_water", out.scratch_high_water.to_string()),
                ("csr_rebuilds", out.csr_rebuilds.to_string()),
                ("workers_used", out.workers_used.to_string()),
                ("busy_ns", busy_ns_extra(&out.busy_ns)),
            ],
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            out.matching,
            Objective::Weight,
            g,
            request.certify,
            telemetry,
        ))
    }
}

/// Theorem 1.2.2: the multi-pass semi-streaming driver of the (1−ε)
/// machinery.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamingMainAlg;

impl Solver for StreamingMainAlg {
    fn name(&self) -> &'static str {
        "main-alg-streaming"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Adversarial, ModelKind::RandomOrder],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            approx_floor: 0.5,
            theorem: "Theorem 1.2.2 (multi-pass streaming driver)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let cfg = main_cfg(request);
        let mcm = mcm_cfg(request);
        let mut stream = instance.stream();
        let (res, wall) = timed(|| max_weight_matching_streaming(&mut stream, &cfg, &mcm));
        let telemetry = Telemetry {
            rounds: res.rounds,
            passes: res.passes_model,
            peak_stored_edges: res.peak_memory_edges,
            wall,
            extras: vec![
                ("passes_sequential", res.passes_sequential.to_string()),
                ("scratch_high_water", res.scratch_high_water.to_string()),
            ],
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            res.matching,
            Objective::Weight,
            instance.graph(),
            request.certify,
            telemetry,
        ))
    }
}

/// Theorem 1.2.1: the MPC driver of the (1−ε) machinery.
#[derive(Debug, Clone, Copy, Default)]
pub struct MpcMainAlg;

impl Solver for MpcMainAlg {
    fn name(&self) -> &'static str {
        "main-alg-mpc"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Mpc],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            approx_floor: 0.5,
            theorem: "Theorem 1.2.1 (MPC driver)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let &ArrivalModel::Mpc {
            machines,
            memory_words,
        } = instance.model()
        else {
            unreachable!("preflight admits only the MPC model");
        };
        let cfg = main_cfg(request);
        let mcm = MpcMcmConfig::for_delta(request.eps, request.seed)
            .with_max_iterations(request.pass_budget);
        let (res, wall) = timed(|| {
            max_weight_matching_mpc(
                instance.graph(),
                &cfg,
                MpcConfig::new(machines, memory_words),
                &mcm,
            )
        });
        let res = res?;
        let telemetry = Telemetry {
            rounds: res.rounds_model,
            peak_stored_edges: res.peak_machine_words,
            wall,
            extras: vec![
                ("rounds_sequential", res.rounds_sequential.to_string()),
                ("scratch_high_water", res.scratch_high_water.to_string()),
                ("workers_used", res.workers_used.to_string()),
                ("busy_ns", busy_ns_extra(&res.busy_ns)),
            ],
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            res.matching,
            Objective::Weight,
            instance.graph(),
            request.certify,
            telemetry,
        ))
    }
}

/// Theorem 1.1: `Rand-Arr-Matching` (Algorithm 2), the (½+c)-approximation
/// for weighted matching on single-pass random-order streams.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandArrSolver;

impl Solver for RandArrSolver {
    fn name(&self) -> &'static str {
        "rand-arr-matching"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            // adversarial orders are accepted (the algorithm is well
            // defined on any arrival order); the (½+c) guarantee and the
            // declared floor apply to the random-order model
            models: &[ModelKind::RandomOrder, ModelKind::Adversarial],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            approx_floor: 0.5,
            theorem: "Theorem 1.1 (Algorithm 2 over Algorithm 1)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let mut cfg = RandArrConfig::default();
        cfg.wap.seed = request.seed;
        let mut stream = instance.stream();
        let (res, wall) = timed(|| rand_arr_matching(&mut stream, &cfg));
        let winner = match res.winner {
            RandArrBranch::StackAndT => "stack+T",
            RandArrBranch::WgtAugPaths => "wgt-aug-paths",
        };
        let telemetry = Telemetry {
            passes: stream.passes(),
            peak_stored_edges: res.stack_size + res.t_size,
            wall,
            extras: vec![
                ("winner", winner.to_string()),
                ("stack_size", res.stack_size.to_string()),
                ("t_size", res.t_size.to_string()),
                ("m0_weight", res.m0_weight.to_string()),
            ],
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            res.matching,
            Objective::Weight,
            instance.graph(),
            request.certify,
            telemetry,
        ))
    }
}
