//! The [`Solver`] trait and the adapters that put every algorithm in the
//! workspace behind it.

use std::time::Instant;

use wmatch_graph::Matching;

use crate::capabilities::Capabilities;
use crate::error::SolveError;
use crate::instance::Instance;
use crate::report::SolveReport;
use crate::request::SolveRequest;

pub mod baselines;
pub mod boxes;
pub mod dynamic;
pub mod exact;
pub mod oracle;
pub mod paper;

/// The unified solver contract.
///
/// Implementations are stateless adapters: all run parameters come from
/// the [`SolveRequest`], all input from the [`Instance`], and every
/// outcome — including invalid configuration, unsupported models and
/// budget violations — is a typed [`SolveError`] instead of a panic.
pub trait Solver {
    /// Stable registry name (kebab-case).
    fn name(&self) -> &'static str;

    /// The solver's declared contract.
    fn capabilities(&self) -> Capabilities;

    /// Solves `instance` under `request`.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidConfig`] for out-of-range request fields,
    /// [`SolveError::UnsupportedModel`] / [`SolveError::NotBipartite`]
    /// when the instance does not fit the solver's capabilities, and
    /// substrate errors ([`SolveError::Mpc`], [`SolveError::Graph`])
    /// forwarded from the run itself.
    fn solve(&self, instance: &Instance, request: &SolveRequest)
        -> Result<SolveReport, SolveError>;
}

/// Shared entry checks: request validity, arrival-model support, and
/// model-parameter sanity (a zero-machine or zero-memory MPC deployment
/// must be a typed error, not a simulator assertion).
fn preflight(
    name: &'static str,
    caps: &Capabilities,
    instance: &Instance,
    request: &SolveRequest,
) -> Result<(), SolveError> {
    request.validate()?;
    let kind = instance.model().kind();
    if !caps.supports(kind) {
        return Err(SolveError::UnsupportedModel {
            solver: name,
            model: kind,
        });
    }
    if let &crate::instance::ArrivalModel::Mpc {
        machines,
        memory_words,
    } = instance.model()
    {
        if machines == 0 {
            return Err(SolveError::InvalidConfig {
                field: "machines",
                reason: "an MPC deployment needs at least one machine".into(),
            });
        }
        if memory_words == 0 {
            return Err(SolveError::InvalidConfig {
                field: "memory_words",
                reason: "an MPC machine needs at least one word of memory".into(),
            });
        }
    }
    Ok(())
}

/// The bipartition a bipartite-only solver runs on: declared, or detected
/// by 2-coloring.
fn required_bipartition(name: &'static str, instance: &Instance) -> Result<Vec<bool>, SolveError> {
    instance
        .bipartition()
        .ok_or(SolveError::NotBipartite { solver: name })
}

/// Rejects a warm start for solvers that cannot use one.
fn reject_warm_start(name: &'static str, request: &SolveRequest) -> Result<(), SolveError> {
    if request.warm_start.is_some() {
        return Err(SolveError::InvalidConfig {
            field: "warm_start",
            reason: format!("solver {name} does not support warm starts"),
        });
    }
    Ok(())
}

/// Validates the warm start against the instance (for solvers that do
/// support one), returning the initial matching to iterate from.
fn warm_start_or_empty(
    instance: &Instance,
    request: &SolveRequest,
) -> Result<Matching, SolveError> {
    let n = instance.graph().vertex_count();
    match &request.warm_start {
        None => Ok(Matching::new(n)),
        Some(m) => {
            if m.vertex_count() != n {
                return Err(SolveError::InvalidConfig {
                    field: "warm_start",
                    reason: format!(
                        "matching over {} vertices does not fit a graph of {n}",
                        m.vertex_count()
                    ),
                });
            }
            m.validate(Some(instance.graph()))
                .map_err(SolveError::Graph)?;
            Ok(m.clone())
        }
    }
}

/// Runs `f`, returning its output and wall-clock duration.
fn timed<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}
