//! Adapters for the paper's `Unw-Bip-Matching` black boxes in their
//! resource-bounded instantiations: the multi-pass streaming box and the
//! MPC coreset box. Exposed as solvers so benches and experiments can
//! drive them through the same contract as everything else.

use wmatch_graph::WorkerPool;
use wmatch_mpc::{mpc_bipartite_mcm_pooled, MpcConfig, MpcMcmConfig, MpcSimulator};
use wmatch_stream::{multipass_bipartite_mcm, McmConfig};

use crate::capabilities::{Capabilities, ModelKind, Objective};
use crate::error::SolveError;
use crate::instance::{ArrivalModel, Instance};
use crate::report::{SolveReport, Telemetry};
use crate::request::SolveRequest;
use crate::solvers::{preflight, reject_warm_start, required_bipartition, timed, Solver};

/// The multi-pass streaming `Unw-Bip-Matching` box: greedy pass plus
/// bounded-degree support passes, each closed by warm-started
/// Hopcroft–Karp (the \[AG13\] role in Theorem 4.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamMcmSolver;

impl Solver for StreamMcmSolver {
    fn name(&self) -> &'static str {
        "stream-mcm"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Adversarial, ModelKind::RandomOrder],
            objective: Objective::Cardinality,
            bipartite_only: true,
            exact: false,
            approx_floor: 0.5,
            theorem: "streaming Unw-Bip-Matching box ([AG13] role in Theorem 4.1)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let side = required_bipartition(self.name(), instance)?;
        let cfg = McmConfig::for_delta(request.eps).with_max_passes(request.pass_budget);
        let mut stream = instance.stream();
        let (res, wall) = timed(|| multipass_bipartite_mcm(&mut stream, &side, &cfg));
        let telemetry = Telemetry {
            passes: res.passes,
            peak_stored_edges: res.peak_memory_edges,
            wall,
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            res.matching,
            Objective::Cardinality,
            instance.graph(),
            request.certify,
            telemetry,
        ))
    }
}

/// The MPC coreset `Unw-Bip-Matching` box (the \[ABB+19\]/\[GGK+18\] role
/// in Theorem 4.1), run on a fresh simulator sized by the instance's MPC
/// parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MpcMcmSolver;

impl Solver for MpcMcmSolver {
    fn name(&self) -> &'static str {
        "mpc-mcm"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Mpc],
            objective: Objective::Cardinality,
            bipartite_only: true,
            exact: false,
            approx_floor: 0.5,
            theorem: "MPC coreset Unw-Bip-Matching box ([ABB+19]/[GGK+18] role)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let side = required_bipartition(self.name(), instance)?;
        let &ArrivalModel::Mpc {
            machines,
            memory_words,
        } = instance.model()
        else {
            unreachable!("preflight admits only the MPC model");
        };
        let cfg = MpcMcmConfig::for_delta(request.eps, request.seed)
            .with_max_iterations(request.pass_budget);
        let g = instance.graph();
        // the box honors the request's threads contract: simulated machine
        // rounds run on the pool, bit-identical for any worker count
        let mut pool = WorkerPool::new(request.threads);
        let (res, wall) = timed(|| {
            let mut sim = MpcSimulator::new(MpcConfig::new(machines, memory_words));
            mpc_bipartite_mcm_pooled(&mut sim, g.edges().to_vec(), &side, &cfg, &mut pool)
        });
        let res = res?;
        let telemetry = Telemetry {
            rounds: res.rounds,
            peak_stored_edges: res.peak_machine_words,
            wall,
            extras: vec![("workers_used", pool.workers().to_string())],
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            res.matching,
            Objective::Cardinality,
            g,
            request.certify,
            telemetry,
        ))
    }
}
