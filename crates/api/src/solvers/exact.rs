//! Adapters for the exact oracles: Galil's weighted blossom, the
//! Hungarian algorithm, and Hopcroft–Karp. These are the ground truth the
//! approximate solvers are certified against.

use wmatch_graph::exact::{
    max_bipartite_cardinality_matching, max_weight_bipartite_matching, max_weight_matching,
};

use crate::capabilities::{Capabilities, ModelKind, Objective};
use crate::error::SolveError;
use crate::instance::Instance;
use crate::report::{SolveReport, Telemetry};
use crate::request::SolveRequest;
use crate::solvers::{preflight, reject_warm_start, required_bipartition, timed, Solver};

/// Exact maximum **weight** matching on general graphs (Galil's O(V³)
/// weighted blossom) — the registry's default certification oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlossomSolver;

impl Solver for BlossomSolver {
    fn name(&self) -> &'static str {
        "blossom"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Offline],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: true,
            approx_floor: 1.0,
            theorem: "exact oracle: Galil's weighted blossom, O(V^3)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let g = instance.graph();
        let (m, wall) = timed(|| max_weight_matching(g));
        let telemetry = Telemetry {
            peak_stored_edges: g.edge_count(),
            wall,
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            m,
            Objective::Weight,
            g,
            request.certify,
            telemetry,
        ))
    }
}

/// Exact maximum **weight** matching on bipartite graphs (Hungarian
/// algorithm / successive shortest paths, O(V³)).
#[derive(Debug, Clone, Copy, Default)]
pub struct HungarianSolver;

impl Solver for HungarianSolver {
    fn name(&self) -> &'static str {
        "hungarian"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Offline],
            objective: Objective::Weight,
            bipartite_only: true,
            exact: true,
            approx_floor: 1.0,
            theorem: "exact oracle: Hungarian algorithm (bipartite), O(V^3)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let side = required_bipartition(self.name(), instance)?;
        let g = instance.graph();
        let (m, wall) = timed(|| max_weight_bipartite_matching(g, &side));
        let telemetry = Telemetry {
            peak_stored_edges: g.edge_count(),
            wall,
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            m,
            Objective::Weight,
            g,
            request.certify,
            telemetry,
        ))
    }
}

/// Exact maximum **cardinality** matching on bipartite graphs
/// (Hopcroft–Karp, O(E·√V)) — the offline `Unw-Bip-Matching` black box of
/// the layered-graph reduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct HopcroftKarpSolver;

impl Solver for HopcroftKarpSolver {
    fn name(&self) -> &'static str {
        "hopcroft-karp"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Offline],
            objective: Objective::Cardinality,
            bipartite_only: true,
            exact: true,
            approx_floor: 1.0,
            theorem: "exact oracle: Hopcroft-Karp (offline Unw-Bip-Matching box)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let side = required_bipartition(self.name(), instance)?;
        let g = instance.graph();
        let (m, wall) = timed(|| max_bipartite_cardinality_matching(g, &side));
        let telemetry = Telemetry {
            peak_stored_edges: g.edge_count(),
            wall,
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            m,
            Objective::Cardinality,
            g,
            request.certify,
            telemetry,
        ))
    }
}
