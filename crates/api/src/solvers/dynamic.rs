//! Adapters for the fully-dynamic arrival model: the incremental
//! update-stream engine and its recompute-from-scratch baseline.
//!
//! Both maintain the same invariant — after every update the matching
//! admits no positive augmentation of at most [`SolveRequest::aug_depth`]
//! edges, which by Fact 1.3 certifies the declared ½ floor (at the
//! default depth 3) *at every point of the stream* — but
//! `dynamic-wgtaug` repairs locally with bounded recourse while
//! `dynamic-rebuild` recomputes the whole matching after every update.

use std::time::Instant;

use wmatch_dynamic::{
    BatchError, DynamicConfig, DynamicMatcher, RecomputeBaseline, ShardedMatcher, UpdateOp,
};

use crate::capabilities::{Capabilities, ModelKind, Objective};
use crate::error::SolveError;
use crate::instance::Instance;
use crate::report::{SolveReport, Telemetry};
use crate::request::{Effort, SolveRequest};
use crate::solvers::{preflight, reject_warm_start, Solver};

/// The update sequence of a dynamic instance (preflight guarantees the
/// model matches).
fn updates_of(instance: &Instance) -> &[UpdateOp] {
    instance
        .updates()
        .expect("preflight admits only the dynamic model")
}

/// Maps a malformed update onto the uniform error contract.
fn update_error(e: wmatch_dynamic::DynamicError) -> SolveError {
    SolveError::InvalidConfig {
        field: "updates",
        reason: e.to_string(),
    }
}

/// Maps a malformed update onto the uniform error contract, recording how
/// many stream ops had already been applied when it surfaced — partial
/// progress a caller replaying a long stream needs to resume or debug.
fn update_error_at(applied: usize, e: wmatch_dynamic::DynamicError) -> SolveError {
    SolveError::InvalidConfig {
        field: "updates",
        reason: format!("{e} ({applied} updates applied)"),
    }
}

/// Maps a batch failure (which already carries the applied-op count) onto
/// the uniform error contract, routing by retryability: a quarantined
/// shard (the sentinel healed the state before rejecting) surfaces as
/// [`SolveError::Transient`] so callers know a bounded retry is the
/// right response, while malformed-op rejections stay deterministic
/// configuration errors.
fn batch_error(e: BatchError) -> SolveError {
    if e.is_transient() {
        SolveError::Transient {
            reason: e.to_string(),
        }
    } else {
        SolveError::InvalidConfig {
            field: "updates",
            reason: e.to_string(),
        }
    }
}

/// The [`DynamicConfig`] a request maps onto.
fn dynamic_cfg(request: &SolveRequest) -> DynamicConfig {
    let rebuild_rounds = match request.effort {
        Effort::Quick => 1,
        Effort::Standard => 2,
        Effort::Thorough => 4,
    };
    DynamicConfig::default()
        .with_max_len(request.aug_depth)
        .with_rebuild_threshold(request.rebuild_threshold)
        .with_rebuild_rounds(rebuild_rounds)
        .with_eps(request.eps)
        .with_seed(request.seed)
        .with_threads(request.threads)
}

/// Renders updates-per-second from a replayed op count and duration.
fn updates_per_sec(updates: usize, replay: std::time::Duration) -> String {
    let secs = replay.as_secs_f64();
    if secs > 0.0 {
        format!("{:.1}", updates as f64 / secs)
    } else {
        "inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmatch_dynamic::{BatchStats, DynamicError};

    #[test]
    fn batch_error_routes_by_retryability() {
        let transient = batch_error(BatchError {
            applied: 3,
            stats: BatchStats::default(),
            source: DynamicError::Quarantined { shard: 1 },
        });
        assert!(transient.is_transient());
        assert!(matches!(transient, SolveError::Transient { .. }));

        let fatal = batch_error(BatchError {
            applied: 3,
            stats: BatchStats::default(),
            source: DynamicError::EdgeNotFound { u: 0, v: 1 },
        });
        assert!(!fatal.is_transient());
        assert!(matches!(
            fatal,
            SolveError::InvalidConfig {
                field: "updates",
                ..
            }
        ));
    }
}

/// The incremental update-stream engine: bounded-depth augmentation
/// repair around each update, with optional batched rebuild epochs
/// (Algorithm 3's weight-class sweep on the solve's worker pool).
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicWgtAug;

impl Solver for DynamicWgtAug {
    fn name(&self) -> &'static str {
        "dynamic-wgtaug"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Dynamic],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            // Fact 1.3 at the default aug_depth 3 (ℓ = 2), maintained
            // after every update of the stream
            approx_floor: 0.5,
            theorem: "Fact 1.3 (bounded-length augmentation repair; dynamic driver)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let updates = updates_of(instance);
        let t0 = Instant::now();
        let mut engine = DynamicMatcher::from_graph(instance.graph(), dynamic_cfg(request))
            .map_err(update_error)?;
        let mut peak_live = engine.graph().live_edges();
        let replay_start = Instant::now();
        for (i, &op) in updates.iter().enumerate() {
            engine.apply(op).map_err(|e| update_error_at(i, e))?;
            peak_live = peak_live.max(engine.graph().live_edges());
        }
        let replay = replay_start.elapsed();
        let wall = t0.elapsed();
        let counters = engine.counters();
        let final_graph = engine.graph().snapshot();
        let telemetry = Telemetry {
            rounds: counters.rebuilds as usize,
            peak_stored_edges: peak_live + engine.matching().len(),
            wall,
            extras: vec![
                ("updates_applied", counters.updates_applied.to_string()),
                ("recourse_total", counters.recourse_total.to_string()),
                ("updates_per_sec", updates_per_sec(updates.len(), replay)),
                (
                    "augmentations_applied",
                    counters.augmentations_applied.to_string(),
                ),
                ("rebuilds", counters.rebuilds.to_string()),
                ("steals", engine.steals().to_string()),
                (
                    "scratch_high_water",
                    engine.scratch_high_water().to_string(),
                ),
            ],
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            engine.matching().clone(),
            Objective::Weight,
            &final_graph,
            request.certify,
            telemetry,
        ))
    }
}

/// The honest baseline: the same structural updates and the same Fact 1.3
/// floor, but the matching is recomputed from scratch after every update
/// — what `dynamic-wgtaug`'s locality and recourse numbers are measured
/// against.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicRebuild;

impl Solver for DynamicRebuild {
    fn name(&self) -> &'static str {
        "dynamic-rebuild"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Dynamic],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            approx_floor: 0.5,
            theorem: "Fact 1.3 (recompute-from-scratch baseline)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let updates = updates_of(instance);
        let t0 = Instant::now();
        let mut baseline = RecomputeBaseline::from_graph(instance.graph(), request.aug_depth)
            .map_err(update_error)?;
        let mut peak_live = baseline.graph().live_edges();
        let replay_start = Instant::now();
        for (i, &op) in updates.iter().enumerate() {
            baseline.apply(op).map_err(|e| update_error_at(i, e))?;
            peak_live = peak_live.max(baseline.graph().live_edges());
        }
        let replay = replay_start.elapsed();
        let wall = t0.elapsed();
        let counters = baseline.counters();
        let final_graph = baseline.graph().snapshot();
        let telemetry = Telemetry {
            peak_stored_edges: peak_live + baseline.matching().len(),
            wall,
            extras: vec![
                ("updates_applied", counters.updates_applied.to_string()),
                ("recourse_total", counters.recourse_total.to_string()),
                ("updates_per_sec", updates_per_sec(updates.len(), replay)),
            ],
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            baseline.matching().clone(),
            Objective::Weight,
            &final_graph,
            request.certify,
            telemetry,
        ))
    }
}

/// The production-scale sharded engine: each batch's updates are grouped
/// by ball overlap (within vertex shards, each shard owning the pairs
/// whose smaller endpoint falls in its range), disjoint groups speculate
/// their repairs in parallel on a work-stealing pool, and a deterministic
/// commit phase replays clean plans — or falls back to sequential repair
/// when a foreign write invalidates a group's reads. With a single
/// worker the whole speculation layer is bypassed and updates commit
/// inline. The committed matching is bit-identical to `dynamic-wgtaug`
/// for every shard count, thread count, and batch size, so the same
/// Fact 1.3 floor holds after every batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicSharded;

impl Solver for DynamicSharded {
    fn name(&self) -> &'static str {
        "dynamic-sharded"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Dynamic],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            // bit-identical to the sequential engine → same Fact 1.3 floor
            approx_floor: 0.5,
            theorem: "Fact 1.3 (sharded speculate-and-replay dynamic driver)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let updates = updates_of(instance);
        let t0 = Instant::now();
        let mut engine =
            ShardedMatcher::from_graph(instance.graph(), dynamic_cfg(request), request.shards)
                .map_err(update_error)?;
        let mut peak_live = engine.graph().live_edges();
        let replay_start = Instant::now();
        // batches bound speculation memory; peak_live is sampled per batch
        // (within a batch the live count moves monotonically per shard, so
        // per-op sampling would only refine ties)
        let mut offset = 0usize;
        for chunk in updates.chunks(4096) {
            engine.apply_all(chunk).map_err(|mut e| {
                e.applied += offset; // report stream-relative progress
                batch_error(e)
            })?;
            offset += chunk.len();
            peak_live = peak_live.max(engine.graph().live_edges());
        }
        let replay = replay_start.elapsed();
        let wall = t0.elapsed();
        let counters = engine.counters();
        let final_graph = engine.graph().snapshot();
        let telemetry = Telemetry {
            rounds: counters.rebuilds as usize,
            peak_stored_edges: peak_live + engine.matching().len(),
            wall,
            extras: vec![
                ("updates_applied", counters.updates_applied.to_string()),
                ("recourse_total", counters.recourse_total.to_string()),
                ("updates_per_sec", updates_per_sec(updates.len(), replay)),
                (
                    "augmentations_applied",
                    counters.augmentations_applied.to_string(),
                ),
                ("rebuilds", counters.rebuilds.to_string()),
                ("shards", engine.shard_count().to_string()),
                ("plans_replayed", engine.replayed().to_string()),
                ("plan_fallbacks", engine.fallbacks().to_string()),
                ("plans_inline", engine.inline_commits().to_string()),
                ("overlap_groups", engine.overlap_groups().to_string()),
                ("balls_parallel", engine.balls_parallel().to_string()),
                ("steals", engine.steals().to_string()),
                (
                    "scratch_high_water",
                    engine.scratch_high_water().to_string(),
                ),
            ],
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            engine.matching().clone(),
            Objective::Weight,
            &final_graph,
            request.certify,
            telemetry,
        ))
    }
}
