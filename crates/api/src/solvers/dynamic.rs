//! Adapters for the fully-dynamic arrival model: the incremental
//! update-stream engine, its recompute-from-scratch baseline, and the
//! shootout competitors (random-walk, bounded-lazy, ε-stale).
//!
//! The eager engines maintain the invariant that after every update the
//! matching admits no positive augmentation of at most
//! [`SolveRequest::aug_depth`] edges, which by Fact 1.3 certifies the
//! declared ½ floor (at the default depth 3) *at every point of the
//! stream*. The deferring competitors (`dynamic-lazy`, `dynamic-stale`)
//! make the same claim only after their end-of-stream flush, which these
//! adapters always perform before assembling the report; the
//! `dynamic-randomwalk` competitor certifies its ½ floor through
//! single-edge local dominance instead.
//!
//! Every adapter reports the same seven-key telemetry prefix (built by
//! `common_extras`) so cross-solver tooling can diff recourse, repair
//! work, and pool behaviour without per-solver cases.

use std::time::Instant;

use wmatch_dynamic::{
    BatchError, DynamicConfig, DynamicCounters, DynamicMatcher, LazyMatcher, RandomWalkConfig,
    RandomWalkMatcher, RecomputeBaseline, ShardedMatcher, StaleMatcher, UpdateOp,
};

use crate::capabilities::{Capabilities, ModelKind, Objective};
use crate::error::SolveError;
use crate::instance::Instance;
use crate::report::{SolveReport, Telemetry};
use crate::request::{Effort, SolveRequest};
use crate::solvers::{preflight, reject_warm_start, Solver};

/// The update sequence of a dynamic instance (preflight guarantees the
/// model matches).
fn updates_of(instance: &Instance) -> &[UpdateOp] {
    instance
        .updates()
        .expect("preflight admits only the dynamic model")
}

/// Maps a malformed update onto the uniform error contract.
fn update_error(e: wmatch_dynamic::DynamicError) -> SolveError {
    SolveError::InvalidConfig {
        field: "updates",
        reason: e.to_string(),
    }
}

/// Maps a malformed update onto the uniform error contract, recording how
/// many stream ops had already been applied when it surfaced — partial
/// progress a caller replaying a long stream needs to resume or debug.
fn update_error_at(applied: usize, e: wmatch_dynamic::DynamicError) -> SolveError {
    SolveError::InvalidConfig {
        field: "updates",
        reason: format!("{e} ({applied} updates applied)"),
    }
}

/// Maps a batch failure (which already carries the applied-op count) onto
/// the uniform error contract, routing by retryability: a quarantined
/// shard (the sentinel healed the state before rejecting) surfaces as
/// [`SolveError::Transient`] so callers know a bounded retry is the
/// right response, while malformed-op rejections stay deterministic
/// configuration errors.
fn batch_error(e: BatchError) -> SolveError {
    if e.is_transient() {
        SolveError::Transient {
            reason: e.to_string(),
        }
    } else {
        SolveError::InvalidConfig {
            field: "updates",
            reason: e.to_string(),
        }
    }
}

/// The [`DynamicConfig`] a request maps onto.
fn dynamic_cfg(request: &SolveRequest) -> DynamicConfig {
    let rebuild_rounds = match request.effort {
        Effort::Quick => 1,
        Effort::Standard => 2,
        Effort::Thorough => 4,
    };
    DynamicConfig::default()
        .with_max_len(request.aug_depth)
        .with_rebuild_threshold(request.rebuild_threshold)
        .with_rebuild_rounds(rebuild_rounds)
        .with_eps(request.eps)
        .with_seed(request.seed)
        .with_threads(request.threads)
}

/// Renders updates-per-second from a replayed op count and duration.
fn updates_per_sec(updates: usize, replay: std::time::Duration) -> String {
    let secs = replay.as_secs_f64();
    if secs > 0.0 {
        format!("{:.1}", updates as f64 / secs)
    } else {
        "inf".to_string()
    }
}

/// The uniform telemetry prefix every dynamic solver reports, in this
/// pinned order: `updates_applied`, `recourse_total`, `updates_per_sec`,
/// `augmentations_applied`, `rebuilds`, `steals`, `scratch_high_water`.
/// Engines without a given facility report its honest zero (the baseline
/// has no pool, so `steals` is 0; the walk engine never rebuilds) rather
/// than omitting the key — cross-solver tooling diffs these columns
/// positionally. Solver-specific extras are appended *after* the prefix.
fn common_extras(
    counters: &DynamicCounters,
    updates: usize,
    replay: std::time::Duration,
    steals: u64,
    scratch_high_water: usize,
) -> Vec<(&'static str, String)> {
    vec![
        ("updates_applied", counters.updates_applied.to_string()),
        ("recourse_total", counters.recourse_total.to_string()),
        ("updates_per_sec", updates_per_sec(updates, replay)),
        (
            "augmentations_applied",
            counters.augmentations_applied.to_string(),
        ),
        ("rebuilds", counters.rebuilds.to_string()),
        ("steals", steals.to_string()),
        ("scratch_high_water", scratch_high_water.to_string()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmatch_dynamic::{BatchStats, DynamicError};

    #[test]
    fn batch_error_routes_by_retryability() {
        let transient = batch_error(BatchError {
            applied: 3,
            stats: BatchStats::default(),
            source: DynamicError::Quarantined { shard: 1 },
        });
        assert!(transient.is_transient());
        assert!(matches!(transient, SolveError::Transient { .. }));

        let fatal = batch_error(BatchError {
            applied: 3,
            stats: BatchStats::default(),
            source: DynamicError::EdgeNotFound { u: 0, v: 1 },
        });
        assert!(!fatal.is_transient());
        assert!(matches!(
            fatal,
            SolveError::InvalidConfig {
                field: "updates",
                ..
            }
        ));
    }
}

/// The incremental update-stream engine: bounded-depth augmentation
/// repair around each update, with optional batched rebuild epochs
/// (Algorithm 3's weight-class sweep on the solve's worker pool).
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicWgtAug;

impl Solver for DynamicWgtAug {
    fn name(&self) -> &'static str {
        "dynamic-wgtaug"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Dynamic],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            // Fact 1.3 at the default aug_depth 3 (ℓ = 2), maintained
            // after every update of the stream
            approx_floor: 0.5,
            theorem: "Fact 1.3 (bounded-length augmentation repair; dynamic driver)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let updates = updates_of(instance);
        let t0 = Instant::now();
        let mut engine = DynamicMatcher::from_graph(instance.graph(), dynamic_cfg(request))
            .map_err(update_error)?;
        let mut peak_live = engine.graph().live_edges();
        let replay_start = Instant::now();
        for (i, &op) in updates.iter().enumerate() {
            engine.apply(op).map_err(|e| update_error_at(i, e))?;
            peak_live = peak_live.max(engine.graph().live_edges());
        }
        let replay = replay_start.elapsed();
        let wall = t0.elapsed();
        let counters = engine.counters();
        let final_graph = engine.graph().snapshot();
        let telemetry = Telemetry {
            rounds: counters.rebuilds as usize,
            peak_stored_edges: peak_live + engine.matching().len(),
            wall,
            extras: common_extras(
                &counters,
                updates.len(),
                replay,
                engine.steals(),
                engine.scratch_high_water(),
            ),
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            engine.matching().clone(),
            Objective::Weight,
            &final_graph,
            request.certify,
            telemetry,
        ))
    }
}

/// The random-walk competitor: each update launches a handful of
/// seed-keyed alternating walks from the touched endpoints (à la the
/// local random-walk dynamic matching heuristics of Angriman, Meyerhenke,
/// Penschuck & Wagner, arXiv:2104.13098), applies the best positive
/// prefix each walk finds, then settles single-edge local dominance —
/// which alone certifies the declared ½ floor after every update,
/// independent of walk length or trial count.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicRandomWalk;

impl Solver for DynamicRandomWalk {
    fn name(&self) -> &'static str {
        "dynamic-randomwalk"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Dynamic],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            // single-edge local dominance: every OPT edge charges the
            // matched weight at its endpoints, each matched edge absorbs
            // at most two charges → w(M*) ≤ 2·w(M)
            approx_floor: 0.5,
            theorem: "local dominance (random-walk repair; cf. arXiv:2104.13098)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let updates = updates_of(instance);
        let trials = match request.effort {
            Effort::Quick => 2,
            Effort::Standard => 4,
            Effort::Thorough => 8,
        };
        let cfg = RandomWalkConfig::new()
            .with_walk_len(request.walk_len)
            .with_trials(trials)
            .with_seed(request.seed);
        let t0 = Instant::now();
        let mut engine =
            RandomWalkMatcher::from_graph(instance.graph(), cfg).map_err(update_error)?;
        let mut peak_live = engine.graph().live_edges();
        let replay_start = Instant::now();
        for (i, &op) in updates.iter().enumerate() {
            engine.apply(op).map_err(|e| update_error_at(i, e))?;
            peak_live = peak_live.max(engine.graph().live_edges());
        }
        let replay = replay_start.elapsed();
        let wall = t0.elapsed();
        let counters = engine.counters();
        let final_graph = engine.graph().snapshot();
        let mut extras = common_extras(
            &counters,
            updates.len(),
            replay,
            engine.steals(),
            engine.scratch_high_water(),
        );
        extras.extend([
            ("walks_taken", engine.walks_taken().to_string()),
            ("walk_hits", engine.walk_hits().to_string()),
        ]);
        let telemetry = Telemetry {
            peak_stored_edges: peak_live + engine.matching().len(),
            wall,
            extras,
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            engine.matching().clone(),
            Objective::Weight,
            &final_graph,
            request.certify,
            telemetry,
        ))
    }
}

/// The bounded-lazy competitor: each update repairs with at most
/// [`SolveRequest::work_budget`] augmentations; leftover dirty regions
/// are carried forward and settled by the end-of-stream flush this
/// adapter always performs, which restores the Fact 1.3 invariant the
/// declared floor is measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicLazy;

impl Solver for DynamicLazy {
    fn name(&self) -> &'static str {
        "dynamic-lazy"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Dynamic],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            // Fact 1.3 at the default aug_depth 3 — restored by the
            // end-of-stream flush (mid-stream the floor may lapse while
            // repair debt is carried)
            approx_floor: 0.5,
            theorem: "Fact 1.3 (bounded-budget repair, restored at flush)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let updates = updates_of(instance);
        let t0 = Instant::now();
        let mut engine =
            LazyMatcher::from_graph(instance.graph(), dynamic_cfg(request), request.work_budget)
                .map_err(update_error)?;
        let mut peak_live = engine.graph().live_edges();
        let replay_start = Instant::now();
        for (i, &op) in updates.iter().enumerate() {
            engine.apply(op).map_err(|e| update_error_at(i, e))?;
            peak_live = peak_live.max(engine.graph().live_edges());
        }
        // settle the carried repair debt: the declared floor (and the
        // certificate when requested) is a post-flush claim
        engine.flush();
        let replay = replay_start.elapsed();
        let wall = t0.elapsed();
        let counters = engine.counters();
        let final_graph = engine.graph().snapshot();
        let mut extras = common_extras(
            &counters,
            updates.len(),
            replay,
            engine.steals(),
            engine.scratch_high_water(),
        );
        extras.extend([
            ("budget_exhausted", engine.exhausted_updates().to_string()),
            ("carry", engine.carry_len().to_string()),
        ]);
        let telemetry = Telemetry {
            rounds: counters.rebuilds as usize,
            peak_stored_edges: peak_live + engine.matching().len(),
            wall,
            extras,
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            engine.matching().clone(),
            Objective::Weight,
            &final_graph,
            request.certify,
            telemetry,
        ))
    }
}

/// The tolerate-ε-staleness competitor: every update performs only the
/// structural change (plus dead-matched-edge cleanup), and one batched
/// repair sweep runs per [`SolveRequest::staleness_bound`] deferred
/// updates. This adapter flushes at end of stream, so the report's
/// matching meets the same Fact 1.3 floor as the eager engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicStale;

impl Solver for DynamicStale {
    fn name(&self) -> &'static str {
        "dynamic-stale"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Dynamic],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            // Fact 1.3 at flush boundaries; the adapter's end-of-stream
            // flush makes the reported matching a flush-boundary state
            approx_floor: 0.5,
            theorem: "Fact 1.3 (ε-stale deferred repair, restored at flush)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let updates = updates_of(instance);
        let t0 = Instant::now();
        let mut engine = StaleMatcher::from_graph(
            instance.graph(),
            dynamic_cfg(request),
            request.staleness_bound,
        )
        .map_err(update_error)?;
        let mut peak_live = engine.graph().live_edges();
        let replay_start = Instant::now();
        for (i, &op) in updates.iter().enumerate() {
            engine.apply(op).map_err(|e| update_error_at(i, e))?;
            peak_live = peak_live.max(engine.graph().live_edges());
        }
        // settle the open staleness window: the floor holds at flush
        // boundaries, and the report must be one
        engine.flush();
        let replay = replay_start.elapsed();
        let wall = t0.elapsed();
        let counters = engine.counters();
        let final_graph = engine.graph().snapshot();
        let mut extras = common_extras(
            &counters,
            updates.len(),
            replay,
            engine.steals(),
            engine.scratch_high_water(),
        );
        extras.extend([("flushes", engine.flushes().to_string())]);
        let telemetry = Telemetry {
            rounds: counters.rebuilds as usize,
            peak_stored_edges: peak_live + engine.matching().len(),
            wall,
            extras,
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            engine.matching().clone(),
            Objective::Weight,
            &final_graph,
            request.certify,
            telemetry,
        ))
    }
}

/// The honest baseline: the same structural updates and the same Fact 1.3
/// floor, but the matching is recomputed from scratch after every update
/// — what `dynamic-wgtaug`'s locality and recourse numbers are measured
/// against.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicRebuild;

impl Solver for DynamicRebuild {
    fn name(&self) -> &'static str {
        "dynamic-rebuild"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Dynamic],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            approx_floor: 0.5,
            theorem: "Fact 1.3 (recompute-from-scratch baseline)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let updates = updates_of(instance);
        let t0 = Instant::now();
        let mut baseline = RecomputeBaseline::from_graph(instance.graph(), request.aug_depth)
            .map_err(update_error)?;
        let mut peak_live = baseline.graph().live_edges();
        let replay_start = Instant::now();
        for (i, &op) in updates.iter().enumerate() {
            baseline.apply(op).map_err(|e| update_error_at(i, e))?;
            peak_live = peak_live.max(baseline.graph().live_edges());
        }
        let replay = replay_start.elapsed();
        let wall = t0.elapsed();
        let counters = baseline.counters();
        let final_graph = baseline.graph().snapshot();
        let telemetry = Telemetry {
            peak_stored_edges: peak_live + baseline.matching().len(),
            wall,
            extras: common_extras(
                &counters,
                updates.len(),
                replay,
                baseline.steals(),
                baseline.scratch_high_water(),
            ),
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            baseline.matching().clone(),
            Objective::Weight,
            &final_graph,
            request.certify,
            telemetry,
        ))
    }
}

/// The production-scale sharded engine: each batch's updates are grouped
/// by ball overlap (within vertex shards, each shard owning the pairs
/// whose smaller endpoint falls in its range), disjoint groups speculate
/// their repairs in parallel on a work-stealing pool, and a deterministic
/// commit phase replays clean plans — or falls back to sequential repair
/// when a foreign write invalidates a group's reads. With a single
/// worker the whole speculation layer is bypassed and updates commit
/// inline. The committed matching is bit-identical to `dynamic-wgtaug`
/// for every shard count, thread count, and batch size, so the same
/// Fact 1.3 floor holds after every batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicSharded;

impl Solver for DynamicSharded {
    fn name(&self) -> &'static str {
        "dynamic-sharded"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            models: &[ModelKind::Dynamic],
            objective: Objective::Weight,
            bipartite_only: false,
            exact: false,
            // bit-identical to the sequential engine → same Fact 1.3 floor
            approx_floor: 0.5,
            theorem: "Fact 1.3 (sharded speculate-and-replay dynamic driver)",
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        request: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        preflight(self.name(), &self.capabilities(), instance, request)?;
        reject_warm_start(self.name(), request)?;
        let updates = updates_of(instance);
        let t0 = Instant::now();
        let mut engine =
            ShardedMatcher::from_graph(instance.graph(), dynamic_cfg(request), request.shards)
                .map_err(update_error)?;
        let mut peak_live = engine.graph().live_edges();
        let replay_start = Instant::now();
        // batches bound speculation memory; peak_live is sampled per batch
        // (within a batch the live count moves monotonically per shard, so
        // per-op sampling would only refine ties)
        let mut offset = 0usize;
        for chunk in updates.chunks(4096) {
            engine.apply_all(chunk).map_err(|mut e| {
                e.applied += offset; // report stream-relative progress
                batch_error(e)
            })?;
            offset += chunk.len();
            peak_live = peak_live.max(engine.graph().live_edges());
        }
        let replay = replay_start.elapsed();
        let wall = t0.elapsed();
        let counters = engine.counters();
        let final_graph = engine.graph().snapshot();
        let mut extras = common_extras(
            &counters,
            updates.len(),
            replay,
            engine.steals(),
            engine.scratch_high_water(),
        );
        extras.extend([
            ("shards", engine.shard_count().to_string()),
            ("plans_replayed", engine.replayed().to_string()),
            ("plan_fallbacks", engine.fallbacks().to_string()),
            ("plans_inline", engine.inline_commits().to_string()),
            ("overlap_groups", engine.overlap_groups().to_string()),
            ("balls_parallel", engine.balls_parallel().to_string()),
        ]);
        let telemetry = Telemetry {
            rounds: counters.rebuilds as usize,
            peak_stored_edges: peak_live + engine.matching().len(),
            wall,
            extras,
            ..Telemetry::new()
        };
        Ok(SolveReport::assemble(
            self.name(),
            engine.matching().clone(),
            Objective::Weight,
            &final_graph,
            request.certify,
            telemetry,
        ))
    }
}
