//! The uniform request contract: one validated parameter set that every
//! solver maps onto its own configuration.

use wmatch_graph::Matching;

use crate::error::SolveError;

/// Upper bound on [`SolveRequest::threads`]; larger values are rejected as
/// configuration errors rather than spawning an absurd worker pool.
/// `0` is *not* a count — it is the documented "one worker per available
/// core" sentinel shared with `MainAlgConfig::threads` in `wmatch-core`
/// and resolved by `wmatch_graph::pool::resolve_threads`.
pub const MAX_THREADS: usize = 1024;

/// Upper bound on the round and pass budgets; beyond this the budgets stop
/// being budgets.
pub const MAX_BUDGET: usize = 1_000_000;

/// Upper bound on [`SolveRequest::aug_depth`]: the repair search of the
/// dynamic solvers is exponential in the depth, so anything beyond this is
/// a configuration mistake, not a request.
pub const MAX_AUG_DEPTH: usize = 9;

/// Upper bound on [`SolveRequest::walk_len`]: the random-walk repair
/// engine's per-trial step cap. The walk's quality comes from its
/// dominance settle, not from walk length, so anything beyond this only
/// burns time.
pub const MAX_WALK_LEN: usize = 64;

/// How much work an approximate solver should invest beyond its defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Cheapest configuration that still meets the declared floor.
    Quick,
    /// The `practical` defaults of each algorithm (the tested sweet spot).
    Standard,
    /// Finer granularity and more trials (the `thorough` configurations).
    Thorough,
}

/// A validated solve request.
///
/// Build one with [`SolveRequest::new`] and the chainable `with_*`
/// setters; [`SolveRequest::validate`] (called by every solver on entry)
/// rejects out-of-range parameters with
/// [`SolveError::InvalidConfig`] instead of panicking deep inside the
/// algorithms.
///
/// # Example
///
/// ```
/// use wmatch_api::SolveRequest;
///
/// let req = SolveRequest::new().with_eps(0.2).with_seed(7).with_certify(true);
/// assert!(req.validate().is_ok());
/// assert!(SolveRequest::new().with_eps(0.0).validate().is_err());
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SolveRequest {
    /// Target approximation slack ε, strictly inside (0, 1). Approximate
    /// solvers derive their granularity/δ parameters from it.
    pub eps: f64,
    /// RNG seed for every randomized choice inside the solver.
    pub seed: u64,
    /// Maximum outer rounds (Algorithm 3 rounds, coreset iterations);
    /// must be ≥ 1.
    pub round_budget: usize,
    /// Maximum stream passes per unweighted black-box invocation (and the
    /// MPC analogue, coreset iterations per box); must be ≥ 1.
    pub pass_budget: usize,
    /// Worker threads for solvers with parallel layers (the Algorithm 3
    /// class sweep, Algorithm 4 candidate scoring, the MPC simulator's
    /// machine rounds): `1` = sequential, `0` = one worker per available
    /// core, at most [`MAX_THREADS`]. This is the same contract as
    /// `MainAlgConfig::threads` in `wmatch-core` (requests map onto it
    /// verbatim) and is resolved to a concrete count by
    /// `wmatch_graph::pool::resolve_threads`. The determinism invariant
    /// holds for every value: with a fixed [`SolveRequest::seed`], the
    /// returned matching is bit-identical for any `threads`.
    pub threads: usize,
    /// Maximum edges per repair augmentation for the dynamic solvers
    /// (their bounded-depth search; must lie in `1..=`[`MAX_AUG_DEPTH`]).
    /// With `aug_depth = 2ℓ − 1` the maintained matching certifies a
    /// `(1 − 1/ℓ)` approximation after every update (Fact 1.3); the
    /// default 3 backs the dynamic solvers' declared ½ floor. Ignored by
    /// non-dynamic solvers.
    pub aug_depth: usize,
    /// Updates per batched rebuild epoch of `dynamic-wgtaug` (0 = pure
    /// incremental repair, never rebuild; at most [`MAX_BUDGET`]). An
    /// epoch runs Algorithm 3's weight-class sweep on the solve's worker
    /// pool, warm-started from the maintained matching. Ignored by
    /// non-dynamic solvers.
    pub rebuild_threshold: usize,
    /// Vertex-partitioned shards for the `dynamic-sharded` solver: `1` =
    /// a single shard (sequential speculation), `0` = one shard per
    /// available core, at most [`MAX_THREADS`]. The sharded engine's
    /// determinism contract mirrors `threads`: with a fixed seed the
    /// committed matching is bit-identical to the single-shard engine for
    /// every shard count. Ignored by non-sharded solvers.
    pub shards: usize,
    /// Maximum steps per repair walk of the `dynamic-randomwalk` solver
    /// (must lie in `1..=`[`MAX_WALK_LEN`]). Longer walks can discover
    /// longer augmenting swaps but cost proportionally more per trial; the
    /// solver's ½ floor does not depend on it (it comes from the local-
    /// dominance settle after every update). Ignored by other solvers.
    pub walk_len: usize,
    /// Augmentations allowed per update for the `dynamic-lazy` solver
    /// (must lie in `1..=`[`MAX_BUDGET`]). When a single update needs more
    /// repair work than the budget allows, the leftover dirty region is
    /// carried into subsequent updates and settled by the end-of-stream
    /// flush. Ignored by other solvers.
    pub work_budget: usize,
    /// Deferred updates per batched repair of the `dynamic-stale` solver
    /// (must lie in `1..=`[`MAX_BUDGET`]; 1 repairs after every op like
    /// the eager engine). Between flushes the maintained matching is valid
    /// but uncertified — the Fact 1.3 floor holds at flush boundaries.
    /// Ignored by other solvers.
    pub staleness_bound: usize,
    /// Effort level for approximate solvers.
    pub effort: Effort,
    /// When set, the report carries an approximation
    /// [`Certificate`](crate::Certificate) computed against the exact
    /// oracle for the solver's objective (O(V³) — intended for tests and
    /// experiments, not hot paths).
    pub certify: bool,
    /// Optional warm-start matching for solvers that support improving an
    /// existing matching (Theorem 4.1 improves *any* matching).
    pub warm_start: Option<Matching>,
}

impl Default for SolveRequest {
    fn default() -> Self {
        SolveRequest {
            eps: 0.25,
            seed: 0,
            round_budget: 40,
            pass_budget: 8,
            threads: 1,
            aug_depth: 3,
            rebuild_threshold: 0,
            shards: 1,
            walk_len: 8,
            work_budget: 4,
            staleness_bound: 64,
            effort: Effort::Standard,
            certify: false,
            warm_start: None,
        }
    }
}

impl SolveRequest {
    /// The default request: ε = 0.25, seed 0, 40 rounds, 8 passes,
    /// sequential, standard effort, no certification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the target slack ε (validated to lie strictly in (0, 1)).
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the outer round budget (validated ≥ 1).
    pub fn with_round_budget(mut self, round_budget: usize) -> Self {
        self.round_budget = round_budget;
        self
    }

    /// Sets the per-box pass budget (validated ≥ 1).
    pub fn with_pass_budget(mut self, pass_budget: usize) -> Self {
        self.pass_budget = pass_budget;
        self
    }

    /// Sets the worker-thread count (0 = one per available core,
    /// validated ≤ [`MAX_THREADS`]; see [`SolveRequest::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The concrete worker count this request resolves to: `threads`
    /// itself, or the number of available cores when `threads == 0` —
    /// exactly what the solvers' worker pools will run with.
    ///
    /// # Example
    ///
    /// ```
    /// use wmatch_api::SolveRequest;
    ///
    /// assert_eq!(SolveRequest::new().with_threads(4).resolved_threads(), 4);
    /// assert!(SolveRequest::new().with_threads(0).resolved_threads() >= 1);
    /// ```
    pub fn resolved_threads(&self) -> usize {
        wmatch_graph::pool::resolve_threads(self.threads)
    }

    /// Sets the dynamic solvers' repair-augmentation depth (validated in
    /// `1..=`[`MAX_AUG_DEPTH`]; see [`SolveRequest::aug_depth`]).
    pub fn with_aug_depth(mut self, aug_depth: usize) -> Self {
        self.aug_depth = aug_depth;
        self
    }

    /// Sets the dynamic rebuild threshold (0 = never rebuild; see
    /// [`SolveRequest::rebuild_threshold`]).
    pub fn with_rebuild_threshold(mut self, rebuild_threshold: usize) -> Self {
        self.rebuild_threshold = rebuild_threshold;
        self
    }

    /// Sets the shard count for the sharded dynamic engine (0 = one per
    /// available core, validated ≤ [`MAX_THREADS`]; see
    /// [`SolveRequest::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the random-walk solver's steps-per-walk cap (validated in
    /// `1..=`[`MAX_WALK_LEN`]; see [`SolveRequest::walk_len`]).
    pub fn with_walk_len(mut self, walk_len: usize) -> Self {
        self.walk_len = walk_len;
        self
    }

    /// Sets the lazy solver's augmentations-per-update budget (validated
    /// in `1..=`[`MAX_BUDGET`]; see [`SolveRequest::work_budget`]).
    pub fn with_work_budget(mut self, work_budget: usize) -> Self {
        self.work_budget = work_budget;
        self
    }

    /// Sets the stale solver's deferred-updates-per-flush bound (validated
    /// in `1..=`[`MAX_BUDGET`]; see [`SolveRequest::staleness_bound`]).
    pub fn with_staleness_bound(mut self, staleness_bound: usize) -> Self {
        self.staleness_bound = staleness_bound;
        self
    }

    /// Sets the effort level.
    pub fn with_effort(mut self, effort: Effort) -> Self {
        self.effort = effort;
        self
    }

    /// Enables or disables the approximation certificate.
    pub fn with_certify(mut self, certify: bool) -> Self {
        self.certify = certify;
        self
    }

    /// Sets a warm-start matching.
    pub fn with_warm_start(mut self, warm_start: Matching) -> Self {
        self.warm_start = Some(warm_start);
        self
    }

    /// Checks every parameter against its valid range.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidConfig`] naming the first offending field.
    pub fn validate(&self) -> Result<(), SolveError> {
        if !self.eps.is_finite() || self.eps <= 0.0 || self.eps >= 1.0 {
            return Err(SolveError::InvalidConfig {
                field: "eps",
                reason: format!("must lie strictly in (0, 1), got {}", self.eps),
            });
        }
        if self.round_budget == 0 {
            return Err(SolveError::InvalidConfig {
                field: "round_budget",
                reason: "must be at least 1".into(),
            });
        }
        if self.round_budget > MAX_BUDGET {
            return Err(SolveError::InvalidConfig {
                field: "round_budget",
                reason: format!("must be at most {MAX_BUDGET}, got {}", self.round_budget),
            });
        }
        if self.pass_budget == 0 {
            return Err(SolveError::InvalidConfig {
                field: "pass_budget",
                reason: "must be at least 1".into(),
            });
        }
        if self.pass_budget > MAX_BUDGET {
            return Err(SolveError::InvalidConfig {
                field: "pass_budget",
                reason: format!("must be at most {MAX_BUDGET}, got {}", self.pass_budget),
            });
        }
        if self.threads > MAX_THREADS {
            return Err(SolveError::InvalidConfig {
                field: "threads",
                reason: format!(
                    "must be at most {MAX_THREADS} (0 = one per available core), got {}",
                    self.threads
                ),
            });
        }
        if self.aug_depth == 0 || self.aug_depth > MAX_AUG_DEPTH {
            return Err(SolveError::InvalidConfig {
                field: "aug_depth",
                reason: format!(
                    "must lie in 1..={MAX_AUG_DEPTH} (the repair search is exponential in it), \
                     got {}",
                    self.aug_depth
                ),
            });
        }
        if self.shards > MAX_THREADS {
            return Err(SolveError::InvalidConfig {
                field: "shards",
                reason: format!(
                    "must be at most {MAX_THREADS} (0 = one per available core), got {}",
                    self.shards
                ),
            });
        }
        if self.rebuild_threshold > MAX_BUDGET {
            return Err(SolveError::InvalidConfig {
                field: "rebuild_threshold",
                reason: format!(
                    "must be at most {MAX_BUDGET} (0 = never rebuild), got {}",
                    self.rebuild_threshold
                ),
            });
        }
        if self.walk_len == 0 || self.walk_len > MAX_WALK_LEN {
            return Err(SolveError::InvalidConfig {
                field: "walk_len",
                reason: format!("must lie in 1..={MAX_WALK_LEN}, got {}", self.walk_len),
            });
        }
        if self.work_budget == 0 || self.work_budget > MAX_BUDGET {
            return Err(SolveError::InvalidConfig {
                field: "work_budget",
                reason: format!("must lie in 1..={MAX_BUDGET}, got {}", self.work_budget),
            });
        }
        if self.staleness_bound == 0 || self.staleness_bound > MAX_BUDGET {
            return Err(SolveError::InvalidConfig {
                field: "staleness_bound",
                reason: format!(
                    "must lie in 1..={MAX_BUDGET} (1 = repair after every op), got {}",
                    self.staleness_bound
                ),
            });
        }
        Ok(())
    }
}
