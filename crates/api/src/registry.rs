//! The solver registry: every algorithm in the workspace behind one
//! enumerable, capability-filterable list.

use crate::error::SolveError;
use crate::instance::Instance;
use crate::report::SolveReport;
use crate::request::SolveRequest;
use crate::solvers::baselines::{GreedySolver, LocalRatioSolver, RandomOrderUnweightedSolver};
use crate::solvers::boxes::{MpcMcmSolver, StreamMcmSolver};
use crate::solvers::dynamic::{
    DynamicLazy, DynamicRandomWalk, DynamicRebuild, DynamicSharded, DynamicStale, DynamicWgtAug,
};
use crate::solvers::exact::{BlossomSolver, HopcroftKarpSolver, HungarianSolver};
use crate::solvers::oracle::OracleLekm;
use crate::solvers::paper::{MpcMainAlg, OfflineMainAlg, RandArrSolver, StreamingMainAlg};
use crate::solvers::Solver;

/// Every registered solver, in presentation order: the paper's four
/// drivers, the dynamic engines, the baselines, the exact oracles, and
/// the unweighted black boxes.
pub fn registry() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(OfflineMainAlg),
        Box::new(StreamingMainAlg),
        Box::new(MpcMainAlg),
        Box::new(RandArrSolver),
        Box::new(DynamicWgtAug),
        Box::new(DynamicSharded),
        Box::new(DynamicRebuild),
        Box::new(DynamicRandomWalk),
        Box::new(DynamicLazy),
        Box::new(DynamicStale),
        Box::new(RandomOrderUnweightedSolver),
        Box::new(GreedySolver),
        Box::new(LocalRatioSolver),
        Box::new(BlossomSolver),
        Box::new(HungarianSolver),
        Box::new(OracleLekm),
        Box::new(HopcroftKarpSolver),
        Box::new(StreamMcmSolver),
        Box::new(MpcMcmSolver),
    ]
}

/// The registered solvers that accept `instance`: its arrival-model kind
/// is supported and, for bipartite-only solvers, the instance is
/// bipartite.
pub fn registry_for(instance: &Instance) -> Vec<Box<dyn Solver>> {
    let bipartite = instance.is_bipartite();
    registry()
        .into_iter()
        .filter(|s| {
            let caps = s.capabilities();
            caps.supports(instance.model().kind()) && (!caps.bipartite_only || bipartite)
        })
        .collect()
}

/// Looks a solver up by its registry name.
///
/// # Errors
///
/// [`SolveError::UnknownSolver`] when no solver has that name.
pub fn solver(name: &str) -> Result<Box<dyn Solver>, SolveError> {
    registry()
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| SolveError::UnknownSolver { name: name.into() })
}

/// Convenience: resolves `name` and solves `instance` under `request`.
///
/// # Errors
///
/// [`SolveError::UnknownSolver`] for unknown names, otherwise whatever
/// the solver's [`Solver::solve`] returns.
///
/// # Example
///
/// ```
/// use wmatch_api::{solve, Instance, SolveRequest};
/// use wmatch_graph::generators;
///
/// let (g, _) = generators::fig1_graph();
/// let report = solve("main-alg-offline", &Instance::offline(g), &SolveRequest::new()).unwrap();
/// assert_eq!(report.value, 8); // the optimum of the paper's Figure 1
/// ```
pub fn solve(
    name: &str,
    instance: &Instance,
    request: &SolveRequest,
) -> Result<SolveReport, SolveError> {
    solver(name)?.solve(instance, request)
}
