//! A problem instance: a weighted graph together with the computational
//! model its edges are presented in.

use std::sync::Arc;

use wmatch_dynamic::UpdateOp;
use wmatch_graph::Graph;
use wmatch_stream::VecStream;

use crate::capabilities::ModelKind;
use crate::error::SolveError;

/// How the instance's edges reach the solver.
///
/// This is the paper's taxonomy (Section 2) plus the fully-dynamic
/// arrival model: the same weighted graph can be solved offline, over a
/// single- or multi-pass edge stream, distributed over MPC machines, or
/// maintained under an interleaved insert/delete update stream — the
/// reduction to unweighted augmentations is the same primitive in every
/// model.
///
/// The enum is `Clone` but (since the dynamic variant carries its update
/// sequence) no longer `Copy`; the sequence is shared behind an [`Arc`],
/// so cloning an instance stays cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalModel {
    /// The whole graph is available up front.
    Offline,
    /// Edges arrive in one uniformly random order drawn from `seed`
    /// (fixed across passes — the paper's random-edge-arrival model).
    RandomOrder {
        /// Seed of the arrival permutation.
        seed: u64,
    },
    /// Edges arrive in the adversary-chosen (insertion) order.
    Adversarial,
    /// Edges are distributed over `machines` machines with `memory_words`
    /// words of memory (and per-round communication) each.
    Mpc {
        /// Number of machines Γ.
        machines: usize,
        /// Per-machine memory/communication budget S, in words.
        memory_words: usize,
    },
    /// Edges are inserted and deleted by an update stream applied on top
    /// of the instance's (possibly empty) initial graph; the solver
    /// maintains the matching across the whole sequence.
    Dynamic {
        /// The interleaved insert/delete operations, in order.
        updates: Arc<[UpdateOp]>,
    },
}

impl ArrivalModel {
    /// The parameter-free kind of this model.
    pub fn kind(&self) -> ModelKind {
        match self {
            ArrivalModel::Offline => ModelKind::Offline,
            ArrivalModel::RandomOrder { .. } => ModelKind::RandomOrder,
            ArrivalModel::Adversarial => ModelKind::Adversarial,
            ArrivalModel::Mpc { .. } => ModelKind::Mpc,
            ArrivalModel::Dynamic { .. } => ModelKind::Dynamic,
        }
    }
}

/// A matching instance: graph + arrival model + optional declared
/// bipartition.
///
/// # Example
///
/// ```
/// use wmatch_api::{ArrivalModel, Instance};
/// use wmatch_graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 2, 5);
/// g.add_edge(1, 3, 7);
/// let inst = Instance::random_order(g, 42);
/// assert_eq!(inst.model().kind(), wmatch_api::ModelKind::RandomOrder);
/// assert!(inst.is_bipartite()); // auto-detected 2-coloring
/// ```
#[derive(Debug, Clone)]
pub struct Instance {
    graph: Graph,
    model: ArrivalModel,
    side: Option<Vec<bool>>,
}

impl Instance {
    /// An instance presented in the given model.
    pub fn new(graph: Graph, model: ArrivalModel) -> Self {
        Instance {
            graph,
            model,
            side: None,
        }
    }

    /// An offline instance.
    pub fn offline(graph: Graph) -> Self {
        Instance::new(graph, ArrivalModel::Offline)
    }

    /// A random-order streaming instance with arrival permutation `seed`.
    pub fn random_order(graph: Graph, seed: u64) -> Self {
        Instance::new(graph, ArrivalModel::RandomOrder { seed })
    }

    /// An adversarial-order streaming instance (edges arrive in the
    /// graph's insertion order).
    pub fn adversarial(graph: Graph) -> Self {
        Instance::new(graph, ArrivalModel::Adversarial)
    }

    /// An MPC instance over `machines` machines of `memory_words` words.
    pub fn mpc(graph: Graph, machines: usize, memory_words: usize) -> Self {
        Instance::new(
            graph,
            ArrivalModel::Mpc {
                machines,
                memory_words,
            },
        )
    }

    /// A fully-dynamic instance: `updates` applied on top of `initial`
    /// (which may be edgeless — pass `Graph::new(n)` to fix the vertex
    /// range).
    ///
    /// # Example
    ///
    /// ```
    /// use wmatch_api::{Instance, ModelKind, UpdateOp};
    /// use wmatch_graph::Graph;
    ///
    /// let inst = Instance::dynamic(
    ///     Graph::new(3),
    ///     vec![UpdateOp::insert(0, 1, 5), UpdateOp::delete(0, 1)],
    /// );
    /// assert_eq!(inst.model().kind(), ModelKind::Dynamic);
    /// assert_eq!(inst.updates().unwrap().len(), 2);
    /// ```
    pub fn dynamic(initial: Graph, updates: impl Into<Arc<[UpdateOp]>>) -> Self {
        Instance::new(
            initial,
            ArrivalModel::Dynamic {
                updates: updates.into(),
            },
        )
    }

    /// Declares a bipartition (`side[v]` = side of vertex `v`), checked
    /// against the graph's edges.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidConfig`] if `side` has the wrong length or an
    /// edge does not cross it.
    pub fn with_bipartition(mut self, side: Vec<bool>) -> Result<Self, SolveError> {
        match self.graph.respects_bipartition(&side) {
            Ok(true) => {
                self.side = Some(side);
                Ok(self)
            }
            Ok(false) => Err(SolveError::InvalidConfig {
                field: "bipartition",
                reason: "an edge does not cross the declared bipartition".into(),
            }),
            Err(e) => Err(SolveError::InvalidConfig {
                field: "bipartition",
                reason: e.to_string(),
            }),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The arrival model.
    pub fn model(&self) -> &ArrivalModel {
        &self.model
    }

    /// The declared bipartition, if one was provided.
    pub fn declared_bipartition(&self) -> Option<&[bool]> {
        self.side.as_deref()
    }

    /// The update sequence of a [`ArrivalModel::Dynamic`] instance
    /// (`None` for every other model).
    pub fn updates(&self) -> Option<&[UpdateOp]> {
        match &self.model {
            ArrivalModel::Dynamic { updates } => Some(updates),
            _ => None,
        }
    }

    /// A valid bipartition: the declared one, or a 2-coloring detected by
    /// BFS. `None` when the graph is not bipartite.
    pub fn bipartition(&self) -> Option<Vec<bool>> {
        match &self.side {
            Some(s) => Some(s.clone()),
            None => self.graph.bipartition(),
        }
    }

    /// Whether the instance is (declared or detectably) bipartite.
    pub fn is_bipartite(&self) -> bool {
        self.side.is_some() || self.graph.bipartition().is_some()
    }

    /// Materializes the instance as an in-memory edge stream in the
    /// instance's arrival order.
    ///
    /// Offline and MPC instances stream in insertion order (useful for
    /// solvers that accept both offline and streamed input); dynamic
    /// instances stream their *initial* graph — the update sequence is
    /// not expressible as an insert-only stream.
    pub fn stream(&self) -> VecStream {
        let edges = self.graph.edges().to_vec();
        let s = match self.model {
            ArrivalModel::RandomOrder { seed } => VecStream::random_order(edges, seed),
            _ => VecStream::adversarial(edges),
        };
        s.with_vertex_count(self.graph.vertex_count())
    }
}
