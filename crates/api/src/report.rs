//! The uniform result contract: every solver returns a [`SolveReport`]
//! carrying the matching plus comparable telemetry.

use std::time::Duration;

use wmatch_graph::exact::{max_cardinality_matching, max_weight_matching};
use wmatch_graph::{Graph, Matching};

use crate::capabilities::Objective;

/// Uniform run telemetry. Fields that do not apply to a solver are left at
/// their zero values (e.g. `passes` for offline solvers).
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct Telemetry {
    /// Outer rounds executed (Algorithm 3 rounds, MPC model rounds,
    /// coreset iterations — the model's own round measure).
    pub rounds: usize,
    /// Stream passes consumed in the model's accounting (0 for offline
    /// solvers).
    pub passes: usize,
    /// Peak stored items: edges for streaming solvers
    /// ([`MemoryMeter`](wmatch_stream::MemoryMeter) units), per-machine
    /// words for MPC solvers, total edges held for offline solvers.
    pub peak_stored_edges: usize,
    /// Wall-clock time of the solve call.
    pub wall: Duration,
    /// Matching weight after every outer round, for solvers that iterate
    /// (the convergence series of experiment E5); empty otherwise.
    pub trace: Vec<i128>,
    /// Solver-specific diagnostics as key/value pairs (branch winners,
    /// stack sizes, sequential pass counts, …).
    pub extras: Vec<(&'static str, String)>,
}

impl Telemetry {
    /// Telemetry with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an extra by key.
    pub fn extra(&self, key: &str) -> Option<&str> {
        self.extras
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An approximation certificate: the solver's objective value compared
/// against the exact oracle for its objective.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Certificate {
    /// The certified objective.
    pub objective: Objective,
    /// The exact optimum (weight, or cardinality as a wide integer).
    pub optimum: i128,
    /// `value / optimum` (1.0 when the optimum is 0).
    pub ratio: f64,
}

/// The uniform output of every solver.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SolveReport {
    /// Name of the solver that produced this report.
    pub solver: &'static str,
    /// The matching found.
    pub matching: Matching,
    /// The matching's objective value: its weight for
    /// [`Objective::Weight`] solvers, its cardinality for
    /// [`Objective::Cardinality`] solvers.
    pub value: i128,
    /// Uniform run telemetry.
    pub telemetry: Telemetry,
    /// Present when the request asked for certification.
    pub certificate: Option<Certificate>,
}

impl SolveReport {
    /// Assembles a report, computing the objective value and (when
    /// `certify` is set) the certificate against the exact oracle.
    pub(crate) fn assemble(
        solver: &'static str,
        matching: Matching,
        objective: Objective,
        graph: &Graph,
        certify: bool,
        telemetry: Telemetry,
    ) -> Self {
        let value = objective_value(&matching, objective);
        let certificate = certify.then(|| {
            let optimum = match objective {
                Objective::Weight => max_weight_matching(graph).weight(),
                Objective::Cardinality => max_cardinality_matching(graph).len() as i128,
            };
            let ratio = if optimum == 0 {
                1.0
            } else {
                value as f64 / optimum as f64
            };
            Certificate {
                objective,
                optimum,
                ratio,
            }
        });
        SolveReport {
            solver,
            matching,
            value,
            telemetry,
            certificate,
        }
    }
}

/// The objective value of a matching.
pub fn objective_value(m: &Matching, objective: Objective) -> i128 {
    match objective {
        Objective::Weight => m.weight(),
        Objective::Cardinality => m.len() as i128,
    }
}
