//! The uniform result contract: every solver returns a [`SolveReport`]
//! carrying the matching plus comparable telemetry.

use std::time::{Duration, Instant};

use wmatch_graph::exact::{max_cardinality_matching, max_weight_matching};
use wmatch_graph::{Graph, Matching};

use crate::capabilities::Objective;

/// Uniform run telemetry. Fields that do not apply to a solver are left at
/// their zero values (e.g. `passes` for offline solvers).
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct Telemetry {
    /// Outer rounds executed (Algorithm 3 rounds, MPC model rounds,
    /// coreset iterations — the model's own round measure).
    pub rounds: usize,
    /// Stream passes consumed in the model's accounting (0 for offline
    /// solvers).
    pub passes: usize,
    /// Peak stored items: edges for streaming solvers
    /// ([`MemoryMeter`](wmatch_stream::MemoryMeter) units), per-machine
    /// words for MPC solvers, total edges held for offline solvers.
    pub peak_stored_edges: usize,
    /// Wall-clock time of the solve call.
    pub wall: Duration,
    /// Matching weight after every outer round, for solvers that iterate
    /// (the convergence series of experiment E5); empty otherwise.
    pub trace: Vec<i128>,
    /// Solver-specific diagnostics as key/value pairs (branch winners,
    /// stack sizes, sequential pass counts, …).
    pub extras: Vec<(&'static str, String)>,
}

impl Telemetry {
    /// Telemetry with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an extra by key.
    pub fn extra(&self, key: &str) -> Option<&str> {
        self.extras
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An approximation certificate: the solver's objective value compared
/// against the exact oracle for its objective.
///
/// On bipartite instances the optimum comes from the slack-array oracle
/// (`wmatch-oracle`) and [`Certificate::duals`] carries the dual labels
/// proving it — any consumer can re-check the claim with
/// [`Certificate::verify`] without trusting the solver. On non-bipartite
/// instances the blossom oracle supplies the optimum and `duals` is
/// `None` (no compact certificate is extracted from blossom).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Certificate {
    /// The certified objective.
    pub objective: Objective,
    /// The exact optimum (weight, or cardinality as a wide integer).
    pub optimum: i128,
    /// `value / optimum` (1.0 when the optimum is 0).
    pub ratio: f64,
    /// Dual labels per vertex certifying `optimum` (bipartite instances
    /// only): for [`Objective::Weight`], feasible Hungarian labels with
    /// `Σ duals = optimum`; for [`Objective::Cardinality`], a König
    /// vertex cover with `Σ duals = optimum`.
    pub duals: Option<Vec<i128>>,
}

impl Certificate {
    /// Independently re-checks this certificate against the graph and the
    /// reported matching: the duals (when present) must be a feasible
    /// dual solution summing to `optimum` — proving no matching can beat
    /// `optimum` — and the matching's objective value must reproduce
    /// `ratio`. This is the check the agreement suites run, and it
    /// requires no access to any solver internals.
    ///
    /// # Errors
    ///
    /// The first violated condition, as a human-readable string.
    pub fn verify(&self, g: &Graph, matching: &Matching) -> Result<(), String> {
        if let Some(duals) = &self.duals {
            if duals.len() != g.vertex_count() {
                return Err(format!(
                    "{} dual labels for {} vertices",
                    duals.len(),
                    g.vertex_count()
                ));
            }
            if let Some(&y) = duals.iter().find(|&&y| y < 0) {
                return Err(format!("negative dual label {y}"));
            }
            for e in g.edges() {
                let sum = duals[e.u as usize] + duals[e.v as usize];
                let demand = match self.objective {
                    Objective::Weight => e.weight as i128,
                    Objective::Cardinality => 1,
                };
                if sum < demand {
                    return Err(format!(
                        "edge {e} violates dual feasibility ({sum} < {demand})"
                    ));
                }
            }
            let total: i128 = duals.iter().sum();
            if total != self.optimum {
                return Err(format!(
                    "dual objective {total} does not equal claimed optimum {}",
                    self.optimum
                ));
            }
        }
        matching
            .validate(Some(g))
            .map_err(|e| format!("matching invalid: {e}"))?;
        let value = objective_value(matching, self.objective);
        if value > self.optimum {
            return Err(format!(
                "matching value {value} exceeds claimed optimum {}",
                self.optimum
            ));
        }
        let expect = if self.optimum == 0 {
            1.0
        } else {
            value as f64 / self.optimum as f64
        };
        if (self.ratio - expect).abs() > 1e-12 {
            return Err(format!(
                "ratio {} does not reproduce value/optimum = {expect}",
                self.ratio
            ));
        }
        Ok(())
    }
}

/// The uniform output of every solver.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SolveReport {
    /// Name of the solver that produced this report.
    pub solver: &'static str,
    /// The matching found.
    pub matching: Matching,
    /// The matching's objective value: its weight for
    /// [`Objective::Weight`] solvers, its cardinality for
    /// [`Objective::Cardinality`] solvers.
    pub value: i128,
    /// Uniform run telemetry.
    pub telemetry: Telemetry,
    /// Present when the request asked for certification.
    pub certificate: Option<Certificate>,
}

impl SolveReport {
    /// Assembles a report, computing the objective value and (when
    /// `certify` is set) the certificate against the exact oracle.
    ///
    /// On bipartite graphs the optimum comes from the `wmatch-oracle`
    /// slack-array solver and the certificate carries its dual labels; on
    /// non-bipartite graphs the dense blossom oracles are the fallback
    /// (no duals). Either way the certification wall time is recorded in
    /// the telemetry extras under `certify_ns`.
    pub(crate) fn assemble(
        solver: &'static str,
        matching: Matching,
        objective: Objective,
        graph: &Graph,
        certify: bool,
        mut telemetry: Telemetry,
    ) -> Self {
        let value = objective_value(&matching, objective);
        let certificate = certify.then(|| {
            let start = Instant::now();
            let (optimum, duals) = match graph.bipartition() {
                Some(side) => match objective {
                    Objective::Weight => {
                        let cert = wmatch_oracle::certify_max_weight(graph, &side)
                            .expect("bipartition() output fits the oracle");
                        (cert.optimum, Some(cert.labels))
                    }
                    Objective::Cardinality => {
                        let cert = wmatch_oracle::certify_max_cardinality(graph, &side)
                            .expect("bipartition() output fits the oracle");
                        (cert.optimum, Some(cert.labels))
                    }
                },
                None => match objective {
                    Objective::Weight => (max_weight_matching(graph).weight(), None),
                    Objective::Cardinality => (max_cardinality_matching(graph).len() as i128, None),
                },
            };
            telemetry
                .extras
                .push(("certify_ns", start.elapsed().as_nanos().to_string()));
            let ratio = if optimum == 0 {
                1.0
            } else {
                value as f64 / optimum as f64
            };
            Certificate {
                objective,
                optimum,
                ratio,
                duals,
            }
        });
        SolveReport {
            solver,
            matching,
            value,
            telemetry,
            certificate,
        }
    }
}

/// The objective value of a matching.
pub fn objective_value(m: &Matching, objective: Objective) -> i128 {
    match objective {
        Objective::Weight => m.weight(),
        Objective::Cardinality => m.len() as i128,
    }
}
