//! What a solver can do: supported arrival models, objective, graph-class
//! restrictions and the approximation floor it is tested against.

use std::fmt;

/// The kind of an [`ArrivalModel`](crate::ArrivalModel), without its
/// parameters. Used in capability declarations and error reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The whole graph is available up front.
    Offline,
    /// Edges arrive in one uniformly random order (single- or multi-pass).
    RandomOrder,
    /// Edges arrive in an adversary-chosen order (single- or multi-pass).
    Adversarial,
    /// Edges are distributed over machines of bounded memory (MPC).
    Mpc,
    /// Edges are inserted *and deleted* by an interleaved update stream;
    /// the matching is maintained with bounded recourse.
    Dynamic,
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelKind::Offline => "offline",
            ModelKind::RandomOrder => "random-order",
            ModelKind::Adversarial => "adversarial",
            ModelKind::Mpc => "MPC",
            ModelKind::Dynamic => "dynamic",
        };
        f.write_str(s)
    }
}

/// What a solver maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Total matching weight (`Matching::weight`).
    Weight,
    /// Number of matched edges (`Matching::len`); weights are ignored.
    Cardinality,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Objective::Weight => "weight",
            Objective::Cardinality => "cardinality",
        };
        f.write_str(s)
    }
}

/// A solver's declared contract, used by
/// [`registry_for`](crate::registry_for) to filter and by the cross-solver
/// agreement suite to pick oracles and floors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Capabilities {
    /// The arrival-model kinds the solver accepts.
    pub models: &'static [ModelKind],
    /// The objective the solver maximizes.
    pub objective: Objective,
    /// Whether the solver only accepts bipartite instances.
    pub bipartite_only: bool,
    /// Whether the solver is exact (an oracle) for its objective.
    pub exact: bool,
    /// The objective-ratio floor (vs. the exact oracle) the registry
    /// agreement suite holds the solver to on its primary (first-listed)
    /// arrival model with default budgets. `1.0` for exact solvers.
    pub approx_floor: f64,
    /// The paper result (or classical source) the solver implements.
    pub theorem: &'static str,
}

impl Capabilities {
    /// Whether the solver accepts instances of the given model kind.
    pub fn supports(&self, kind: ModelKind) -> bool {
        self.models.contains(&kind)
    }

    /// The solver's primary arrival model: the first-listed entry of
    /// [`Capabilities::models`] — the model its
    /// [`approx_floor`](Capabilities::approx_floor) is declared (and
    /// tested) against.
    pub fn primary_model(&self) -> ModelKind {
        *self
            .models
            .first()
            .expect("every solver declares at least one arrival model")
    }
}
