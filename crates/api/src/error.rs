//! The unified error contract: every failure mode of every solver is a
//! [`SolveError`], absorbing the substrate crates' scattered error types
//! and the panic paths of the legacy free functions.

use std::error::Error;
use std::fmt;

use wmatch_graph::GraphError;
use wmatch_mpc::MpcError;

use crate::capabilities::ModelKind;

/// Errors produced by [`Solver::solve`](crate::Solver::solve) and the
/// registry.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// A [`SolveRequest`](crate::SolveRequest) or
    /// [`Instance`](crate::Instance) field is outside its valid range.
    InvalidConfig {
        /// The offending field (e.g. `"eps"`, `"threads"`).
        field: &'static str,
        /// Human-readable explanation of the constraint that failed.
        reason: String,
    },
    /// The solver does not support the instance's arrival model.
    UnsupportedModel {
        /// The solver that rejected the instance.
        solver: &'static str,
        /// The arrival-model kind it was offered.
        model: ModelKind,
    },
    /// The solver requires a bipartite instance, but the graph is not
    /// bipartite (and no valid bipartition was declared).
    NotBipartite {
        /// The solver that rejected the instance.
        solver: &'static str,
    },
    /// No registered solver has the requested name.
    UnknownSolver {
        /// The name that failed to resolve.
        name: String,
    },
    /// A solver hit a transient fault that has already been contained
    /// (e.g. the dynamic engine's invariant sentinel quarantined and
    /// healed a shard before rejecting the batch). Unlike every other
    /// variant, retrying the same call is expected to succeed — see
    /// [`SolveError::is_transient`].
    Transient {
        /// Human-readable description of the contained fault.
        reason: String,
    },
    /// A graph or matching operation failed in the substrate.
    Graph(GraphError),
    /// The MPC simulator rejected the run (memory or communication budget
    /// exceeded).
    Mpc(MpcError),
}

impl SolveError {
    /// Whether retrying the failed call can succeed.
    ///
    /// Every variant except [`SolveError::Transient`] is deterministic:
    /// the same request fails the same way forever, so the caller must
    /// change something. `Transient` means the underlying engine already
    /// recovered (quarantine + heal) and a bounded retry is the right
    /// response.
    pub fn is_transient(&self) -> bool {
        matches!(self, SolveError::Transient { .. })
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration: {field}: {reason}")
            }
            SolveError::UnsupportedModel { solver, model } => {
                write!(
                    f,
                    "solver {solver} does not support the {model} arrival model"
                )
            }
            SolveError::NotBipartite { solver } => {
                write!(f, "solver {solver} requires a bipartite instance")
            }
            SolveError::UnknownSolver { name } => {
                write!(f, "no registered solver is named {name:?}")
            }
            SolveError::Transient { reason } => {
                write!(f, "transient fault (already contained; retry): {reason}")
            }
            SolveError::Graph(e) => write!(f, "graph error: {e}"),
            SolveError::Mpc(e) => write!(f, "MPC budget error: {e}"),
        }
    }
}

impl Error for SolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolveError::Graph(e) => Some(e),
            SolveError::Mpc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SolveError {
    fn from(e: GraphError) -> Self {
        SolveError::Graph(e)
    }
}

impl From<MpcError> for SolveError {
    fn from(e: MpcError) -> Self {
        SolveError::Mpc(e)
    }
}
