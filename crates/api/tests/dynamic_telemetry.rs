//! The dynamic solvers' telemetry contract: every engine behind the
//! facade reports the same seven-key extras prefix, in the same order —
//! `updates_applied`, `recourse_total`, `updates_per_sec`,
//! `augmentations_applied`, `rebuilds`, `steals`, `scratch_high_water` —
//! with solver-specific extras only *after* it. Cross-solver tooling
//! (the shootout bench, the memory experiments) diffs these columns
//! positionally, so a missing key is a schema break, not a style choice.
//! (The recompute baseline historically omitted the pool keys — the gap
//! this suite exists to keep closed.)

use wmatch_api::{solve, Instance, SolveRequest, UpdateOp};
use wmatch_graph::Graph;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pinned prefix, in order.
const COMMON_KEYS: [&str; 7] = [
    "updates_applied",
    "recourse_total",
    "updates_per_sec",
    "augmentations_applied",
    "rebuilds",
    "steals",
    "scratch_high_water",
];

/// Every dynamic solver in the registry.
const DYNAMIC_SOLVERS: [&str; 6] = [
    "dynamic-wgtaug",
    "dynamic-sharded",
    "dynamic-rebuild",
    "dynamic-randomwalk",
    "dynamic-lazy",
    "dynamic-stale",
];

fn churn_instance(n: u32, len: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<(u32, u32)> = Vec::new();
    let mut ops = Vec::new();
    for _ in 0..len {
        if live.len() > n as usize {
            let i = (ops.len() * 5) % live.len();
            let (u, v) = live.swap_remove(i);
            ops.push(UpdateOp::delete(u, v));
        } else {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            if v == u {
                v = (v + 1) % n;
            }
            live.push((u, v));
            ops.push(UpdateOp::insert(u, v, rng.gen_range(1..40u64)));
        }
    }
    Instance::dynamic(Graph::new(n as usize), ops)
}

#[test]
fn every_dynamic_solver_reports_the_common_prefix_in_order() {
    let inst = churn_instance(16, 80, 11);
    for solver in DYNAMIC_SOLVERS {
        let report = solve(solver, &inst, &SolveRequest::new()).expect(solver);
        let extras = &report.telemetry.extras;
        assert!(
            extras.len() >= COMMON_KEYS.len(),
            "{solver}: only {} extras, need the {}-key prefix",
            extras.len(),
            COMMON_KEYS.len()
        );
        for (i, want) in COMMON_KEYS.iter().enumerate() {
            assert_eq!(
                extras[i].0, *want,
                "{solver}: extras[{i}] must be {want}, got {} — the prefix is positional",
                extras[i].0
            );
        }
    }
}

#[test]
fn common_prefix_values_are_parseable_and_consistent() {
    let inst = churn_instance(16, 80, 13);
    for solver in DYNAMIC_SOLVERS {
        let report = solve(solver, &inst, &SolveRequest::new()).expect(solver);
        let int_of = |key: &str| -> u64 {
            report
                .telemetry
                .extra(key)
                .unwrap_or_else(|| panic!("{solver}: missing {key}"))
                .parse()
                .unwrap_or_else(|_| panic!("{solver}: {key} not an integer"))
        };
        assert_eq!(int_of("updates_applied"), 80, "{solver}: whole stream");
        assert!(int_of("recourse_total") > 0, "{solver}: churn happened");
        // rebuilds are off by default; the walk engine and baseline never
        // rebuild at all
        assert_eq!(int_of("rebuilds"), 0, "{solver}");
        // sequential run: nothing to steal anywhere
        assert_eq!(int_of("steals"), 0, "{solver}");
        let _ = int_of("scratch_high_water"); // parseable is the contract
        report
            .telemetry
            .extra("updates_per_sec")
            .unwrap_or_else(|| panic!("{solver}: missing updates_per_sec"));
    }
}

#[test]
fn solver_specific_extras_follow_the_prefix() {
    let inst = churn_instance(12, 40, 7);
    for (solver, key) in [
        ("dynamic-sharded", "shards"),
        ("dynamic-randomwalk", "walks_taken"),
        ("dynamic-lazy", "budget_exhausted"),
        ("dynamic-stale", "flushes"),
    ] {
        let report = solve(solver, &inst, &SolveRequest::new()).expect(solver);
        let pos = report
            .telemetry
            .extras
            .iter()
            .position(|(k, _)| *k == key)
            .unwrap_or_else(|| panic!("{solver}: missing specific extra {key}"));
        assert!(
            pos >= COMMON_KEYS.len(),
            "{solver}: {key} sits at {pos}, inside the common prefix"
        );
    }
}
