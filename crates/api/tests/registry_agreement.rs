//! The cross-solver agreement suite: every registry solver, run through
//! the one facade on shared small instance families, must
//!
//! (a) return a `Matching` that validates against its `Graph`,
//! (b) meet its declared approximation floor against the exact (blossom)
//!     oracle for its objective, and
//! (c) report internally consistent telemetry (passes within budget,
//!     `value` matching the `Matching`'s own objective value).

use wmatch_api::{
    objective_value, registry, registry_for, solver, ArrivalModel, Instance, ModelKind, SolveError,
    SolveRequest, UpdateOp,
};
use wmatch_graph::generators::{self, WeightModel};
use wmatch_graph::Graph;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A star: center 0, `leaves` spokes of increasing weight.
fn star(leaves: usize) -> Graph {
    let mut g = Graph::new(leaves + 1);
    for i in 0..leaves {
        g.add_edge(0, (i + 1) as u32, (i + 1) as u64);
    }
    g
}

/// A small multigraph with parallel edges of differing weights.
fn parallel_edges() -> Graph {
    let mut g = Graph::new(4);
    g.add_edge(0, 1, 5);
    g.add_edge(0, 1, 9); // parallel, heavier
    g.add_edge(2, 3, 4);
    g.add_edge(2, 3, 1); // parallel, lighter
    g.add_edge(1, 2, 7);
    g
}

/// The shared instance families of the suite.
fn families() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(5);
    vec![
        (
            "gnp",
            generators::gnp(20, 0.3, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng),
        ),
        ("path", generators::path_graph(&[5, 9, 5, 7, 3, 8])),
        ("star", star(7)),
        ("parallel-edges", parallel_edges()),
        ("barrier", generators::weighted_barrier_paths(5, 50)),
    ]
}

/// The instance on a solver's primary (first-listed) arrival model —
/// the model its declared floor is contractually tested against.
fn instance_for(primary: ModelKind, g: &Graph) -> Instance {
    match primary {
        ModelKind::Offline => Instance::offline(g.clone()),
        ModelKind::RandomOrder => Instance::random_order(g.clone(), 9),
        ModelKind::Adversarial => Instance::adversarial(g.clone()),
        ModelKind::Mpc => Instance::mpc(g.clone(), 4, 50_000),
        // the dynamic engines replay the family as an insert stream (the
        // delete paths have their own agreement suite)
        ModelKind::Dynamic => Instance::dynamic(
            Graph::new(g.vertex_count()),
            g.edges()
                .iter()
                .map(|e| UpdateOp::insert(e.u, e.v, e.weight))
                .collect::<Vec<_>>(),
        ),
    }
}

#[test]
fn registry_exposes_at_least_eight_uniquely_named_solvers() {
    let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
    assert!(names.len() >= 8, "only {} solvers registered", names.len());
    let mut dedup = names.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "duplicate names in {names:?}");
    // the eight the contract promises by name
    for required in [
        "main-alg-offline",
        "main-alg-streaming",
        "main-alg-mpc",
        "rand-arr-matching",
        "greedy",
        "local-ratio",
        "blossom",
        "hungarian",
        "oracle-lekm",
    ] {
        assert!(
            names.contains(&required),
            "{required} missing from {names:?}"
        );
    }
}

#[test]
fn every_solver_agrees_with_the_blossom_oracle_on_every_family() {
    let req = SolveRequest::new().with_seed(11).with_certify(true);
    for s in registry() {
        let caps = s.capabilities();
        let mut ran = 0usize;
        for (family, g) in families() {
            let inst = instance_for(caps.primary_model(), &g);
            if caps.bipartite_only && !inst.is_bipartite() {
                continue;
            }
            let label = format!("{} on {family}", s.name());
            let report = s
                .solve(&inst, &req)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            ran += 1;

            // (a) the matching validates against its graph
            report
                .matching
                .validate(Some(&g))
                .unwrap_or_else(|e| panic!("{label}: invalid matching: {e}"));

            // (b) declared approximation floor vs. the exact oracle
            let cert = report
                .certificate
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: certificate missing"));
            assert_eq!(cert.objective, caps.objective, "{label}");
            assert!(
                cert.ratio >= caps.approx_floor - 1e-9,
                "{label}: ratio {} below declared floor {}",
                cert.ratio,
                caps.approx_floor
            );
            assert!(
                cert.ratio <= 1.0 + 1e-9,
                "{label}: ratio {} exceeds the optimum",
                cert.ratio
            );
            // independent re-check of the certificate itself; bipartite
            // families must come with the oracle's dual labels attached
            cert.verify(&g, &report.matching)
                .unwrap_or_else(|e| panic!("{label}: certificate fails verification: {e}"));
            assert_eq!(
                cert.duals.is_some(),
                g.bipartition().is_some(),
                "{label}: dual labels present iff the family is bipartite"
            );
            assert!(
                report.telemetry.extra("certify_ns").is_some(),
                "{label}: certification time missing from telemetry"
            );

            // (c) telemetry is internally consistent
            assert_eq!(
                report.value,
                objective_value(&report.matching, caps.objective),
                "{label}: reported value disagrees with the matching"
            );
            if let Some(last) = report.telemetry.trace.last() {
                assert_eq!(*last, report.matching.weight(), "{label}: trace tail");
            }
            match inst.model() {
                ArrivalModel::Offline => {
                    assert_eq!(report.telemetry.passes, 0, "{label}: offline passes")
                }
                ArrivalModel::Mpc { memory_words, .. } => assert!(
                    report.telemetry.peak_stored_edges <= *memory_words,
                    "{label}: machine memory above budget"
                ),
                ArrivalModel::Dynamic { updates } => assert_eq!(
                    report.telemetry.extra("updates_applied"),
                    Some(updates.len().to_string().as_str()),
                    "{label}: update count"
                ),
                _ => assert!(report.telemetry.passes >= 1, "{label}: stream passes"),
            }
            if s.name() == "stream-mcm" {
                assert!(
                    report.telemetry.passes <= req.pass_budget,
                    "{label}: passes {} above budget {}",
                    report.telemetry.passes,
                    req.pass_budget
                );
            }
            if let Some(seq) = report.telemetry.extra("passes_sequential") {
                let seq: usize = seq.parse().unwrap();
                assert!(
                    report.telemetry.passes <= seq,
                    "{label}: model passes above sequential passes"
                );
            }
        }
        assert!(ran > 0, "{} never ran on any family", s.name());
    }
}

#[test]
fn exact_solvers_agree_with_each_other() {
    // on bipartite instances the weighted oracles must coincide exactly
    let req = SolveRequest::new();
    for (family, g) in families() {
        let inst = Instance::offline(g.clone());
        if !inst.is_bipartite() {
            continue;
        }
        let blossom = solver("blossom").unwrap().solve(&inst, &req).unwrap();
        let hungarian = solver("hungarian").unwrap().solve(&inst, &req).unwrap();
        let oracle = solver("oracle-lekm").unwrap().solve(&inst, &req).unwrap();
        assert_eq!(blossom.value, hungarian.value, "{family}: oracle mismatch");
        assert_eq!(
            blossom.value, oracle.value,
            "{family}: slack oracle mismatch"
        );
    }
}

#[test]
fn registry_for_filters_by_model_and_bipartiteness() {
    let mut triangle = Graph::new(3);
    triangle.add_edge(0, 1, 1);
    triangle.add_edge(1, 2, 1);
    triangle.add_edge(0, 2, 1);

    let offline = registry_for(&Instance::offline(triangle.clone()));
    // non-bipartite offline: no hungarian/hopcroft-karp, no stream/mpc solvers
    let names: Vec<&str> = offline.iter().map(|s| s.name()).collect();
    assert!(names.contains(&"main-alg-offline"));
    assert!(names.contains(&"blossom"));
    assert!(!names.contains(&"hungarian"));
    assert!(!names.contains(&"main-alg-streaming"));

    let stream = registry_for(&Instance::random_order(triangle.clone(), 1));
    let names: Vec<&str> = stream.iter().map(|s| s.name()).collect();
    assert!(names.contains(&"rand-arr-matching"));
    assert!(names.contains(&"main-alg-streaming"));
    assert!(!names.contains(&"main-alg-offline"));
    assert!(!names.contains(&"stream-mcm"), "triangle is not bipartite");

    let mpc = registry_for(&Instance::mpc(triangle, 4, 1000));
    let names: Vec<&str> = mpc.iter().map(|s| s.name()).collect();
    assert_eq!(names, ["main-alg-mpc"]);

    // a bipartite stream instance admits the bipartite box
    let path = generators::path_graph(&[3, 5, 3]);
    let names: Vec<String> = registry_for(&Instance::adversarial(path))
        .iter()
        .map(|s| s.name().to_string())
        .collect();
    assert!(names.contains(&"stream-mcm".to_string()));
}

#[test]
fn every_registry_solver_solves_something_through_registry_for() {
    // sanity: walking registry_for and solving must never error on a
    // well-formed instance
    let g = generators::path_graph(&[4, 6, 4, 2]);
    let req = SolveRequest::new();
    for inst in [
        Instance::offline(g.clone()),
        Instance::random_order(g.clone(), 2),
        Instance::adversarial(g.clone()),
        Instance::mpc(g.clone(), 3, 10_000),
    ] {
        for s in registry_for(&inst) {
            let report = s
                .solve(&inst, &req)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            report.matching.validate(Some(&g)).unwrap();
        }
    }
}

#[test]
fn sharded_solver_matches_the_sequential_dynamic_engine() {
    // one churn stream, every shard count: `dynamic-sharded` must report
    // the exact matching and update telemetry of `dynamic-wgtaug`
    let mut rng = StdRng::seed_from_u64(41);
    let g = generators::gnp(24, 0.3, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng);
    let mut ops: Vec<UpdateOp> = g
        .edges()
        .iter()
        .map(|e| UpdateOp::insert(e.u, e.v, e.weight))
        .collect();
    // delete every third inserted edge, then re-insert it heavier
    for (i, e) in g.edges().iter().enumerate() {
        if i % 3 == 0 {
            ops.push(UpdateOp::delete(e.u, e.v));
            ops.push(UpdateOp::insert(e.u, e.v, e.weight + 100));
        }
    }
    let inst = Instance::dynamic(Graph::new(g.vertex_count()), ops);
    let base_req = SolveRequest::new().with_seed(9).with_rebuild_threshold(25);
    let want = solver("dynamic-wgtaug")
        .unwrap()
        .solve(&inst, &base_req)
        .unwrap();
    for shards in [1usize, 2, 8, 0] {
        let got = solver("dynamic-sharded")
            .unwrap()
            .solve(&inst, &base_req.clone().with_shards(shards))
            .unwrap();
        assert_eq!(
            want.matching.to_edges(),
            got.matching.to_edges(),
            "shards = {shards}"
        );
        assert_eq!(want.value, got.value, "shards = {shards}");
        for key in ["updates_applied", "recourse_total", "rebuilds"] {
            assert_eq!(
                want.telemetry.extra(key),
                got.telemetry.extra(key),
                "shards = {shards}, key = {key}"
            );
        }
    }
}

#[test]
fn mpc_budget_violations_surface_as_typed_errors() {
    let g = generators::path_graph(&[4, 6, 4, 2]);
    let tiny = Instance::mpc(g, 2, 1); // four edges cannot fit 2 x 1 words
    let err = solver("main-alg-mpc")
        .unwrap()
        .solve(&tiny, &SolveRequest::new())
        .unwrap_err();
    assert!(matches!(err, SolveError::Mpc(_)), "{err:?}");
}
