//! The cross-thread-count determinism contract: for a fixed seed, every
//! parallel layer — the Algorithm 3 class sweep, Algorithm 4 candidate
//! scoring, and the MPC simulator's machine rounds — must return a
//! matching **bit-identical** to the sequential run for any `threads`
//! value. The worker pool guarantees this by construction (deterministic
//! owner-indexed result slots, canonical-order commits); this suite is the
//! enforcement.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmatch_api::{solve, Instance, SolveReport, SolveRequest};
use wmatch_graph::generators::{self, WeightModel};
use wmatch_graph::{Graph, WorkerPool};
use wmatch_mpc::{mpc_bipartite_mcm_pooled, MpcConfig, MpcMcmConfig, MpcSimulator};

/// The thread counts the contract is tested over (0 = one per core).
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 0];

fn offline_report(g: &Graph, seed: u64, threads: usize) -> SolveReport {
    solve(
        "main-alg-offline",
        &Instance::offline(g.clone()),
        &SolveRequest::new().with_seed(seed).with_threads(threads),
    )
    .expect("offline solver")
}

fn mpc_report(g: &Graph, seed: u64, threads: usize) -> SolveReport {
    solve(
        "main-alg-mpc",
        &Instance::mpc(g.clone(), 4, 50_000),
        &SolveRequest::new()
            .with_seed(seed)
            .with_threads(threads)
            .with_round_budget(6),
    )
    .expect("mpc solver")
}

/// Asserts the full bit-identity contract between two reports: same
/// matching edges, same objective value, same convergence trace.
fn assert_identical(want: &SolveReport, got: &SolveReport, label: &str) {
    assert_eq!(
        want.matching.to_edges(),
        got.matching.to_edges(),
        "{label}: matchings diverge"
    );
    assert_eq!(want.value, got.value, "{label}: weights diverge");
    assert_eq!(
        want.telemetry.trace, got.telemetry.trace,
        "{label}: traces diverge"
    );
}

/// A random graph with deliberate parallel edges: every ~4th edge is
/// re-added with a different weight.
fn parallel_edge_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = generators::gnp(n, 0.3, WeightModel::Uniform { lo: 1, hi: 40 }, &mut rng);
    let mut g = Graph::new(n);
    for (i, e) in base.edges().iter().enumerate() {
        g.add_edge(e.u, e.v, e.weight);
        if i % 4 == 0 {
            g.add_edge(e.u, e.v, e.weight + 3);
        }
    }
    g
}

#[test]
fn offline_driver_identical_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(101);
    for seed in 0..3u64 {
        let g = generators::gnp(20, 0.3, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng);
        let want = offline_report(&g, seed, 1);
        for threads in THREAD_COUNTS {
            let got = offline_report(&g, seed, threads);
            assert_identical(&want, &got, &format!("gnp seed {seed} threads {threads}"));
        }
    }
}

#[test]
fn offline_driver_identical_on_parallel_edge_graphs() {
    for seed in 0..3u64 {
        let g = parallel_edge_graph(16, 300 + seed);
        let want = offline_report(&g, seed, 1);
        for threads in THREAD_COUNTS {
            let got = offline_report(&g, seed, threads);
            assert_identical(
                &want,
                &got,
                &format!("parallel-edge seed {seed} threads {threads}"),
            );
        }
    }
}

#[test]
fn offline_driver_identical_on_barrier_graphs() {
    // the planted 3-augmentation family: every class sweep carries work
    let g = generators::weighted_barrier_paths(8, 9);
    let want = offline_report(&g, 7, 1);
    assert!(want.value > 0, "barrier family must be improvable");
    for threads in THREAD_COUNTS {
        let got = offline_report(&g, 7, threads);
        assert_identical(&want, &got, &format!("barrier threads {threads}"));
    }
}

#[test]
fn mpc_driver_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(202);
    let g = generators::gnp(14, 0.3, WeightModel::Uniform { lo: 1, hi: 32 }, &mut rng);
    let want = mpc_report(&g, 5, 1);
    for threads in THREAD_COUNTS {
        let got = mpc_report(&g, 5, threads);
        assert_identical(&want, &got, &format!("mpc threads {threads}"));
        // the model's round accounting must not depend on the worker count
        assert_eq!(want.telemetry.rounds, got.telemetry.rounds);
    }
}

#[test]
fn mpc_mcm_facade_solver_identical_across_thread_counts() {
    // the registry's mpc-mcm box must honor the threads contract too
    let mut rng = StdRng::seed_from_u64(404);
    let (g, side) = generators::random_bipartite(20, 20, 0.2, WeightModel::Unit, &mut rng);
    let run = |threads: usize| {
        solve(
            "mpc-mcm",
            &Instance::mpc(g.clone(), 4, 20_000)
                .with_bipartition(side.clone())
                .unwrap(),
            &SolveRequest::new().with_seed(3).with_threads(threads),
        )
        .expect("mpc-mcm solver")
    };
    let want = run(1);
    for threads in THREAD_COUNTS {
        let got = run(threads);
        assert_eq!(
            want.matching.to_edges(),
            got.matching.to_edges(),
            "mpc-mcm threads {threads}"
        );
        assert_eq!(want.telemetry.rounds, got.telemetry.rounds);
        let workers: usize = got
            .telemetry
            .extra("workers_used")
            .expect("workers_used extra")
            .parse()
            .unwrap();
        assert_eq!(workers, wmatch_graph::pool::resolve_threads(threads));
    }
}

#[test]
fn dynamic_engine_identical_across_thread_counts() {
    // the dynamic-wgtaug solver with rebuild epochs enabled (the only
    // layer of the engine that touches the pool): maintained matching,
    // value, and recourse counters must be bit-identical for any threads
    use wmatch_api::UpdateOp;
    let mut rng = StdRng::seed_from_u64(505);
    let n = 24u32;
    let mut live: Vec<(u32, u32)> = Vec::new();
    let mut ops = Vec::new();
    for _ in 0..120 {
        if !live.is_empty() && live.len() > 40 {
            let i = (ops.len() * 7) % live.len();
            let (u, v) = live.swap_remove(i);
            ops.push(UpdateOp::delete(u, v));
        } else {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            if v == u {
                v = (v + 1) % n;
            }
            live.push((u, v));
            ops.push(UpdateOp::insert(u, v, rng.gen_range(1..50u64)));
        }
    }
    let inst = Instance::dynamic(Graph::new(n as usize), ops);
    let run = |threads: usize| {
        solve(
            "dynamic-wgtaug",
            &inst,
            &SolveRequest::new()
                .with_seed(9)
                .with_threads(threads)
                .with_rebuild_threshold(25),
        )
        .expect("dynamic solver")
    };
    let want = run(1);
    assert_eq!(want.telemetry.rounds, 4, "rebuild epochs must have fired");
    for threads in THREAD_COUNTS {
        let got = run(threads);
        assert_eq!(
            want.matching.to_edges(),
            got.matching.to_edges(),
            "dynamic threads {threads}"
        );
        assert_eq!(want.value, got.value, "dynamic threads {threads}");
        for key in [
            "updates_applied",
            "recourse_total",
            "augmentations_applied",
            "rebuilds",
        ] {
            assert_eq!(
                want.telemetry.extra(key),
                got.telemetry.extra(key),
                "dynamic threads {threads}: {key}"
            );
        }
    }
}

/// A mixed insert/delete stream on `n` vertices, deterministic in `seed`.
fn churn_ops(n: u32, len: usize, seed: u64) -> Vec<wmatch_api::UpdateOp> {
    use wmatch_api::UpdateOp;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<(u32, u32)> = Vec::new();
    let mut ops = Vec::new();
    for _ in 0..len {
        if live.len() > n as usize * 2 {
            let i = (ops.len() * 7) % live.len();
            let (u, v) = live.swap_remove(i);
            ops.push(UpdateOp::delete(u, v));
        } else {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            if v == u {
                v = (v + 1) % n;
            }
            live.push((u, v));
            ops.push(UpdateOp::insert(u, v, rng.gen_range(1..50u64)));
        }
    }
    ops
}

#[test]
fn competitor_solvers_identical_across_thread_counts() {
    // the shootout competitors share the determinism contract: with a
    // fixed seed the reported matching and the repair counters are
    // bit-identical for any threads value (the lazy/stale engines' only
    // parallel layer is the rebuild epoch; the walk engine has none)
    let inst = Instance::dynamic(Graph::new(24), churn_ops(24, 120, 505));
    for solver in ["dynamic-randomwalk", "dynamic-lazy", "dynamic-stale"] {
        let run = |threads: usize| {
            solve(
                solver,
                &inst,
                &SolveRequest::new()
                    .with_seed(9)
                    .with_threads(threads)
                    .with_rebuild_threshold(25)
                    .with_work_budget(2)
                    .with_staleness_bound(7),
            )
            .expect("competitor solver")
        };
        let want = run(1);
        for threads in THREAD_COUNTS {
            let got = run(threads);
            assert_eq!(
                want.matching.to_edges(),
                got.matching.to_edges(),
                "{solver} threads {threads}"
            );
            assert_eq!(want.value, got.value, "{solver} threads {threads}");
            for key in [
                "updates_applied",
                "recourse_total",
                "augmentations_applied",
                "rebuilds",
            ] {
                assert_eq!(
                    want.telemetry.extra(key),
                    got.telemetry.extra(key),
                    "{solver} threads {threads}: {key}"
                );
            }
        }
    }
}

#[test]
fn mpc_box_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(303);
    let (g, side) = generators::random_bipartite(30, 30, 0.15, WeightModel::Unit, &mut rng);
    let cfg = MpcMcmConfig::for_delta(0.1, 9);
    let run = |threads: usize| {
        let mut pool = WorkerPool::new(threads);
        let mut sim = MpcSimulator::new(MpcConfig::new(5, 4000));
        mpc_bipartite_mcm_pooled(&mut sim, g.edges().to_vec(), &side, &cfg, &mut pool).unwrap()
    };
    let want = run(1);
    for threads in THREAD_COUNTS {
        let got = run(threads);
        assert_eq!(
            want.matching.to_edges(),
            got.matching.to_edges(),
            "mpc box threads {threads}"
        );
        assert_eq!(want.rounds, got.rounds, "mpc box threads {threads}");
    }
}

fn arb_multigraph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec(
            (0..n as u32, 0..n as u32, 1u64..=50, any::<bool>()),
            0..=max_m,
        )
        .prop_map(move |raw| {
            let mut g = Graph::new(n);
            for (u, v, w, dup) in raw {
                if u != v {
                    g.add_edge(u, v, w);
                    if dup {
                        // deliberate parallel edge
                        g.add_edge(u, v, w.saturating_add(1));
                    }
                }
            }
            g
        })
    })
}

proptest! {
    // Seed pinned for reproducibility: every run explores the same cases.
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0x7468_7264))] // b"thrd"

    /// Offline driver: arbitrary multigraphs (parallel edges included),
    /// arbitrary seeds, every tested thread count — bit-identical.
    #[test]
    fn offline_driver_deterministic_for_any_thread_count(
        g in arb_multigraph(14, 30),
        seed in 0u64..100,
    ) {
        let want = offline_report(&g, seed, 1);
        for threads in THREAD_COUNTS {
            let got = offline_report(&g, seed, threads);
            prop_assert_eq!(want.matching.to_edges(), got.matching.to_edges());
            prop_assert_eq!(want.value, got.value);
            prop_assert_eq!(&want.telemetry.trace, &got.telemetry.trace);
        }
    }

    /// The shootout competitors: arbitrary churn streams, arbitrary
    /// seeds, every tested thread count — bit-identical matching, value,
    /// and repair counters.
    #[test]
    fn competitor_solvers_deterministic_for_any_thread_count(
        stream_seed in 0u64..1000,
        solver_seed in 0u64..100,
        len in 20usize..60,
    ) {
        let inst = Instance::dynamic(Graph::new(12), churn_ops(12, len, stream_seed));
        for solver in ["dynamic-randomwalk", "dynamic-lazy", "dynamic-stale"] {
            let run = |threads: usize| {
                solve(
                    solver,
                    &inst,
                    &SolveRequest::new()
                        .with_seed(solver_seed)
                        .with_threads(threads)
                        .with_rebuild_threshold(15)
                        .with_work_budget(1)
                        .with_staleness_bound(5),
                )
                .expect("competitor solver")
            };
            let want = run(1);
            for threads in THREAD_COUNTS {
                let got = run(threads);
                prop_assert_eq!(want.matching.to_edges(), got.matching.to_edges());
                prop_assert_eq!(want.value, got.value);
                prop_assert_eq!(
                    want.telemetry.extra("recourse_total"),
                    got.telemetry.extra("recourse_total")
                );
            }
        }
    }

    /// The stale engine's batch-order contract: within one staleness
    /// window, deferred ops touching pairwise-disjoint vertex sets
    /// commute — permuting them yields a bit-identical post-flush
    /// matching.
    #[test]
    fn stale_window_invariant_under_disjoint_permutations(
        weights in proptest::collection::vec((1u64..50, 1u64..20, any::<bool>()), 2..8),
        perm_seed in 0u64..1000,
    ) {
        use wmatch_api::UpdateOp;
        // pair i lives on vertices (2i, 2i+1): pairwise disjoint by
        // construction. The stream is a fixed-order insert prefix plus
        // one window op per pair (delete, or a heavier parallel copy);
        // only the window segment is permuted.
        let n = 2 * weights.len();
        let mut ops: Vec<UpdateOp> = Vec::new();
        for (i, &(w, _, _)) in weights.iter().enumerate() {
            ops.push(UpdateOp::insert(2 * i as u32, 2 * i as u32 + 1, w));
        }
        let mut window: Vec<UpdateOp> = weights
            .iter()
            .enumerate()
            .map(|(i, &(w, delta, del))| {
                let (u, v) = (2 * i as u32, 2 * i as u32 + 1);
                if del {
                    UpdateOp::delete(u, v)
                } else {
                    UpdateOp::insert(u, v, w + delta)
                }
            })
            .collect();
        let baseline: Vec<UpdateOp> = ops.iter().copied().chain(window.iter().copied()).collect();
        // Fisher–Yates keyed by perm_seed
        let mut rng = StdRng::seed_from_u64(perm_seed);
        for i in (1..window.len()).rev() {
            let j = rng.gen_range(0..=i);
            window.swap(i, j);
        }
        let permuted: Vec<UpdateOp> = ops.into_iter().chain(window).collect();
        let bound = baseline.len(); // the whole stream is one window
        let run = |stream: Vec<UpdateOp>| {
            solve(
                "dynamic-stale",
                &Instance::dynamic(Graph::new(n), stream),
                &SolveRequest::new().with_staleness_bound(bound),
            )
            .expect("stale solver")
        };
        let want = run(baseline);
        let got = run(permuted);
        prop_assert_eq!(want.matching.to_edges(), got.matching.to_edges());
        prop_assert_eq!(want.value, got.value);
    }

    /// MPC box: random bipartite instances, every tested thread count —
    /// identical matching and round count.
    #[test]
    fn mpc_box_deterministic_for_any_thread_count(
        nl in 4usize..16,
        p_pct in 5u32..40,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, side) =
            generators::random_bipartite(nl, nl, p_pct as f64 / 100.0, WeightModel::Unit, &mut rng);
        let cfg = MpcMcmConfig::for_delta(0.2, seed);
        let run = |threads: usize| {
            let mut pool = WorkerPool::new(threads);
            let mut sim = MpcSimulator::new(MpcConfig::new(4, 10_000));
            mpc_bipartite_mcm_pooled(&mut sim, g.edges().to_vec(), &side, &cfg, &mut pool)
                .unwrap()
        };
        let want = run(1);
        for threads in THREAD_COUNTS {
            let got = run(threads);
            prop_assert_eq!(want.matching.to_edges(), got.matching.to_edges());
            prop_assert_eq!(want.rounds, got.rounds);
        }
    }
}
