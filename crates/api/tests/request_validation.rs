//! Regression tests for the facade's validated configuration: every
//! out-of-range request parameter must surface as a typed
//! `SolveError::InvalidConfig` — never as a panic deep inside an
//! algorithm (the legacy `MainAlgConfig::practical` path accepted any ε
//! and only failed much later in `weight_grid`).

use wmatch_api::{
    solve, Instance, SolveError, SolveRequest, MAX_BUDGET, MAX_THREADS, MAX_WALK_LEN,
};
use wmatch_graph::generators::{gnp, WeightModel};
use wmatch_graph::{Graph, Matching};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(3);
    gnp(12, 0.4, WeightModel::Uniform { lo: 1, hi: 32 }, &mut rng)
}

fn assert_invalid(req: SolveRequest, field: &str) {
    match req.validate() {
        Err(SolveError::InvalidConfig { field: f, .. }) => {
            assert_eq!(f, field, "wrong field reported for {req:?}")
        }
        other => panic!("expected InvalidConfig for {field}, got {other:?}"),
    }
}

#[test]
fn eps_zero_rejected() {
    assert_invalid(SolveRequest::new().with_eps(0.0), "eps");
}

#[test]
fn eps_negative_rejected() {
    assert_invalid(SolveRequest::new().with_eps(-0.25), "eps");
}

#[test]
fn eps_one_rejected() {
    assert_invalid(SolveRequest::new().with_eps(1.0), "eps");
}

#[test]
fn eps_above_one_rejected() {
    assert_invalid(SolveRequest::new().with_eps(17.0), "eps");
}

#[test]
fn eps_nan_and_infinity_rejected() {
    assert_invalid(SolveRequest::new().with_eps(f64::NAN), "eps");
    assert_invalid(SolveRequest::new().with_eps(f64::INFINITY), "eps");
}

#[test]
fn zero_round_budget_rejected() {
    assert_invalid(SolveRequest::new().with_round_budget(0), "round_budget");
}

#[test]
fn zero_pass_budget_rejected() {
    assert_invalid(SolveRequest::new().with_pass_budget(0), "pass_budget");
}

#[test]
fn overflowing_budgets_rejected() {
    assert_invalid(
        SolveRequest::new().with_round_budget(MAX_BUDGET + 1),
        "round_budget",
    );
    assert_invalid(
        SolveRequest::new().with_pass_budget(usize::MAX),
        "pass_budget",
    );
}

#[test]
fn thread_overflow_rejected() {
    assert_invalid(SolveRequest::new().with_threads(MAX_THREADS + 1), "threads");
    assert_invalid(SolveRequest::new().with_threads(usize::MAX), "threads");
}

#[test]
fn auto_threads_and_boundary_values_accepted() {
    SolveRequest::new().with_threads(0).validate().unwrap();
    SolveRequest::new()
        .with_threads(MAX_THREADS)
        .validate()
        .unwrap();
    SolveRequest::new()
        .with_round_budget(1)
        .with_pass_budget(1)
        .validate()
        .unwrap();
    SolveRequest::new().with_eps(1e-9).validate().unwrap();
    SolveRequest::new().with_eps(1.0 - 1e-9).validate().unwrap();
}

#[test]
fn threads_zero_means_one_per_core_on_both_types() {
    // the api and core contracts must resolve the sentinel identically
    let auto = SolveRequest::new().with_threads(0).resolved_threads();
    assert!(auto >= 1);
    assert_eq!(
        auto,
        wmatch_graph::pool::resolve_threads(0),
        "SolveRequest and the pool must share one resolution rule"
    );
    assert_eq!(SolveRequest::new().with_threads(3).resolved_threads(), 3);
}

#[test]
fn pool_telemetry_reflects_the_requested_threads() {
    let g = small_graph();
    for (threads, want) in [(1usize, 1usize), (2, 2)] {
        let res = solve(
            "main-alg-offline",
            &Instance::offline(g.clone()),
            &SolveRequest::new().with_threads(threads),
        )
        .unwrap();
        let workers: usize = res
            .telemetry
            .extra("workers_used")
            .expect("workers_used extra")
            .parse()
            .unwrap();
        assert_eq!(workers, want);
        let busy = res.telemetry.extra("busy_ns").expect("busy_ns extra");
        assert_eq!(busy.split(',').count(), want, "one busy slot per worker");
    }
}

#[test]
fn every_solver_rejects_nonsense_eps_instead_of_panicking() {
    // the legacy entry points panicked (or looped) long after accepting a
    // nonsense eps; through the facade the same request is a typed error
    let g = small_graph();
    let offline = Instance::offline(g.clone());
    let streaming = Instance::random_order(g.clone(), 1);
    let mpc = Instance::mpc(g, 3, 50_000);
    let bad = SolveRequest::new().with_eps(-1.0);
    for (name, inst) in [
        ("main-alg-offline", &offline),
        ("main-alg-streaming", &streaming),
        ("main-alg-mpc", &mpc),
        ("rand-arr-matching", &streaming),
        ("greedy", &offline),
        ("local-ratio", &offline),
        ("blossom", &offline),
    ] {
        match solve(name, inst, &bad) {
            Err(SolveError::InvalidConfig { field: "eps", .. }) => {}
            other => panic!("{name}: expected eps InvalidConfig, got {other:?}"),
        }
    }
}

#[test]
fn degenerate_mpc_deployments_are_typed_errors_not_panics() {
    let g = small_graph();
    for (name, inst, field) in [
        (
            "main-alg-mpc",
            Instance::mpc(g.clone(), 0, 4000),
            "machines",
        ),
        (
            "main-alg-mpc",
            Instance::mpc(g.clone(), 4, 0),
            "memory_words",
        ),
        ("mpc-mcm", Instance::mpc(g.clone(), 0, 4000), "machines"),
    ] {
        match solve(name, &inst, &SolveRequest::new()) {
            Err(SolveError::InvalidConfig { field: f, .. }) => assert_eq!(f, field, "{name}"),
            other => panic!("{name}: expected InvalidConfig for {field}, got {other:?}"),
        }
    }
}

#[test]
fn unsupported_model_is_a_typed_error() {
    let g = small_graph();
    let err = solve(
        "main-alg-offline",
        &Instance::adversarial(g),
        &SolveRequest::new(),
    )
    .unwrap_err();
    assert!(
        matches!(err, SolveError::UnsupportedModel { .. }),
        "{err:?}"
    );
}

#[test]
fn non_bipartite_instance_is_a_typed_error() {
    // a triangle has no 2-coloring
    let mut g = Graph::new(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    g.add_edge(0, 2, 1);
    let err = solve("hungarian", &Instance::offline(g), &SolveRequest::new()).unwrap_err();
    assert!(matches!(err, SolveError::NotBipartite { .. }), "{err:?}");
}

#[test]
fn unknown_solver_is_a_typed_error() {
    let err = solve(
        "definitely-not-a-solver",
        &Instance::offline(small_graph()),
        &SolveRequest::new(),
    )
    .unwrap_err();
    assert!(matches!(err, SolveError::UnknownSolver { .. }), "{err:?}");
}

#[test]
fn warm_start_vertex_mismatch_rejected() {
    let g = small_graph();
    let req = SolveRequest::new().with_warm_start(Matching::new(g.vertex_count() + 5));
    let err = solve("main-alg-offline", &Instance::offline(g), &req).unwrap_err();
    assert!(
        matches!(
            err,
            SolveError::InvalidConfig {
                field: "warm_start",
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn warm_start_on_unsupporting_solver_rejected() {
    let g = small_graph();
    let req = SolveRequest::new().with_warm_start(Matching::new(g.vertex_count()));
    let err = solve("greedy", &Instance::offline(g), &req).unwrap_err();
    assert!(
        matches!(
            err,
            SolveError::InvalidConfig {
                field: "warm_start",
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn invalid_declared_bipartition_rejected() {
    let mut g = Graph::new(2);
    g.add_edge(0, 1, 4);
    let err = Instance::offline(g)
        .with_bipartition(vec![true, true])
        .unwrap_err();
    assert!(
        matches!(
            err,
            SolveError::InvalidConfig {
                field: "bipartition",
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn aug_depth_out_of_range_rejected() {
    assert_invalid(SolveRequest::new().with_aug_depth(0), "aug_depth");
    assert_invalid(
        SolveRequest::new().with_aug_depth(wmatch_api::MAX_AUG_DEPTH + 1),
        "aug_depth",
    );
    assert!(SolveRequest::new().with_aug_depth(1).validate().is_ok());
    assert!(SolveRequest::new()
        .with_aug_depth(wmatch_api::MAX_AUG_DEPTH)
        .validate()
        .is_ok());
}

#[test]
fn rebuild_threshold_above_budget_rejected() {
    assert_invalid(
        SolveRequest::new().with_rebuild_threshold(MAX_BUDGET + 1),
        "rebuild_threshold",
    );
    assert!(SolveRequest::new()
        .with_rebuild_threshold(0)
        .validate()
        .is_ok());
    assert!(SolveRequest::new()
        .with_rebuild_threshold(MAX_BUDGET)
        .validate()
        .is_ok());
}

#[test]
fn shards_overflow_rejected() {
    assert_invalid(SolveRequest::new().with_shards(MAX_THREADS + 1), "shards");
    assert_invalid(SolveRequest::new().with_shards(usize::MAX), "shards");
    assert!(SolveRequest::new().with_shards(0).validate().is_ok());
    assert!(SolveRequest::new()
        .with_shards(MAX_THREADS)
        .validate()
        .is_ok());
}

#[test]
fn walk_len_out_of_range_rejected() {
    assert_invalid(SolveRequest::new().with_walk_len(0), "walk_len");
    assert_invalid(
        SolveRequest::new().with_walk_len(MAX_WALK_LEN + 1),
        "walk_len",
    );
    assert_invalid(SolveRequest::new().with_walk_len(usize::MAX), "walk_len");
    assert!(SolveRequest::new().with_walk_len(1).validate().is_ok());
    assert!(SolveRequest::new()
        .with_walk_len(MAX_WALK_LEN)
        .validate()
        .is_ok());
}

#[test]
fn work_budget_out_of_range_rejected() {
    assert_invalid(SolveRequest::new().with_work_budget(0), "work_budget");
    assert_invalid(
        SolveRequest::new().with_work_budget(MAX_BUDGET + 1),
        "work_budget",
    );
    assert!(SolveRequest::new().with_work_budget(1).validate().is_ok());
    assert!(SolveRequest::new()
        .with_work_budget(MAX_BUDGET)
        .validate()
        .is_ok());
}

#[test]
fn staleness_bound_out_of_range_rejected() {
    assert_invalid(
        SolveRequest::new().with_staleness_bound(0),
        "staleness_bound",
    );
    assert_invalid(
        SolveRequest::new().with_staleness_bound(MAX_BUDGET + 1),
        "staleness_bound",
    );
    assert!(SolveRequest::new()
        .with_staleness_bound(1)
        .validate()
        .is_ok());
    assert!(SolveRequest::new()
        .with_staleness_bound(MAX_BUDGET)
        .validate()
        .is_ok());
}

#[test]
fn competitor_solvers_reject_invalid_knobs_before_touching_the_stream() {
    // the knob checks run in preflight, so even a stream that would fail
    // later reports the configuration error first — typed, not a panic
    use wmatch_api::UpdateOp;
    let inst = Instance::dynamic(Graph::new(4), vec![UpdateOp::insert(0, 99, 1)]);
    for (solver, req, field) in [
        (
            "dynamic-randomwalk",
            SolveRequest::new().with_walk_len(0),
            "walk_len",
        ),
        (
            "dynamic-lazy",
            SolveRequest::new().with_work_budget(0),
            "work_budget",
        ),
        (
            "dynamic-stale",
            SolveRequest::new().with_staleness_bound(MAX_BUDGET + 1),
            "staleness_bound",
        ),
    ] {
        match solve(solver, &inst, &req) {
            Err(SolveError::InvalidConfig { field: f, .. }) => assert_eq!(f, field, "{solver}"),
            other => panic!("{solver}: expected {field} InvalidConfig, got {other:?}"),
        }
    }
}

#[test]
fn malformed_update_sequences_are_typed_errors() {
    // the dynamic solvers forward engine rejections through the uniform
    // error contract instead of panicking mid-replay
    use wmatch_api::UpdateOp;
    for (name, bad) in [
        ("out-of-range endpoint", UpdateOp::insert(0, 99, 1)),
        ("zero weight", UpdateOp::insert(0, 1, 0)),
        ("self-loop", UpdateOp::insert(2, 2, 5)),
        ("deleting a non-live edge", UpdateOp::delete(0, 1)),
    ] {
        for solver in [
            "dynamic-wgtaug",
            "dynamic-rebuild",
            "dynamic-sharded",
            "dynamic-randomwalk",
            "dynamic-lazy",
            "dynamic-stale",
        ] {
            let inst = Instance::dynamic(Graph::new(4), vec![bad]);
            let err = solve(solver, &inst, &SolveRequest::new()).unwrap_err();
            assert!(
                matches!(
                    err,
                    SolveError::InvalidConfig {
                        field: "updates",
                        ..
                    }
                ),
                "{solver} / {name}: {err:?}"
            );
        }
    }
}

#[test]
fn update_errors_report_partial_progress() {
    // a failing op mid-stream names how many updates were already applied
    // — the count a caller needs to resume or debug a long replay
    use wmatch_api::UpdateOp;
    let ops = vec![
        UpdateOp::insert(0, 1, 5),
        UpdateOp::insert(1, 2, 7),
        UpdateOp::delete(2, 3), // never inserted → EdgeNotFound after 2 ops
        UpdateOp::insert(0, 3, 9),
    ];
    for solver in [
        "dynamic-wgtaug",
        "dynamic-rebuild",
        "dynamic-sharded",
        "dynamic-randomwalk",
        "dynamic-lazy",
        "dynamic-stale",
    ] {
        let inst = Instance::dynamic(Graph::new(4), ops.clone());
        match solve(solver, &inst, &SolveRequest::new().with_shards(2)) {
            Err(SolveError::InvalidConfig {
                field: "updates",
                reason,
            }) => assert!(
                reason.contains("2 updates applied"),
                "{solver}: reason must carry the applied count, got {reason:?}"
            ),
            other => panic!("{solver}: expected updates InvalidConfig, got {other:?}"),
        }
    }
}
