//! Memory accounting for semi-streaming algorithms.
//!
//! The semi-streaming model allows `O(n·polylog n)` memory. Experiments E6
//! and E8 verify that the algorithms respect this bound; the unit of
//! account is *stored edges* (a stored edge is O(1) words).

use std::fmt;

/// Tracks current and peak memory, measured in stored edges/words.
///
/// # Example
///
/// ```
/// use wmatch_stream::MemoryMeter;
///
/// let mut meter = MemoryMeter::new();
/// meter.add(10);
/// meter.sub(4);
/// meter.add(1);
/// assert_eq!(meter.current(), 7);
/// assert_eq!(meter.peak(), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryMeter {
    current: usize,
    peak: usize,
}

impl MemoryMeter {
    /// Creates a meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `words` additional stored items.
    pub fn add(&mut self, words: usize) {
        self.current += words;
        self.peak = self.peak.max(self.current);
    }

    /// Records the release of `words` stored items (saturating).
    pub fn sub(&mut self, words: usize) {
        self.current = self.current.saturating_sub(words);
    }

    /// Replaces the current usage (peak still accumulates).
    pub fn set(&mut self, words: usize) {
        self.current = words;
        self.peak = self.peak.max(self.current);
    }

    /// Current usage.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Peak usage since creation.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Folds another meter's peak into this one (for algorithms composed of
    /// sub-components metered separately; peaks are summed conservatively).
    pub fn absorb_peak_of(&mut self, other: &MemoryMeter) {
        self.peak += other.peak;
    }
}

impl fmt::Display for MemoryMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mem(cur={}, peak={})", self.current, self.peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peak() {
        let mut m = MemoryMeter::new();
        m.add(5);
        m.add(5);
        m.sub(8);
        assert_eq!(m.current(), 2);
        assert_eq!(m.peak(), 10);
        m.add(20);
        assert_eq!(m.peak(), 22);
    }

    #[test]
    fn sub_saturates() {
        let mut m = MemoryMeter::new();
        m.add(1);
        m.sub(5);
        assert_eq!(m.current(), 0);
    }

    #[test]
    fn set_updates_peak() {
        let mut m = MemoryMeter::new();
        m.set(7);
        m.set(3);
        assert_eq!(m.current(), 3);
        assert_eq!(m.peak(), 7);
    }

    #[test]
    fn absorb_sums_peaks() {
        let mut a = MemoryMeter::new();
        a.add(4);
        let mut b = MemoryMeter::new();
        b.add(9);
        b.sub(9);
        a.absorb_peak_of(&b);
        assert_eq!(a.peak(), 13);
    }
}
