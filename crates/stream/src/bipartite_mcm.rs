//! Multi-pass streaming (1−δ)-approximate unweighted **bipartite** matching
//! — the streaming instantiation of the paper's `Unw-Bip-Matching` black
//! box (Theorem 4.1 cites Ahn–Guha \[AG13\] for this role; any box works).
//!
//! Structure (documented in DESIGN.md §3, substitution 2):
//!
//! 1. **Pass 1**: greedy maximal matching `M` (cardinality ≥ ½ optimum).
//! 2. **Each further pass**: store a bounded-degree *support subgraph* `H`
//!    (at most `degree_cap` stored edges per vertex), then run offline
//!    Hopcroft–Karp warm-started from `M` on `H ∪ M` and adopt the result.
//!    Stop early when a pass yields no improvement.
//!
//! Each pass eliminates the short augmenting paths that survive in the
//! support subgraph; by the Hopcroft–Karp bound, a matching with no
//! augmenting path shorter than `2k+1` is a `(1 − 1/(k+1))`-approximation,
//! so `O(1/δ)` improving passes reach `(1 − δ)` — the per-pass subgraph
//! capping makes the guarantee empirical rather than worst-case, and
//! experiment E6 measures the ratio actually achieved.
//!
//! Memory: `O(n · degree_cap)` stored edges, metered.

use wmatch_graph::exact::hopcroft_karp::max_bipartite_cardinality_matching_from;
use wmatch_graph::scratch::EpochMap;
use wmatch_graph::{Graph, Matching};

use crate::meter::MemoryMeter;
use crate::stream::EdgeStream;

/// Configuration for [`multipass_bipartite_mcm`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct McmConfig {
    /// Target approximation slack δ (controls default passes and caps).
    pub delta: f64,
    /// Hard pass budget.
    pub max_passes: usize,
    /// Per-vertex cap on stored support edges per pass.
    pub degree_cap: usize,
}

impl McmConfig {
    /// Derives a configuration from δ: `⌈1/δ⌉ + 1` passes with degree cap
    /// `⌈2/δ⌉`.
    pub fn for_delta(delta: f64) -> Self {
        let d = delta.clamp(1e-6, 1.0);
        McmConfig {
            delta: d,
            max_passes: (1.0 / d).ceil() as usize + 1,
            degree_cap: (2.0 / d).ceil() as usize,
        }
    }

    /// Sets the target approximation slack δ.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the hard pass budget.
    pub fn with_max_passes(mut self, max_passes: usize) -> Self {
        self.max_passes = max_passes;
        self
    }

    /// Sets the per-vertex cap on stored support edges per pass.
    pub fn with_degree_cap(mut self, degree_cap: usize) -> Self {
        self.degree_cap = degree_cap;
        self
    }
}

impl Default for McmConfig {
    fn default() -> Self {
        McmConfig::for_delta(0.1)
    }
}

/// Output of [`multipass_bipartite_mcm`].
#[derive(Debug, Clone)]
pub struct McmResult {
    /// The matching found.
    pub matching: Matching,
    /// Passes consumed.
    pub passes: usize,
    /// Peak stored edges across all passes.
    pub peak_memory_edges: usize,
}

/// Computes a large-cardinality matching of a bipartite edge stream.
///
/// `side[v]` gives the bipartition side of vertex `v`; edges that do not
/// cross sides cause a panic (the caller guarantees bipartiteness — layered
/// graphs are bipartite by construction).
///
/// # Example
///
/// ```
/// use wmatch_graph::Edge;
/// use wmatch_stream::{multipass_bipartite_mcm, McmConfig, VecStream};
///
/// // path 0-2-1-3: maximum matching = 2 edges
/// let edges = vec![Edge::new(2, 1, 1), Edge::new(0, 2, 1), Edge::new(1, 3, 1)];
/// let mut s = VecStream::adversarial(edges);
/// let side = vec![false, false, true, true];
/// let res = multipass_bipartite_mcm(&mut s, &side, &McmConfig::for_delta(0.2));
/// assert_eq!(res.matching.len(), 2);
/// ```
pub fn multipass_bipartite_mcm(
    stream: &mut dyn EdgeStream,
    side: &[bool],
    cfg: &McmConfig,
) -> McmResult {
    let n = side.len();
    let mut meter = MemoryMeter::new();

    // Pass 1: greedy maximal matching.
    let mut m = Matching::new(n);
    stream.stream_pass(&mut |e| {
        debug_assert!(
            side[e.u as usize] != side[e.v as usize],
            "stream edge {e} does not cross the bipartition"
        );
        if m.insert(e).is_ok() {
            meter.add(1);
        }
    });
    let mut passes = 1;

    // per-pass local-graph scratch, reused across passes: an epoch-reset
    // degree counter, the support buffer, and the subgraph itself
    let mut deg: EpochMap<u32> = EpochMap::new();
    deg.ensure(n);
    let mut support: Vec<wmatch_graph::Edge> = Vec::new();
    let mut h = Graph::new(n);

    while passes < cfg.max_passes {
        // Support pass: bounded-degree subgraph.
        deg.clear();
        support.clear();
        stream.stream_pass(&mut |e| {
            let (du, dv) = (deg.get_or_default(e.u), deg.get_or_default(e.v));
            if (du as usize) < cfg.degree_cap && (dv as usize) < cfg.degree_cap {
                deg.insert(e.u, du + 1);
                deg.insert(e.v, dv + 1);
                support.push(e);
                meter.add(1);
            }
        });
        passes += 1;

        // Offline augmentation on support ∪ M.
        h.clear_edges();
        for e in &support {
            h.add_edge(e.u, e.v, e.weight);
        }
        for e in m.iter() {
            h.add_edge(e.u, e.v, e.weight);
        }
        let improved = max_bipartite_cardinality_matching_from(&h, side, m.clone());
        let gained = improved.len() > m.len();
        meter.sub(support.len());
        if gained {
            m = improved;
        } else {
            break;
        }
    }

    McmResult {
        matching: m,
        passes,
        peak_memory_edges: meter.peak(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::VecStream;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wmatch_graph::exact::max_bipartite_cardinality_matching;
    use wmatch_graph::generators::{self, WeightModel};

    #[test]
    fn exact_on_small_paths() {
        // left {0,1}, right {2,3}; adversarial order traps pure greedy
        let edges = vec![
            wmatch_graph::Edge::new(1, 2, 1),
            wmatch_graph::Edge::new(0, 2, 1),
            wmatch_graph::Edge::new(1, 3, 1),
        ];
        let side = vec![false, false, true, true];
        let mut s = VecStream::adversarial(edges);
        let res = multipass_bipartite_mcm(&mut s, &side, &McmConfig::for_delta(0.25));
        assert_eq!(res.matching.len(), 2);
        assert!(res.passes >= 2, "greedy alone cannot fix this order");
    }

    #[test]
    fn single_pass_budget_gives_maximal_matching() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, side) = generators::random_bipartite(30, 30, 0.1, WeightModel::Unit, &mut rng);
        let mut s = VecStream::random_order(g.edges().to_vec(), 5).with_vertex_count(60);
        let cfg = McmConfig {
            delta: 1.0,
            max_passes: 1,
            degree_cap: 1,
        };
        let res = multipass_bipartite_mcm(&mut s, &side, &cfg);
        assert_eq!(res.passes, 1);
        let opt = max_bipartite_cardinality_matching(&g, &side);
        assert!(2 * res.matching.len() >= opt.len(), "maximal is 1/2-approx");
    }

    #[test]
    fn converges_near_optimal_on_random_bipartite() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..10 {
            let (g, side) = generators::random_bipartite(25, 25, 0.15, WeightModel::Unit, &mut rng);
            let opt = max_bipartite_cardinality_matching(&g, &side).len();
            let mut s = VecStream::random_order(g.edges().to_vec(), trial).with_vertex_count(50);
            let res = multipass_bipartite_mcm(&mut s, &side, &McmConfig::for_delta(0.1));
            assert!(
                (res.matching.len() as f64) >= 0.9 * opt as f64,
                "trial {trial}: got {} vs opt {opt}",
                res.matching.len()
            );
            res.matching.validate(None).unwrap();
        }
    }

    #[test]
    fn memory_stays_near_linear() {
        let mut rng = StdRng::seed_from_u64(4);
        // dense graph: m ~ n^2/4 but memory must stay O(n * cap)
        let (g, side) = generators::random_bipartite(60, 60, 0.5, WeightModel::Unit, &mut rng);
        let n = 120usize;
        let cfg = McmConfig::for_delta(0.2);
        let mut s = VecStream::random_order(g.edges().to_vec(), 6).with_vertex_count(n);
        let res = multipass_bipartite_mcm(&mut s, &side, &cfg);
        let bound = n * cfg.degree_cap + n; // support + matching
        assert!(
            res.peak_memory_edges <= bound,
            "peak {} exceeds O(n·cap) = {bound}",
            res.peak_memory_edges
        );
        assert!(
            g.edge_count() > bound,
            "test only meaningful when m >> bound"
        );
    }

    #[test]
    fn empty_stream() {
        let mut s = VecStream::adversarial(vec![]);
        let res = multipass_bipartite_mcm(&mut s, &[], &McmConfig::default());
        assert!(res.matching.is_empty());
        assert!(
            res.passes <= 2,
            "one greedy pass plus one confirmation pass"
        );
    }

    #[test]
    fn stops_early_when_no_improvement() {
        // perfect matching found greedily: second pass confirms, then stop
        let edges = vec![wmatch_graph::Edge::new(0, 1, 1)];
        let side = vec![false, true];
        let mut s = VecStream::adversarial(edges);
        let cfg = McmConfig {
            delta: 0.01,
            max_passes: 50,
            degree_cap: 4,
        };
        let res = multipass_bipartite_mcm(&mut s, &side, &cfg);
        assert_eq!(res.matching.len(), 1);
        assert!(res.passes <= 2, "must stop after an unproductive pass");
    }
}
