//! Semi-streaming model substrate.
//!
//! Implements the computation model of Feigenbaum et al. used throughout
//! the paper (Section 2): edges arrive one at a time, the algorithm may use
//! `O(n·polylog n)` memory, and may take one or more passes over the
//! stream. This crate provides:
//!
//! * [`stream`] — edge streams with adversarial / random-order arrival and
//!   pass counting ([`VecStream`], the [`EdgeStream`] trait),
//! * [`meter`] — memory accounting in stored edges ([`MemoryMeter`]),
//! * [`runner`] — a driver for multi-pass streaming algorithms
//!   ([`StreamAlgorithm`]),
//! * [`bipartite_mcm`] — a multi-pass (1−δ)-style unweighted bipartite
//!   matching algorithm: the streaming instantiation of the paper's
//!   `Unw-Bip-Matching` black box.
//!
//! # Example
//!
//! ```
//! use wmatch_graph::Edge;
//! use wmatch_stream::{EdgeStream, VecStream};
//!
//! let edges = vec![Edge::new(0, 1, 3), Edge::new(1, 2, 5)];
//! let mut s = VecStream::random_order(edges, 42);
//! let mut seen = 0;
//! s.stream_pass(&mut |_e| seen += 1);
//! assert_eq!(seen, 2);
//! assert_eq!(s.passes(), 1);
//! ```

pub mod bipartite_mcm;
pub mod meter;
pub mod runner;
pub mod stream;

pub use bipartite_mcm::{multipass_bipartite_mcm, McmConfig, McmResult};
pub use meter::MemoryMeter;
pub use runner::{run_multipass, StreamAlgorithm};
pub use stream::{EdgeStream, VecStream};
