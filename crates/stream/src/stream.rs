//! Edge streams with pass counting and arrival-order control.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use wmatch_graph::Edge;

/// A source of edges that can be read in passes.
///
/// A *pass* delivers every edge exactly once, in the stream's arrival
/// order. Multi-pass algorithms call [`EdgeStream::stream_pass`] repeatedly;
/// the stream counts how many passes were consumed, which is the complexity
/// measure of the multi-pass semi-streaming model.
///
/// The trait is object-safe so that adapter streams (e.g. the layered-graph
/// filters of Algorithm 4) can wrap a `&mut dyn EdgeStream`.
pub trait EdgeStream {
    /// Streams one full pass of edges into `sink`.
    fn stream_pass(&mut self, sink: &mut dyn FnMut(Edge));

    /// Number of edges per pass.
    fn edge_count(&self) -> usize;

    /// Number of vertices of the underlying graph.
    fn vertex_count(&self) -> usize;

    /// Number of passes consumed so far.
    fn passes(&self) -> usize;
}

/// How a [`VecStream`] orders its edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Order {
    /// Insertion (adversary-chosen) order, identical in every pass.
    Adversarial,
    /// One uniformly random permutation, fixed across passes (the paper's
    /// random-edge-arrival model for single-pass algorithms).
    RandomFixed,
    /// A fresh uniformly random permutation for each pass.
    RandomPerPass,
}

/// An in-memory edge stream.
///
/// # Example
///
/// ```
/// use wmatch_graph::Edge;
/// use wmatch_stream::{EdgeStream, VecStream};
///
/// let edges = vec![Edge::new(0, 1, 1), Edge::new(2, 3, 1)];
/// let mut s = VecStream::adversarial(edges.clone());
/// let mut got = Vec::new();
/// s.stream_pass(&mut |e| got.push(e));
/// assert_eq!(got, edges);
/// ```
#[derive(Debug, Clone)]
pub struct VecStream {
    edges: Vec<Edge>,
    n: usize,
    order: Order,
    rng: StdRng,
    passes: usize,
    perm: Vec<u32>,
}

impl VecStream {
    /// A stream that delivers edges in the given (adversarial) order.
    pub fn adversarial(edges: Vec<Edge>) -> Self {
        Self::build(edges, Order::Adversarial, 0)
    }

    /// A stream with one uniformly random arrival order drawn from `seed`
    /// (the paper's random-edge-arrival model). The order is fixed across
    /// passes.
    pub fn random_order(edges: Vec<Edge>, seed: u64) -> Self {
        Self::build(edges, Order::RandomFixed, seed)
    }

    /// A stream that re-shuffles uniformly at random before every pass.
    pub fn random_order_per_pass(edges: Vec<Edge>, seed: u64) -> Self {
        Self::build(edges, Order::RandomPerPass, seed)
    }

    fn build(edges: Vec<Edge>, order: Order, seed: u64) -> Self {
        let n = edges
            .iter()
            .map(|e| e.u.max(e.v) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..edges.len() as u32).collect();
        if order != Order::Adversarial {
            perm.shuffle(&mut rng);
        }
        VecStream {
            edges,
            n,
            order,
            rng,
            passes: 0,
            perm,
        }
    }

    /// Overrides the vertex count (useful when isolated vertices exist
    /// beyond the largest edge endpoint).
    pub fn with_vertex_count(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// The edges in their current arrival order (what the next pass will
    /// deliver).
    pub fn arrival_order(&self) -> Vec<Edge> {
        self.perm.iter().map(|&i| self.edges[i as usize]).collect()
    }
}

impl EdgeStream for VecStream {
    fn stream_pass(&mut self, sink: &mut dyn FnMut(Edge)) {
        if self.order == Order::RandomPerPass && self.passes > 0 {
            self.perm.shuffle(&mut self.rng);
        }
        self.passes += 1;
        for &i in &self.perm {
            sink(self.edges[i as usize]);
        }
    }

    fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn vertex_count(&self) -> usize {
        self.n
    }

    fn passes(&self) -> usize {
        self.passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Vec<Edge> {
        (0..10u32).map(|i| Edge::new(2 * i, 2 * i + 1, 1)).collect()
    }

    #[test]
    fn adversarial_preserves_order_across_passes() {
        let mut s = VecStream::adversarial(edges());
        let mut p1 = Vec::new();
        s.stream_pass(&mut |e| p1.push(e));
        let mut p2 = Vec::new();
        s.stream_pass(&mut |e| p2.push(e));
        assert_eq!(p1, edges());
        assert_eq!(p2, edges());
        assert_eq!(s.passes(), 2);
    }

    #[test]
    fn random_order_is_seed_deterministic() {
        let mut a = VecStream::random_order(edges(), 7);
        let mut b = VecStream::random_order(edges(), 7);
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        a.stream_pass(&mut |e| pa.push(e));
        b.stream_pass(&mut |e| pb.push(e));
        assert_eq!(pa, pb);
        // different seed gives (almost surely) a different order
        let mut c = VecStream::random_order(edges(), 8);
        let mut pc = Vec::new();
        c.stream_pass(&mut |e| pc.push(e));
        assert_ne!(pa, pc);
    }

    #[test]
    fn random_fixed_is_stable_across_passes() {
        let mut s = VecStream::random_order(edges(), 3);
        let (mut p1, mut p2) = (Vec::new(), Vec::new());
        s.stream_pass(&mut |e| p1.push(e));
        s.stream_pass(&mut |e| p2.push(e));
        assert_eq!(p1, p2);
    }

    #[test]
    fn random_per_pass_reshuffles() {
        let mut s = VecStream::random_order_per_pass(edges(), 3);
        let (mut p1, mut p2) = (Vec::new(), Vec::new());
        s.stream_pass(&mut |e| p1.push(e));
        s.stream_pass(&mut |e| p2.push(e));
        // same multiset
        let mut s1 = p1.clone();
        let mut s2 = p2.clone();
        s1.sort();
        s2.sort();
        assert_eq!(s1, s2);
        assert_ne!(p1, p2, "10! orders make a collision vanishingly unlikely");
    }

    #[test]
    fn each_pass_delivers_every_edge_once() {
        let mut s = VecStream::random_order(edges(), 12);
        let mut got = Vec::new();
        s.stream_pass(&mut |e| got.push(e));
        assert_eq!(got.len(), 10);
        let mut sorted = got.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn vertex_count_inference_and_override() {
        let s = VecStream::adversarial(vec![Edge::new(0, 5, 1)]);
        assert_eq!(s.vertex_count(), 6);
        let s = s.with_vertex_count(10);
        assert_eq!(s.vertex_count(), 10);
        let empty = VecStream::adversarial(vec![]);
        assert_eq!(empty.vertex_count(), 0);
        assert_eq!(empty.edge_count(), 0);
    }

    #[test]
    fn arrival_order_matches_next_pass() {
        let mut s = VecStream::random_order(edges(), 99);
        let predicted = s.arrival_order();
        let mut got = Vec::new();
        s.stream_pass(&mut |e| got.push(e));
        assert_eq!(predicted, got);
    }
}
