//! Driver for multi-pass streaming algorithms.

use wmatch_graph::Edge;

use crate::stream::EdgeStream;

/// A (possibly multi-pass) streaming algorithm.
///
/// The driver [`run_multipass`] calls `begin_pass`, feeds every edge of the
/// pass to `on_edge`, calls `end_pass`, and repeats while
/// `wants_another_pass()` holds (up to a pass budget). `finish` consumes
/// the algorithm and produces its output.
pub trait StreamAlgorithm {
    /// The algorithm's final output.
    type Output;

    /// Called before each pass (0-indexed).
    fn begin_pass(&mut self, _pass: usize) {}

    /// Called once per edge per pass.
    fn on_edge(&mut self, e: Edge);

    /// Called after each pass.
    fn end_pass(&mut self, _pass: usize) {}

    /// Whether the algorithm needs another pass over the stream.
    fn wants_another_pass(&self) -> bool {
        false
    }

    /// Produces the output.
    fn finish(self) -> Self::Output;
}

/// Runs `alg` over `stream` for at most `max_passes` passes (at least one)
/// and returns `(output, passes_used)`.
///
/// # Example
///
/// ```
/// use wmatch_graph::Edge;
/// use wmatch_stream::{run_multipass, StreamAlgorithm, VecStream};
///
/// struct CountEdges(usize);
/// impl StreamAlgorithm for CountEdges {
///     type Output = usize;
///     fn on_edge(&mut self, _e: Edge) { self.0 += 1; }
///     fn finish(self) -> usize { self.0 }
/// }
///
/// let mut s = VecStream::adversarial(vec![Edge::new(0, 1, 1)]);
/// let (count, passes) = run_multipass(&mut s, CountEdges(0), 5);
/// assert_eq!((count, passes), (1, 1));
/// ```
pub fn run_multipass<A: StreamAlgorithm>(
    stream: &mut dyn EdgeStream,
    mut alg: A,
    max_passes: usize,
) -> (A::Output, usize) {
    let mut pass = 0;
    loop {
        alg.begin_pass(pass);
        stream.stream_pass(&mut |e| alg.on_edge(e));
        alg.end_pass(pass);
        pass += 1;
        if pass >= max_passes || !alg.wants_another_pass() {
            break;
        }
    }
    (alg.finish(), pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::VecStream;

    struct SumWeightsForPasses {
        target_passes: usize,
        done: usize,
        sum: u64,
    }

    impl StreamAlgorithm for SumWeightsForPasses {
        type Output = u64;
        fn on_edge(&mut self, e: Edge) {
            self.sum += e.weight;
        }
        fn end_pass(&mut self, _pass: usize) {
            self.done += 1;
        }
        fn wants_another_pass(&self) -> bool {
            self.done < self.target_passes
        }
        fn finish(self) -> u64 {
            self.sum
        }
    }

    #[test]
    fn runs_requested_passes() {
        let edges = vec![Edge::new(0, 1, 2), Edge::new(1, 2, 3)];
        let mut s = VecStream::adversarial(edges);
        let alg = SumWeightsForPasses {
            target_passes: 3,
            done: 0,
            sum: 0,
        };
        let (sum, passes) = run_multipass(&mut s, alg, 10);
        assert_eq!(passes, 3);
        assert_eq!(sum, 15);
        assert_eq!(s.passes(), 3);
    }

    #[test]
    fn pass_budget_is_enforced() {
        let edges = vec![Edge::new(0, 1, 2)];
        let mut s = VecStream::adversarial(edges);
        let alg = SumWeightsForPasses {
            target_passes: 100,
            done: 0,
            sum: 0,
        };
        let (_, passes) = run_multipass(&mut s, alg, 4);
        assert_eq!(passes, 4);
    }

    #[test]
    fn single_pass_default() {
        struct One;
        impl StreamAlgorithm for One {
            type Output = ();
            fn on_edge(&mut self, _e: Edge) {}
            fn finish(self) {}
        }
        let mut s = VecStream::adversarial(vec![Edge::new(0, 1, 1)]);
        let (_, passes) = run_multipass(&mut s, One, 8);
        assert_eq!(passes, 1);
    }
}
