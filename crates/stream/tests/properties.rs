//! Property-based tests for the streaming substrate.

use proptest::prelude::*;

use wmatch_graph::exact::max_bipartite_cardinality_matching;
use wmatch_graph::{Edge, Graph};
use wmatch_stream::{multipass_bipartite_mcm, EdgeStream, McmConfig, MemoryMeter, VecStream};

fn arb_edges(max_m: usize) -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::vec((0u32..40, 0u32..40, 1u64..100), 0..max_m).prop_map(|raw| {
        raw.into_iter()
            .filter(|(u, v, _)| u != v)
            .map(|(u, v, w)| Edge::new(u, v, w))
            .collect()
    })
}

fn arb_bipartite_edges(max_m: usize) -> impl Strategy<Value = (Vec<Edge>, Vec<bool>)> {
    proptest::collection::vec((0u32..15, 15u32..30, 1u64..5), 0..max_m).prop_map(|raw| {
        let edges: Vec<Edge> = raw
            .into_iter()
            .map(|(u, v, w)| Edge::new(u, v, w))
            .collect();
        let side: Vec<bool> = (0..30).map(|v| v >= 15).collect();
        (edges, side)
    })
}

proptest! {
    // Seed pinned for reproducibility: every run explores the same cases.
    #![proptest_config(ProptestConfig::with_cases(100).with_seed(0x7374_7265_616d))] // b"stream"

    /// Every pass of every ordering mode delivers exactly the input
    /// multiset of edges.
    #[test]
    fn passes_preserve_the_multiset(edges in arb_edges(50), seed in 0u64..100) {
        let mut expected = edges.clone();
        expected.sort();
        for mut s in [
            VecStream::adversarial(edges.clone()),
            VecStream::random_order(edges.clone(), seed),
            VecStream::random_order_per_pass(edges.clone(), seed),
        ] {
            for pass in 0..3 {
                let mut got = Vec::new();
                s.stream_pass(&mut |e| got.push(e));
                got.sort();
                prop_assert_eq!(&got, &expected, "pass {}", pass);
            }
            prop_assert_eq!(s.passes(), 3);
        }
    }

    /// The multi-pass MCM box returns a valid matching no smaller than a
    /// maximal matching and no larger than the optimum, within its pass
    /// budget and its memory bound.
    #[test]
    fn mcm_box_sandwich((edges, side) in arb_bipartite_edges(60), seed in 0u64..50) {
        let n = side.len();
        let mut s = VecStream::random_order(edges.clone(), seed).with_vertex_count(n);
        let cfg = McmConfig::for_delta(0.25);
        let res = multipass_bipartite_mcm(&mut s, &side, &cfg);
        res.matching.validate(None).unwrap();
        prop_assert!(res.passes <= cfg.max_passes);
        let g = Graph::from_edges(n, edges.iter().copied());
        let opt = max_bipartite_cardinality_matching(&g, &side);
        prop_assert!(res.matching.len() <= opt.len());
        prop_assert!(2 * res.matching.len() >= opt.len(), "below maximal-quality");
        prop_assert!(res.peak_memory_edges <= n * cfg.degree_cap + n);
    }

    /// The memory meter is a lattice homomorphism-ish: peak equals the
    /// max prefix sum of the operation sequence.
    #[test]
    fn meter_peak_is_max_prefix(ops in proptest::collection::vec((0usize..100, proptest::bool::ANY), 0..40)) {
        let mut meter = MemoryMeter::new();
        let mut cur = 0usize;
        let mut peak = 0usize;
        for (amount, is_add) in ops {
            if is_add {
                meter.add(amount);
                cur += amount;
            } else {
                meter.sub(amount);
                cur = cur.saturating_sub(amount);
            }
            peak = peak.max(cur);
            prop_assert_eq!(meter.current(), cur);
            prop_assert_eq!(meter.peak(), peak);
        }
    }
}
