//! The MPC machine/round simulator.
//!
//! Words of memory are counted in *edge units*: one stored or transmitted
//! edge costs one word (an edge is O(1) machine words; the constant is
//! irrelevant to the asymptotic accounting the experiments verify).

use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use wmatch_graph::{Edge, Scratch, WorkerPool};

/// Static parameters of the MPC deployment: Γ machines × S words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct MpcConfig {
    /// Number of machines Γ.
    pub machines: usize,
    /// Memory (and per-round communication) budget S per machine, in words.
    pub memory_words: usize,
}

impl MpcConfig {
    /// A deployment of `machines` machines with `memory_words` words each.
    pub fn new(machines: usize, memory_words: usize) -> Self {
        MpcConfig {
            machines,
            memory_words,
        }
    }

    /// The paper's regime: `S = Θ̃(n)` memory per machine and `Γ = O(m/n)`
    /// machines, with a `slack` multiplier on S for polylog factors.
    pub fn near_linear(n: usize, m: usize, slack: usize) -> Self {
        let machines = (m / n.max(1)).clamp(2, 64);
        MpcConfig {
            machines,
            memory_words: slack.max(1) * n.max(1),
        }
    }

    /// Sets the number of machines Γ.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Sets the per-machine memory/communication budget S in words.
    pub fn with_memory_words(mut self, memory_words: usize) -> Self {
        self.memory_words = memory_words;
        self
    }
}

impl Default for MpcConfig {
    /// Four machines of 4096 words each — a small but workable deployment
    /// for tests and examples.
    fn default() -> Self {
        MpcConfig::new(4, 4096)
    }
}

/// Errors raised when an algorithm exceeds the model's budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MpcError {
    /// A machine's storage exceeded S words.
    MemoryExceeded {
        /// The machine that overflowed.
        machine: usize,
        /// Words it attempted to hold.
        used: usize,
        /// The budget S.
        limit: usize,
    },
    /// A machine sent or received more than S words in one round.
    CommunicationExceeded {
        /// The machine that overflowed.
        machine: usize,
        /// Words it attempted to transfer.
        used: usize,
        /// The budget S.
        limit: usize,
    },
    /// A message was addressed to a machine that does not exist.
    NoSuchMachine {
        /// The offending machine id.
        machine: usize,
    },
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::MemoryExceeded {
                machine,
                used,
                limit,
            } => {
                write!(
                    f,
                    "machine {machine} memory exceeded: {used} > {limit} words"
                )
            }
            MpcError::CommunicationExceeded {
                machine,
                used,
                limit,
            } => write!(
                f,
                "machine {machine} communication exceeded: {used} > {limit} words"
            ),
            MpcError::NoSuchMachine { machine } => {
                write!(f, "message addressed to nonexistent machine {machine}")
            }
        }
    }
}

impl Error for MpcError {}

/// The simulator: machines holding edge data, a round counter, and budget
/// enforcement.
///
/// Edge payloads move between machines through [`MpcSimulator::exchange`];
/// small control state (e.g. the current matching, O(n) ≤ S words) is
/// accounted through [`MpcSimulator::broadcast_words`] /
/// [`MpcSimulator::gather_words`], which charge the rounds and validate the
/// communication volume of the standard two-step broadcast the paper
/// describes in its MPC implementation notes (Section 4.4).
#[derive(Debug, Clone)]
pub struct MpcSimulator {
    cfg: MpcConfig,
    storage: Vec<Vec<Edge>>,
    rounds: usize,
    peak_machine_words: usize,
}

impl MpcSimulator {
    /// Creates a simulator with empty machines.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.machines == 0`.
    pub fn new(cfg: MpcConfig) -> Self {
        assert!(cfg.machines > 0, "need at least one machine");
        MpcSimulator {
            cfg,
            storage: vec![Vec::new(); cfg.machines],
            rounds: 0,
            peak_machine_words: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> MpcConfig {
        self.cfg
    }

    /// Rounds elapsed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Largest per-machine storage observed, in words.
    pub fn peak_machine_words(&self) -> usize {
        self.peak_machine_words
    }

    /// Read-only view of machine `i`'s stored edges.
    pub fn machine(&self, i: usize) -> &[Edge] {
        &self.storage[i]
    }

    fn note_loads(&mut self) -> Result<(), MpcError> {
        for (i, st) in self.storage.iter().enumerate() {
            self.peak_machine_words = self.peak_machine_words.max(st.len());
            if st.len() > self.cfg.memory_words {
                return Err(MpcError::MemoryExceeded {
                    machine: i,
                    used: st.len(),
                    limit: self.cfg.memory_words,
                });
            }
        }
        Ok(())
    }

    /// Distributes the input edges uniformly at random across machines
    /// (the model's "arbitrary initial partition"; costs one round).
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] if some machine would overflow.
    pub fn scatter_edges(&mut self, edges: Vec<Edge>, seed: u64) -> Result<(), MpcError> {
        let mut rng = StdRng::seed_from_u64(seed);
        for e in edges {
            let m = rng.gen_range(0..self.cfg.machines);
            self.storage[m].push(e);
        }
        self.rounds += 1;
        self.note_loads()
    }

    /// Runs one communication round: `step(machine_id, local_edges)` may
    /// mutate the machine's local storage and returns messages
    /// `(destination, edge)` to deliver before the next round.
    ///
    /// # Errors
    ///
    /// Returns an error if any machine sends or receives more than S words,
    /// stores more than S words afterwards, or addresses a bad machine.
    pub fn exchange<F>(&mut self, mut step: F) -> Result<(), MpcError>
    where
        F: FnMut(usize, &mut Vec<Edge>) -> Vec<(usize, Edge)>,
    {
        let s = self.cfg.memory_words;
        let gamma = self.cfg.machines;
        let mut inboxes: Vec<Vec<Edge>> = vec![Vec::new(); gamma];
        let mut received = vec![0usize; gamma];
        for i in 0..gamma {
            let mut local = std::mem::take(&mut self.storage[i]);
            let out = step(i, &mut local);
            self.storage[i] = local;
            if out.len() > s {
                return Err(MpcError::CommunicationExceeded {
                    machine: i,
                    used: out.len(),
                    limit: s,
                });
            }
            for (dest, e) in out {
                if dest >= gamma {
                    return Err(MpcError::NoSuchMachine { machine: dest });
                }
                received[dest] += 1;
                if received[dest] > s {
                    return Err(MpcError::CommunicationExceeded {
                        machine: dest,
                        used: received[dest],
                        limit: s,
                    });
                }
                inboxes[dest].push(e);
            }
        }
        for (i, inbox) in inboxes.into_iter().enumerate() {
            self.storage[i].extend(inbox);
        }
        self.rounds += 1;
        self.note_loads()
    }

    /// Runs one communication round in which messages land in *transient*
    /// inboxes returned to the caller instead of being merged into machine
    /// storage (for working sets that are discarded after the round, e.g.
    /// coresets gathered onto a coordinator).
    ///
    /// `step(machine_id, local_edges)` reads the machine's storage and
    /// returns messages. Budgets: each machine may send at most S words;
    /// each machine's storage plus its inbox must fit in S words.
    ///
    /// # Errors
    ///
    /// Returns an error on budget violations or bad destinations.
    #[allow(clippy::needless_range_loop)]
    pub fn exchange_transient<F>(&mut self, mut step: F) -> Result<Vec<Vec<Edge>>, MpcError>
    where
        F: FnMut(usize, &[Edge]) -> Vec<(usize, Edge)>,
    {
        let s = self.cfg.memory_words;
        let gamma = self.cfg.machines;
        let mut inboxes: Vec<Vec<Edge>> = vec![Vec::new(); gamma];
        for i in 0..gamma {
            let out = step(i, &self.storage[i]);
            if out.len() > s {
                return Err(MpcError::CommunicationExceeded {
                    machine: i,
                    used: out.len(),
                    limit: s,
                });
            }
            for (dest, e) in out {
                if dest >= gamma {
                    return Err(MpcError::NoSuchMachine { machine: dest });
                }
                inboxes[dest].push(e);
            }
        }
        self.rounds += 1;
        for i in 0..gamma {
            let used = self.storage[i].len() + inboxes[i].len();
            self.peak_machine_words = self.peak_machine_words.max(used);
            if used > s {
                return Err(MpcError::MemoryExceeded {
                    machine: i,
                    used,
                    limit: s,
                });
            }
        }
        Ok(inboxes)
    }

    /// The parallel form of [`MpcSimulator::exchange`]: every machine's
    /// local computation runs concurrently on the caller's [`WorkerPool`],
    /// and the exchange itself — message validation and delivery — is the
    /// round's only barrier. `step(machine, local_edges, scratch)` must be
    /// a pure function of the machine's state (plus its per-worker
    /// scratch arena), so the result is **bit-identical** to running the
    /// same steps sequentially in machine order, for any worker count.
    ///
    /// Budget violations are detected by replaying the collected outboxes
    /// in machine order, so the reported error matches what the sequential
    /// replay would observe; unlike [`MpcSimulator::exchange`], machines
    /// *after* an overflowing sender still execute their (discarded) local
    /// step — on error the simulator state is unspecified either way.
    ///
    /// # Errors
    ///
    /// Returns an error if any machine sends or receives more than S
    /// words, stores more than S words afterwards, or addresses a bad
    /// machine.
    pub fn exchange_par<F>(&mut self, pool: &mut WorkerPool, step: F) -> Result<(), MpcError>
    where
        F: Fn(usize, &mut Vec<Edge>, &mut Scratch) -> Vec<(usize, Edge)> + Sync,
    {
        let s = self.cfg.memory_words;
        let gamma = self.cfg.machines;
        // machine-local computation: each worker owns its machine's storage
        let outboxes: Vec<Vec<(usize, Edge)>> = pool
            .run_over(&mut self.storage, &|_worker, mach, local, scratch| {
                step(mach, local, scratch)
            });
        // the barrier: deterministic delivery in machine order
        let mut inboxes: Vec<Vec<Edge>> = vec![Vec::new(); gamma];
        let mut received = vec![0usize; gamma];
        for (i, out) in outboxes.into_iter().enumerate() {
            if out.len() > s {
                return Err(MpcError::CommunicationExceeded {
                    machine: i,
                    used: out.len(),
                    limit: s,
                });
            }
            for (dest, e) in out {
                if dest >= gamma {
                    return Err(MpcError::NoSuchMachine { machine: dest });
                }
                received[dest] += 1;
                if received[dest] > s {
                    return Err(MpcError::CommunicationExceeded {
                        machine: dest,
                        used: received[dest],
                        limit: s,
                    });
                }
                inboxes[dest].push(e);
            }
        }
        for (i, inbox) in inboxes.into_iter().enumerate() {
            self.storage[i].extend(inbox);
        }
        self.rounds += 1;
        self.note_loads()
    }

    /// The parallel form of [`MpcSimulator::exchange_transient`]: machines
    /// read their storage concurrently on the pool and the returned
    /// inboxes are assembled in machine order (bit-identical to the
    /// sequential method for any worker count).
    ///
    /// # Errors
    ///
    /// Returns an error on budget violations or bad destinations.
    pub fn exchange_transient_par<F>(
        &mut self,
        pool: &mut WorkerPool,
        step: F,
    ) -> Result<Vec<Vec<Edge>>, MpcError>
    where
        F: Fn(usize, &[Edge], &mut Scratch) -> Vec<(usize, Edge)> + Sync,
    {
        let s = self.cfg.memory_words;
        let gamma = self.cfg.machines;
        let storage = &self.storage;
        let outboxes: Vec<Vec<(usize, Edge)>> = pool.run_map(gamma, &|_worker, mach, scratch| {
            step(mach, &storage[mach], scratch)
        });
        let mut inboxes: Vec<Vec<Edge>> = vec![Vec::new(); gamma];
        for (i, out) in outboxes.into_iter().enumerate() {
            if out.len() > s {
                return Err(MpcError::CommunicationExceeded {
                    machine: i,
                    used: out.len(),
                    limit: s,
                });
            }
            for (dest, e) in out {
                if dest >= gamma {
                    return Err(MpcError::NoSuchMachine { machine: dest });
                }
                inboxes[dest].push(e);
            }
        }
        self.rounds += 1;
        for (i, (st, inbox)) in self.storage.iter().zip(&inboxes).enumerate() {
            let used = st.len() + inbox.len();
            self.peak_machine_words = self.peak_machine_words.max(used);
            if used > s {
                return Err(MpcError::MemoryExceeded {
                    machine: i,
                    used,
                    limit: s,
                });
            }
        }
        Ok(inboxes)
    }

    /// Accounts for broadcasting `words` words of control state from one
    /// machine to all machines using the standard two-step scheme (split
    /// into Γ parts, then all-to-all): costs 2 rounds; requires
    /// `words ≤ S`.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::CommunicationExceeded`] if `words > S`.
    pub fn broadcast_words(&mut self, from: usize, words: usize) -> Result<(), MpcError> {
        if words > self.cfg.memory_words {
            return Err(MpcError::CommunicationExceeded {
                machine: from,
                used: words,
                limit: self.cfg.memory_words,
            });
        }
        self.rounds += 2;
        Ok(())
    }

    /// Accounts for gathering `words_per_machine[i]` words from each
    /// machine onto `to` in one round.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::CommunicationExceeded`] if the destination would
    /// receive more than S words in total.
    pub fn gather_words(&mut self, to: usize, words_per_machine: &[usize]) -> Result<(), MpcError> {
        let total: usize = words_per_machine.iter().sum();
        if total > self.cfg.memory_words {
            return Err(MpcError::CommunicationExceeded {
                machine: to,
                used: total,
                limit: self.cfg.memory_words,
            });
        }
        self.rounds += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_edges(k: usize) -> Vec<Edge> {
        (0..k as u32)
            .map(|i| Edge::new(2 * i, 2 * i + 1, 1))
            .collect()
    }

    #[test]
    fn scatter_distributes_all_edges() {
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 4,
            memory_words: 100,
        });
        sim.scatter_edges(unit_edges(40), 1).unwrap();
        let total: usize = (0..4).map(|i| sim.machine(i).len()).sum();
        assert_eq!(total, 40);
        assert_eq!(sim.rounds(), 1);
        assert!(sim.peak_machine_words() <= 100);
    }

    #[test]
    fn scatter_detects_overflow() {
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 2,
            memory_words: 3,
        });
        let err = sim.scatter_edges(unit_edges(40), 1).unwrap_err();
        assert!(matches!(err, MpcError::MemoryExceeded { .. }));
    }

    #[test]
    fn exchange_moves_edges_and_counts_rounds() {
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 2,
            memory_words: 100,
        });
        sim.scatter_edges(unit_edges(10), 2).unwrap();
        // move everything to machine 0
        sim.exchange(|_, local| {
            let out: Vec<_> = local.drain(..).map(|e| (0usize, e)).collect();
            out
        })
        .unwrap();
        assert_eq!(sim.machine(0).len(), 10);
        assert_eq!(sim.machine(1).len(), 0);
        assert_eq!(sim.rounds(), 2);
    }

    #[test]
    fn exchange_detects_receive_overflow() {
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 4,
            memory_words: 20,
        });
        sim.scatter_edges(unit_edges(40), 3).unwrap();
        // funnelling all 40 edges into machine 0 exceeds its 20-word budget
        let err = sim
            .exchange(|_, local| local.drain(..).map(|e| (0usize, e)).collect::<Vec<_>>())
            .unwrap_err();
        assert!(matches!(
            err,
            MpcError::CommunicationExceeded { machine: 0, .. }
        ));
    }

    #[test]
    fn exchange_rejects_bad_destination() {
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 2,
            memory_words: 100,
        });
        sim.scatter_edges(unit_edges(1), 4).unwrap();
        let err = sim
            .exchange(|_, local| local.drain(..).map(|e| (9usize, e)).collect::<Vec<_>>())
            .unwrap_err();
        assert_eq!(err, MpcError::NoSuchMachine { machine: 9 });
    }

    #[test]
    fn transient_exchange_leaves_storage_untouched() {
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 3,
            memory_words: 50,
        });
        sim.scatter_edges(unit_edges(12), 5).unwrap();
        let before: Vec<usize> = (0..3).map(|i| sim.machine(i).len()).collect();
        let inboxes = sim
            .exchange_transient(|_m, local| local.iter().map(|e| (0usize, *e)).collect::<Vec<_>>())
            .unwrap();
        let after: Vec<usize> = (0..3).map(|i| sim.machine(i).len()).collect();
        assert_eq!(before, after, "transient messages must not persist");
        assert_eq!(inboxes[0].len(), 12);
        assert!(inboxes[1].is_empty() && inboxes[2].is_empty());
        assert_eq!(sim.rounds(), 2); // scatter + transient round
    }

    #[test]
    fn transient_exchange_enforces_inbox_memory() {
        // storage + inbox must fit in S: machine 0 holds ~1/2 of 30 edges
        // with S = 20, so receiving 20 more overflows
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 2,
            memory_words: 20,
        });
        sim.scatter_edges(unit_edges(30), 6).unwrap();
        let err = sim
            .exchange_transient(|_m, local| local.iter().map(|e| (0usize, *e)).collect::<Vec<_>>())
            .unwrap_err();
        assert!(matches!(err, MpcError::MemoryExceeded { machine: 0, .. }));
    }

    #[test]
    fn transient_exchange_rejects_bad_destination() {
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 2,
            memory_words: 50,
        });
        sim.scatter_edges(unit_edges(2), 7).unwrap();
        let err = sim
            .exchange_transient(|_m, local| local.iter().map(|e| (5usize, *e)).collect::<Vec<_>>())
            .unwrap_err();
        assert_eq!(err, MpcError::NoSuchMachine { machine: 5 });
    }

    #[test]
    fn parallel_exchange_matches_sequential() {
        // the same deterministic per-machine step, sequential vs pooled at
        // several worker counts: storage, rounds, and peaks must agree
        let build = || {
            let mut sim = MpcSimulator::new(MpcConfig {
                machines: 5,
                memory_words: 200,
            });
            sim.scatter_edges(unit_edges(60), 11).unwrap();
            sim
        };
        let step_dest = |mach: usize, e: &Edge| ((mach + e.u as usize) % 5, *e);
        let mut seq = build();
        seq.exchange(|mach, local| {
            local
                .drain(..)
                .map(|e| step_dest(mach, &e))
                .collect::<Vec<_>>()
        })
        .unwrap();
        for threads in [1usize, 2, 4] {
            let mut pool = WorkerPool::new(threads);
            let mut par = build();
            par.exchange_par(&mut pool, |mach, local, _s| {
                local
                    .drain(..)
                    .map(|e| step_dest(mach, &e))
                    .collect::<Vec<_>>()
            })
            .unwrap();
            for i in 0..5 {
                assert_eq!(seq.machine(i), par.machine(i), "threads {threads}");
            }
            assert_eq!(seq.rounds(), par.rounds());
            assert_eq!(seq.peak_machine_words(), par.peak_machine_words());
        }
    }

    #[test]
    fn parallel_transient_exchange_matches_sequential() {
        let build = || {
            let mut sim = MpcSimulator::new(MpcConfig {
                machines: 4,
                memory_words: 100,
            });
            sim.scatter_edges(unit_edges(30), 13).unwrap();
            sim
        };
        let mut seq = build();
        let want = seq
            .exchange_transient(|mach, local| {
                local
                    .iter()
                    .map(|e| ((mach + 1) % 4, *e))
                    .collect::<Vec<_>>()
            })
            .unwrap();
        let mut pool = WorkerPool::new(3);
        let mut par = build();
        let got = par
            .exchange_transient_par(&mut pool, |mach, local, _s| {
                local
                    .iter()
                    .map(|e| ((mach + 1) % 4, *e))
                    .collect::<Vec<_>>()
            })
            .unwrap();
        assert_eq!(want, got);
        assert_eq!(seq.rounds(), par.rounds());
    }

    #[test]
    fn parallel_exchange_detects_overflow_deterministically() {
        for threads in [1usize, 4] {
            let mut pool = WorkerPool::new(threads);
            let mut sim = MpcSimulator::new(MpcConfig {
                machines: 4,
                memory_words: 20,
            });
            sim.scatter_edges(unit_edges(40), 3).unwrap();
            let err = sim
                .exchange_par(&mut pool, |_m, local, _s| {
                    local.drain(..).map(|e| (0usize, e)).collect::<Vec<_>>()
                })
                .unwrap_err();
            assert!(
                matches!(err, MpcError::CommunicationExceeded { machine: 0, .. }),
                "threads {threads}: {err:?}"
            );
        }
    }

    #[test]
    fn broadcast_and_gather_accounting() {
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 4,
            memory_words: 50,
        });
        sim.broadcast_words(0, 50).unwrap();
        assert_eq!(sim.rounds(), 2);
        sim.gather_words(0, &[10, 10, 10, 10]).unwrap();
        assert_eq!(sim.rounds(), 3);
        assert!(sim.broadcast_words(0, 51).is_err());
        assert!(sim.gather_words(0, &[26, 26, 0, 0]).is_err());
    }

    #[test]
    fn near_linear_config() {
        let cfg = MpcConfig::near_linear(1000, 50_000, 4);
        assert_eq!(cfg.machines, 50);
        assert_eq!(cfg.memory_words, 4000);
        // degenerate inputs stay sane
        let cfg = MpcConfig::near_linear(10, 5, 1);
        assert!(cfg.machines >= 2);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = MpcError::MemoryExceeded {
            machine: 3,
            used: 10,
            limit: 5,
        };
        assert_eq!(e.to_string(), "machine 3 memory exceeded: 10 > 5 words");
    }
}
