//! MPC (1−δ)-style unweighted bipartite matching — the MPC instantiation of
//! the paper's `Unw-Bip-Matching` black box (Theorem 4.1 cites the coreset
//! algorithm of Assadi et al. \[ABB+19\] and Ghaffari et al. \[GGK+18\]).
//!
//! The scheme follows the "coresets" approach of \[ABB+19\], which is natural
//! in the paper's near-linear memory regime (`S = Θ̃(n)`, so a single
//! machine can hold a matching plus a bounded-degree subgraph):
//!
//! Each iteration:
//! 1. the coordinator broadcasts the current matching `M` (2 rounds,
//!    `O(n) ≤ S` words),
//! 2. every machine re-scatters its edges uniformly at random (1 round) so
//!    coresets differ across iterations,
//! 3. every machine extracts a **coreset** of its local edges — a
//!    bounded-degree subgraph (≤ `degree_cap` stored edges per vertex,
//!    at most `S/Γ` words) — and sends it to the coordinator (1 round),
//! 4. the coordinator runs offline Hopcroft–Karp warm-started from `M` on
//!    (union of coresets) ∪ `M` and adopts the result.
//!
//! Iterations stop after `patience` consecutive fruitless rounds or at the
//! iteration budget; experiment E7 measures rounds and per-machine memory.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use wmatch_graph::exact::hopcroft_karp::max_bipartite_cardinality_matching_from;
use wmatch_graph::{Edge, Graph, Matching, WorkerPool};

use crate::simulator::{MpcError, MpcSimulator};

/// Configuration for [`mpc_bipartite_mcm`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct MpcMcmConfig {
    /// Target slack δ (drives the default iteration budget).
    pub delta: f64,
    /// Maximum number of coreset iterations.
    pub max_iterations: usize,
    /// Stop after this many consecutive iterations without improvement.
    pub patience: usize,
    /// Per-vertex cap on coreset edges contributed by one machine.
    pub degree_cap: usize,
    /// RNG seed (re-scatter randomness).
    pub seed: u64,
}

impl MpcMcmConfig {
    /// Derives a budget from δ: `⌈2/δ⌉` iterations, degree cap
    /// `⌈2/δ⌉`, patience 2.
    pub fn for_delta(delta: f64, seed: u64) -> Self {
        let d = delta.clamp(1e-6, 1.0);
        MpcMcmConfig {
            delta: d,
            max_iterations: (2.0 / d).ceil() as usize,
            patience: 2,
            degree_cap: (2.0 / d).ceil() as usize,
            seed,
        }
    }

    /// Sets the target slack δ.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the maximum number of coreset iterations.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the patience (consecutive fruitless iterations before stop).
    pub fn with_patience(mut self, patience: usize) -> Self {
        self.patience = patience;
        self
    }

    /// Sets the per-vertex cap on coreset edges contributed by one machine.
    pub fn with_degree_cap(mut self, degree_cap: usize) -> Self {
        self.degree_cap = degree_cap;
        self
    }

    /// Sets the RNG seed for the re-scatter randomness.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for MpcMcmConfig {
    /// [`MpcMcmConfig::for_delta`] at δ = 0.1 with seed 0.
    fn default() -> Self {
        MpcMcmConfig::for_delta(0.1, 0)
    }
}

/// Output of [`mpc_bipartite_mcm`].
#[derive(Debug, Clone)]
pub struct MpcMcmResult {
    /// The matching found.
    pub matching: Matching,
    /// Total MPC rounds consumed (including input distribution).
    pub rounds: usize,
    /// Peak per-machine storage in words.
    pub peak_machine_words: usize,
}

/// Computes a large-cardinality matching of a bipartite graph in the MPC
/// model.
///
/// `sim` must be freshly constructed; this function distributes `edges`
/// itself. `side[v]` gives the bipartition side of `v`.
///
/// # Errors
///
/// Returns an [`MpcError`] if the instance does not fit the simulator's
/// memory/communication budgets.
///
/// # Example
///
/// ```
/// use wmatch_graph::Edge;
/// use wmatch_mpc::{mpc_bipartite_mcm, MpcConfig, MpcMcmConfig, MpcSimulator};
///
/// let edges = vec![Edge::new(1, 2, 1), Edge::new(0, 2, 1), Edge::new(1, 3, 1)];
/// let side = vec![false, false, true, true];
/// let mut sim = MpcSimulator::new(MpcConfig::new(2, 64));
/// let res = mpc_bipartite_mcm(&mut sim, edges, &side, &MpcMcmConfig::for_delta(0.2, 7)).unwrap();
/// assert_eq!(res.matching.len(), 2);
/// ```
pub fn mpc_bipartite_mcm(
    sim: &mut MpcSimulator,
    edges: Vec<Edge>,
    side: &[bool],
    cfg: &MpcMcmConfig,
) -> Result<MpcMcmResult, MpcError> {
    // a 1-worker pool runs every machine step inline on the caller
    let mut pool = WorkerPool::new(1);
    mpc_bipartite_mcm_pooled(sim, edges, side, cfg, &mut pool)
}

/// Like [`mpc_bipartite_mcm`], executing the per-machine local
/// computations of every simulated round — the re-scatter shuffles and the
/// coreset extractions — concurrently on the caller's [`WorkerPool`], with
/// the simulator's exchanges as the only barriers. The returned matching
/// is **bit-identical** to [`mpc_bipartite_mcm`] for any worker count: the
/// per-machine randomness is keyed by machine id (not worker), results
/// land in machine-indexed slots, and the coordinator's Hopcroft–Karp step
/// is sequential either way.
///
/// # Errors
///
/// Returns an [`MpcError`] if the instance does not fit the simulator's
/// memory/communication budgets.
pub fn mpc_bipartite_mcm_pooled(
    sim: &mut MpcSimulator,
    edges: Vec<Edge>,
    side: &[bool],
    cfg: &MpcMcmConfig,
    pool: &mut WorkerPool,
) -> Result<MpcMcmResult, MpcError> {
    let n = side.len();
    let gamma = sim.config().machines;
    let s = sim.config().memory_words;
    let coordinator = 0usize;
    let quota = (s / gamma.max(1)).max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    sim.scatter_edges(edges, rng.gen())?;

    let mut matching = Matching::new(n);
    let mut fruitless = 0usize;
    // the coordinator's reusable local-graph buffer
    let mut h = Graph::new(n);

    for _iter in 0..cfg.max_iterations {
        // (1) broadcast the current matching
        sim.broadcast_words(coordinator, matching.len().max(1))?;

        // (2) re-scatter so the next coreset sees a fresh random edge
        // order; machine randomness is keyed by machine id, so the
        // shuffle is identical for any worker count
        let shuffle_seed: u64 = rng.gen();
        sim.exchange_par(pool, |mach, local, _scratch| {
            let mut r = StdRng::seed_from_u64(shuffle_seed ^ (mach as u64).wrapping_mul(0x9e37));
            local
                .drain(..)
                .map(|e| (r.gen_range(0..gamma), e))
                .collect::<Vec<_>>()
        })?;

        // (3) coreset extraction and gather to the coordinator; each
        // worker's scratch arena carries its own degree counters
        let inboxes = sim.exchange_transient_par(pool, |_mach, local, scratch| {
            scratch.begin(n);
            let deg = &mut scratch.count;
            let mut out = Vec::new();
            for &e in local {
                if out.len() >= quota {
                    break;
                }
                let (du, dv) = (deg.get_or_default(e.u), deg.get_or_default(e.v));
                if du < cfg.degree_cap as u32 && dv < cfg.degree_cap as u32 {
                    deg.insert(e.u, du + 1);
                    deg.insert(e.v, dv + 1);
                    out.push((coordinator, e));
                }
            }
            out
        })?;

        // (4) coordinator: offline augmentation on coreset ∪ M
        h.clear_edges();
        for e in &inboxes[coordinator] {
            h.add_edge(e.u, e.v, e.weight);
        }
        for e in matching.iter() {
            h.add_edge(e.u, e.v, e.weight);
        }
        let improved = max_bipartite_cardinality_matching_from(&h, side, matching.clone());
        if improved.len() > matching.len() {
            matching = improved;
            fruitless = 0;
        } else {
            fruitless += 1;
            if fruitless >= cfg.patience {
                break;
            }
        }
    }

    Ok(MpcMcmResult {
        matching,
        rounds: sim.rounds(),
        peak_machine_words: sim.peak_machine_words(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::MpcConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wmatch_graph::exact::max_bipartite_cardinality_matching;
    use wmatch_graph::generators::{self, WeightModel};

    #[test]
    fn solves_small_path() {
        let edges = vec![Edge::new(1, 2, 1), Edge::new(0, 2, 1), Edge::new(1, 3, 1)];
        let side = vec![false, false, true, true];
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 2,
            memory_words: 64,
        });
        let res =
            mpc_bipartite_mcm(&mut sim, edges, &side, &MpcMcmConfig::for_delta(0.1, 3)).unwrap();
        assert_eq!(res.matching.len(), 2);
        res.matching.validate(None).unwrap();
    }

    #[test]
    fn near_optimal_on_random_bipartite() {
        let mut rng = StdRng::seed_from_u64(8);
        for trial in 0..6 {
            let (g, side) = generators::random_bipartite(30, 30, 0.12, WeightModel::Unit, &mut rng);
            let opt = max_bipartite_cardinality_matching(&g, &side).len();
            let mut sim = MpcSimulator::new(MpcConfig {
                machines: 4,
                memory_words: 4000,
            });
            let res = mpc_bipartite_mcm(
                &mut sim,
                g.edges().to_vec(),
                &side,
                &MpcMcmConfig::for_delta(0.1, trial),
            )
            .unwrap();
            assert!(
                res.matching.len() as f64 >= 0.9 * opt as f64,
                "trial {trial}: {} vs opt {opt}",
                res.matching.len()
            );
        }
    }

    #[test]
    fn respects_memory_budget() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, side) = generators::random_bipartite(50, 50, 0.4, WeightModel::Unit, &mut rng);
        let s = 2000;
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 4,
            memory_words: s,
        });
        let res = mpc_bipartite_mcm(
            &mut sim,
            g.edges().to_vec(),
            &side,
            &MpcMcmConfig::for_delta(0.2, 1),
        )
        .unwrap();
        assert!(res.peak_machine_words <= s);
    }

    #[test]
    fn rounds_grow_with_iterations_not_input() {
        // same iteration budget, different sizes -> comparable round counts
        let mut rng = StdRng::seed_from_u64(10);
        let mut rounds = Vec::new();
        for &nl in &[20usize, 40, 80] {
            let (g, side) = generators::random_bipartite(nl, nl, 0.2, WeightModel::Unit, &mut rng);
            let mut sim = MpcSimulator::new(MpcConfig {
                machines: 4,
                memory_words: 50_000,
            });
            let cfg = MpcMcmConfig {
                delta: 0.1,
                max_iterations: 10,
                patience: 2,
                degree_cap: 10,
                seed: 5,
            };
            let res = mpc_bipartite_mcm(&mut sim, g.edges().to_vec(), &side, &cfg).unwrap();
            rounds.push(res.rounds);
        }
        let spread = rounds.iter().max().unwrap() - rounds.iter().min().unwrap();
        assert!(
            spread <= 4 * 10,
            "round counts {rounds:?} must be bounded by the iteration budget, not n"
        );
    }

    #[test]
    fn fails_cleanly_when_budget_too_small() {
        let mut rng = StdRng::seed_from_u64(11);
        let (g, side) = generators::random_bipartite(40, 40, 0.5, WeightModel::Unit, &mut rng);
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 2,
            memory_words: 10,
        });
        let err = mpc_bipartite_mcm(
            &mut sim,
            g.edges().to_vec(),
            &side,
            &MpcMcmConfig::for_delta(0.2, 2),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MpcError::MemoryExceeded { .. } | MpcError::CommunicationExceeded { .. }
        ));
    }

    #[test]
    fn pooled_box_is_bit_identical_across_worker_counts() {
        let mut rng = StdRng::seed_from_u64(21);
        let (g, side) = generators::random_bipartite(40, 40, 0.15, WeightModel::Unit, &mut rng);
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 6,
            memory_words: 4000,
        });
        let cfg = MpcMcmConfig::for_delta(0.1, 77);
        let want = mpc_bipartite_mcm(&mut sim, g.edges().to_vec(), &side, &cfg).unwrap();
        for threads in [1usize, 2, 4, 0] {
            let mut pool = WorkerPool::new(threads);
            let mut sim = MpcSimulator::new(MpcConfig {
                machines: 6,
                memory_words: 4000,
            });
            let got =
                mpc_bipartite_mcm_pooled(&mut sim, g.edges().to_vec(), &side, &cfg, &mut pool)
                    .unwrap();
            assert_eq!(
                want.matching.to_edges(),
                got.matching.to_edges(),
                "threads {threads}"
            );
            assert_eq!(want.rounds, got.rounds, "threads {threads}");
            assert_eq!(
                want.peak_machine_words, got.peak_machine_words,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn empty_input() {
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 2,
            memory_words: 10,
        });
        let res =
            mpc_bipartite_mcm(&mut sim, vec![], &[], &MpcMcmConfig::for_delta(0.5, 0)).unwrap();
        assert!(res.matching.is_empty());
    }

    #[test]
    fn adversarial_order_is_neutralized_by_rescatter() {
        // a long path graph fed in pathological order still reaches optimum
        let mut edges = Vec::new();
        let n = 40u32;
        for i in 0..n - 1 {
            edges.push(Edge::new(i, i + 1, 1));
        }
        let side: Vec<bool> = (0..n).map(|v| v % 2 == 1).collect();
        let mut sim = MpcSimulator::new(MpcConfig {
            machines: 3,
            memory_words: 500,
        });
        let res =
            mpc_bipartite_mcm(&mut sim, edges, &side, &MpcMcmConfig::for_delta(0.05, 4)).unwrap();
        assert_eq!(res.matching.len() as u32, n / 2);
    }
}
