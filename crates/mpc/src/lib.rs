//! Massively Parallel Computation (MPC) simulator substrate.
//!
//! Implements the computation model of Section 2 of the paper: Γ machines
//! with `S` words of memory each, computing in synchronous rounds; between
//! rounds every machine may send and receive at most `S` words. The
//! simulator moves edge data between simulated machines, enforces the
//! memory and communication budgets, and counts rounds — the model's
//! complexity measure.
//!
//! [`bipartite_mcm`] provides the MPC instantiation of the paper's
//! `Unw-Bip-Matching` black box (Theorem 4.1 cites \[GGK+18\]/\[ABB+19\]):
//! a coreset-iteration algorithm in the near-linear memory regime.
//!
//! # Example
//!
//! ```
//! use wmatch_graph::Edge;
//! use wmatch_mpc::{MpcConfig, MpcSimulator};
//!
//! let cfg = MpcConfig::new(4, 100);
//! let mut sim = MpcSimulator::new(cfg);
//! sim.scatter_edges(vec![Edge::new(0, 1, 1), Edge::new(2, 3, 1)], 7).unwrap();
//! assert_eq!(sim.rounds(), 1); // the initial distribution round
//! ```

pub mod bipartite_mcm;
pub mod simulator;

pub use bipartite_mcm::{mpc_bipartite_mcm, mpc_bipartite_mcm_pooled, MpcMcmConfig, MpcMcmResult};
pub use simulator::{MpcConfig, MpcError, MpcSimulator};
