//! Criterion benchmarks for the dynamic update-stream engine: replay
//! throughput of `DynamicMatcher` on each E11 workload family, against
//! the recompute-from-scratch baseline on a smaller op count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wmatch_bench::families::DynamicFamily;
use wmatch_dynamic::{DynamicConfig, DynamicMatcher, RecomputeBaseline};

fn bench_engine_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic/engine_replay");
    group.sample_size(10);
    for family in DynamicFamily::all() {
        // the replay measured here includes the from-graph bootstrap, so
        // only the empty-initial sliding-window family scales to 10⁴
        // vertices without the bootstrap dominating the number
        let sizes: &[(usize, usize)] = match family {
            DynamicFamily::SlidingWindow => &[(1_000, 2_000), (10_000, 5_000)],
            _ => &[(1_000, 2_000), (2_000, 3_000)],
        };
        for &(n, ops) in sizes {
            let w = family.build(n, ops, 17);
            let id = BenchmarkId::new(family.name(), format!("n{n}_ops{}", w.ops.len()));
            group.bench_with_input(id, &w, |b, w| {
                b.iter(|| {
                    let mut eng = DynamicMatcher::from_graph(&w.initial, DynamicConfig::default())
                        .expect("well-formed workload");
                    eng.apply_all(&w.ops).expect("well-formed workload");
                    eng.matching().weight()
                })
            });
        }
    }
    group.finish();
}

fn bench_rebuild_epochs(c: &mut Criterion) {
    // the batched-epoch configuration: same replay, periodic pooled
    // class sweeps folded in
    let mut group = c.benchmark_group("dynamic/engine_replay_rebuild");
    group.sample_size(10);
    let w = DynamicFamily::HeavyChurn.build(1_000, 2_000, 17);
    group.bench_with_input(
        BenchmarkId::from_parameter("heavy-churn_n1000"),
        &w,
        |b, w| {
            b.iter(|| {
                let cfg = DynamicConfig::default().with_rebuild_threshold(500);
                let mut eng =
                    DynamicMatcher::from_graph(&w.initial, cfg).expect("well-formed workload");
                eng.apply_all(&w.ops).expect("well-formed workload");
                eng.matching().weight()
            })
        },
    );
    group.finish();
}

fn bench_recompute_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic/recompute_baseline");
    group.sample_size(10);
    for family in DynamicFamily::all() {
        let w = family.build(200, 200, 17);
        let id = BenchmarkId::from_parameter(family.name());
        group.bench_with_input(id, &w, |b, w| {
            b.iter(|| {
                let mut base =
                    RecomputeBaseline::from_graph(&w.initial, 3).expect("well-formed workload");
                for &op in &w.ops {
                    base.apply(op).expect("well-formed workload");
                }
                base.matching().weight()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_replay,
    bench_rebuild_epochs,
    bench_recompute_baseline
);
criterion_main!(benches);
