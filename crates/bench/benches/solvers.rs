//! Benchmarks for the exact matching substrate (ground-truth solvers).
//!
//! These calibrate the cost of the oracles the experiments lean on:
//! Hopcroft–Karp (the offline `Unw-Bip-Matching` box), the unweighted
//! blossom, the Hungarian algorithm and Galil's weighted blossom.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_graph::exact::{
    max_bipartite_cardinality_matching, max_cardinality_matching, max_weight_bipartite_matching,
    max_weight_matching,
};
use wmatch_graph::generators::{gnp, random_bipartite, WeightModel};

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopcroft_karp");
    for &n in &[100usize, 400] {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, side) = random_bipartite(n, n, 8.0 / n as f64, WeightModel::Unit, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(2 * n),
            &(g, side),
            |b, (g, side)| b.iter(|| max_bipartite_cardinality_matching(g, side)),
        );
    }
    group.finish();
}

fn bench_blossom(c: &mut Criterion) {
    let mut group = c.benchmark_group("blossom_cardinality");
    for &n in &[100usize, 300] {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnp(n, 8.0 / n as f64, WeightModel::Unit, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| max_cardinality_matching(g))
        });
    }
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for &n in &[50usize, 150] {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, side) = random_bipartite(
            n,
            n,
            0.2,
            WeightModel::Uniform { lo: 1, hi: 1000 },
            &mut rng,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(2 * n),
            &(g, side),
            |b, (g, side)| b.iter(|| max_weight_bipartite_matching(g, side)),
        );
    }
    group.finish();
}

fn bench_mwm_general(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwm_general_galil");
    group.sample_size(10);
    for &n in &[50usize, 150] {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gnp(
            n,
            8.0 / n as f64,
            WeightModel::Uniform { lo: 1, hi: 1000 },
            &mut rng,
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| max_weight_matching(g))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hopcroft_karp,
    bench_blossom,
    bench_hungarian,
    bench_mwm_general
);
criterion_main!(benches);
