//! Benchmarks every solver in the `wmatch-api` registry through the one
//! facade: each solver runs on the preferred-arrival-model instance it
//! declares, at two sizes. This calibrates the exact oracles and the
//! approximate drivers on the same footing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_api::{registry, Instance, ModelKind, SolveRequest, UpdateOp};
use wmatch_graph::generators::{gnp, random_bipartite, WeightModel};
use wmatch_graph::Graph;

/// A weighted instance sized for the oracles (bipartite so that every
/// registered solver, including the bipartite-only ones, can run).
fn test_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, _) = random_bipartite(
        n / 2,
        n / 2,
        (8.0 / n as f64).min(0.5),
        WeightModel::Uniform { lo: 1, hi: 1000 },
        &mut rng,
    );
    g
}

/// The instance on a solver's primary (first-listed) arrival model.
fn instance_for(primary: ModelKind, g: &Graph) -> Instance {
    match primary {
        ModelKind::Offline => Instance::offline(g.clone()),
        ModelKind::RandomOrder => Instance::random_order(g.clone(), 7),
        ModelKind::Adversarial => Instance::adversarial(g.clone()),
        ModelKind::Mpc => Instance::mpc(g.clone(), 4, 50 * g.vertex_count()),
        // the dynamic engines replay the same edge set as an insert stream
        ModelKind::Dynamic => Instance::dynamic(
            Graph::new(g.vertex_count()),
            g.edges()
                .iter()
                .map(|e| UpdateOp::insert(e.u, e.v, e.weight))
                .collect::<Vec<_>>(),
        ),
    }
}

fn bench_registry(c: &mut Criterion) {
    let req = SolveRequest::new().with_seed(3).with_round_budget(4);
    for s in registry() {
        let mut group = c.benchmark_group(format!("registry/{}", s.name()));
        group.sample_size(10);
        for &n in &[60usize, 120] {
            let g = test_graph(n, 1);
            let inst = instance_for(s.capabilities().primary_model(), &g);
            group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
                b.iter(|| s.solve(inst, &req).expect("registry solve"))
            });
        }
        group.finish();
    }
}

fn bench_dense_oracles(c: &mut Criterion) {
    // the exact oracles on a denser non-bipartite instance, facade-driven
    let mut group = c.benchmark_group("registry_dense_oracles");
    group.sample_size(10);
    for &n in &[100usize, 200] {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gnp(
            n,
            8.0 / n as f64,
            WeightModel::Uniform { lo: 1, hi: 1000 },
            &mut rng,
        );
        let inst = Instance::offline(g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| wmatch_api::solve("blossom", inst, &SolveRequest::new()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_registry, bench_dense_oracles);
criterion_main!(benches);
