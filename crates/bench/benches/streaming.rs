//! Benchmarks for the single-pass streaming algorithms (experiments E1/E2
//! kernels), facade-driven: local-ratio, `Rand-Arr-Matching` (Algorithm 2)
//! and the 0.506-approximation of Section 3.1, plus the raw
//! `Unw-3-Aug-Paths` feed kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_api::{solve, Instance, SolveRequest};
use wmatch_core::unw3aug::Unw3AugPaths;
use wmatch_graph::generators::{self, gnp, WeightModel};

fn bench_local_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_ratio_pass");
    let req = SolveRequest::new();
    for &n in &[1000usize, 4000] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnp(
            n,
            8.0 / n as f64,
            WeightModel::Uniform { lo: 1, hi: 1000 },
            &mut rng,
        );
        group.throughput(Throughput::Elements(g.edge_count() as u64));
        let inst = Instance::offline(g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| solve("local-ratio", inst, &req).expect("local-ratio"))
        });
    }
    group.finish();
}

fn bench_rand_arr_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("rand_arr_matching_e2");
    group.sample_size(10);
    let req = SolveRequest::new();
    for &n in &[500usize, 2000] {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnp(
            n,
            8.0 / n as f64,
            WeightModel::Uniform { lo: 1, hi: 1000 },
            &mut rng,
        );
        let inst = Instance::random_order(g, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| solve("rand-arr-matching", inst, &req).expect("Algorithm 2"))
        });
    }
    group.finish();
}

fn bench_random_order_unweighted(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_order_unweighted_e1");
    group.sample_size(10);
    let req = SolveRequest::new();
    for &k in &[500usize, 2000] {
        let g = generators::disjoint_paths3(k);
        let inst = Instance::random_order(g, 7);
        group.bench_with_input(BenchmarkId::from_parameter(4 * k), &inst, |b, inst| {
            b.iter(|| solve("random-order-unweighted", inst, &req).expect("Theorem 3.4"))
        });
    }
    group.finish();
}

fn bench_unw3aug_feed(c: &mut Criterion) {
    let mut group = c.benchmark_group("unw3aug_e3");
    for &total in &[1000usize, 4000] {
        let (_, m, wings) = generators::planted_3aug_paths(total / 2, total);
        group.throughput(Throughput::Elements(wings.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(total),
            &(m, wings),
            |b, (m, wings)| {
                b.iter(|| {
                    let mut alg = Unw3AugPaths::new(m.clone(), 16);
                    for e in wings {
                        alg.feed(*e);
                    }
                    alg.finalize()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_local_ratio,
    bench_rand_arr_matching,
    bench_random_order_unweighted,
    bench_unw3aug_feed
);
criterion_main!(benches);
