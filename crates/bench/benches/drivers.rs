//! Benchmarks for the end-to-end (1−ε) drivers (experiments E5–E7): one
//! Algorithm 3 round offline, the streaming driver, and the MPC driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_core::main_alg::{
    improve_matching_offline, max_weight_matching_mpc, max_weight_matching_streaming, MainAlgConfig,
};
use wmatch_graph::generators::{gnp, WeightModel};
use wmatch_graph::Matching;
use wmatch_mpc::{MpcConfig, MpcMcmConfig};
use wmatch_stream::{McmConfig, VecStream};

fn bench_offline_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg3_round_offline_e5");
    group.sample_size(10);
    for &n in &[40usize, 80] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnp(
            n,
            8.0 / n as f64,
            WeightModel::Uniform { lo: 1, hi: 256 },
            &mut rng,
        );
        let cfg = MainAlgConfig::practical(0.25, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut m = Matching::new(g.vertex_count());
                let mut rng = StdRng::seed_from_u64(9);
                improve_matching_offline(g, &mut m, &cfg, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_streaming_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_driver_e6");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let n = 40;
    let g = gnp(n, 0.25, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng);
    let mut cfg = MainAlgConfig::practical(0.25, 3);
    cfg.max_rounds = 4;
    group.bench_function("n40_4rounds", |b| {
        b.iter(|| {
            let mut s = VecStream::adversarial(g.edges().to_vec()).with_vertex_count(n);
            max_weight_matching_streaming(&mut s, &cfg, &McmConfig::for_delta(0.25))
        })
    });
    group.finish();
}

fn bench_mpc_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_driver_e7");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let n = 32;
    let g = gnp(n, 0.3, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng);
    let mut cfg = MainAlgConfig::practical(0.25, 3);
    cfg.max_rounds = 3;
    cfg.trials = 1;
    group.bench_function("n32_3rounds", |b| {
        b.iter(|| {
            max_weight_matching_mpc(
                &g,
                &cfg,
                MpcConfig {
                    machines: 4,
                    memory_words: 4000,
                },
                &MpcMcmConfig::for_delta(0.25, 5),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_offline_round,
    bench_streaming_driver,
    bench_mpc_driver
);
criterion_main!(benches);
