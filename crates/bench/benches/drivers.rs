//! Benchmarks for the end-to-end (1−ε) drivers (experiments E5–E7),
//! facade-driven: one Algorithm 3 round offline (internal primitive), the
//! streaming driver, and the MPC driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_api::{solve, Instance, SolveRequest};
use wmatch_core::main_alg::{improve_matching_offline, MainAlgConfig};
use wmatch_graph::generators::{gnp, WeightModel};
use wmatch_graph::Matching;

fn bench_offline_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg3_round_offline_e5");
    group.sample_size(10);
    for &n in &[40usize, 80] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnp(
            n,
            8.0 / n as f64,
            WeightModel::Uniform { lo: 1, hi: 256 },
            &mut rng,
        );
        let cfg = MainAlgConfig::practical(0.25, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut m = Matching::new(g.vertex_count());
                let mut rng = StdRng::seed_from_u64(9);
                improve_matching_offline(g, &mut m, &cfg, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_streaming_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_driver_e6");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let n = 40;
    let g = gnp(n, 0.25, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng);
    let inst = Instance::adversarial(g);
    let req = SolveRequest::new().with_seed(3).with_round_budget(4);
    group.bench_function("n40_4rounds", |b| {
        b.iter(|| solve("main-alg-streaming", &inst, &req).expect("streaming driver"))
    });
    group.finish();
}

fn bench_mpc_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_driver_e7");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let n = 32;
    let g = gnp(n, 0.3, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng);
    let inst = Instance::mpc(g, 4, 4000);
    let req = SolveRequest::new().with_seed(5).with_round_budget(3);
    group.bench_function("n32_3rounds", |b| {
        b.iter(|| solve("main-alg-mpc", &inst, &req).expect("MPC driver"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_offline_round,
    bench_streaming_driver,
    bench_mpc_driver
);
criterion_main!(benches);
