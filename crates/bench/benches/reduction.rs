//! Benchmarks for the layered-graph reduction machinery (experiments
//! E5/E9 kernels): τ-pair enumeration, layered graph construction,
//! Algorithm 4 on one class, and the Lemma 4.11 decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_core::decompose::decompose_walk;
use wmatch_core::layered::{LayeredSpec, Parametrization};
use wmatch_core::single_class::{achievable_buckets, single_class_augmentations};
use wmatch_core::tau::{enumerate_good_pairs, TauConfig, TauPair};
use wmatch_graph::exact::hopcroft_karp::max_bipartite_cardinality_matching_from;
use wmatch_graph::generators::{gnp, WeightModel};
use wmatch_graph::{Edge, Graph, Matching, Scratch};

fn setup(n: usize) -> (Graph, Matching, Parametrization) {
    let mut rng = StdRng::seed_from_u64(5);
    let g = gnp(
        n,
        8.0 / n as f64,
        WeightModel::Uniform { lo: 1, hi: 256 },
        &mut rng,
    );
    let mut m = Matching::new(n);
    for e in g.edges() {
        let _ = m.insert(*e);
    }
    let param = Parametrization::random(n, &mut rng);
    (g, m, param)
}

fn bench_tau_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("tau_enumeration");
    let (g, m, param) = setup(200);
    for &q in &[8u32, 16] {
        let cfg = TauConfig::practical(q, 3).with_max_pairs(100_000);
        let (ba, bb) = achievable_buckets(g.edges(), &m, &param, 256, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(q), &cfg, |b, cfg| {
            b.iter(|| enumerate_good_pairs(cfg, &ba, &bb))
        });
    }
    group.finish();
}

fn bench_layered_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("layered_build");
    for &n in &[200usize, 800] {
        let (g, m, param) = setup(n);
        let tau = TauPair {
            a: vec![0, 8, 0],
            b: vec![6, 6],
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(g, m, param),
            |b, (g, m, param)| {
                b.iter(|| {
                    let spec = LayeredSpec::new(&tau, 256, 8, param, m);
                    spec.build(g.edges().iter().copied())
                })
            },
        );
    }
    group.finish();
}

fn bench_single_class(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_class_alg4");
    group.sample_size(10);
    for &n in &[100usize, 200] {
        let (g, m, param) = setup(n);
        let cfg = TauConfig::practical(8, 3).with_max_pairs(20_000);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(g, m, param),
            |b, (g, m, param)| {
                let mut scratch = Scratch::new();
                b.iter(|| {
                    let mut solve = |lg: &Graph, side: &[bool], init: Matching| {
                        max_bipartite_cardinality_matching_from(lg, side, init)
                    };
                    single_class_augmentations(
                        g.edges(),
                        m,
                        256,
                        param,
                        &cfg,
                        &mut solve,
                        &mut scratch,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_decompose(c: &mut Criterion) {
    // long blow-up walk around a 4-cycle
    let cycle = [
        Edge::new(0, 1, 3),
        Edge::new(1, 2, 4),
        Edge::new(2, 3, 3),
        Edge::new(3, 0, 4),
    ];
    let reps = 500;
    let mut vs = vec![0u32];
    let mut es = Vec::new();
    for _ in 0..reps {
        for (i, e) in cycle.iter().enumerate() {
            es.push(*e);
            vs.push([1, 2, 3, 0][i]);
        }
    }
    c.bench_function("decompose_blowup_2000_edges", |b| {
        b.iter(|| decompose_walk(&vs, &es))
    });
}

criterion_group!(
    benches,
    bench_tau_enumeration,
    bench_layered_build,
    bench_single_class,
    bench_decompose
);
criterion_main!(benches);
