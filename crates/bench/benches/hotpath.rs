//! Criterion benchmarks for the flat hot path: the CSR + epoch-scratch
//! inner loops (`aug_search` DFS, Hopcroft–Karp, Algorithm 4 selection)
//! over the gnp/path/barrier families at n up to 10⁵.
//!
//! The baseline-vs-flat comparison with recorded speedups lives in the
//! `report` binary (`cargo run -p wmatch-bench --bin report -- hotpath`),
//! which writes `BENCH_hotpath.json`; these benches track the flat
//! implementations' absolute throughput over time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_bench::hotpath::{gnp_instance, greedy_matching, half_greedy_matching};
use wmatch_core::layered::{LayeredSpec, Parametrization};
use wmatch_core::single_class::{achievable_buckets, select_augmentations};
use wmatch_core::tau::{enumerate_good_pairs, TauConfig};
use wmatch_graph::aug_search::AugSearcher;
use wmatch_graph::exact::hopcroft_karp::max_bipartite_cardinality_matching_from;
use wmatch_graph::generators;
use wmatch_graph::{Graph, Scratch};

fn family(name: &str, n: usize) -> Graph {
    match name {
        "gnp" => gnp_instance(n, 11),
        "path" => {
            let weights: Vec<u64> = (0..n.saturating_sub(1))
                .map(|i| if i % 3 == 1 { 10 } else { 9 })
                .collect();
            generators::path_graph(&weights)
        }
        "barrier" => generators::disjoint_paths3(n / 4),
        other => panic!("unknown family {other}"),
    }
}

fn bench_aug_search_dfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_aug_search");
    group.sample_size(10);
    for fam in ["gnp", "path", "barrier"] {
        for &n in &[10_000usize, 100_000] {
            let g = family(fam, n);
            let m = greedy_matching(&g);
            let _ = g.csr();
            let mut searcher = AugSearcher::new();
            group.bench_with_input(BenchmarkId::new(fam, n), &(&g, &m), |b, (g, m)| {
                b.iter(|| searcher.best_augmentation(g, m, 3))
            });
        }
    }
    group.finish();
}

fn bench_single_class_inner(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_single_class");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let mut rng = StdRng::seed_from_u64(13);
        let g = family("gnp", n);
        // an improvable matching, so the layered graphs carry real
        // augmenting paths instead of being filtered empty
        let m = half_greedy_matching(&g);
        let param = Parametrization::random(n, &mut rng);
        let cfg = TauConfig::practical(8, 3).with_max_pairs(20_000);
        let (ba, bb) = achievable_buckets(g.edges(), &m, &param, 256, &cfg);
        let pairs = enumerate_good_pairs(&cfg, &ba, &bb);
        let lgs: Vec<_> = pairs
            .iter()
            .take(2)
            .map(|tau| {
                LayeredSpec::new(tau, 256, cfg.q, &param, &m).build(g.edges().iter().copied())
            })
            .filter(|lg| lg.graph.edge_count() > 0)
            .collect();
        let mut scratch = Scratch::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &lgs, |b, lgs| {
            b.iter(|| {
                for lg in lgs {
                    let mp = max_bipartite_cardinality_matching_from(
                        &lg.graph,
                        &lg.side,
                        lg.ml_prime.clone(),
                    );
                    criterion::black_box(select_augmentations(
                        &lg.augmenting_walks(&mp),
                        &m,
                        &mut scratch,
                    ));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(hotpath, bench_aug_search_dfs, bench_single_class_inner);
criterion_main!(hotpath);
