//! Criterion benchmarks for the worker-pool layers across thread counts:
//! the Algorithm 3 class sweep, the two-phase Algorithm 4 selection, and
//! the MPC box's parallel machine rounds.
//!
//! The recorded cross-thread comparison with speedups lives in the
//! `report` binary (`cargo run -p wmatch-bench --bin report -- scaling`),
//! which writes `BENCH_parallel.json`; these benches track each layer's
//! absolute throughput per thread count over time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_bench::hotpath::{gnp_instance, half_greedy_matching};
use wmatch_bench::scaling::path_instance;
use wmatch_core::main_alg::{improve_matching_offline_pooled, MainAlgConfig};
use wmatch_core::single_class::select_augmentations_pooled;
use wmatch_graph::generators;
use wmatch_graph::{Edge, Matching, Scratch, Vertex, WorkerPool};
use wmatch_mpc::{mpc_bipartite_mcm_pooled, MpcConfig, MpcMcmConfig, MpcSimulator};

const THREADS: [usize; 2] = [1, 4];

fn bench_class_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_class_sweep");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let g = gnp_instance(n, 7);
        let m0 = half_greedy_matching(&g);
        let _ = g.csr();
        let cfg = MainAlgConfig::practical(0.25, 11)
            .with_trials(1)
            .with_max_pairs(24);
        for &t in &THREADS {
            let mut pool = WorkerPool::new(t);
            group.bench_with_input(
                BenchmarkId::new(format!("gnp/t{t}"), n),
                &(&g, &m0),
                |b, (g, m0)| {
                    b.iter(|| {
                        let mut m = (*m0).clone();
                        let mut rng = StdRng::seed_from_u64(cfg.seed);
                        let mut scratch = Scratch::new();
                        improve_matching_offline_pooled(
                            g,
                            &mut m,
                            &cfg,
                            &mut rng,
                            &mut scratch,
                            &mut pool,
                        );
                        m
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_select");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let k = n / 4;
        let g = generators::weighted_barrier_paths(k, 9);
        let middles = (0..k).map(|i| g.edge(3 * i + 1));
        let m = Matching::from_edges(4 * k, middles).unwrap();
        let walks: Vec<(Vec<Vertex>, Vec<Edge>)> = (0..k as u32)
            .map(|i| {
                let vs: Vec<Vertex> = (0..4).map(|j| 4 * i + j).collect();
                let es: Vec<Edge> = (0..3).map(|j| g.edge((3 * i + j) as usize)).collect();
                (vs, es)
            })
            .collect();
        for &t in &THREADS {
            let mut pool = WorkerPool::new(t);
            let mut scratch = Scratch::new();
            group.bench_with_input(
                BenchmarkId::new(format!("barrier/t{t}"), n),
                &(&walks, &m),
                |b, (walks, m)| {
                    b.iter(|| select_augmentations_pooled(walks, m, &mut scratch, &mut pool))
                },
            );
        }
    }
    group.finish();
}

fn bench_mpc_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_mpc_round");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let mut rng = StdRng::seed_from_u64(17);
        let half = n / 2;
        let p = (8.0 / n as f64).min(0.5);
        let (g, side) =
            generators::random_bipartite(half, half, p, generators::WeightModel::Unit, &mut rng);
        let mcm = MpcMcmConfig::for_delta(0.2, 23).with_max_iterations(3);
        let mpc_cfg = MpcConfig::new(8, 2 * g.edge_count().max(64));
        for &t in &THREADS {
            let mut pool = WorkerPool::new(t);
            group.bench_with_input(
                BenchmarkId::new(format!("gnp/t{t}"), n),
                &(&g, &side),
                |b, (g, side)| {
                    b.iter(|| {
                        let mut sim = MpcSimulator::new(mpc_cfg);
                        mpc_bipartite_mcm_pooled(
                            &mut sim,
                            g.edges().to_vec(),
                            side,
                            &mcm,
                            &mut pool,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_path_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_class_sweep_path");
    group.sample_size(10);
    let n = 100_000;
    let g = path_instance(n);
    let m0 = wmatch_bench::hotpath::greedy_matching(&g);
    let _ = g.csr();
    let cfg = MainAlgConfig::practical(0.25, 11)
        .with_trials(1)
        .with_max_pairs(24);
    for &t in &THREADS {
        let mut pool = WorkerPool::new(t);
        group.bench_with_input(
            BenchmarkId::new(format!("path/t{t}"), n),
            &(&g, &m0),
            |b, (g, m0)| {
                b.iter(|| {
                    let mut m = (*m0).clone();
                    let mut rng = StdRng::seed_from_u64(cfg.seed);
                    let mut scratch = Scratch::new();
                    improve_matching_offline_pooled(
                        g,
                        &mut m,
                        &cfg,
                        &mut rng,
                        &mut scratch,
                        &mut pool,
                    );
                    m
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_class_sweep,
    bench_select,
    bench_mpc_round,
    bench_path_sweep
);
criterion_main!(benches);
