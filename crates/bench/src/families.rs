//! The instance families used across experiments: the static graph
//! families of E1–E10 and the dynamic update-stream workloads of E11.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmatch_dynamic::UpdateOp;
use wmatch_graph::generators::{self, WeightModel};
use wmatch_graph::{Edge, Graph, Vertex};

/// A named instance family, sized by a scale parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Disjoint unit-weight 3-edge paths (greedy ½-barrier).
    BarrierPaths,
    /// Disjoint weighted (w, w+1, w) paths (local-ratio barrier).
    WeightedBarrier,
    /// Erdős–Rényi with uniform weights in [1, 1000].
    GnpUniform,
    /// Erdős–Rényi with geometric weight classes (the paper's grouping).
    GnpGeometric,
    /// Random bipartite, uniform weights.
    BipartiteUniform,
    /// Disjoint alternating even cycles (only cycle augmentations help).
    AlternatingCycles,
}

impl Family {
    /// All families.
    pub fn all() -> [Family; 6] {
        [
            Family::BarrierPaths,
            Family::WeightedBarrier,
            Family::GnpUniform,
            Family::GnpGeometric,
            Family::BipartiteUniform,
            Family::AlternatingCycles,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::BarrierPaths => "barrier-paths",
            Family::WeightedBarrier => "weighted-barrier",
            Family::GnpUniform => "gnp-uniform",
            Family::GnpGeometric => "gnp-geometric",
            Family::BipartiteUniform => "bipartite-uniform",
            Family::AlternatingCycles => "alternating-cycles",
        }
    }

    /// Builds an instance with roughly `n` vertices.
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        match self {
            Family::BarrierPaths => generators::disjoint_paths3(n / 4),
            Family::WeightedBarrier => generators::weighted_barrier_paths(n / 4, 500),
            Family::GnpUniform => {
                let p = (8.0 / n as f64).min(0.5);
                generators::gnp(n, p, WeightModel::Uniform { lo: 1, hi: 1000 }, &mut rng)
            }
            Family::GnpGeometric => {
                let p = (8.0 / n as f64).min(0.5);
                generators::gnp(
                    n,
                    p,
                    WeightModel::GeometricClasses {
                        classes: 8,
                        base: 3,
                    },
                    &mut rng,
                )
            }
            Family::BipartiteUniform => {
                let p = (8.0 / n as f64).min(0.5);
                generators::random_bipartite(
                    n / 2,
                    n / 2,
                    p,
                    WeightModel::Uniform { lo: 1, hi: 1000 },
                    &mut rng,
                )
                .0
            }
            Family::AlternatingCycles => generators::alternating_cycles(n / 8, 4, 3, 4).0,
        }
    }
}

/// A generated dynamic workload: the initial graph plus the update
/// sequence applied on top of it.
#[derive(Debug, Clone)]
pub struct DynamicWorkload {
    /// Vertex count (shared by the initial graph and every update).
    pub n: usize,
    /// The initial graph the updates start from.
    pub initial: Graph,
    /// The interleaved insert/delete operations.
    pub ops: Vec<UpdateOp>,
}

/// A named dynamic update-stream family, sized by a vertex count and an
/// operation count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicFamily {
    /// Edges arrive one by one and expire after a fixed window: every
    /// insertion past the window triggers the deletion of the oldest
    /// live edge (the classic turnstile-window workload).
    SlidingWindow,
    /// A fixed random base graph under heavy churn: random live edges
    /// are deleted and fresh random edges inserted, half-and-half.
    HeavyChurn,
    /// The adversarial sequence for a matching maintainer: repeatedly
    /// compute a greedy matching of the live graph and delete exactly
    /// its edges (the ones any good matching leans on), then hand the
    /// pairs back with fresh weights so the next round's matching
    /// differs.
    DeleteMatching,
}

impl DynamicFamily {
    /// All dynamic families.
    pub fn all() -> [DynamicFamily; 3] {
        [
            DynamicFamily::SlidingWindow,
            DynamicFamily::HeavyChurn,
            DynamicFamily::DeleteMatching,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DynamicFamily::SlidingWindow => "sliding-window",
            DynamicFamily::HeavyChurn => "heavy-churn",
            DynamicFamily::DeleteMatching => "delete-matching",
        }
    }

    /// Builds a workload on `n` vertices with (almost exactly) `ops`
    /// operations. Deterministic in `(n, ops, seed)`.
    pub fn build(&self, n: usize, ops: usize, seed: u64) -> DynamicWorkload {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd1_5ea5e);
        let n = n.max(4);
        let random_pair = |rng: &mut StdRng| -> (Vertex, Vertex) {
            let u = rng.gen_range(0..n as Vertex);
            let mut v = rng.gen_range(0..n as Vertex);
            if v == u {
                v = (v + 1) % n as Vertex;
            }
            (u, v)
        };
        match self {
            DynamicFamily::SlidingWindow => {
                // window of ~2n edges: past it, each insert evicts the
                // oldest live edge
                let window = 2 * n;
                let mut live: std::collections::VecDeque<(Vertex, Vertex)> =
                    std::collections::VecDeque::new();
                let mut out = Vec::with_capacity(ops);
                while out.len() < ops {
                    let (u, v) = random_pair(&mut rng);
                    out.push(UpdateOp::insert(u, v, rng.gen_range(1..=100)));
                    live.push_back((u, v));
                    if live.len() > window && out.len() < ops {
                        let (du, dv) = live.pop_front().expect("window is non-empty");
                        out.push(UpdateOp::delete(du, dv));
                    }
                }
                DynamicWorkload {
                    n,
                    initial: Graph::new(n),
                    ops: out,
                }
            }
            DynamicFamily::HeavyChurn => {
                let initial = {
                    let p = (5.0 / n as f64).min(0.5);
                    generators::gnp(n, p, WeightModel::Uniform { lo: 1, hi: 100 }, &mut rng)
                };
                let mut live: Vec<(Vertex, Vertex)> =
                    initial.edges().iter().map(|e| (e.u, e.v)).collect();
                let mut out = Vec::with_capacity(ops);
                while out.len() < ops {
                    if !live.is_empty() && rng.gen_range(0..2) == 0 {
                        let i = rng.gen_range(0..live.len());
                        let (u, v) = live.swap_remove(i);
                        out.push(UpdateOp::delete(u, v));
                    } else {
                        let (u, v) = random_pair(&mut rng);
                        out.push(UpdateOp::insert(u, v, rng.gen_range(1..=100)));
                        live.push((u, v));
                    }
                }
                DynamicWorkload {
                    n,
                    initial,
                    ops: out,
                }
            }
            DynamicFamily::DeleteMatching => {
                // simple base graph (each round reinserts the same pairs,
                // so the live graph stays simple and the tracker exact)
                let base = {
                    let p = (5.0 / n as f64).min(0.5);
                    generators::gnp(n, p, WeightModel::Uniform { lo: 1, hi: 100 }, &mut rng)
                };
                let mut live: Vec<Edge> = base.edges().to_vec();
                live.sort_unstable_by_key(|e| e.key());
                live.dedup_by_key(|e| e.key());
                let initial = Graph::from_edges(n, live.iter().copied());
                let mut out = Vec::with_capacity(ops + n);
                while out.len() < ops {
                    // the adversary's greedy matching over the live set —
                    // exactly the edges any good matching leans on
                    let mut by_weight = live.clone();
                    by_weight.sort_unstable_by(|a, b| {
                        b.weight.cmp(&a.weight).then(a.key().cmp(&b.key()))
                    });
                    let mut matched = wmatch_graph::Matching::new(n);
                    let mut hit: Vec<Edge> = Vec::new();
                    for e in by_weight {
                        if matched.insert(e).is_ok() {
                            hit.push(e);
                        }
                    }
                    if hit.is_empty() {
                        break; // edgeless live graph: the adversary is done
                    }
                    // delete exactly the matching, then hand the pairs
                    // back with fresh weights — the next round's matching
                    // genuinely differs, so the maintainer can never
                    // settle
                    for e in &hit {
                        out.push(UpdateOp::delete(e.u, e.v));
                    }
                    for e in &hit {
                        let w = rng.gen_range(1..=100);
                        out.push(UpdateOp::insert(e.u, e.v, w));
                        let slot = live
                            .iter_mut()
                            .find(|l| l.key() == e.key())
                            .expect("hit edges come from the live set");
                        slot.weight = w;
                    }
                }
                DynamicWorkload {
                    n,
                    initial,
                    ops: out,
                }
            }
        }
    }
}

/// The worst-case adversarial update-stream families of the chaos suite
/// (E13, ROADMAP 4c): each one is built to hammer a specific weakness of
/// the repair engine, so the robustness layer is measured where the
/// engine hurts, not where it shines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialFamily {
    /// Weight-class boundary oscillation: a fixed pair set whose weights
    /// hop back and forth across geometric weight-class boundaries
    /// (powers of 1 + ε at the engine's default ε = 0.25) every round,
    /// so rebuild epochs keep reclassifying the same edges and no
    /// class assignment ever settles. Bipartite by construction (pair
    /// `i` ↔ `n/2 + i`), so the exact bipartite certifier can ride it.
    BoundaryOscillation,
    /// Hub ball-overlap storm: every update is incident to one of a
    /// handful of hub vertices, so each batch's repair balls all collide
    /// and the speculation layer degenerates to one giant overlap group
    /// — the worst case for parallel ball repair. Bipartite (hubs on the
    /// left, spokes on the right).
    HubStorm,
    /// Delete-the-matching waves: repeatedly compute a greedy matching
    /// of the live graph and delete exactly its edges (the ones any good
    /// matching leans on), then reinsert the pairs with fresh weights —
    /// [`DynamicFamily::DeleteMatching`] in wave form, the classic
    /// recourse adversary. Not bipartite.
    DeleteMatchingWaves,
}

impl AdversarialFamily {
    /// All adversarial families.
    pub fn all() -> [AdversarialFamily; 3] {
        [
            AdversarialFamily::BoundaryOscillation,
            AdversarialFamily::HubStorm,
            AdversarialFamily::DeleteMatchingWaves,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            AdversarialFamily::BoundaryOscillation => "boundary-oscillation",
            AdversarialFamily::HubStorm => "hub-storm",
            AdversarialFamily::DeleteMatchingWaves => "delete-matching-waves",
        }
    }

    /// Side labels (`false` = left) when the family is bipartite by
    /// construction, so the exact bipartite certifier can checkpoint it;
    /// `None` for [`AdversarialFamily::DeleteMatchingWaves`].
    pub fn bipartite_side(&self, n: usize) -> Option<Vec<bool>> {
        match self {
            AdversarialFamily::BoundaryOscillation | AdversarialFamily::HubStorm => {
                Some((0..n.max(4)).map(|v| v >= n.max(4) / 2).collect())
            }
            AdversarialFamily::DeleteMatchingWaves => None,
        }
    }

    /// Builds a workload on `n` vertices with (almost exactly) `ops`
    /// operations. Deterministic in `(n, ops, seed)`.
    pub fn build(&self, n: usize, ops: usize, seed: u64) -> DynamicWorkload {
        let n = n.max(4);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xadd_e5a17);
        match self {
            AdversarialFamily::BoundaryOscillation => {
                // boundary weights of the engine's default geometric
                // classes ((1 + ε)^k at ε = 0.25): oscillating ±1 around
                // one flips the edge's class every round
                let mut boundaries = Vec::new();
                let mut w = 4.0f64;
                while w < 1000.0 {
                    boundaries.push(w.ceil() as u64);
                    w *= 1.25;
                }
                let half = (n / 2) as Vertex;
                let pairs: Vec<(Vertex, Vertex)> = (0..half).map(|i| (i, half + i)).collect();
                let mut out = Vec::with_capacity(ops + 2 * pairs.len());
                // seed round: every pair starts just under its boundary
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    let b = boundaries[i % boundaries.len()];
                    out.push(UpdateOp::insert(u, v, b - 1));
                }
                let mut round = 0u64;
                while out.len() < ops {
                    round += 1;
                    for (i, &(u, v)) in pairs.iter().enumerate() {
                        if out.len() >= ops {
                            break;
                        }
                        let b = boundaries[(i + round as usize) % boundaries.len()];
                        // hop across the boundary: b−1 ↔ b+1 by round
                        let w = if round.is_multiple_of(2) {
                            b - 1
                        } else {
                            b + 1
                        };
                        out.push(UpdateOp::delete(u, v));
                        out.push(UpdateOp::insert(u, v, w));
                    }
                }
                DynamicWorkload {
                    n,
                    initial: Graph::new(n),
                    ops: out,
                }
            }
            AdversarialFamily::HubStorm => {
                // every op touches one of a handful of left-side hubs;
                // a sliding window keeps hub degrees deep but bounded
                let hubs = 4.min(n / 2).max(1) as Vertex;
                let half = (n / 2) as Vertex;
                let window = (n / 2).max(8);
                let mut live: std::collections::VecDeque<(Vertex, Vertex)> =
                    std::collections::VecDeque::with_capacity(window + 1);
                let mut out = Vec::with_capacity(ops);
                while out.len() < ops {
                    let u = rng.gen_range(0..hubs);
                    let v = half + rng.gen_range(0..half);
                    out.push(UpdateOp::insert(u, v, rng.gen_range(1..=1_000)));
                    live.push_back((u, v));
                    if live.len() > window && out.len() < ops {
                        let (du, dv) = live.pop_front().expect("window is non-empty");
                        out.push(UpdateOp::delete(du, dv));
                    }
                }
                DynamicWorkload {
                    n,
                    initial: Graph::new(n),
                    ops: out,
                }
            }
            AdversarialFamily::DeleteMatchingWaves => {
                DynamicFamily::DeleteMatching.build(n, ops, seed)
            }
        }
    }
}

/// The E12 marketplace workload: a service-style update stream over `n`
/// users where a hot minority of users dominates the traffic (power-law
/// endpoint skew with exponent 3/2 — strong enough that the hot third
/// carries ~half the inserts, gentle enough that the hottest single
/// vertex keeps O(n^(1/3)) expected live degree, so repair balls stay
/// local at n = 10⁶) and listings expire after a sliding window (~`n/2`
/// live edges), so the live graph stays sparse while individual vertices
/// see deep churn. Not part of [`DynamicFamily::all`] — it is the serve
/// benchmark's dedicated workload, sized to millions of ops.
/// Deterministic in `(n, ops, seed)`.
pub fn marketplace(n: usize, ops: usize, seed: u64) -> DynamicWorkload {
    let n = n.max(4);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3a_4b5c6d);
    let window = (n / 2).max(8);
    let mut live: std::collections::VecDeque<(Vertex, Vertex)> =
        std::collections::VecDeque::with_capacity(window + 1);
    let mut out = Vec::with_capacity(ops);
    while out.len() < ops {
        // hot side: power-law skew concentrates traffic on low ids
        let r: f64 = rng.gen();
        let u = (r.powf(1.5) * n as f64) as Vertex;
        let mut v = rng.gen_range(0..n as Vertex);
        if v == u {
            v = (v + 1) % n as Vertex;
        }
        out.push(UpdateOp::insert(u, v, rng.gen_range(1..=1_000)));
        live.push_back((u, v));
        if live.len() > window && out.len() < ops {
            let (du, dv) = live.pop_front().expect("window is non-empty");
            out.push(UpdateOp::delete(du, dv));
        }
    }
    DynamicWorkload {
        n,
        initial: Graph::new(n),
        ops: out,
    }
}

/// The bipartite marketplace workload: the same hotspot-skewed
/// sliding-window churn as [`marketplace`], restricted to listings-vs-
/// buyers form — every edge crosses from the left half `0..n/2` (hot,
/// power-law-skewed) to the right half `n/2..n` — so the live graph is
/// bipartite at every prefix and the exact-certification suites
/// (`report -- oracle`, the `IncrementalCertifier` checkpoints of
/// `wmatch-dynamic`) can ride it. Returns the workload plus the side
/// labels (`false` = left). Deterministic in `(n, ops, seed)`.
pub fn marketplace_bipartite(n: usize, ops: usize, seed: u64) -> (DynamicWorkload, Vec<bool>) {
    let n = n.max(4);
    let half = (n / 2) as Vertex;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb1_7a57e);
    let window = (n / 2).max(8);
    let mut live: std::collections::VecDeque<(Vertex, Vertex)> =
        std::collections::VecDeque::with_capacity(window + 1);
    let mut out = Vec::with_capacity(ops);
    while out.len() < ops {
        // hot left side: power-law skew concentrates listings on low ids
        let r: f64 = rng.gen();
        let u = (r.powf(1.5) * half as f64) as Vertex;
        let v = half + rng.gen_range(0..half);
        out.push(UpdateOp::insert(u, v, rng.gen_range(1..=1_000)));
        live.push_back((u, v));
        if live.len() > window && out.len() < ops {
            let (du, dv) = live.pop_front().expect("window is non-empty");
            out.push(UpdateOp::delete(du, dv));
        }
    }
    let side = (0..n).map(|v| v >= n / 2).collect();
    (
        DynamicWorkload {
            n,
            initial: Graph::new(n),
            ops: out,
        },
        side,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_nonempty() {
        for f in Family::all() {
            let g = f.build(40, 1);
            assert!(g.vertex_count() > 0, "{}", f.name());
            assert!(g.edge_count() > 0, "{}", f.name());
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for f in Family::all() {
            assert_eq!(f.build(32, 7), f.build(32, 7));
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = Family::all().iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 6);
    }

    /// Replays a workload against a pair-count tracker, asserting every
    /// deletion targets a live pair.
    fn assert_well_formed(w: &DynamicWorkload) {
        let mut live: std::collections::HashMap<(u32, u32), usize> = Default::default();
        for e in w.initial.edges() {
            *live.entry(e.key()).or_default() += 1;
        }
        for op in &w.ops {
            let (u, v) = op.endpoints();
            assert!((u as usize) < w.n && (v as usize) < w.n && u != v, "{op}");
            let key = if u <= v { (u, v) } else { (v, u) };
            match op {
                UpdateOp::Insert { weight, .. } => {
                    assert!(*weight > 0, "{op}");
                    *live.entry(key).or_default() += 1;
                }
                UpdateOp::Delete { .. } => {
                    let c = live.get_mut(&key).unwrap_or_else(|| panic!("{op} dangles"));
                    assert!(*c > 0, "{op} deletes a dead pair");
                    *c -= 1;
                }
            }
        }
    }

    #[test]
    fn dynamic_families_are_well_formed_and_deterministic() {
        for f in DynamicFamily::all() {
            let w = f.build(48, 400, 7);
            assert!(w.ops.len() >= 400, "{}: only {} ops", f.name(), w.ops.len());
            assert_well_formed(&w);
            assert!(
                w.ops.iter().any(|o| !o.is_insert()),
                "{}: no deletes",
                f.name()
            );
            let w2 = f.build(48, 400, 7);
            assert_eq!(w.ops, w2.ops, "{}: not deterministic", f.name());
            assert_eq!(w.initial, w2.initial, "{}", f.name());
        }
    }

    #[test]
    fn marketplace_is_well_formed_skewed_and_deterministic() {
        let w = marketplace(64, 800, 9);
        assert!(w.ops.len() >= 800);
        assert_well_formed(&w);
        assert!(w.ops.iter().any(|o| !o.is_insert()), "no expirations");
        assert_eq!(w.ops, marketplace(64, 800, 9).ops, "not deterministic");
        // the hot third of the id range must carry well over its uniform
        // share (it gets (1/3)^(2/3) ≈ 48% of the hot-side draws)
        let hot = w
            .ops
            .iter()
            .filter(|o| o.is_insert() && o.endpoints().0 < 21)
            .count();
        let inserts = w.ops.iter().filter(|o| o.is_insert()).count();
        assert!(
            hot * 5 > inserts * 2,
            "skew lost: {hot}/{inserts} inserts touch the hot third"
        );
    }

    #[test]
    fn marketplace_bipartite_stays_bipartite_and_deterministic() {
        let (w, side) = marketplace_bipartite(64, 800, 9);
        assert!(w.ops.len() >= 800);
        assert_well_formed(&w);
        assert!(w.ops.iter().any(|o| !o.is_insert()), "no expirations");
        assert_eq!(side.len(), 64);
        for op in &w.ops {
            let (u, v) = op.endpoints();
            assert!(
                side[u as usize] != side[v as usize],
                "{op} does not cross the bipartition"
            );
        }
        assert_eq!(w.ops, marketplace_bipartite(64, 800, 9).0.ops);
    }

    #[test]
    fn adversarial_families_are_well_formed_and_deterministic() {
        for f in AdversarialFamily::all() {
            let w = f.build(48, 400, 7);
            assert!(w.ops.len() >= 400, "{}: only {} ops", f.name(), w.ops.len());
            assert_well_formed(&w);
            assert!(
                w.ops.iter().any(|o| !o.is_insert()),
                "{}: no deletes",
                f.name()
            );
            assert_eq!(
                w.ops,
                f.build(48, 400, 7).ops,
                "{}: not deterministic",
                f.name()
            );
            if let Some(side) = f.bipartite_side(48) {
                for op in &w.ops {
                    let (u, v) = op.endpoints();
                    assert!(
                        side[u as usize] != side[v as usize],
                        "{}: {op} does not cross the bipartition",
                        f.name()
                    );
                }
            }
        }
        let names: std::collections::HashSet<_> =
            AdversarialFamily::all().iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn dynamic_family_names_are_unique() {
        let names: std::collections::HashSet<_> =
            DynamicFamily::all().iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 3);
    }
}
