//! The instance families used across experiments.

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_graph::generators::{self, WeightModel};
use wmatch_graph::Graph;

/// A named instance family, sized by a scale parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Disjoint unit-weight 3-edge paths (greedy ½-barrier).
    BarrierPaths,
    /// Disjoint weighted (w, w+1, w) paths (local-ratio barrier).
    WeightedBarrier,
    /// Erdős–Rényi with uniform weights in [1, 1000].
    GnpUniform,
    /// Erdős–Rényi with geometric weight classes (the paper's grouping).
    GnpGeometric,
    /// Random bipartite, uniform weights.
    BipartiteUniform,
    /// Disjoint alternating even cycles (only cycle augmentations help).
    AlternatingCycles,
}

impl Family {
    /// All families.
    pub fn all() -> [Family; 6] {
        [
            Family::BarrierPaths,
            Family::WeightedBarrier,
            Family::GnpUniform,
            Family::GnpGeometric,
            Family::BipartiteUniform,
            Family::AlternatingCycles,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::BarrierPaths => "barrier-paths",
            Family::WeightedBarrier => "weighted-barrier",
            Family::GnpUniform => "gnp-uniform",
            Family::GnpGeometric => "gnp-geometric",
            Family::BipartiteUniform => "bipartite-uniform",
            Family::AlternatingCycles => "alternating-cycles",
        }
    }

    /// Builds an instance with roughly `n` vertices.
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        match self {
            Family::BarrierPaths => generators::disjoint_paths3(n / 4),
            Family::WeightedBarrier => generators::weighted_barrier_paths(n / 4, 500),
            Family::GnpUniform => {
                let p = (8.0 / n as f64).min(0.5);
                generators::gnp(n, p, WeightModel::Uniform { lo: 1, hi: 1000 }, &mut rng)
            }
            Family::GnpGeometric => {
                let p = (8.0 / n as f64).min(0.5);
                generators::gnp(
                    n,
                    p,
                    WeightModel::GeometricClasses {
                        classes: 8,
                        base: 3,
                    },
                    &mut rng,
                )
            }
            Family::BipartiteUniform => {
                let p = (8.0 / n as f64).min(0.5);
                generators::random_bipartite(
                    n / 2,
                    n / 2,
                    p,
                    WeightModel::Uniform { lo: 1, hi: 1000 },
                    &mut rng,
                )
                .0
            }
            Family::AlternatingCycles => generators::alternating_cycles(n / 8, 4, 3, 4).0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_nonempty() {
        for f in Family::all() {
            let g = f.build(40, 1);
            assert!(g.vertex_count() > 0, "{}", f.name());
            assert!(g.edge_count() > 0, "{}", f.name());
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for f in Family::all() {
            assert_eq!(f.build(32, 7), f.build(32, 7));
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = Family::all().iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
