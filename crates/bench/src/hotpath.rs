//! Hot-path micro-benchmarks: the flat CSR + epoch-scratch inner loops
//! versus faithful copies of the pre-refactor implementations.
//!
//! The [`baseline`] module preserves the exact pre-refactor inner loops —
//! `HashSet`-visited DFS with per-prefix `Augmentation` materialization
//! (`aug_search`), per-call `Vec<Vec<…>>` adjacency Hopcroft–Karp, and
//! `HashSet`-marked conflict selection (`single_class`) — so every future
//! run of the `report` binary re-measures the speedup on the same machine
//! that produced `BENCH_hotpath.json`. The comparison is the recorded perf
//! trajectory the ROADMAP asks for: both sides run on identical prebuilt
//! instances, and the timed region is exactly the migrated inner loop.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_core::layered::{LayeredGraph, LayeredSpec, Parametrization};
use wmatch_core::single_class::select_augmentations;
use wmatch_core::tau::{enumerate_good_pairs, TauConfig};
use wmatch_graph::aug_search::AugSearcher;
use wmatch_graph::exact::hopcroft_karp::max_bipartite_cardinality_matching_from;
use wmatch_graph::generators::{self, WeightModel};
use wmatch_graph::{Graph, Matching, Scratch};

/// Pre-refactor reference implementations, preserved verbatim as the
/// measured baseline (do not "optimize": their cost profile *is* the
/// datum).
pub mod baseline {
    use std::collections::HashSet;

    use wmatch_core::decompose::decompose_walk;
    use wmatch_graph::{Augmentation, Edge, Graph, Matching, Vertex};

    /// The legacy eager adjacency: per-vertex `Vec` of edge indices,
    /// exactly what the pre-refactor `Graph` maintained.
    pub fn nested_adjacency(g: &Graph) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); g.vertex_count()];
        for (idx, e) in g.edges().iter().enumerate() {
            adj[e.u as usize].push(idx);
            adj[e.v as usize].push(idx);
        }
        adj
    }

    /// Pre-refactor `best_augmentation`: fresh `HashSet` per start vertex,
    /// an `Augmentation` materialized for every DFS prefix.
    pub fn best_augmentation(
        g: &Graph,
        adj: &[Vec<usize>],
        m: &Matching,
        max_len: usize,
    ) -> Option<Augmentation> {
        let mut best: Option<Augmentation> = None;
        let mut consider = |aug: Augmentation| {
            if aug.gain() > 0 && best.as_ref().is_none_or(|b| aug.gain() > b.gain()) {
                best = Some(aug);
            }
        };
        let n = g.vertex_count();
        for start in 0..n as Vertex {
            let mut visited: HashSet<Vertex> = HashSet::new();
            visited.insert(start);
            let mut walk: Vec<Edge> = Vec::new();
            dfs(
                g,
                adj,
                m,
                start,
                start,
                None,
                &mut visited,
                &mut walk,
                max_len,
                &mut consider,
            );
        }
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &Graph,
        adj: &[Vec<usize>],
        m: &Matching,
        start: Vertex,
        cur: Vertex,
        last_in_m: Option<bool>,
        visited: &mut HashSet<Vertex>,
        walk: &mut Vec<Edge>,
        max_len: usize,
        consider: &mut impl FnMut(Augmentation),
    ) {
        if walk.len() >= max_len {
            return;
        }
        for &i in &adj[cur as usize] {
            let e = g.edge(i);
            let in_m = m.contains(&e);
            if let Some(last) = last_in_m {
                if in_m == last {
                    continue;
                }
            }
            let next = e.other(cur);
            if next == start && walk.len() >= 2 {
                let first_in_m = m.contains(&walk[0]);
                if in_m != first_in_m && (walk.len() + 1).is_multiple_of(2) {
                    walk.push(e);
                    if let Ok(aug) = Augmentation::from_component(m, walk) {
                        consider(aug);
                    }
                    walk.pop();
                }
                continue;
            }
            if visited.contains(&next) {
                continue;
            }
            walk.push(e);
            visited.insert(next);
            if let Ok(aug) = Augmentation::from_component(m, walk) {
                consider(aug);
            }
            dfs(
                g,
                adj,
                m,
                start,
                next,
                Some(in_m),
                visited,
                walk,
                max_len,
                consider,
            );
            visited.remove(&next);
            walk.pop();
        }
    }

    /// Pre-refactor Hopcroft–Karp: per-call `Vec<Vec<(Vertex, usize)>>`
    /// left adjacency and `Vec<Option<(Vertex, usize)>>` pairing.
    pub fn hopcroft_karp(g: &Graph, side: &[bool], init: Matching) -> Matching {
        const INF: u32 = u32::MAX;
        let n = g.vertex_count();
        assert_eq!(side.len(), n, "side labels must cover all vertices");
        assert!(
            g.respects_bipartition(side).unwrap(),
            "graph is not bipartite under the given sides"
        );
        let mut adj: Vec<Vec<(Vertex, usize)>> = vec![Vec::new(); n];
        for (idx, e) in g.edges().iter().enumerate() {
            let (l, r) = if !side[e.u as usize] {
                (e.u, e.v)
            } else {
                (e.v, e.u)
            };
            adj[l as usize].push((r, idx));
        }
        let mut pair: Vec<Option<(Vertex, usize)>> = vec![None; n];
        for me in init.iter() {
            let idx = g
                .incident(me.u)
                .find(|(_, ge)| ge.same_endpoints(&me))
                .map(|(i, _)| i)
                .expect("initial matching edge must exist in graph");
            pair[me.u as usize] = Some((me.v, idx));
            pair[me.v as usize] = Some((me.u, idx));
        }
        let lefts: Vec<Vertex> = (0..n as Vertex).filter(|&v| !side[v as usize]).collect();
        let mut dist: Vec<u32> = vec![INF; n];
        let bfs = |pair: &Vec<Option<(Vertex, usize)>>, dist: &mut Vec<u32>| -> bool {
            let mut queue = std::collections::VecDeque::new();
            for &u in &lefts {
                if pair[u as usize].is_none() {
                    dist[u as usize] = 0;
                    queue.push_back(u);
                } else {
                    dist[u as usize] = INF;
                }
            }
            let mut reachable_free = false;
            while let Some(u) = queue.pop_front() {
                for &(v, _) in &adj[u as usize] {
                    match pair[v as usize] {
                        None => reachable_free = true,
                        Some((w, _)) => {
                            if dist[w as usize] == INF {
                                dist[w as usize] = dist[u as usize] + 1;
                                queue.push_back(w);
                            }
                        }
                    }
                }
            }
            reachable_free
        };
        fn dfs(
            u: Vertex,
            adj: &[Vec<(Vertex, usize)>],
            pair: &mut Vec<Option<(Vertex, usize)>>,
            dist: &mut Vec<u32>,
        ) -> bool {
            const INF: u32 = u32::MAX;
            for i in 0..adj[u as usize].len() {
                let (v, eidx) = adj[u as usize][i];
                let ok = match pair[v as usize] {
                    None => true,
                    Some((w, _)) => {
                        dist[w as usize] == dist[u as usize] + 1 && dfs(w, adj, pair, dist)
                    }
                };
                if ok {
                    pair[u as usize] = Some((v, eidx));
                    pair[v as usize] = Some((u, eidx));
                    return true;
                }
            }
            dist[u as usize] = INF;
            false
        }
        while bfs(&pair, &mut dist) {
            for &u in &lefts {
                if pair[u as usize].is_none() {
                    dfs(u, &adj, &mut pair, &mut dist);
                }
            }
        }
        let mut m = Matching::new(n);
        for &u in &lefts {
            if let Some((_, eidx)) = pair[u as usize] {
                m.insert(g.edge(eidx)).expect("pairs are disjoint");
            }
        }
        m
    }

    /// Pre-refactor `symmetric_difference_components`: `HashMap` diff
    /// keyed by endpoint pairs, `HashSet` used-edge marks.
    pub fn symmetric_difference_components(m1: &Matching, m2: &Matching) -> Vec<Vec<Edge>> {
        use std::collections::HashMap;
        let n = m1.vertex_count().max(m2.vertex_count());
        let mut diff: HashMap<(Vertex, Vertex), Edge> = HashMap::new();
        for e in m1.iter() {
            diff.insert(e.key(), e);
        }
        for e in m2.iter() {
            if diff.remove(&e.key()).is_none() {
                diff.insert(e.key(), e);
            }
        }
        let mut adj: Vec<Vec<Edge>> = vec![Vec::new(); n];
        for e in diff.values() {
            adj[e.u as usize].push(*e);
            adj[e.v as usize].push(*e);
        }
        let mut used: HashSet<(Vertex, Vertex)> = HashSet::new();
        let mut components = Vec::new();
        let walk_from =
            |start: Vertex, adj: &Vec<Vec<Edge>>, used: &mut HashSet<(Vertex, Vertex)>| {
                let mut comp = Vec::new();
                let mut cur = start;
                loop {
                    let next = adj[cur as usize]
                        .iter()
                        .find(|e| !used.contains(&e.key()))
                        .copied();
                    match next {
                        Some(e) => {
                            used.insert(e.key());
                            comp.push(e);
                            cur = e.other(cur);
                        }
                        None => break,
                    }
                }
                comp
            };
        for v in 0..n as Vertex {
            if adj[v as usize].len() == 1 && !used.contains(&adj[v as usize][0].key()) {
                let comp = walk_from(v, &adj, &mut used);
                if !comp.is_empty() {
                    components.push(comp);
                }
            }
        }
        for v in 0..n as Vertex {
            while adj[v as usize].iter().any(|e| !used.contains(&e.key())) {
                let comp = walk_from(v, &adj, &mut used);
                if !comp.is_empty() {
                    components.push(comp);
                }
            }
        }
        components
    }

    /// Pre-refactor walk extraction: `LayeredGraph::augmenting_walks` over
    /// the `HashMap`-based symmetric difference above.
    pub fn augmenting_walks(
        lg: &wmatch_core::layered::LayeredGraph,
        m_prime: &Matching,
    ) -> Vec<(Vec<Vertex>, Vec<Edge>)> {
        fn walk_vertices(comp: &[Edge]) -> Vec<Vertex> {
            if comp.len() == 1 {
                return vec![comp[0].u, comp[0].v];
            }
            let (first, second) = (comp[0], comp[1]);
            let mut cur = if second.touches(first.v) {
                first.v
            } else {
                first.u
            };
            let mut walk = vec![first.other(cur), cur];
            for e in &comp[1..] {
                cur = e.other(cur);
                walk.push(cur);
            }
            walk
        }
        let mut out = Vec::new();
        for comp in symmetric_difference_components(&lg.ml_prime, m_prime) {
            let added = comp.iter().filter(|e| !lg.ml_prime.contains(e)).count();
            let removed = comp.len() - added;
            if added != removed + 1 {
                continue;
            }
            let mut walk = walk_vertices(&comp);
            let mut edges = comp.clone();
            if walk.first().unwrap() / lg.n as Vertex > walk.last().unwrap() / lg.n as Vertex {
                walk.reverse();
                edges.reverse();
            }
            let mut ovs: Vec<Vertex> = walk.iter().map(|&lv| lv % lg.n as Vertex).collect();
            let mut oes: Vec<Edge> = edges.iter().map(|e| lg.to_original(e)).collect();
            if let Some(e1) = lg.first_x.get(walk.first().unwrap()) {
                let start = ovs[0];
                ovs.insert(0, e1.other(start));
                oes.insert(0, *e1);
            }
            if let Some(ek) = lg.last_x.get(walk.last().unwrap()) {
                let end = *ovs.last().unwrap();
                ovs.push(ek.other(end));
                oes.push(*ek);
            }
            out.push((ovs, oes));
        }
        out
    }

    /// Pre-refactor `select_augmentations`: `HashSet` conflict marks and
    /// `touched_vertices` materialization per candidate.
    pub fn select_augmentations(
        walks: &[(Vec<Vertex>, Vec<Edge>)],
        m: &Matching,
    ) -> Vec<Augmentation> {
        let mut chosen: Vec<Augmentation> = Vec::new();
        let mut used: HashSet<Vertex> = HashSet::new();
        for (vs, es) in walks {
            let mut best: Option<Augmentation> = None;
            for comp in decompose_walk(vs, es) {
                if let Ok(aug) = Augmentation::from_component(m, &comp) {
                    if aug.gain() > 0 && best.as_ref().is_none_or(|b| aug.gain() > b.gain()) {
                        best = Some(aug);
                    }
                }
            }
            if let Some(aug) = best {
                let touched = aug.touched_vertices();
                if touched.iter().all(|v| !used.contains(v)) {
                    used.extend(touched);
                    chosen.push(aug);
                }
            }
        }
        chosen
    }
}

/// One measured comparison row of `BENCH_hotpath.json`.
#[derive(Debug, Clone)]
pub struct HotpathRow {
    /// Micro-bench name (`aug_search` or `single_class`).
    pub name: &'static str,
    /// Instance family (`gnp`, `path`, `barrier`).
    pub family: &'static str,
    /// Vertex count of the instance.
    pub n: usize,
    /// Median ns per call, pre-refactor implementation.
    pub baseline_ns: u128,
    /// Median ns per call, flat CSR + scratch implementation.
    pub flat_ns: u128,
    /// `baseline_ns / flat_ns`.
    pub speedup: f64,
    /// Timed iterations per side.
    pub iters: usize,
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The gnp instance the hotpath benches share: average degree ~8,
/// uniform weights in \[1, 256\].
pub fn gnp_instance(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::gnp(
        n,
        (8.0 / n as f64).min(0.5),
        WeightModel::Uniform { lo: 1, hi: 256 },
        &mut rng,
    )
}

/// Greedy-by-arrival matching (the maximal matching the sweeps improve).
pub fn greedy_matching(g: &Graph) -> Matching {
    let mut m = Matching::new(g.vertex_count());
    for e in g.edges() {
        let _ = m.insert(*e);
    }
    m
}

/// Every other greedy edge: a deliberately improvable matching, so the
/// layered graphs carry real augmenting paths for the inner loops.
pub fn half_greedy_matching(g: &Graph) -> Matching {
    let mut m = Matching::new(g.vertex_count());
    let mut skip = false;
    for e in g.edges() {
        if !m.is_matched(e.u) && !m.is_matched(e.v) {
            if !skip {
                let _ = m.insert(*e);
            }
            skip = !skip;
        }
    }
    m
}

/// Disjoint (9, 10, 9) paths with the middle edges matched: the planted
/// 3-augmentation family every Algorithm 4 inner loop must chew through.
pub fn barrier_instance(n: usize) -> (Graph, Matching, Parametrization) {
    let k = (n / 4).max(1);
    let g = generators::weighted_barrier_paths(k, 9);
    let middles = (0..k).map(|i| g.edge(3 * i + 1));
    let m = Matching::from_edges(4 * k, middles).expect("middles are disjoint");
    let sides: Vec<bool> = (0..4 * k).map(|v| v % 2 == 1).collect();
    (g, m, Parametrization::from_sides(sides))
}

/// The aug_search micro-bench: one full `best_augmentation` scan
/// (`max_len` = 3, the weighted 3-augmentation horizon), baseline vs flat,
/// on identical prebuilt instances.
fn bench_aug_search(family: &'static str, g: &Graph, m: &Matching, iters: usize) -> HotpathRow {
    let adj = baseline::nested_adjacency(g);
    let baseline_ns = median_ns(iters, || {
        std::hint::black_box(baseline::best_augmentation(g, &adj, m, 3));
    });
    let _ = g.csr(); // flat side warm-up, mirroring the prebuilt `adj`
    let mut searcher = AugSearcher::new();
    let flat_ns = median_ns(iters, || {
        std::hint::black_box(searcher.best_augmentation(g, m, 3));
    });
    HotpathRow {
        name: "aug_search",
        family,
        n: g.vertex_count(),
        baseline_ns,
        flat_ns,
        speedup: baseline_ns as f64 / flat_ns.max(1) as f64,
        iters,
    }
}

/// The single_class micro-bench: the Algorithm 4 inner loop — bipartite
/// box + walk translation + vertex-disjoint selection — over prebuilt
/// layered graphs for the class's good (τᴬ, τᴮ) pairs.
fn bench_single_class(
    family: &'static str,
    g: &Graph,
    m: &Matching,
    param: &Parametrization,
    w_class: u64,
    max_pairs: usize,
    iters: usize,
) -> HotpathRow {
    let cfg = TauConfig::practical(8, 3).with_max_pairs(20_000);
    let (ba, bb) =
        wmatch_core::single_class::achievable_buckets(g.edges(), m, param, w_class, &cfg);
    let pairs = enumerate_good_pairs(&cfg, &ba, &bb);
    let lgs: Vec<LayeredGraph> = pairs
        .iter()
        .take(max_pairs)
        .map(|tau| LayeredSpec::new(tau, w_class, cfg.q, param, m).build(g.edges().iter().copied()))
        .filter(|lg| lg.graph.edge_count() > 0)
        .collect();
    assert!(!lgs.is_empty(), "no layered graph to bench on {family}");

    let baseline_ns = median_ns(iters, || {
        for lg in &lgs {
            let m_prime = baseline::hopcroft_karp(&lg.graph, &lg.side, lg.ml_prime.clone());
            let augs = baseline::select_augmentations(&baseline::augmenting_walks(lg, &m_prime), m);
            std::hint::black_box(augs);
        }
    });
    for lg in &lgs {
        let _ = lg.graph.csr();
    }
    let mut scratch = Scratch::new();
    let flat_ns = median_ns(iters, || {
        for lg in &lgs {
            let m_prime =
                max_bipartite_cardinality_matching_from(&lg.graph, &lg.side, lg.ml_prime.clone());
            let augs = select_augmentations(&lg.augmenting_walks(&m_prime), m, &mut scratch);
            std::hint::black_box(augs);
        }
    });
    HotpathRow {
        name: "single_class",
        family,
        n: g.vertex_count(),
        baseline_ns,
        flat_ns,
        speedup: baseline_ns as f64 / flat_ns.max(1) as f64,
        iters,
    }
}

/// Runs the whole suite. Quick mode stops at n = 10⁴ with fewer timed
/// iterations (the CI perf-smoke configuration); full mode extends to
/// n = 10⁵.
pub fn run_suite(quick: bool) -> Vec<HotpathRow> {
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let iters = if quick { 3 } else { 5 };
    let mut rows = Vec::new();
    for &n in sizes {
        // aug_search on gnp and path
        let g = gnp_instance(n, 5);
        let m = greedy_matching(&g);
        rows.push(bench_aug_search("gnp", &g, &m, iters));
        let weights: Vec<u64> = (0..n.saturating_sub(1))
            .map(|i| if i % 3 == 1 { 10 } else { 9 })
            .collect();
        let pg = generators::path_graph(&weights);
        let pm = greedy_matching(&pg);
        rows.push(bench_aug_search("path", &pg, &pm, iters));

        // single_class on gnp (with an improvable matching) and the
        // planted barrier family
        let g = gnp_instance(n, 7);
        let m = half_greedy_matching(&g);
        let mut rng = StdRng::seed_from_u64(7);
        let param = Parametrization::random(n, &mut rng);
        rows.push(bench_single_class("gnp", &g, &m, &param, 256, 4, iters));
        let (bg, bm, bparam) = barrier_instance(n);
        rows.push(bench_single_class(
            "barrier", &bg, &bm, &bparam, 16, 4, iters,
        ));
    }
    rows
}

/// Serializes the rows as `BENCH_hotpath.json` (hand-rolled JSON: the
/// workspace builds offline, without serde).
pub fn to_json(rows: &[HotpathRow], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"unit\": \"ns_per_call_median\",\n  \"benches\": [\n",
        if quick { "quick" } else { "full" }
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"family\": \"{}\", \"n\": {}, \"baseline_ns\": {}, \
             \"flat_ns\": {}, \"speedup\": {:.3}, \"iters\": {}}}{}\n",
            r.name,
            r.family,
            r.n,
            r.baseline_ns,
            r.flat_ns,
            r.speedup,
            r.iters,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the suite, writes `BENCH_hotpath.json` next to the working
/// directory (override with `WMATCH_BENCH_DIR`), and renders the markdown
/// section for the report.
pub fn run(quick: bool) -> String {
    let rows = run_suite(quick);
    let dir = std::env::var("WMATCH_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_hotpath.json");
    std::fs::write(&path, to_json(&rows, quick)).expect("write BENCH_hotpath.json");

    let mut out =
        String::from("## Hotpath — flat CSR + epoch scratch vs pre-refactor baseline\n\n");
    out.push_str(&format!("written: `{}`\n\n", path.display()));
    out.push_str("| bench | family | n | baseline | flat | speedup |\n");
    out.push_str("|---|---|---:|---:|---:|---:|\n");
    for r in &rows {
        out.push_str(&format!(
            "| {} | {} | {} | {:.3} ms | {:.3} ms | {:.2}x |\n",
            r.name,
            r.family,
            r.n,
            r.baseline_ns as f64 / 1e6,
            r.flat_ns as f64 / 1e6,
            r.speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_agree_with_flat_implementations() {
        // the baseline copies must stay faithful oracles: identical
        // outputs on the same instances
        let g = gnp_instance(120, 9);
        let m = greedy_matching(&g);
        let adj = baseline::nested_adjacency(&g);
        let old = baseline::best_augmentation(&g, &adj, &m, 3);
        let new = AugSearcher::new().best_augmentation(&g, &m, 3);
        assert_eq!(old.is_some(), new.is_some());
        if let (Some(o), Some(n)) = (&old, &new) {
            assert_eq!(o.gain(), n.gain());
        }

        let (bg, bm, bparam) = barrier_instance(64);
        let cfg = TauConfig::practical(8, 3).with_max_pairs(20_000);
        let (ba, bb) =
            wmatch_core::single_class::achievable_buckets(bg.edges(), &bm, &bparam, 16, &cfg);
        let pairs = enumerate_good_pairs(&cfg, &ba, &bb);
        let mut scratch = Scratch::new();
        for tau in pairs.iter().take(3) {
            let lg =
                LayeredSpec::new(tau, 16, cfg.q, &bparam, &bm).build(bg.edges().iter().copied());
            if lg.graph.edge_count() == 0 {
                continue;
            }
            let old_m = baseline::hopcroft_karp(&lg.graph, &lg.side, lg.ml_prime.clone());
            let new_m =
                max_bipartite_cardinality_matching_from(&lg.graph, &lg.side, lg.ml_prime.clone());
            assert_eq!(old_m.len(), new_m.len());
            assert_eq!(
                old_m.to_edges(),
                new_m.to_edges(),
                "HK must be bit-identical"
            );
            let old_sel =
                baseline::select_augmentations(&baseline::augmenting_walks(&lg, &old_m), &bm);
            let new_sel = select_augmentations(&lg.augmenting_walks(&new_m), &bm, &mut scratch);
            assert_eq!(old_sel, new_sel, "selection must be bit-identical");
        }
    }

    #[test]
    fn json_shape_is_parseable() {
        let rows = vec![HotpathRow {
            name: "aug_search",
            family: "gnp",
            n: 100,
            baseline_ns: 2000,
            flat_ns: 1000,
            speedup: 2.0,
            iters: 3,
        }];
        let j = to_json(&rows, true);
        assert!(j.contains("\"speedup\": 2.000"));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
    }
}
