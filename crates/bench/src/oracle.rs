//! Ground-truth access for the experiments, routed through the facade's
//! registry like every other solve.

use wmatch_api::{solve, Instance, SolveRequest};
use wmatch_graph::Graph;

/// Exact maximum matching weight of `g`, via the registry's `blossom`
/// oracle. On unit-weight graphs this equals the maximum cardinality.
pub fn opt_weight(g: &Graph) -> i128 {
    solve(
        "blossom",
        &Instance::offline(g.clone()),
        &SolveRequest::new(),
    )
    .expect("the blossom oracle accepts every offline instance")
    .value
}
