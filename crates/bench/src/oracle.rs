//! Ground-truth access for the experiments, plus the oracle benchmark
//! suite: `report -- oracle` writes `BENCH_oracle.json`.
//!
//! The suite measures the `wmatch-oracle` slack-array Hungarian against
//! the workspace's older dense oracles on bipartite families
//! (`bipartite-gnp`, `path`, `weighted-barrier`, `marketplace`), in three
//! sections:
//!
//! 1. **static** — cold certification time per (family, n), with the
//!    dense Hungarian and blossom rows capped at the sizes they can
//!    reach (the slack oracle runs alone at n = 10⁵);
//! 2. **warm** — re-certification of a churned copy of each instance,
//!    warm-started from the previous certificate's duals, against a cold
//!    re-solve of the same copy;
//! 3. **churn** — the [`marketplace_bipartite`] stream replayed through
//!    the dynamic engine with an
//!    [`IncrementalCertifier`] checkpoint every 1k ops, warm totals
//!    against cold totals.
//!
//! Every timed solve carries a verified certificate: the slack oracle
//! panics in-code on any complementary-slackness violation, the suite
//! re-runs the independent `Certified::verify` check on each section's
//! instances before recording a row, and the capped dense-solver rows
//! double as an agreement assertion (`value == optimum`). With
//! `WMATCH_ORACLE_GUARD=1` the suite additionally fails if warm
//! re-certification falls more than 10% behind cold in the aggregate.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmatch_api::{solve, Instance, SolveRequest};
use wmatch_dynamic::{DynamicConfig, DynamicMatcher, UpdateOp};
use wmatch_graph::exact::{max_weight_bipartite_matching, max_weight_matching};
use wmatch_graph::generators::{path_graph, weighted_barrier_paths};
use wmatch_graph::{Graph, Vertex};
use wmatch_oracle::{certify_max_weight, Certified, IncrementalCertifier, WeightOracle};

use crate::families::marketplace_bipartite;

/// Exact maximum matching weight of `g`, via the registry's `blossom`
/// oracle. On unit-weight graphs this equals the maximum cardinality.
pub fn opt_weight(g: &Graph) -> i128 {
    solve(
        "blossom",
        &Instance::offline(g.clone()),
        &SolveRequest::new(),
    )
    .expect("the blossom oracle accepts every offline instance")
    .value
}

/// One timed row of the static section.
#[derive(Debug, Clone)]
pub struct StaticRow {
    /// Family name.
    pub family: &'static str,
    /// Vertices.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Solver label (`oracle-cold`, `hungarian-dense`, `blossom`).
    pub solver: &'static str,
    /// Solve wall time in milliseconds.
    pub time_ms: f64,
    /// The optimum it found (asserted equal across solvers).
    pub optimum: i128,
}

/// One row of the warm section: cold vs warm re-certification of a
/// churned instance.
#[derive(Debug, Clone)]
pub struct WarmRow {
    /// Family name.
    pub family: &'static str,
    /// Vertices.
    pub n: usize,
    /// Edges after the churn.
    pub m: usize,
    /// Edges deleted + edges inserted by the churn.
    pub churn_ops: usize,
    /// Cold re-certification time (ms).
    pub cold_ms: f64,
    /// Warm (dual-repair) re-certification time (ms).
    pub warm_ms: f64,
    /// Alternating-BFS phases of the cold solve.
    pub phases_cold: usize,
    /// Alternating-BFS phases of the warm solve.
    pub phases_warm: usize,
    /// Warm pairs adopted straight into the initial matching.
    pub adopted: usize,
}

/// The churn section: incremental certification of a dynamic stream.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Vertices.
    pub n: usize,
    /// Stream operations replayed.
    pub ops: usize,
    /// Checkpoint cadence in operations.
    pub checkpoint: usize,
    /// Total warm certification time across all checkpoints (ms).
    pub warm_ms: f64,
    /// Total cold certification time across the same checkpoints (ms).
    pub cold_ms: f64,
    /// Worst engine-weight/optimum ratio seen at a checkpoint.
    pub min_ratio: f64,
}

/// The three sections of one suite run.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Cold certification per (family, n, solver).
    pub static_rows: Vec<StaticRow>,
    /// Warm vs cold re-certification per (family, n).
    pub warm_rows: Vec<WarmRow>,
    /// Incremental certification of the marketplace stream.
    pub churn: ChurnRow,
}

/// Milliseconds spent in `f`, alongside its output.
fn timed_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64() * 1e3)
}

/// Runs `f` `reps` times and returns the last result with the minimum
/// elapsed time — the standard noise-resistant estimate for a
/// deterministic computation.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut out, mut best) = timed_ms(&mut f);
    for _ in 1..reps {
        let (o, t) = timed_ms(&mut f);
        if t < best {
            best = t;
        }
        out = o;
    }
    (out, best)
}

/// A sparse random bipartite graph (sides `0..n/2` and `n/2..n`, average
/// degree ≈ `deg`) sampled edge-by-edge — unlike the O(n²)
/// `generators::random_bipartite`, this reaches n = 10⁵ instantly.
/// Parallel edges are possible and intended (the oracle must price them).
fn sparse_bipartite(n: usize, deg: usize, seed: u64) -> Graph {
    let half = (n / 2).max(1) as Vertex;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0b5e55ed);
    let m = deg * n / 2;
    let mut g = Graph::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..half);
        let v = half + rng.gen_range(0..half);
        g.add_edge(u, v, rng.gen_range(1..=1_000));
    }
    g
}

/// The final live graph of a [`marketplace_bipartite`] stream. The
/// stream's deletions are exactly sliding-window expirations (oldest live
/// edge first), so a FIFO replay reconstructs the live set in O(ops).
fn marketplace_snapshot(n: usize, ops: usize, seed: u64) -> Graph {
    let (w, _) = marketplace_bipartite(n, ops, seed);
    let mut live: std::collections::VecDeque<(Vertex, Vertex, u64)> =
        std::collections::VecDeque::new();
    for op in &w.ops {
        match op {
            UpdateOp::Insert { u, v, weight } => live.push_back((*u, *v, *weight)),
            UpdateOp::Delete { u, v } => {
                let (lu, lv, _) = live.pop_front().expect("deletes only live pairs");
                debug_assert_eq!((lu, lv), (*u, *v), "marketplace expires FIFO");
            }
        }
    }
    let mut g = Graph::new(n);
    for (u, v, w) in live {
        g.add_edge(u, v, w);
    }
    g
}

/// The static-section families at vertex count `n`.
fn families(n: usize) -> Vec<(&'static str, Graph)> {
    vec![
        ("bipartite-gnp", sparse_bipartite(n, 8, n as u64)),
        (
            "path",
            path_graph(
                &(0..n.saturating_sub(1))
                    .map(|i| 1 + (i as u64 * 37) % 1_000)
                    .collect::<Vec<_>>(),
            ),
        ),
        ("weighted-barrier", weighted_barrier_paths(n / 4, 500)),
        ("marketplace", marketplace_snapshot(n, 4 * n, 0x0c1e)),
    ]
}

/// Applies `ops/2` deletions and `ops/2` insertions to a copy of `g`
/// (cross edges only, per `side`), returning the churned graph.
fn churned_copy(g: &Graph, side: &[bool], ops: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4u64);
    let mut edges = g.edges().to_vec();
    let lefts: Vec<Vertex> = (0..side.len() as Vertex)
        .filter(|&v| !side[v as usize])
        .collect();
    let rights: Vec<Vertex> = (0..side.len() as Vertex)
        .filter(|&v| side[v as usize])
        .collect();
    for _ in 0..ops / 2 {
        if edges.is_empty() {
            break;
        }
        let i = rng.gen_range(0..edges.len());
        edges.swap_remove(i);
    }
    let mut out = Graph::new(g.vertex_count());
    for e in edges {
        out.add_edge(e.u, e.v, e.weight);
    }
    for _ in 0..ops / 2 {
        let u = lefts[rng.gen_range(0..lefts.len())];
        let v = rights[rng.gen_range(0..rights.len())];
        out.add_edge(u, v, rng.gen_range(1..=1_000));
    }
    out
}

/// Runs the static section: cold oracle certification per (family, n),
/// with dense-oracle comparison rows up to `cap_old` vertices.
fn static_section(sizes: &[usize], cap_old: usize) -> Vec<StaticRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        for (family, g) in families(n) {
            let side = g.bipartition().expect("static families are bipartite");
            let m = g.edge_count();
            let (cert, t) =
                timed_ms(|| certify_max_weight(&g, &side).expect("family fits its bipartition"));
            // the in-solve check already ran; re-run the independent one
            cert.verify(&g, &side).expect("certificate re-verifies");
            let optimum = cert.optimum;
            rows.push(StaticRow {
                family,
                n,
                m,
                solver: "oracle-cold",
                time_ms: t,
                optimum,
            });
            if n <= cap_old {
                let (hm, t) = timed_ms(|| max_weight_bipartite_matching(&g, &side));
                assert_eq!(
                    hm.weight(),
                    optimum,
                    "{family}/{n}: dense Hungarian disagrees"
                );
                rows.push(StaticRow {
                    family,
                    n,
                    m,
                    solver: "hungarian-dense",
                    time_ms: t,
                    optimum,
                });
                let (bm, t) = timed_ms(|| max_weight_matching(&g));
                assert_eq!(bm.weight(), optimum, "{family}/{n}: blossom disagrees");
                rows.push(StaticRow {
                    family,
                    n,
                    m,
                    solver: "blossom",
                    time_ms: t,
                    optimum,
                });
            }
        }
    }
    rows
}

/// Runs the warm section: churn each family instance at `n`, then time a
/// cold re-certification against a dual-repair warm start from the
/// pre-churn certificate.
fn warm_section(n: usize) -> Vec<WarmRow> {
    let mut rows = Vec::new();
    for (family, g0) in families(n) {
        let side = g0.bipartition().expect("static families are bipartite");
        let base = certify_max_weight(&g0, &side).expect("pre-churn certify");
        // 2% of the vertices see an update between certifications —
        // the checkpoint regime the dual warm start is built for (after
        // k small updates the number of fresh searches is O(k)); the
        // churn section below covers the heavier streaming turnover
        let churn_ops = (n / 50).max(8);
        let g1 = churned_copy(&g0, &side, churn_ops, n as u64);
        // best-of-3: at quick sizes a single cold or warm solve is
        // sub-millisecond, and the CI guard compares these numbers —
        // take the minimum over three runs so scheduler noise does not
        // decide the verdict
        let (cold, cold_ms) = best_of(3, || {
            WeightOracle::new(side.clone())
                .certify(&g1, None)
                .expect("churned copy stays bipartite")
        });
        let (warm, warm_ms) = best_of(3, || {
            WeightOracle::new(side.clone())
                .certify(&g1, Some(&base))
                .expect("churned copy stays bipartite")
        });
        assert_eq!(
            warm.optimum, cold.optimum,
            "{family}/{n}: warm and cold optima disagree"
        );
        warm.verify(&g1, &side)
            .expect("warm certificate re-verifies");
        rows.push(WarmRow {
            family,
            n,
            m: g1.edge_count(),
            churn_ops,
            cold_ms,
            warm_ms,
            phases_cold: cold.stats.phases,
            phases_warm: warm.stats.phases,
            adopted: warm.stats.adopted,
        });
    }
    rows
}

/// Runs the churn section: the bipartite marketplace stream through the
/// dynamic engine, certified warm at every `checkpoint` ops against a
/// cold solve of the same snapshot.
fn churn_section(n: usize, ops: usize, checkpoint: usize) -> ChurnRow {
    let (w, side) = marketplace_bipartite(n, ops, 0x0c2e);
    let mut eng = DynamicMatcher::new(n, DynamicConfig::default().with_seed(17));
    let mut cert = IncrementalCertifier::new(side.clone());
    let (mut warm_ms, mut cold_ms, mut min_ratio) = (0.0f64, 0.0f64, f64::INFINITY);
    for chunk in w.ops.chunks(checkpoint) {
        eng.apply_all(chunk)
            .expect("generated stream is well-formed");
        let snap = eng.graph().snapshot();
        let (warm, wt) = timed_ms(|| cert.certify(&snap).expect("stream stays bipartite").optimum);
        warm_ms += wt;
        let (cold, ct): (Certified, f64) =
            timed_ms(|| certify_max_weight(&snap, &side).expect("stream stays bipartite"));
        cold_ms += ct;
        assert_eq!(warm, cold.optimum, "churn checkpoint: warm/cold disagree");
        let ratio = if cold.optimum == 0 {
            1.0
        } else {
            eng.matching().weight() as f64 / cold.optimum as f64
        };
        assert!(
            ratio >= 0.5 - 1e-9,
            "churn checkpoint: engine ratio {ratio} below the ½ floor"
        );
        min_ratio = min_ratio.min(ratio);
    }
    ChurnRow {
        n,
        ops: w.ops.len(),
        checkpoint,
        warm_ms,
        cold_ms,
        min_ratio,
    }
}

/// Runs the whole suite at `quick` or full sizes.
pub fn run_suite(quick: bool) -> OracleReport {
    let (sizes, cap_old, warm_n): (&[usize], usize, usize) = if quick {
        (&[200, 1_000], 200, 1_000)
    } else {
        // the dense O(n³) oracles stop being feasible past a few hundred
        // vertices; the slack oracle alone carries the n = 10⁵ row
        (&[500, 1_000, 10_000, 100_000], 500, 20_000)
    };
    let static_rows = static_section(sizes, cap_old);
    let warm_rows = warm_section(warm_n);
    // checkpoint cadence vs live-window size decides how much of the
    // previous certificate survives to be adopted: the quick parameters
    // keep the per-checkpoint turnover near 25% of the window (n = 2048
    // → window 1024, 250 ops between checkpoints) so warm starts have
    // something to reuse even at CI scale
    // best-of-3 like the warm rows (the replay is deterministic, only
    // the clock varies): component-wise minima are what the CI guard
    // compares, and a single quick replay is small enough for scheduler
    // noise to flip the verdict
    let churn = {
        let run = || {
            if quick {
                churn_section(2_048, 3_000, 250)
            } else {
                churn_section(10_000, 20_000, 1_000)
            }
        };
        let mut best = run();
        for _ in 0..2 {
            let next = run();
            best.warm_ms = best.warm_ms.min(next.warm_ms);
            best.cold_ms = best.cold_ms.min(next.cold_ms);
        }
        best
    };

    if std::env::var("WMATCH_ORACLE_GUARD").as_deref() == Ok("1") {
        let warm_total: f64 = warm_rows.iter().map(|r| r.warm_ms).sum::<f64>() + churn.warm_ms;
        let cold_total: f64 = warm_rows.iter().map(|r| r.cold_ms).sum::<f64>() + churn.cold_ms;
        // Regression guard in the WMATCH_SCALING_GUARD mold: warm
        // re-certification must not be slower than cold beyond a 10%
        // timer-noise margin. At quick sizes a checkpoint is ~100µs and
        // the O(E) instance build + certificate verification (paid
        // identically by both paths) dominate, so warm ≈ cold is the
        // expected noise floor — the guard exists to catch the warm path
        // *regressing* (e.g. a repair pass going quadratic), not to
        // demand a speedup the instance sizes cannot show.
        assert!(
            warm_total <= cold_total * 1.10,
            "oracle guard: warm re-certification ({warm_total:.1} ms) slower than cold \
             ({cold_total:.1} ms) beyond the 10% noise margin"
        );
    }
    OracleReport {
        static_rows,
        warm_rows,
        churn,
    }
}

/// Serializes the report as `BENCH_oracle.json` (hand-rolled JSON: the
/// workspace builds offline, without serde).
pub fn to_json(rep: &OracleReport, quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"unit\": \"time_ms per certified solve; every row's optimum is \
         dual-certified (complementary slackness checked in-code)\",\n  \"guard\": \
         \"WMATCH_ORACLE_GUARD=1 fails the run if warm re-certification falls more than 10% \
         behind cold in the aggregate\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"static\": [\n");
    for (i, r) in rep.static_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"solver\": \"{}\", \
             \"time_ms\": {:.3}, \"optimum\": {}}}{}\n",
            r.family,
            r.n,
            r.m,
            r.solver,
            r.time_ms,
            r.optimum,
            if i + 1 < rep.static_rows.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n  \"warm\": [\n");
    for (i, r) in rep.warm_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"churn_ops\": {}, \
             \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup\": {:.2}, \
             \"phases_cold\": {}, \"phases_warm\": {}, \"adopted\": {}}}{}\n",
            r.family,
            r.n,
            r.m,
            r.churn_ops,
            r.cold_ms,
            r.warm_ms,
            r.cold_ms / r.warm_ms.max(1e-9),
            r.phases_cold,
            r.phases_warm,
            r.adopted,
            if i + 1 < rep.warm_rows.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"churn\": {{\"n\": {}, \"ops\": {}, \"checkpoint\": {}, \
         \"warm_ms\": {:.3}, \"cold_ms\": {:.3}, \"speedup\": {:.2}, \"min_ratio\": {:.4}}}\n",
        rep.churn.n,
        rep.churn.ops,
        rep.churn.checkpoint,
        rep.churn.warm_ms,
        rep.churn.cold_ms,
        rep.churn.cold_ms / rep.churn.warm_ms.max(1e-9),
        rep.churn.min_ratio
    ));
    out.push_str("}\n");
    out
}

/// Runs the suite, writes `BENCH_oracle.json` (next to the working
/// directory; override with `WMATCH_BENCH_DIR`), and renders the
/// markdown section.
pub fn run(quick: bool) -> String {
    let t0 = Instant::now();
    let rep = run_suite(quick);
    let dir = std::env::var("WMATCH_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_oracle.json");
    std::fs::write(&path, to_json(&rep, quick)).expect("write BENCH_oracle.json");

    let mut out = String::from(
        "## Oracle — certified bipartite MWM: slack-array Hungarian vs the dense oracles\n\n",
    );
    out.push_str(&format!(
        "written: `{}` (every optimum is dual-certified before its row is recorded; the dense \
         rows double as agreement assertions)\n\n",
        path.display()
    ));
    out.push_str("### Cold certification\n\n| family | n | m | solver | time ms | optimum |\n|---|---:|---:|---|---:|---:|\n");
    for r in &rep.static_rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.2} | {} |\n",
            r.family, r.n, r.m, r.solver, r.time_ms, r.optimum
        ));
    }
    out.push_str("\n### Warm vs cold re-certification after churn\n\n| family | n | m | churn ops | cold ms | warm ms | speedup | phases cold→warm | adopted |\n|---|---:|---:|---:|---:|---:|---:|---|---:|\n");
    for r in &rep.warm_rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.2} | {:.2} | {:.2}x | {}→{} | {} |\n",
            r.family,
            r.n,
            r.m,
            r.churn_ops,
            r.cold_ms,
            r.warm_ms,
            r.cold_ms / r.warm_ms.max(1e-9),
            r.phases_cold,
            r.phases_warm,
            r.adopted
        ));
    }
    let c = &rep.churn;
    out.push_str(&format!(
        "\n### Incremental certification of the marketplace stream\n\nn = {}, {} ops, a \
         checkpoint every {} ops: warm (dual-repair) total {:.1} ms vs cold total {:.1} ms \
         ({:.2}x); worst engine ratio at a checkpoint {:.4} (floor ½).\n",
        c.n,
        c.ops,
        c.checkpoint,
        c.warm_ms,
        c.cold_ms,
        c.cold_ms / c.warm_ms.max(1e-9),
        c.min_ratio
    ));
    out.push_str(&format!(
        "\nShape: cold certification scales with the label-driven BFS (near-linear on these \
         sparse families, reaching n = 10⁵ where the dense O(n³) oracles cannot start), and \
         warm re-certification pays only for the churned region — the dual-repair pass adopts \
         the surviving tight pairs and re-searches the rest. (suite ran in {:.1}s)\n",
        t0.elapsed().as_secs_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable() {
        let rep = OracleReport {
            static_rows: vec![StaticRow {
                family: "bipartite-gnp",
                n: 100,
                m: 400,
                solver: "oracle-cold",
                time_ms: 1.25,
                optimum: 999,
            }],
            warm_rows: vec![WarmRow {
                family: "path",
                n: 100,
                m: 99,
                churn_ops: 10,
                cold_ms: 2.0,
                warm_ms: 0.5,
                phases_cold: 40,
                phases_warm: 6,
                adopted: 44,
            }],
            churn: ChurnRow {
                n: 64,
                ops: 1000,
                checkpoint: 100,
                warm_ms: 3.0,
                cold_ms: 9.0,
                min_ratio: 0.8125,
            },
        };
        let j = to_json(&rep, true);
        assert!(j.contains("\"solver\": \"oracle-cold\""));
        assert!(j.contains("\"speedup\": 4.00"));
        assert!(j.contains("\"min_ratio\": 0.8125"));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
    }

    #[test]
    fn tiny_suite_certifies_and_agrees() {
        // miniature end-to-end pass over the plumbing (not the sizes)
        let rows = static_section(&[64], 64);
        assert_eq!(rows.len(), 4 * 3, "every family gets all three solvers");
        for r in &rows {
            assert!(r.time_ms >= 0.0);
        }
        let warm = warm_section(64);
        assert_eq!(warm.len(), 4);
        for r in &warm {
            assert!(r.adopted > 0, "{}: warm start adopted nothing", r.family);
        }
        let churn = churn_section(32, 300, 100);
        assert!(churn.min_ratio >= 0.5 - 1e-9);
        assert!(churn.warm_ms > 0.0 && churn.cold_ms > 0.0);
    }

    #[test]
    fn marketplace_snapshot_is_bipartite_and_live() {
        let g = marketplace_snapshot(64, 500, 3);
        assert!(g.edge_count() > 0);
        assert!(g.bipartition().is_some());
    }
}
